# Empty dependencies file for employee_mappings.
# This may be replaced when dependencies are built.
