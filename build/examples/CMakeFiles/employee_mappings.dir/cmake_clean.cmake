file(REMOVE_RECURSE
  "CMakeFiles/employee_mappings.dir/employee_mappings.cpp.o"
  "CMakeFiles/employee_mappings.dir/employee_mappings.cpp.o.d"
  "employee_mappings"
  "employee_mappings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/employee_mappings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
