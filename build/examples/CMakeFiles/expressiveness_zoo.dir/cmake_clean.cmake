file(REMOVE_RECURSE
  "CMakeFiles/expressiveness_zoo.dir/expressiveness_zoo.cpp.o"
  "CMakeFiles/expressiveness_zoo.dir/expressiveness_zoo.cpp.o.d"
  "expressiveness_zoo"
  "expressiveness_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expressiveness_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
