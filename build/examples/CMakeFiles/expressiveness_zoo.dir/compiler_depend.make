# Empty compiler generated dependencies file for expressiveness_zoo.
# This may be replaced when dependencies are built.
