file(REMOVE_RECURSE
  "CMakeFiles/model_checking_tour.dir/model_checking_tour.cpp.o"
  "CMakeFiles/model_checking_tour.dir/model_checking_tour.cpp.o.d"
  "model_checking_tour"
  "model_checking_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_checking_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
