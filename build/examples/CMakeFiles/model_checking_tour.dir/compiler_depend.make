# Empty compiler generated dependencies file for model_checking_tour.
# This may be replaced when dependencies are built.
