file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_pcp.dir/bench_fig4_pcp.cc.o"
  "CMakeFiles/bench_fig4_pcp.dir/bench_fig4_pcp.cc.o.d"
  "bench_fig4_pcp"
  "bench_fig4_pcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_pcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
