file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_blowup.dir/bench_fig3_blowup.cc.o"
  "CMakeFiles/bench_fig3_blowup.dir/bench_fig3_blowup.cc.o.d"
  "bench_fig3_blowup"
  "bench_fig3_blowup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_blowup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
