# Empty compiler generated dependencies file for bench_mc_sotgd.
# This may be replaced when dependencies are built.
