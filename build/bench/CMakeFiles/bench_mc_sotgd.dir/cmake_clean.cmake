file(REMOVE_RECURSE
  "CMakeFiles/bench_mc_sotgd.dir/bench_mc_sotgd.cc.o"
  "CMakeFiles/bench_mc_sotgd.dir/bench_mc_sotgd.cc.o.d"
  "bench_mc_sotgd"
  "bench_mc_sotgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mc_sotgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
