# Empty compiler generated dependencies file for bench_mc_3col.
# This may be replaced when dependencies are built.
