file(REMOVE_RECURSE
  "CMakeFiles/bench_mc_3col.dir/bench_mc_3col.cc.o"
  "CMakeFiles/bench_mc_3col.dir/bench_mc_3col.cc.o.d"
  "bench_mc_3col"
  "bench_mc_3col.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mc_3col.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
