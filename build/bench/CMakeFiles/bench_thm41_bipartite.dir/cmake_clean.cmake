file(REMOVE_RECURSE
  "CMakeFiles/bench_thm41_bipartite.dir/bench_thm41_bipartite.cc.o"
  "CMakeFiles/bench_thm41_bipartite.dir/bench_thm41_bipartite.cc.o.d"
  "bench_thm41_bipartite"
  "bench_thm41_bipartite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm41_bipartite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
