file(REMOVE_RECURSE
  "CMakeFiles/bench_mc_qbf.dir/bench_mc_qbf.cc.o"
  "CMakeFiles/bench_mc_qbf.dir/bench_mc_qbf.cc.o.d"
  "bench_mc_qbf"
  "bench_mc_qbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mc_qbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
