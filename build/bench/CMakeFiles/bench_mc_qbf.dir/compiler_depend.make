# Empty compiler generated dependencies file for bench_mc_qbf.
# This may be replaced when dependencies are built.
