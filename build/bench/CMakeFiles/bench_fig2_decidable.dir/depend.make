# Empty dependencies file for bench_fig2_decidable.
# This may be replaced when dependencies are built.
