file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_decidable.dir/bench_fig2_decidable.cc.o"
  "CMakeFiles/bench_fig2_decidable.dir/bench_fig2_decidable.cc.o.d"
  "bench_fig2_decidable"
  "bench_fig2_decidable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_decidable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
