file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_syntactic.dir/bench_fig1_syntactic.cc.o"
  "CMakeFiles/bench_fig1_syntactic.dir/bench_fig1_syntactic.cc.o.d"
  "bench_fig1_syntactic"
  "bench_fig1_syntactic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_syntactic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
