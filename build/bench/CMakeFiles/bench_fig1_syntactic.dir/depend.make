# Empty dependencies file for bench_fig1_syntactic.
# This may be replaced when dependencies are built.
