file(REMOVE_RECURSE
  "libtgdkit.a"
)
