
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/status.cc" "src/CMakeFiles/tgdkit.dir/base/status.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/base/status.cc.o.d"
  "/root/repo/src/base/symbol_table.cc" "src/CMakeFiles/tgdkit.dir/base/symbol_table.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/base/symbol_table.cc.o.d"
  "/root/repo/src/base/vocabulary.cc" "src/CMakeFiles/tgdkit.dir/base/vocabulary.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/base/vocabulary.cc.o.d"
  "/root/repo/src/chase/chase.cc" "src/CMakeFiles/tgdkit.dir/chase/chase.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/chase/chase.cc.o.d"
  "/root/repo/src/classify/criteria.cc" "src/CMakeFiles/tgdkit.dir/classify/criteria.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/classify/criteria.cc.o.d"
  "/root/repo/src/classify/dot.cc" "src/CMakeFiles/tgdkit.dir/classify/dot.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/classify/dot.cc.o.d"
  "/root/repo/src/cli/cli.cc" "src/CMakeFiles/tgdkit.dir/cli/cli.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/cli/cli.cc.o.d"
  "/root/repo/src/data/instance.cc" "src/CMakeFiles/tgdkit.dir/data/instance.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/data/instance.cc.o.d"
  "/root/repo/src/dep/dependency.cc" "src/CMakeFiles/tgdkit.dir/dep/dependency.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/dep/dependency.cc.o.d"
  "/root/repo/src/dep/skolem.cc" "src/CMakeFiles/tgdkit.dir/dep/skolem.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/dep/skolem.cc.o.d"
  "/root/repo/src/dep/syntactic.cc" "src/CMakeFiles/tgdkit.dir/dep/syntactic.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/dep/syntactic.cc.o.d"
  "/root/repo/src/exchange/exchange.cc" "src/CMakeFiles/tgdkit.dir/exchange/exchange.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/exchange/exchange.cc.o.d"
  "/root/repo/src/gen/generators.cc" "src/CMakeFiles/tgdkit.dir/gen/generators.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/gen/generators.cc.o.d"
  "/root/repo/src/homo/core.cc" "src/CMakeFiles/tgdkit.dir/homo/core.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/homo/core.cc.o.d"
  "/root/repo/src/homo/matcher.cc" "src/CMakeFiles/tgdkit.dir/homo/matcher.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/homo/matcher.cc.o.d"
  "/root/repo/src/mc/model_check.cc" "src/CMakeFiles/tgdkit.dir/mc/model_check.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/mc/model_check.cc.o.d"
  "/root/repo/src/oracle/oracle.cc" "src/CMakeFiles/tgdkit.dir/oracle/oracle.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/oracle/oracle.cc.o.d"
  "/root/repo/src/parse/lexer.cc" "src/CMakeFiles/tgdkit.dir/parse/lexer.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/parse/lexer.cc.o.d"
  "/root/repo/src/parse/parser.cc" "src/CMakeFiles/tgdkit.dir/parse/parser.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/parse/parser.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/tgdkit.dir/query/query.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/query/query.cc.o.d"
  "/root/repo/src/reduce/pcp.cc" "src/CMakeFiles/tgdkit.dir/reduce/pcp.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/reduce/pcp.cc.o.d"
  "/root/repo/src/reduce/qbf.cc" "src/CMakeFiles/tgdkit.dir/reduce/qbf.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/reduce/qbf.cc.o.d"
  "/root/repo/src/reduce/separation.cc" "src/CMakeFiles/tgdkit.dir/reduce/separation.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/reduce/separation.cc.o.d"
  "/root/repo/src/reduce/three_col.cc" "src/CMakeFiles/tgdkit.dir/reduce/three_col.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/reduce/three_col.cc.o.d"
  "/root/repo/src/term/term.cc" "src/CMakeFiles/tgdkit.dir/term/term.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/term/term.cc.o.d"
  "/root/repo/src/transform/composition.cc" "src/CMakeFiles/tgdkit.dir/transform/composition.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/transform/composition.cc.o.d"
  "/root/repo/src/transform/nested.cc" "src/CMakeFiles/tgdkit.dir/transform/nested.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/transform/nested.cc.o.d"
  "/root/repo/src/transform/standard_henkin.cc" "src/CMakeFiles/tgdkit.dir/transform/standard_henkin.cc.o" "gcc" "src/CMakeFiles/tgdkit.dir/transform/standard_henkin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
