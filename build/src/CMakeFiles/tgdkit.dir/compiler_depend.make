# Empty compiler generated dependencies file for tgdkit.
# This may be replaced when dependencies are built.
