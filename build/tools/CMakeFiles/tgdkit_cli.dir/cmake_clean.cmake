file(REMOVE_RECURSE
  "CMakeFiles/tgdkit_cli.dir/tgdkit_main.cc.o"
  "CMakeFiles/tgdkit_cli.dir/tgdkit_main.cc.o.d"
  "tgdkit"
  "tgdkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgdkit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
