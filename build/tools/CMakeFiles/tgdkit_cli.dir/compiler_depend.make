# Empty compiler generated dependencies file for tgdkit_cli.
# This may be replaced when dependencies are built.
