
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/base_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/base_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/base_test.cc.o.d"
  "/root/repo/tests/chase_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/chase_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/chase_test.cc.o.d"
  "/root/repo/tests/classifier_textbook_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/classifier_textbook_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/classifier_textbook_test.cc.o.d"
  "/root/repo/tests/cli_extra_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/cli_extra_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/cli_extra_test.cc.o.d"
  "/root/repo/tests/cli_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/cli_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/cli_test.cc.o.d"
  "/root/repo/tests/composition_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/composition_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/composition_test.cc.o.d"
  "/root/repo/tests/containment_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/containment_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/containment_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/corpus_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/corpus_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/corpus_test.cc.o.d"
  "/root/repo/tests/criteria_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/criteria_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/criteria_test.cc.o.d"
  "/root/repo/tests/critical_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/critical_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/critical_test.cc.o.d"
  "/root/repo/tests/dependency_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/dependency_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/dependency_test.cc.o.d"
  "/root/repo/tests/deskolem_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/deskolem_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/deskolem_test.cc.o.d"
  "/root/repo/tests/dot_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/dot_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/dot_test.cc.o.d"
  "/root/repo/tests/exchange_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/exchange_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/exchange_test.cc.o.d"
  "/root/repo/tests/henkin_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/henkin_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/henkin_test.cc.o.d"
  "/root/repo/tests/instance_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/instance_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/instance_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/matcher_oracle_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/matcher_oracle_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/matcher_oracle_test.cc.o.d"
  "/root/repo/tests/matcher_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/matcher_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/matcher_test.cc.o.d"
  "/root/repo/tests/minimize_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/minimize_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/minimize_test.cc.o.d"
  "/root/repo/tests/model_check_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/model_check_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/model_check_test.cc.o.d"
  "/root/repo/tests/oracle_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/oracle_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/oracle_test.cc.o.d"
  "/root/repo/tests/parser_error_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/parser_error_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/parser_error_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/pcp_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/pcp_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/pcp_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/reduction_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/reduction_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/reduction_test.cc.o.d"
  "/root/repo/tests/roundtrip_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/roundtrip_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/roundtrip_test.cc.o.d"
  "/root/repo/tests/semantics_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/semantics_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/semantics_test.cc.o.d"
  "/root/repo/tests/seminaive_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/seminaive_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/seminaive_test.cc.o.d"
  "/root/repo/tests/so_oracle_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/so_oracle_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/so_oracle_test.cc.o.d"
  "/root/repo/tests/standard_henkin_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/standard_henkin_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/standard_henkin_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/stress_test.cc.o.d"
  "/root/repo/tests/syntactic_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/syntactic_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/syntactic_test.cc.o.d"
  "/root/repo/tests/term_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/term_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/term_test.cc.o.d"
  "/root/repo/tests/transform_test.cc" "tests/CMakeFiles/tgdkit_tests.dir/transform_test.cc.o" "gcc" "tests/CMakeFiles/tgdkit_tests.dir/transform_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tgdkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
