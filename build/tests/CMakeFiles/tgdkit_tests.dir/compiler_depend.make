# Empty compiler generated dependencies file for tgdkit_tests.
# This may be replaced when dependencies are built.
