// E9 — substrate performance baselines (not a paper artifact): chase
// throughput, homomorphism search, core computation, term interning and
// parsing. These keep the engineering honest and make regressions in the
// shared machinery visible.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "dep/skolem.h"
#include "gen/generators.h"
#include "homo/core.h"
#include "homo/matcher.h"
#include "parse/parser.h"

namespace tgdkit {
namespace {

using bench::Workspace;

void BM_TermInterning(benchmark::State& state) {
  Workspace ws;
  FunctionId f = ws.vocab.InternFunction("f", 1);
  ConstantId c = ws.vocab.InternConstant("c");
  for (auto _ : state) {
    TermId t = ws.arena.MakeConstant(c);
    for (int i = 0; i < 64; ++i) {
      t = ws.arena.MakeFunction(f, std::vector<TermId>{t});
    }
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_TermInterning);

void BM_InstanceInsert(benchmark::State& state) {
  Workspace ws;
  RelationId r = ws.vocab.InternRelation("R", 3);
  uint32_t n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    Instance inst(&ws.vocab);
    for (uint32_t i = 0; i < n; ++i) {
      std::vector<Value> args{
          Value::Constant(i % 17), Value::Constant(i % 31),
          Value::Constant(i % 13)};
      inst.AddFact(r, args);
    }
    benchmark::DoNotOptimize(inst.NumFacts());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InstanceInsert)->Arg(1000)->Arg(10000);

void BM_TriangleMatcher(benchmark::State& state) {
  Workspace ws;
  Rng rng(9090);
  RelationId e = ws.vocab.InternRelation("E", 2);
  Instance inst(&ws.vocab);
  uint32_t n = static_cast<uint32_t>(state.range(0));
  for (uint32_t i = 0; i < 4 * n; ++i) {
    std::vector<Value> args{Value::Constant(uint32_t(rng.Below(n))),
                            Value::Constant(uint32_t(rng.Below(n)))};
    inst.AddFact(e, args);
  }
  TermId x = ws.arena.MakeVariable(ws.vocab.InternVariable("x"));
  TermId y = ws.arena.MakeVariable(ws.vocab.InternVariable("y"));
  TermId z = ws.arena.MakeVariable(ws.vocab.InternVariable("z"));
  std::vector<Atom> triangle{Atom{e, {x, y}}, Atom{e, {y, z}},
                             Atom{e, {z, x}}};
  Matcher matcher(&ws.arena, &inst, triangle);
  for (auto _ : state) {
    size_t count =
        matcher.ForEach({}, [](const Assignment&) { return true; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_TriangleMatcher)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMicrosecond);

void BM_TransitiveClosureChase(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    Workspace ws;
    RelationId e = ws.vocab.InternRelation("E", 2);
    VariableId xv = ws.vocab.InternVariable("x");
    VariableId yv = ws.vocab.InternVariable("y");
    VariableId zv = ws.vocab.InternVariable("z");
    Tgd trans;
    trans.body = {Atom{e, {ws.arena.MakeVariable(xv),
                           ws.arena.MakeVariable(yv)}},
                  Atom{e, {ws.arena.MakeVariable(yv),
                           ws.arena.MakeVariable(zv)}}};
    trans.head = {Atom{e, {ws.arena.MakeVariable(xv),
                           ws.arena.MakeVariable(zv)}}};
    std::vector<Tgd> tgds{trans};
    SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
    Instance input(&ws.vocab);
    for (uint32_t i = 0; i + 1 < n; ++i) {
      std::vector<Value> args{Value::Constant(i), Value::Constant(i + 1)};
      input.AddFact(e, args);
    }
    ChaseResult result = Chase(&ws.arena, &ws.vocab, so, input);
    benchmark::DoNotOptimize(result.instance.NumFacts());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_TransitiveClosureChase)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_CoreComputation(benchmark::State& state) {
  Workspace ws;
  Rng rng(9091);
  SchemaConfig schema_config;
  schema_config.num_relations = 3;
  schema_config.max_arity = 2;
  auto relations = GenerateSchema(&ws.vocab, &rng, schema_config);
  Instance inst(&ws.vocab);
  GenerateInstance(&ws.vocab, &rng, relations,
                   static_cast<uint32_t>(state.range(0)), 3, 5, &inst);
  for (auto _ : state) {
    Instance core = ComputeCore(&ws.arena, &ws.vocab, inst);
    benchmark::DoNotOptimize(core.NumFacts());
  }
}
BENCHMARK(BM_CoreComputation)->Arg(10)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond);

void BM_ParseDependencies(benchmark::State& state) {
  const std::string text =
      "Emp(e, d) -> exists m . Mgr(e, m) .\n"
      "so exists fmgr { Emp2(e) -> Mgr(e, fmgr(e)) ;"
      " Emp2(e) & e = fmgr(e) -> SelfMgr(e) } .\n"
      "henkin { forall e, d ; exists eid(e) ; exists dm(d) }"
      " Emp(e, d) -> Pair(e, d, eid, dm) .\n"
      "nested Dep(d) -> exists u . Dep2(u) & [ Grp(d, g) -> Grp2(u, g) ] .\n";
  for (auto _ : state) {
    Workspace ws;
    Parser parser(&ws.arena, &ws.vocab);
    auto program = parser.ParseDependencies(text);
    benchmark::DoNotOptimize(program.ok());
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ParseDependencies);

void BM_SemiNaiveAblation(benchmark::State& state) {
  // Ablation (DESIGN.md E9): semi-naive vs naive chase evaluation on
  // transitive closure over a path — the classic quadratic-fixpoint case.
  bool semi_naive = state.range(0) == 1;
  uint32_t n = static_cast<uint32_t>(state.range(1));
  for (auto _ : state) {
    Workspace ws;
    RelationId e = ws.vocab.InternRelation("E", 2);
    VariableId xv = ws.vocab.InternVariable("x");
    VariableId yv = ws.vocab.InternVariable("y");
    VariableId zv = ws.vocab.InternVariable("z");
    Tgd trans;
    trans.body = {Atom{e, {ws.arena.MakeVariable(xv),
                           ws.arena.MakeVariable(yv)}},
                  Atom{e, {ws.arena.MakeVariable(yv),
                           ws.arena.MakeVariable(zv)}}};
    trans.head = {Atom{e, {ws.arena.MakeVariable(xv),
                           ws.arena.MakeVariable(zv)}}};
    std::vector<Tgd> tgds{trans};
    SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
    Instance input(&ws.vocab);
    for (uint32_t i = 0; i + 1 < n; ++i) {
      std::vector<Value> args{Value::Constant(i), Value::Constant(i + 1)};
      input.AddFact(e, args);
    }
    ChaseLimits limits;
    limits.semi_naive = semi_naive;
    ChaseResult result = Chase(&ws.arena, &ws.vocab, so, input, limits);
    benchmark::DoNotOptimize(result.instance.NumFacts());
  }
}
BENCHMARK(BM_SemiNaiveAblation)
    ->Args({0, 32})->Args({1, 32})->Args({0, 64})->Args({1, 64})
    ->Unit(benchmark::kMillisecond);

void BM_RestrictedVsSkolemChase(benchmark::State& state) {
  // Same weakly-acyclic rules, alternating engines by Arg: 0 = Skolem,
  // 1 = restricted.
  bool restricted = state.range(0) == 1;
  for (auto _ : state) {
    Workspace ws;
    RelationId p = ws.vocab.InternRelation("P", 1);
    RelationId r = ws.vocab.InternRelation("R", 2);
    VariableId xv = ws.vocab.InternVariable("x");
    VariableId yv = ws.vocab.InternVariable("y");
    Tgd tgd;
    tgd.body = {Atom{p, {ws.arena.MakeVariable(xv)}}};
    tgd.head = {Atom{r, {ws.arena.MakeVariable(xv),
                         ws.arena.MakeVariable(yv)}}};
    tgd.exist_vars = {yv};
    std::vector<Tgd> tgds{tgd};
    Instance input(&ws.vocab);
    for (uint32_t i = 0; i < 500; ++i) {
      std::vector<Value> args{Value::Constant(i)};
      input.AddFact(p, args);
    }
    if (restricted) {
      benchmark::DoNotOptimize(
          RestrictedChaseTgds(&ws.arena, &ws.vocab, tgds, input));
    } else {
      SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
      benchmark::DoNotOptimize(Chase(&ws.arena, &ws.vocab, so, input));
    }
  }
}
BENCHMARK(BM_RestrictedVsSkolemChase)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tgdkit

BENCHMARK_MAIN();
