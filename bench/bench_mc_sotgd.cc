// E8 — Theorem 6.2 / SO tgd model checking: the second-order search over
// function tables (NEXPTIME-complete in combined complexity; membership
// already holds for plain SO tgds). Prints the agreement table between
// the SO engine and the Henkin engine on Skolemized Henkin corpora, shows
// the Theorem 4.4 witness (one function, two argument lists — the case a
// standard Henkin tgd cannot take over), then benchmarks the engine as
// formula and domain grow.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dep/skolem.h"
#include "dep/syntactic.h"
#include "gen/generators.h"
#include "mc/model_check.h"
#include "reduce/separation.h"

namespace tgdkit {
namespace {

using bench::Workspace;

void PrintSoMcTable() {
  bench::Banner(
      "E8 / Theorem 6.2 — second-order model checking",
      "MC for (standard) Henkin tgds and SO tgds is NEXPTIME-complete in "
      "query/combined complexity; the engines must agree on shared inputs");

  // Agreement: a Henkin tgd checked by the Henkin path equals its
  // Skolemization checked as an SO tgd (same engine by construction, but
  // exercised through both public entry points over random inputs).
  Rng rng(8008);
  int agree = 0, total = 0, satisfied = 0;
  for (int trial = 0; trial < 30; ++trial) {
    Workspace ws;
    SchemaConfig schema_config;
    schema_config.num_relations = 4;
    schema_config.max_arity = 2;
    auto relations = GenerateSchema(&ws.vocab, &rng, schema_config);
    HenkinTgd henkin = GenerateHenkinTgd(&ws.arena, &ws.vocab, &rng,
                                         relations, TgdConfig{});
    SoTgd so = HenkinToSo(&ws.arena, &ws.vocab, henkin);
    Instance inst(&ws.vocab);
    GenerateInstance(&ws.vocab, &rng, relations, 10, 3, 0, &inst);
    McResult via_henkin = CheckHenkin(&ws.arena, &ws.vocab, inst, henkin);
    McResult via_so = CheckSo(ws.arena, inst, so);
    if (via_henkin.budget_exceeded || via_so.budget_exceeded) continue;
    agree += (via_henkin.satisfied == via_so.satisfied);
    satisfied += via_so.satisfied;
    ++total;
  }
  std::printf("\nHenkin vs SO entry points on random inputs: %d/%d agree "
              "(%d satisfied)\n", agree, total, satisfied);

  // Theorem 4.4's witness: the function-sharing SO tgd.
  {
    Workspace ws;
    SoTgd so = BuildTheorem44Witness(&ws.arena, &ws.vocab);
    std::printf("\nTheorem 4.4 witness: %s\n",
                ToString(ws.arena, ws.vocab, so).c_str());
    std::printf("  simple=%d plain=%d skolemized-henkin=%d  <- the "
                "footprint no Henkin tgd can take over\n",
                so.parts.size() == 1, IsPlainSo(ws.arena, so),
                IsSkolemizedHenkin(ws.arena, so));
  }

  // Branch growth as the instance domain grows (combined complexity).
  std::printf("\nsecond-order search growth (satisfiable cyclic Emps "
              "instances):\n%8s | %10s\n", "domain", "branches");
  for (uint32_t n : {2u, 4u, 6u, 8u}) {
    Workspace ws;
    SoTgd so = BuildTheorem44Witness(&ws.arena, &ws.vocab);
    RelationId emps = ws.vocab.FindRelation("Emps");
    RelationId mgrs = ws.vocab.FindRelation("Mgrs");
    Instance inst(&ws.vocab);
    std::vector<Value> es, ms;
    for (uint32_t i = 0; i < n; ++i) {
      es.push_back(Value::Constant(
          ws.vocab.InternConstant("e" + std::to_string(i))));
      ms.push_back(Value::Constant(
          ws.vocab.InternConstant("m" + std::to_string(i))));
    }
    for (uint32_t i = 0; i < n; ++i) {
      inst.AddFact(emps, std::vector<Value>{es[i], es[(i + 1) % n]});
      inst.AddFact(mgrs, std::vector<Value>{ms[i], ms[(i + 1) % n]});
    }
    McResult mc = CheckSo(ws.arena, inst, so);
    std::printf("%8u | %10llu  (satisfied=%d)\n", 2 * n,
                static_cast<unsigned long long>(mc.branches), mc.satisfied);
  }
}

void BM_SoMcHenkinCorpus(benchmark::State& state) {
  Workspace ws;
  Rng rng(8080);
  SchemaConfig schema_config;
  schema_config.num_relations = 4;
  schema_config.max_arity = 2;
  auto relations = GenerateSchema(&ws.vocab, &rng, schema_config);
  HenkinTgd henkin =
      GenerateHenkinTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{});
  SoTgd so = HenkinToSo(&ws.arena, &ws.vocab, henkin);
  Instance inst(&ws.vocab);
  GenerateInstance(&ws.vocab, &rng, relations,
                   static_cast<uint32_t>(state.range(0)), 4, 0, &inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckSo(ws.arena, inst, so));
  }
}
BENCHMARK(BM_SoMcHenkinCorpus)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_SoMcTheorem44(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  Workspace ws;
  SoTgd so = BuildTheorem44Witness(&ws.arena, &ws.vocab);
  RelationId emps = ws.vocab.FindRelation("Emps");
  RelationId mgrs = ws.vocab.FindRelation("Mgrs");
  Instance inst(&ws.vocab);
  std::vector<Value> es, ms;
  for (uint32_t i = 0; i < n; ++i) {
    es.push_back(
        Value::Constant(ws.vocab.InternConstant("e" + std::to_string(i))));
    ms.push_back(
        Value::Constant(ws.vocab.InternConstant("m" + std::to_string(i))));
  }
  for (uint32_t i = 0; i < n; ++i) {
    inst.AddFact(emps, std::vector<Value>{es[i], es[(i + 1) % n]});
    inst.AddFact(mgrs, std::vector<Value>{ms[i], ms[(i + 1) % n]});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckSo(ws.arena, inst, so));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SoMcTheorem44)->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMicrosecond)->Complexity();

}  // namespace
}  // namespace tgdkit

int main(int argc, char** argv) {
  tgdkit::PrintSoMcTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
