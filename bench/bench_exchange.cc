// E10 — data-exchange engineering baseline: universal-solution and
// core-solution materialization and target certain answers under a mixed
// mapping (tgds + SO tgd + nested tgd), scaling in the source size.
// Prints a size table, then benchmark timings.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "dep/skolem.h"
#include "exchange/exchange.h"
#include "parse/parser.h"
#include "query/query.h"
#include "transform/nested.h"

namespace tgdkit {
namespace {

using bench::Workspace;

struct Setup {
  Workspace ws;
  SchemaMapping mapping;
  Instance source;

  Setup() : source(&ws.vocab) {}
};

/// Builds the university mapping over a synthetic source with `students`
/// students taking 2 courses each (out of 10).
std::unique_ptr<Setup> MakeSetup(uint32_t students) {
  auto setup = std::make_unique<Setup>();
  Workspace& ws = setup->ws;
  Parser parser(&ws.arena, &ws.vocab);
  auto program = parser.ParseDependencies(R"(
    Takes(s, c) -> exists r . Enrollment(s, c, r) .
    Enrollment(s, c, r) -> Attends(s) .
    so exists advisor { Takes(s, c) -> Advised(s, advisor(s)) } .
    nested Takes(s, c) -> exists sec . Section(c, sec) .
  )");
  if (!program.ok()) std::abort();
  std::vector<SoTgd> pieces;
  std::vector<Tgd> tgds = program->Tgds();
  pieces.push_back(TgdsToSo(&ws.arena, &ws.vocab, tgds));
  pieces.push_back(program->Sos()[0]);
  for (const NestedTgd& nested : program->Nesteds()) {
    pieces.push_back(NestedToSo(&ws.arena, &ws.vocab, nested));
  }
  setup->mapping.rules = MergeSo(pieces);
  setup->mapping.source_relations = {ws.vocab.FindRelation("Takes")};
  setup->mapping.target_relations = {
      ws.vocab.FindRelation("Enrollment"), ws.vocab.FindRelation("Attends"),
      ws.vocab.FindRelation("Advised"), ws.vocab.FindRelation("Section")};

  setup->source = Instance(&ws.vocab);
  RelationId takes = ws.vocab.FindRelation("Takes");
  for (uint32_t i = 0; i < students; ++i) {
    Value s = Value::Constant(
        ws.vocab.InternConstant("s" + std::to_string(i)));
    for (uint32_t j = 0; j < 2; ++j) {
      Value c = Value::Constant(ws.vocab.InternConstant(
          "course" + std::to_string((i + j * 3) % 10)));
      setup->source.AddFact(takes, std::vector<Value>{s, c});
    }
  }
  return setup;
}

void PrintExchangeTable() {
  bench::Banner(
      "E10 — data exchange baseline (engineering, not a paper artifact)",
      "universal and core solutions scale linearly in the source; the "
      "core removes only genuinely redundant nulls");
  std::printf("\n%9s | %13s | %10s | %10s\n", "students", "source facts",
              "solution", "core");
  for (uint32_t n : {5u, 20u, 80u}) {
    auto setup = MakeSetup(n);
    ExchangeResult solution = Solve(&setup->ws.arena, &setup->ws.vocab,
                                    setup->mapping, setup->source);
    Instance core = CoreSolution(&setup->ws.arena, &setup->ws.vocab,
                                 setup->mapping, setup->source);
    std::printf("%9u | %13zu | %10zu | %10zu\n", n,
                setup->source.NumFacts(), solution.solution.NumFacts(),
                core.NumFacts());
  }
}

void BM_Solve(benchmark::State& state) {
  auto setup = MakeSetup(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    ExchangeResult result = Solve(&setup->ws.arena, &setup->ws.vocab,
                                  setup->mapping, setup->source);
    benchmark::DoNotOptimize(result.solution.NumFacts());
  }
}
BENCHMARK(BM_Solve)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_CoreSolution(benchmark::State& state) {
  auto setup = MakeSetup(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    Instance core = CoreSolution(&setup->ws.arena, &setup->ws.vocab,
                                 setup->mapping, setup->source);
    benchmark::DoNotOptimize(core.NumFacts());
  }
}
BENCHMARK(BM_CoreSolution)->Arg(5)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_TargetCertain(benchmark::State& state) {
  auto setup = MakeSetup(static_cast<uint32_t>(state.range(0)));
  Parser parser(&setup->ws.arena, &setup->ws.vocab);
  auto query = parser.ParseQuery("ans(s) :- Attends(s).");
  if (!query.ok()) std::abort();
  for (auto _ : state) {
    CertainAnswers answers =
        TargetCertainAnswers(&setup->ws.arena, &setup->ws.vocab,
                             setup->mapping, setup->source, *query);
    benchmark::DoNotOptimize(answers.answers.size());
  }
}
BENCHMARK(BM_TargetCertain)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tgdkit

int main(int argc, char** argv) {
  tgdkit::PrintExchangeTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
