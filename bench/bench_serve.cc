// E15 — resident serving: `tgdkit serve` answers protocol pings, warm
// (cache-hit) and cold (full run) classify requests over a Unix socket,
// and sheds overload with typed refusals instead of queueing
// (docs/SERVE.md). Prints the admission/shed table for a deliberate
// overload burst, then benchmarks the three request latencies so CI can
// gate the resident path via tools/bench_gate.py (BENCH_serve.json).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace tgdkit {
namespace {

constexpr char kDeps[] = "every: Emp(e) -> exists m . Mgr(e, m) .\n";

/// One in-process daemon on its own Unix socket; joined on destruction.
struct ServerHarness {
  explicit ServerHarness(const char* tag, ServeOptions base = {}) {
    options = std::move(base);
    options.socket_path = "/tmp/tgdkit_bench_serve_" +
                          std::to_string(getpid()) + "_" + tag + ".sock";
    options.shutdown = shutdown;
    options.on_ready = [this](uint16_t) { ready.set_value(); };
    thread = std::thread([this] {
      std::ostringstream out, err;
      RunServer(options, out, err);
    });
    ready.get_future().wait();
  }
  ~ServerHarness() {
    shutdown.Cancel();
    thread.join();
  }

  ServeOptions options;
  CancellationToken shutdown;
  std::promise<void> ready;
  std::thread thread;
};

ServerHarness* g_server = nullptr;

ServeRequest ClassifyRequest(std::string id, std::string ruleset) {
  ServeRequest request;
  request.id = std::move(id);
  request.command = "classify";
  request.args = {"deps.tgd"};
  request.file_names = {"deps.tgd"};
  request.file_contents = {std::move(ruleset)};
  return request;
}

/// The admission contract, demonstrated: a burst far past capacity gets
/// an immediate typed answer for every request — admitted ones run,
/// the rest shed with `overloaded` and a retry hint; nothing queues.
void PrintShedTable() {
  ServeOptions options;
  options.threads = 2;
  options.max_inflight = 2;
  ServerHarness server("shed", options);

  std::printf("\nE15 — serve admission under a deliberate overload burst\n");
  std::printf("(2 lanes, max-inflight 2; every request is answered "
              "immediately — ok or a typed shed, never queued)\n");
  std::printf("%-12s | %8s | %6s | %10s\n", "burst", "admitted", "shed",
              "unanswered");
  std::printf("-------------+----------+--------+-----------\n");
  for (int burst : {2, 8, 16}) {
    std::atomic<int> ok{0}, shed{0}, lost{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < burst; ++c) {
      clients.emplace_back([&, c] {
        Result<ServeClient> client =
            ServeClient::ConnectUnixSocket(server.options.socket_path);
        if (!client.ok()) {
          ++lost;
          return;
        }
        ServeRequest request;
        request.id = "burst-" + std::to_string(c);
        request.command = "selftest";
        request.args = {"--spin-ms", "100"};
        Result<ServeResponse> response = client->Call(request);
        if (!response.ok()) {
          ++lost;
        } else if (response->status == ServeStatus::kOk) {
          ++ok;
        } else if (response->status == ServeStatus::kOverloaded) {
          ++shed;
        } else {
          ++lost;
        }
      });
    }
    for (std::thread& client : clients) client.join();
    std::printf("%-12d | %8d | %6d | %10d\n", burst, ok.load(), shed.load(),
                lost.load());
  }
}

void BM_ServePing(benchmark::State& state) {
  // Protocol floor: frame parse + poll-loop dispatch + reply, no worker.
  Result<ServeClient> client =
      ServeClient::ConnectUnixSocket(g_server->options.socket_path);
  if (!client.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  ServeRequest ping;
  ping.id = "ping";
  ping.command = "ping";
  for (auto _ : state) {
    Result<ServeResponse> response = client->Call(ping);
    if (!response.ok()) {
      state.SkipWithError("ping failed");
      return;
    }
    benchmark::DoNotOptimize(response->id);
  }
}
BENCHMARK(BM_ServePing)->Unit(benchmark::kMicrosecond);

void BM_ServeWarmClassify(benchmark::State& state) {
  // Cache hit: the identical request repeats, so after the first round
  // trip the daemon replays the stored verdict without running a worker.
  Result<ServeClient> client =
      ServeClient::ConnectUnixSocket(g_server->options.socket_path);
  if (!client.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  ServeRequest request = ClassifyRequest("warm", kDeps);
  for (auto _ : state) {
    Result<ServeResponse> response = client->Call(request);
    if (!response.ok() || response->status != ServeStatus::kOk) {
      state.SkipWithError("warm request failed");
      return;
    }
    benchmark::DoNotOptimize(response->out);
  }
}
BENCHMARK(BM_ServeWarmClassify)->Unit(benchmark::kMicrosecond);

void BM_ServeColdClassify(benchmark::State& state) {
  // Cache miss every iteration: a fresh predicate name forces the full
  // parse + classification run on a pool lane. Warm minus cold is what
  // the resident cache buys.
  Result<ServeClient> client =
      ServeClient::ConnectUnixSocket(g_server->options.socket_path);
  if (!client.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  static int counter = 0;
  for (auto _ : state) {
    ++counter;
    ServeRequest request = ClassifyRequest(
        "cold" + std::to_string(counter),
        "p" + std::to_string(counter) + "(X) -> q(X) .\n");
    Result<ServeResponse> response = client->Call(request);
    if (!response.ok() || response->status != ServeStatus::kOk ||
        response->cached) {
      state.SkipWithError("cold request failed");
      return;
    }
    benchmark::DoNotOptimize(response->out);
  }
}
BENCHMARK(BM_ServeColdClassify)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tgdkit

int main(int argc, char** argv) {
  tgdkit::PrintShedTable();
  {
    tgdkit::ServeOptions options;
    options.threads = 4;
    // The cold benchmark inserts a distinct entry per iteration; a small
    // cache keeps memory flat while still holding the warm entry (hits
    // refresh recency, so steady eviction churn never evicts it).
    options.cache_bytes = 4 * 1024 * 1024;
    tgdkit::ServerHarness server("bench", options);
    tgdkit::g_server = &server;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    tgdkit::g_server = nullptr;
  }
  return 0;
}
