// E16 companion — the decidability-frontier analyzers:
//  * triangular-guardedness membership over a random tgd corpus, with
//    the share of rulesets rescued beyond the classic Figure 2 classes;
//  * chase-complexity tier distribution (polynomial / exponential /
//    non-elementary) over the same corpus;
//  * full verdict + witness-replay round trips, since `tgdkit classify`
//    and `tgdkit lint` both pay for replay on every negative verdict.
#include <benchmark/benchmark.h>

#include "analyze/analysis.h"
#include "bench/bench_util.h"
#include "classify/criteria.h"
#include "dep/skolem.h"
#include "gen/generators.h"

namespace tgdkit {
namespace {

using bench::Workspace;

/// A deterministic corpus of random 3-tgd rulesets, one SoTgd each.
std::vector<SoTgd> BuildCorpus(Workspace* ws, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<SoTgd> corpus;
  corpus.reserve(count);
  for (int i = 0; i < count; ++i) {
    auto relations = GenerateSchema(&ws->vocab, &rng, SchemaConfig{});
    std::vector<Tgd> tgds;
    for (int j = 0; j < 3; ++j) {
      tgds.push_back(GenerateTgd(&ws->arena, &ws->vocab, &rng, relations,
                                 TgdConfig{}));
    }
    corpus.push_back(TgdsToSo(&ws->arena, &ws->vocab, tgds));
  }
  return corpus;
}

void PrintFrontierTable() {
  bench::Banner(
      "E16 / decidability frontier — triangular guardedness + chase tiers",
      "how often triangular guardedness certifies decidability where no "
      "classic Figure 2 class applies, and where the chase tiers land");

  Workspace ws;
  std::vector<SoTgd> corpus = BuildCorpus(&ws, 400, 1616);
  int classic = 0, rescued = 0, undecided = 0;
  int tiers[3] = {0, 0, 0};
  for (const SoTgd& so : corpus) {
    bool any_classic = IsWeaklyAcyclic(ws.arena, so) ||
                       IsWeaklyGuarded(ws.arena, so) ||
                       IsStickyJoin(ws.arena, so);
    bool tg = IsTriangularlyGuarded(ws.arena, so);
    if (any_classic) {
      ++classic;
    } else if (tg) {
      ++rescued;
    } else {
      ++undecided;
    }
    tiers[static_cast<int>(ChaseComplexityTier(ws.arena, so))]++;
  }
  std::printf("\n%zu random 3-tgd rulesets:\n", corpus.size());
  std::printf("  classic Figure 2 class applies : %d\n", classic);
  std::printf("  rescued by triangular guard    : %d\n", rescued);
  std::printf("  no decidability certificate    : %d\n", undecided);
  std::printf("chase-complexity tiers: %d polynomial, %d exponential, "
              "%d non-elementary\n",
              tiers[0], tiers[1], tiers[2]);
}

void BM_AnalyzeTriangularGuard(benchmark::State& state) {
  // The raw membership check, as `classify` runs it per statement.
  Workspace ws;
  std::vector<SoTgd> corpus = BuildCorpus(&ws, 64, 7001);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IsTriangularlyGuarded(ws.arena, corpus[i++ % corpus.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyzeTriangularGuard);

void BM_AnalyzeComplexityTier(benchmark::State& state) {
  Workspace ws;
  std::vector<SoTgd> corpus = BuildCorpus(&ws, 64, 7002);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ChaseComplexityTier(ws.arena, corpus[i++ % corpus.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyzeComplexityTier);

void BM_AnalyzeVerdicts(benchmark::State& state) {
  // All eight criteria + witnesses + complexity bound in one pass — the
  // cost `classify`, `lint`, and `serve` pay per ruleset.
  Workspace ws;
  std::vector<SoTgd> corpus = BuildCorpus(&ws, 64, 7003);
  size_t i = 0;
  for (auto _ : state) {
    ProgramAnalysis analysis = AnalyzeSo(ws.arena, corpus[i++ % corpus.size()]);
    benchmark::DoNotOptimize(analysis.verdicts.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyzeVerdicts);

void BM_AnalyzeWitnessReplay(benchmark::State& state) {
  // Independent re-validation of every witness and the complexity bound.
  Workspace ws;
  std::vector<SoTgd> corpus = BuildCorpus(&ws, 64, 7004);
  std::vector<ProgramAnalysis> analyses;
  analyses.reserve(corpus.size());
  for (const SoTgd& so : corpus) analyses.push_back(AnalyzeSo(ws.arena, so));
  size_t i = 0;
  for (auto _ : state) {
    const ProgramAnalysis& analysis = analyses[i++ % analyses.size()];
    benchmark::DoNotOptimize(ReplayAllWitnesses(ws.arena, analysis).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyzeWitnessReplay);

void BM_AnalyzeScaling(benchmark::State& state) {
  // Full analysis on one ruleset whose size scales with the argument:
  // a chain of existential steps plus a join rule per link.
  uint32_t links = static_cast<uint32_t>(state.range(0));
  Workspace ws;
  std::vector<Tgd> tgds;
  VariableId xv = ws.vocab.InternVariable("x");
  VariableId yv = ws.vocab.InternVariable("y");
  VariableId zv = ws.vocab.InternVariable("z");
  TermId x = ws.arena.MakeVariable(xv);
  TermId y = ws.arena.MakeVariable(yv);
  TermId z = ws.arena.MakeVariable(zv);
  for (uint32_t i = 0; i < links; ++i) {
    RelationId cur =
        ws.vocab.InternRelation("Hop" + std::to_string(i), 2);
    RelationId next =
        ws.vocab.InternRelation("Hop" + std::to_string(i + 1), 2);
    Tgd step;
    step.body = {Atom{cur, {x, y}}};
    step.head = {Atom{next, {y, z}}};
    step.exist_vars = {zv};
    tgds.push_back(step);
    Tgd join;
    join.body = {Atom{cur, {x, y}}, Atom{cur, {y, z}}};
    join.head = {Atom{cur, {x, z}}};
    tgds.push_back(join);
  }
  SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
  for (auto _ : state) {
    ProgramAnalysis analysis = AnalyzeSo(ws.arena, so);
    benchmark::DoNotOptimize(analysis.complexity.tier);
  }
  state.SetItemsProcessed(state.iterations() * links);
}
BENCHMARK(BM_AnalyzeScaling)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tgdkit

int main(int argc, char** argv) {
  tgdkit::PrintFrontierTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
