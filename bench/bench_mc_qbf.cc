// E7 — Theorem 6.3: model checking for nested tgds is PSPACE-complete in
// query/combined complexity (reduction from QBF). The instance is FIXED
// (P, Q and the OR-table C); the nested tgd grows with the formula.
// Prints the oracle-agreement and query-scaling table, then benchmarks.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "gen/generators.h"
#include "mc/model_check.h"
#include "reduce/qbf.h"

namespace tgdkit {
namespace {

using bench::Workspace;

void PrintQbfTable() {
  bench::Banner(
      "E7 / Theorem 6.3 — nested tgd model checking, query complexity",
      "PSPACE-complete in query and combined complexity; hardness via QBF "
      "over a fixed 12-fact instance; data complexity stays in AC0");

  Rng rng(7007);
  std::printf("\n%6s | %8s | %7s | %7s | %6s\n", "pairs", "clauses",
              "checked", "agree", "true");
  std::printf("-------+----------+---------+---------+-------\n");
  for (uint32_t pairs : {1u, 2u, 3u, 4u, 5u}) {
    int agree = 0, total = 0, truthy = 0;
    uint32_t clauses = 2 + pairs;
    for (int trial = 0; trial < 12; ++trial) {
      Workspace ws;
      Qbf qbf = GenerateQbf(&rng, pairs, clauses);
      QbfReduction red = BuildQbfReduction(&ws.arena, &ws.vocab, qbf);
      bool oracle = EvaluateQbf(qbf);
      bool mc = CheckNested(ws.arena, red.instance, red.tau);
      agree += (mc == oracle);
      truthy += oracle;
      ++total;
    }
    std::printf("%6u | %8u | %7d | %7d | %6d\n", pairs, clauses, total,
                agree, truthy);
  }
  std::printf("\nexpected shape: full agreement; the nested tgd's depth\n"
              "equals the number of quantifier alternations, and checking\n"
              "cost grows exponentially in it over the SAME 12-fact\n"
              "instance — query complexity, not data complexity.\n");

  // Instance size is constant in the formula:
  Workspace ws;
  Qbf qbf = GenerateQbf(&rng, 4, 6);
  QbfReduction red = BuildQbfReduction(&ws.arena, &ws.vocab, qbf);
  std::printf("\ninstance facts: %zu (independent of the formula); tau "
              "parts: %zu, depth: %zu\n",
              red.instance.NumFacts(), red.tau.NumParts(), red.tau.Depth());
}

void BM_QbfMc(benchmark::State& state) {
  uint32_t pairs = static_cast<uint32_t>(state.range(0));
  Rng rng(7070 + pairs);
  Workspace ws;
  Qbf qbf = GenerateQbf(&rng, pairs, 2 + pairs);
  QbfReduction red = BuildQbfReduction(&ws.arena, &ws.vocab, qbf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckNested(ws.arena, red.instance, red.tau));
  }
  state.SetComplexityN(pairs);
}
BENCHMARK(BM_QbfMc)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMicrosecond)->Complexity();

void BM_QbfOracle(benchmark::State& state) {
  uint32_t pairs = static_cast<uint32_t>(state.range(0));
  Rng rng(7071 + pairs);
  Qbf qbf = GenerateQbf(&rng, pairs, 2 + pairs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateQbf(qbf));
  }
}
BENCHMARK(BM_QbfOracle)->Arg(2)->Arg(4)->Arg(6);

void BM_BuildQbfReduction(benchmark::State& state) {
  uint32_t pairs = static_cast<uint32_t>(state.range(0));
  Rng rng(7072 + pairs);
  Qbf qbf = GenerateQbf(&rng, pairs, 2 + pairs);
  for (auto _ : state) {
    Workspace ws;
    benchmark::DoNotOptimize(BuildQbfReduction(&ws.arena, &ws.vocab, qbf));
  }
}
BENCHMARK(BM_BuildQbfReduction)->Arg(2)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tgdkit

int main(int argc, char** argv) {
  tgdkit::PrintQbfTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
