// E5 — Figure 4 / Theorems 5.1, 5.2: the PCP encoding as sticky linear
// standard Henkin tgds (two unary function symbols). Prints the
// semi-decision table (chase outcome vs brute-force oracle on a mixed
// corpus) and the budget-growth curve on an unsolvable instance, then
// benchmarks the encoding and the chase.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "classify/criteria.h"
#include "gen/generators.h"
#include "reduce/pcp.h"

namespace tgdkit {
namespace {

using bench::Workspace;

void PrintPcpTable() {
  bench::Banner(
      "E5 / Figure 4, Theorems 5.1 + 5.2 — PCP as query answering",
      "atomic query answering is undecidable for sticky linear standard "
      "Henkin tgds with two unary function symbols; the chase semi-decides");

  // Fixed showcase instances.
  struct Row {
    const char* name;
    PcpInstance pcp;
  };
  std::vector<Row> rows;
  rows.push_back({"(12,1)(2,22)  [solvable, len 2]",
                  {2, {{{1, 2}, {1}}, {{2}, {2, 2}}}}});
  rows.push_back({"(1,1)         [solvable, len 1]", {1, {{{1}, {1}}}}});
  rows.push_back({"(1,12)(2,31)(31,1)(123,3) [solvable, len 5]",
                  {3,
                   {{{1}, {1, 2}},
                    {{2}, {3, 1}},
                    {{3, 1}, {1}},
                    {{1, 2, 3}, {3}}}}});
  rows.push_back({"(1,2)(2,1)    [unsolvable]", {2, {{{1}, {2}}, {{2}, {1}}}}});
  rows.push_back({"(11,1)        [unsolvable]", {2, {{{1, 1}, {1}}}}});

  std::printf("\n%-42s | %6s | %6s | %7s | %8s", "instance", "oracle",
              "chase", "rounds", "facts");
  bench::BudgetHeader();
  std::printf("\n-------------------------------------------+--------+--------"
              "+---------+---------+--------------+------------+----------\n");
  for (const Row& row : rows) {
    Workspace ws;
    PcpEncoding enc = BuildPcpEncoding(&ws.arena, &ws.vocab, row.pcp);
    SoTgd rules = enc.HenkinRuleSet(&ws.arena, &ws.vocab);
    ChaseLimits limits;
    limits.max_rounds = 400;
    limits.max_facts = 500000;
    limits.max_term_depth = 40;
    PcpChaseOutcome outcome =
        SemiDecidePcp(&ws.arena, &ws.vocab, enc, rules, limits);
    bool oracle = SolvePcp(row.pcp, 12).has_value();
    std::printf("%-42s | %6d | %6d | %7llu | %8llu", row.name, oracle,
                outcome.solved,
                static_cast<unsigned long long>(outcome.rounds),
                static_cast<unsigned long long>(outcome.facts));
    bench::BudgetColumns(outcome.stop, outcome.budget_steps,
                         outcome.budget_bytes);
    std::printf("\n");
  }

  // Classification check of the showcase encoding.
  {
    Workspace ws;
    PcpEncoding enc =
        BuildPcpEncoding(&ws.arena, &ws.vocab, rows[0].pcp);
    SoTgd rules = enc.HenkinRuleSet(&ws.arena, &ws.vocab);
    std::printf("\nencoding classification: %s; functions: %zu unary; "
                "%zu full tgds + %zu Henkin tgds\n",
                ToString(ClassifyFigure2(ws.arena, rules)).c_str(),
                rules.functions.size(), enc.full_rules.size(),
                enc.henkin_rules.size());
  }

  // Budget growth on the unsolvable instance: no fixpoint, ever.
  {
    std::printf("\nunsolvable (1,2)(2,1): chase growth with the term-depth "
                "budget\n%8s | %10s | %7s\n", "budget", "facts", "stop");
    for (uint32_t depth : {6u, 9u, 12u, 15u, 18u}) {
      Workspace ws;
      PcpInstance pcp{2, {{{1}, {2}}, {{2}, {1}}}};
      PcpEncoding enc = BuildPcpEncoding(&ws.arena, &ws.vocab, pcp);
      SoTgd rules = enc.HenkinRuleSet(&ws.arena, &ws.vocab);
      ChaseLimits limits;
      limits.max_rounds = 100000;
      limits.max_facts = 4000000;
      limits.max_term_depth = depth;
      PcpChaseOutcome outcome =
          SemiDecidePcp(&ws.arena, &ws.vocab, enc, rules, limits);
      std::printf("%8u | %10llu | %7s\n", depth,
                  static_cast<unsigned long long>(outcome.facts),
                  ToString(outcome.stop));
    }
    std::printf("(facts grow without bound as the budget rises — the "
                "semi-decision procedure never converges on 'no')\n");
  }

  // Resource-governor stops on the unsolvable instance: wall-clock
  // deadlines and memory budgets end the run cleanly with a structured
  // reason and a usable partial instance.
  {
    std::printf("\nunsolvable (1,2)(2,1): governed runs (deadline / memory "
                "budget)\n%-22s | %8s", "budget", "facts");
    bench::BudgetHeader();
    std::printf("\n");
    auto run = [](ExecutionBudget budget, const char* label) {
      Workspace ws;
      PcpInstance pcp{2, {{{1}, {2}}, {{2}, {1}}}};
      PcpEncoding enc = BuildPcpEncoding(&ws.arena, &ws.vocab, pcp);
      SoTgd rules = enc.HenkinRuleSet(&ws.arena, &ws.vocab);
      ChaseLimits limits;
      limits.max_rounds = 1u << 30;
      limits.max_facts = 1u << 30;
      limits.max_term_depth = 1u << 20;
      limits.budget = budget;
      PcpChaseOutcome outcome =
          SemiDecidePcp(&ws.arena, &ws.vocab, enc, rules, limits);
      std::printf("%-22s | %8llu", label,
                  static_cast<unsigned long long>(outcome.facts));
      bench::BudgetColumns(outcome.stop, outcome.budget_steps,
                           outcome.budget_bytes);
      std::printf("\n");
    };
    ExecutionBudget b;
    b.deadline_ms = 50;
    run(b, "deadline 50 ms");
    b = ExecutionBudget{};
    b.deadline_ms = 200;
    run(b, "deadline 200 ms");
    b = ExecutionBudget{};
    b.max_memory_bytes = 8ull * 1024 * 1024;
    run(b, "memory 8 MiB");
    b = ExecutionBudget{};
    b.max_steps = 100000;
    run(b, "steps 100k");
    std::printf("(every run exits cleanly with a machine-readable stop "
                "reason; the partial instance stays available)\n");
  }

  // Random corpus: chase vs oracle agreement wherever the chase halts
  // positively or the oracle proves solvable within the bound.
  {
    Rng rng(5005);
    int solvable_agree = 0, solvable_total = 0;
    for (int trial = 0; trial < 10; ++trial) {
      PcpInstance pcp = GeneratePcp(&rng, 2, 2, 2);
      auto oracle = SolvePcp(pcp, 6);
      if (!oracle.has_value()) continue;
      Workspace ws;
      PcpEncoding enc = BuildPcpEncoding(&ws.arena, &ws.vocab, pcp);
      SoTgd rules = enc.HenkinRuleSet(&ws.arena, &ws.vocab);
      ChaseLimits limits;
      limits.max_rounds = 2000;
      limits.max_facts = 2000000;
      limits.max_term_depth = 60;
      PcpChaseOutcome outcome =
          SemiDecidePcp(&ws.arena, &ws.vocab, enc, rules, limits);
      solvable_agree += outcome.solved;
      ++solvable_total;
    }
    std::printf("\nrandom solvable instances: chase found the solution on "
                "%d/%d\n", solvable_agree, solvable_total);
  }
}

void BM_BuildPcpEncoding(benchmark::State& state) {
  Rng rng(5050);
  PcpInstance pcp = GeneratePcp(&rng, 2, static_cast<uint32_t>(state.range(0)), 3);
  for (auto _ : state) {
    Workspace ws;
    benchmark::DoNotOptimize(BuildPcpEncoding(&ws.arena, &ws.vocab, pcp));
  }
}
BENCHMARK(BM_BuildPcpEncoding)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_PcpChaseRound(benchmark::State& state) {
  // Cost of chasing the solvable showcase to its goal.
  PcpInstance pcp{2, {{{1, 2}, {1}}, {{2}, {2, 2}}}};
  for (auto _ : state) {
    Workspace ws;
    PcpEncoding enc = BuildPcpEncoding(&ws.arena, &ws.vocab, pcp);
    SoTgd rules = enc.HenkinRuleSet(&ws.arena, &ws.vocab);
    ChaseLimits limits;
    limits.max_rounds = 200;
    limits.max_facts = 200000;
    PcpChaseOutcome outcome =
        SemiDecidePcp(&ws.arena, &ws.vocab, enc, rules, limits);
    benchmark::DoNotOptimize(outcome.solved);
  }
}
BENCHMARK(BM_PcpChaseRound)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tgdkit

int main(int argc, char** argv) {
  tgdkit::PrintPcpTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
