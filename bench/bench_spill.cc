// E14 — out-of-core spill backend: a chase whose fact store dwarfs the
// memory budget completes under --spill-dir with byte-identical output
// (docs/STORAGE.md). Prints the degradation table (in-core vs. spilled
// under a ~10x-too-small budget), then benchmarks the chase across the
// three residency regimes — in-core (no cap), mixed (cap ~ half the
// store) and cold (cap ~ a few segments) — so CI can gate the overhead
// of the spill path via tools/bench_gate.py (BENCH_chase.json; the
// names carry "Chase" on purpose).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "base/fileio.h"
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "dep/skolem.h"

namespace tgdkit {
namespace {

using bench::Workspace;

constexpr int kRows = 20000;
constexpr int kArity = 8;
constexpr int kRepeat = 64;

/// The spill-pressure workload of tools/gen_spill_workload.py, built
/// in-process: one wide relation of heavily repeated constants and one
/// projection rule, so the store (not the output) carries the weight.
std::vector<Tgd> ProjectionRules(Workspace* ws) {
  RelationId big = ws->vocab.InternRelation("Big", kArity);
  RelationId want = ws->vocab.InternRelation("Want", 1);
  Tgd project;
  std::vector<TermId> body_args, head_args;
  for (int col = 0; col < kArity; ++col) {
    TermId x = ws->arena.MakeVariable(
        ws->vocab.InternVariable("x" + std::to_string(col + 1)));
    body_args.push_back(x);
    if (col == 0) head_args.push_back(x);
  }
  project.body = {Atom{big, body_args}};
  project.head = {Atom{want, head_args}};
  return {project};
}

Instance WideInstance(Workspace* ws, int rows) {
  Instance input(&ws->vocab);
  RelationId big = ws->vocab.InternRelation("Big", kArity);
  std::vector<Value> row_values(kArity);
  for (int row = 0; row < rows; ++row) {
    // Column c holds digit c of `row` base kRepeat: rows are pairwise
    // distinct over a kRepeat-constant vocabulary, so the flat payload,
    // not the symbol table, carries the bytes.
    int x = row;
    for (int col = 0; col < kArity; ++col) {
      row_values[col] = Value::Constant(
          ws->vocab.InternConstant("v" + std::to_string(x % kRepeat)));
      x /= kRepeat;
    }
    input.AddFact(big, row_values);
  }
  return input;
}

/// A scratch spill directory, created once. Segment files are engine-
/// relative and each bench iteration runs one engine at a time, so the
/// directory is safely reused (stale files are overwritten, never read).
const std::string& SpillScratchDir() {
  static const std::string dir = [] {
    std::string d = "/tmp/tgdkit_bench_spill_" + std::to_string(getpid());
    (void)MakeDirectories(d);
    return d;
  }();
  return dir;
}

/// The result's instance borrows `ws->vocab`; the workspace must outlive
/// every use of the returned ChaseResult.
ChaseResult RunTier(Workspace* ws, uint64_t memory_mb, bool spill) {
  SoTgd so = TgdsToSo(&ws->arena, &ws->vocab, ProjectionRules(ws));
  Instance input = WideInstance(ws, kRows);
  ChaseLimits limits;
  limits.budget.max_memory_bytes = memory_mb * 1024 * 1024;
  if (spill) {
    limits.spill_dir = SpillScratchDir();
    limits.spill_segment_kb = 64;
  }
  return Chase(&ws->arena, &ws->vocab, so, input, limits);
}

void PrintDegradationTable() {
  bench::Banner(
      "E14 — graceful degradation under memory pressure",
      "a spilled chase at ~1/10 of the in-core footprint completes with "
      "byte-identical output; the in-core run stops on its budget");
  Workspace ws_gold, ws_starved, ws_spilled;
  ChaseResult unconstrained = RunTier(&ws_gold, 0, false);
  std::string golden = unconstrained.instance.ToExactText();
  std::printf("\n%-26s | %-12s | %10s | %s\n", "configuration", "stop",
              "facts", "identical to unconstrained");
  std::printf("---------------------------+--------------+------------+------"
              "---------------------\n");
  auto report = [&](const char* label, const ChaseResult& result,
                    bool expect_complete) {
    const char* identical = "-";
    if (expect_complete) {
      identical = result.instance.ToExactText() == golden ? "yes" : "NO — BUG";
    }
    std::printf("%-26s | %-12s | %10llu | %s\n", label,
                ToString(result.stop_reason),
                static_cast<unsigned long long>(result.instance.NumFacts()),
                identical);
  };
  report("unconstrained in-core", unconstrained, true);
  ChaseResult starved = RunTier(&ws_starved, 1, false);
  report("1 MiB budget, no spill", starved, false);
  ChaseResult spilled = RunTier(&ws_spilled, 1, true);
  report("1 MiB budget, --spill-dir", spilled, true);
}

void BM_ChaseSpillInCore(benchmark::State& state) {
  // Baseline: the same workload with the spill backend never engaged.
  for (auto _ : state) {
    Workspace ws;
    ChaseResult result = RunTier(&ws, 0, false);
    benchmark::DoNotOptimize(result.facts_created);
  }
}
BENCHMARK(BM_ChaseSpillInCore)->Unit(benchmark::kMillisecond);

void BM_ChaseSpillMixed(benchmark::State& state) {
  // ~Half the store stays hot: seal-time eviction engages, most probes
  // still hit resident payloads.
  for (auto _ : state) {
    Workspace ws;
    ChaseResult result = RunTier(&ws, 2, true);
    benchmark::DoNotOptimize(result.facts_created);
  }
}
BENCHMARK(BM_ChaseSpillMixed)->Unit(benchmark::kMillisecond);

void BM_ChaseSpillCold(benchmark::State& state) {
  // A few segments of headroom: scans continually evict and fault — the
  // worst case the gate bounds.
  for (auto _ : state) {
    Workspace ws;
    ChaseResult result = RunTier(&ws, 1, true);
    benchmark::DoNotOptimize(result.facts_created);
  }
}
BENCHMARK(BM_ChaseSpillCold)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tgdkit

int main(int argc, char** argv) {
  tgdkit::PrintDegradationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
