// E1 — Figure 1: syntactic inclusion between dependency classes in
// Skolemized form. Generates corpora from each class, prints the full
// membership matrix (every lower class must be accepted by every upper
// recognizer), then benchmarks classification throughput.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dep/skolem.h"
#include "dep/syntactic.h"
#include "gen/generators.h"
#include "transform/nested.h"

namespace tgdkit {
namespace {

using bench::Workspace;

struct CorpusRow {
  const char* name;
  int count = 0;
  int tgd = 0, std_henkin = 0, henkin = 0, nested_shape = 0, plain = 0;
};

void Accumulate(const TermArena& arena, const SoTgd& so, CorpusRow* row) {
  Figure1Membership m = ClassifyFigure1(arena, so);
  row->count += 1;
  row->tgd += m.tgd;
  row->std_henkin += m.standard_henkin;
  row->henkin += m.henkin;
  row->nested_shape += m.normalized_nested_shape;
  row->plain += m.plain_so;
}

void PrintMembershipMatrix() {
  bench::Banner("E1 / Figure 1 — syntactic inclusion diagram",
                "tgds < standard Henkin < Henkin < SO; "
                "tgds < normalized nested < SO; all edges hold");
  Rng rng(1001);
  const int kPerClass = 200;

  // Row 1: Skolemized tgds.
  CorpusRow tgds{"tgds"};
  {
    Workspace ws;
    auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
    for (int i = 0; i < kPerClass; ++i) {
      Tgd tgd = GenerateTgd(&ws.arena, &ws.vocab, &rng, relations,
                            TgdConfig{});
      Accumulate(ws.arena, TgdToSo(&ws.arena, &ws.vocab, tgd), &tgds);
    }
  }
  // Row 2: Skolemized Henkin tgds (mixed standard and general).
  CorpusRow henkins{"Henkin tgds"};
  CorpusRow std_henkins{"standard Henkin tgds"};
  {
    Workspace ws;
    auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
    int produced = 0;
    while (produced < kPerClass) {
      HenkinTgd h = GenerateHenkinTgd(&ws.arena, &ws.vocab, &rng, relations,
                                      TgdConfig{});
      SoTgd so = HenkinToSo(&ws.arena, &ws.vocab, h);
      Accumulate(ws.arena, so, &henkins);
      if (h.IsStandard()) Accumulate(ws.arena, so, &std_henkins);
      ++produced;
    }
  }
  // Row 3: normalized nested tgds.
  CorpusRow nesteds{"normalized nested tgds"};
  {
    Workspace ws;
    auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
    for (int i = 0; i < kPerClass; ++i) {
      NestedConfig config;
      config.depth = 1 + static_cast<uint32_t>(rng.Below(3));
      NestedTgd nested = GenerateNestedTgd(&ws.arena, &ws.vocab, &rng,
                                           relations, config);
      Accumulate(ws.arena, NestedToSo(&ws.arena, &ws.vocab, nested),
                 &nesteds);
    }
  }

  std::printf("\n%-24s %7s %6s %10s %7s %7s %6s\n", "corpus (Skolemized)",
              "count", "tgd", "std-henkin", "henkin", "nested", "plain");
  for (const CorpusRow* row :
       {&tgds, &std_henkins, &henkins, &nesteds}) {
    std::printf("%-24s %7d %6d %10d %7d %7d %6d\n", row->name, row->count,
                row->tgd, row->std_henkin, row->henkin, row->nested_shape,
                row->plain);
  }
  std::printf(
      "\nexpected shape: tgd corpus is accepted by ALL recognizers (bottom\n"
      "of the diagram); standard Henkin corpus fully accepted by henkin and\n"
      "plain; Henkin corpus fully henkin+plain but only partially standard;\n"
      "nested corpus fully nested-shape+plain but only partially henkin\n"
      "(functions quantified over several parts fall outside Henkin tgds).\n");
}

void BM_ClassifyTgd(benchmark::State& state) {
  Workspace ws;
  Rng rng(77);
  auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  std::vector<SoTgd> corpus;
  for (int i = 0; i < 64; ++i) {
    corpus.push_back(TgdToSo(
        &ws.arena, &ws.vocab,
        GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{})));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ClassifyFigure1(ws.arena, corpus[i++ % corpus.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifyTgd);

void BM_ClassifyNormalizedNested(benchmark::State& state) {
  Workspace ws;
  Rng rng(78);
  auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  std::vector<SoTgd> corpus;
  for (int i = 0; i < 32; ++i) {
    NestedConfig config;
    config.depth = static_cast<uint32_t>(state.range(0));
    corpus.push_back(NestedToSo(
        &ws.arena, &ws.vocab,
        GenerateNestedTgd(&ws.arena, &ws.vocab, &rng, relations, config)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ClassifyFigure1(ws.arena, corpus[i++ % corpus.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifyNormalizedNested)->Arg(2)->Arg(4);

}  // namespace
}  // namespace tgdkit

int main(int argc, char** argv) {
  tgdkit::PrintMembershipMatrix();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
