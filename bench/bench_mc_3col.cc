// E6 — Theorem 6.1: model checking for Henkin tgds is NP-complete in data
// complexity (reduction from 3-colorability). Prints the oracle-agreement
// and data-scaling table, then benchmarks the second-order search as the
// instance grows (the query — one standard Henkin tgd — stays fixed).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "gen/generators.h"
#include "mc/model_check.h"
#include "reduce/three_col.h"

namespace tgdkit {
namespace {

using bench::Workspace;

void PrintThreeColTable() {
  bench::Banner(
      "E6 / Theorem 6.1 — Henkin tgd model checking, data complexity",
      "NP-complete in data complexity; hardness via 3-colorability with a "
      "single fixed s-t standard Henkin tgd");

  Rng rng(6006);
  std::printf("\n%9s | %7s | %7s | %7s | %10s\n", "vertices", "checked",
              "agree", "3-col", "avg branch");
  std::printf("----------+---------+---------+---------+------------\n");
  for (uint32_t n : {4u, 5u, 6u, 7u, 8u}) {
    int agree = 0, total = 0, colorable = 0;
    uint64_t branches = 0;
    for (int trial = 0; trial < 12; ++trial) {
      Workspace ws;
      Graph g = GenerateGraph(&rng, n, 45);
      ThreeColReduction red =
          BuildThreeColReduction(&ws.arena, &ws.vocab, g);
      McResult mc =
          CheckHenkin(&ws.arena, &ws.vocab, red.instance, red.sigma);
      if (mc.budget_exceeded) continue;
      bool oracle = ThreeColorable(g);
      agree += (mc.satisfied == oracle);
      colorable += oracle;
      branches += mc.branches;
      ++total;
    }
    std::printf("%9u | %7d | %7d | %7d | %10.0f\n", n, total, agree,
                colorable, total ? double(branches) / total : 0.0);
  }
  std::printf("\nexpected shape: full agreement with the brute-force "
              "oracle; branch counts grow with the graph (NP-ness shows in "
              "the worst case, pruning keeps the average low).\n");
}

void BM_ThreeColMc(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(6060 + n);
  Workspace ws;
  Graph g = GenerateGraph(&rng, n, 45);
  ThreeColReduction red = BuildThreeColReduction(&ws.arena, &ws.vocab, g);
  for (auto _ : state) {
    McResult mc =
        CheckHenkin(&ws.arena, &ws.vocab, red.instance, red.sigma);
    benchmark::DoNotOptimize(mc.satisfied);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ThreeColMc)->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_ThreeColOracle(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(6061 + n);
  Graph g = GenerateGraph(&rng, n, 45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ThreeColorable(g));
  }
}
BENCHMARK(BM_ThreeColOracle)->Arg(4)->Arg(8)->Arg(12);

void BM_BuildThreeColReduction(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(6062 + n);
  Graph g = GenerateGraph(&rng, n, 45);
  for (auto _ : state) {
    Workspace ws;
    benchmark::DoNotOptimize(
        BuildThreeColReduction(&ws.arena, &ws.vocab, g));
  }
}
BENCHMARK(BM_BuildThreeColReduction)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tgdkit

int main(int argc, char** argv) {
  tgdkit::PrintThreeColTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
