// E4 — Figure 2, the decidable side of the border:
//  * weak acyclicity guarantees chase termination (hence decidable query
//    answering) "even for SO tgds" — demonstrated on generated weakly
//    acyclic rule sets and on an SO tgd with function symbols;
//  * linear Henkin tgds over a FIXED schema admit decidable atomic query
//    answering (Proposition 5.3) — demonstrated by a bounded chase whose
//    term depth is capped by the fixed schema's reachable-state analysis.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "classify/criteria.h"
#include "dep/skolem.h"
#include "gen/generators.h"
#include "query/query.h"

namespace tgdkit {
namespace {

using bench::Workspace;

void PrintDecidableTable() {
  bench::Banner(
      "E4 / Figure 2 (decidable side) — weak acyclicity terminates",
      "weak acyclicity guarantees decidable query answering even for SO "
      "tgds; linear Henkin tgds are decidable for fixed schemas");

  // Generated corpus: every weakly acyclic set must reach a fixpoint.
  Rng rng(4004);
  int generated = 0, weakly_acyclic = 0, terminated = 0;
  uint64_t total_rounds = 0, total_facts = 0;
  while (weakly_acyclic < 60 && generated < 3000) {
    Workspace ws;
    auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
    std::vector<Tgd> tgds;
    for (int i = 0; i < 3; ++i) {
      tgds.push_back(GenerateTgd(&ws.arena, &ws.vocab, &rng, relations,
                                 TgdConfig{}));
    }
    SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
    ++generated;
    if (!IsWeaklyAcyclic(ws.arena, so)) continue;
    ++weakly_acyclic;
    Instance input(&ws.vocab);
    GenerateInstance(&ws.vocab, &rng, relations, 15, 4, 0, &input);
    ChaseLimits limits;
    limits.max_rounds = 100000;
    limits.max_facts = 2000000;
    limits.max_term_depth = 100000;
    ChaseResult result = Chase(&ws.arena, &ws.vocab, so, input, limits);
    terminated += result.Terminated();
    total_rounds += result.rounds;
    total_facts += result.instance.NumFacts();
  }
  std::printf("\ngenerated %d random 3-tgd sets; %d weakly acyclic;\n"
              "chase reached a fixpoint on %d/%d of them "
              "(avg %.1f rounds, %.0f facts)\n",
              generated, weakly_acyclic, terminated, weakly_acyclic,
              double(total_rounds) / weakly_acyclic,
              double(total_facts) / weakly_acyclic);

  // An SO tgd with genuine function sharing, still weakly acyclic.
  {
    Workspace ws;
    FunctionId fdm = ws.vocab.InternFunction("fdm", 1);
    RelationId emp = ws.vocab.InternRelation("Emp", 2);
    RelationId mgr = ws.vocab.InternRelation("Mgr", 2);
    TermId e = ws.arena.MakeVariable(ws.vocab.InternVariable("e"));
    TermId d = ws.arena.MakeVariable(ws.vocab.InternVariable("d"));
    SoTgd so;
    so.functions = {fdm};
    SoPart part;
    part.body = {Atom{emp, {e, d}}};
    part.head = {Atom{mgr, {e, ws.arena.MakeFunction(
                                   fdm, std::vector<TermId>{d})}}};
    so.parts = {part};
    std::printf("\nSO tgd 'Emp(e,d) -> Mgr(e, fdm(d))': weakly acyclic = %d",
                IsWeaklyAcyclic(ws.arena, so));
    Instance input(&ws.vocab);
    std::vector<Value> depts;
    for (int i = 0; i < 50; ++i) {
      Value dv = Value::Constant(
          ws.vocab.InternConstant("d" + std::to_string(i % 10)));
      Value ev = Value::Constant(
          ws.vocab.InternConstant("e" + std::to_string(i)));
      input.AddFact(emp, std::vector<Value>{ev, dv});
    }
    ChaseResult result = Chase(&ws.arena, &ws.vocab, so, input);
    std::printf(", chase fixpoint = %d, Mgr facts = %zu (10 shared "
                "manager nulls)\n",
                result.Terminated(), result.instance.NumTuples(mgr));
  }

  // Fixed-schema linear Henkin decidability (Proposition 5.3): with the
  // schema fixed, the chase of a linear Henkin tgd set visits boundedly
  // many fact shapes up to term depth |states| — a bounded chase decides
  // atomic queries.
  {
    Workspace ws;
    RelationId p = ws.vocab.InternRelation("LP", 1);
    RelationId q = ws.vocab.InternRelation("LQ", 1);
    FunctionId f = ws.vocab.InternFunction("lf", 1);
    TermId x = ws.arena.MakeVariable(ws.vocab.InternVariable("x"));
    SoTgd so;
    so.functions = {f};
    SoPart grow;  // LP(x) -> LQ(lf(x))
    grow.body = {Atom{p, {x}}};
    grow.head = {Atom{q, {ws.arena.MakeFunction(f, std::vector<TermId>{x})}}};
    so.parts = {grow};
    Figure2Membership m = ClassifyFigure2(ws.arena, so);
    Instance input(&ws.vocab);
    input.AddFact(p, std::vector<Value>{
                         Value::Constant(ws.vocab.InternConstant("c"))});
    ChaseResult result = Chase(&ws.arena, &ws.vocab, so, input);
    std::printf("\nlinear Henkin tgd 'LP(x) -> LQ(lf(x))' over the fixed "
                "schema {LP, LQ}:\n  classification: %s\n"
                "  chase fixpoint=%d with %zu facts — atomic queries "
                "decided by inspection (Proposition 5.3)\n",
                ToString(m).c_str(), result.Terminated(),
                result.instance.NumFacts());
  }
}

void BM_WeaklyAcyclicCheck(benchmark::State& state) {
  Workspace ws;
  Rng rng(4040);
  auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  std::vector<SoTgd> corpus;
  for (int i = 0; i < 64; ++i) {
    std::vector<Tgd> tgds;
    for (int j = 0; j < 3; ++j) {
      tgds.push_back(GenerateTgd(&ws.arena, &ws.vocab, &rng, relations,
                                 TgdConfig{}));
    }
    corpus.push_back(TgdsToSo(&ws.arena, &ws.vocab, tgds));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IsWeaklyAcyclic(ws.arena, corpus[i++ % corpus.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WeaklyAcyclicCheck);

void BM_StickyCheck(benchmark::State& state) {
  Workspace ws;
  Rng rng(4041);
  auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  std::vector<SoTgd> corpus;
  for (int i = 0; i < 64; ++i) {
    std::vector<Tgd> tgds;
    for (int j = 0; j < 3; ++j) {
      tgds.push_back(GenerateTgd(&ws.arena, &ws.vocab, &rng, relations,
                                 TgdConfig{}));
    }
    corpus.push_back(TgdsToSo(&ws.arena, &ws.vocab, tgds));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsSticky(ws.arena, corpus[i++ % corpus.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StickyCheck);

void BM_WeaklyAcyclicChase(benchmark::State& state) {
  // Chase cost on a weakly acyclic ancestry ruleset, scaling in input size.
  uint32_t people = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    Workspace ws;
    RelationId person = ws.vocab.InternRelation("Person", 1);
    RelationId parent = ws.vocab.InternRelation("Parent", 2);
    RelationId anc = ws.vocab.InternRelation("Anc", 2);
    VariableId xv = ws.vocab.InternVariable("x");
    VariableId yv = ws.vocab.InternVariable("y");
    VariableId zv = ws.vocab.InternVariable("z");
    TermId x = ws.arena.MakeVariable(xv);
    TermId y = ws.arena.MakeVariable(yv);
    TermId z = ws.arena.MakeVariable(zv);
    Tgd mk;
    mk.body = {Atom{person, {x}}};
    mk.head = {Atom{parent, {x, y}}};
    mk.exist_vars = {yv};
    Tgd base;
    base.body = {Atom{parent, {x, y}}};
    base.head = {Atom{anc, {x, y}}};
    Tgd trans;
    trans.body = {Atom{anc, {x, y}}, Atom{anc, {y, z}}};
    trans.head = {Atom{anc, {x, z}}};
    std::vector<Tgd> tgds{mk, base, trans};
    SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
    Instance input(&ws.vocab);
    for (uint32_t i = 0; i < people; ++i) {
      input.AddFact(person,
                    std::vector<Value>{Value::Constant(ws.vocab.InternConstant(
                        "p" + std::to_string(i)))});
    }
    ChaseResult result = Chase(&ws.arena, &ws.vocab, so, input);
    benchmark::DoNotOptimize(result.instance.NumFacts());
  }
}
BENCHMARK(BM_WeaklyAcyclicChase)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tgdkit

int main(int argc, char** argv) {
  tgdkit::PrintDecidableTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
