// E2 — Figure 3 / Theorem 4.3: nested tgds convert into logically
// equivalent tree Henkin tgds (Algorithm 2), but while nested-to-so
// (Algorithm 1) is linear, nested-to-henkin blows up non-elementarily in
// the nesting depth. Prints the blow-up table on chain-shaped nested tgds
// and the equivalence spot-check, then benchmarks both algorithms.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dep/skolem.h"
#include "gen/generators.h"
#include "mc/model_check.h"
#include "transform/nested.h"

namespace tgdkit {
namespace {

using bench::ChainNested;
using bench::Workspace;

void PrintBlowupTable() {
  bench::Banner(
      "E2 / Figure 3, Theorem 4.3 — the blow-up trade-off",
      "nested-to-so: linear; nested-to-henkin: non-elementary in depth");
  std::printf("\n%5s | %13s | %15s | %18s\n", "depth", "Alg.1 parts",
              "Alg.1 atoms", "Alg.2 Henkin tgds");
  std::printf("------+---------------+-----------------+-------------------\n");
  for (uint32_t depth = 1; depth <= 6; ++depth) {
    Workspace ws;
    NestedTgd nested = ChainNested(&ws, depth);
    SoTgd so = NestedToSo(&ws.arena, &ws.vocab, nested);
    size_t atoms = 0;
    for (const SoPart& part : so.parts) {
      atoms += part.body.size() + part.head.size();
    }
    size_t henkin_count = NestedToHenkinRuleCount(nested);
    if (henkin_count == SIZE_MAX) {
      std::printf("%5u | %13zu | %15zu | %18s\n", depth, so.parts.size(),
                  atoms, "> 2^63");
    } else {
      std::printf("%5u | %13zu | %15zu | %18zu\n", depth, so.parts.size(),
                  atoms, henkin_count);
    }
  }

  // Materialized sizes for the depths that fit.
  std::printf("\nmaterialized Algorithm 2 output:\n");
  std::printf("%5s | %11s | %17s\n", "depth", "rules", "total body atoms");
  for (uint32_t depth = 1; depth <= 5; ++depth) {
    Workspace ws;
    NestedTgd nested = ChainNested(&ws, depth);
    bool overflow = false;
    std::vector<HenkinTgd> henkins = NestedToHenkin(
        &ws.arena, &ws.vocab, nested, /*max_rules=*/1u << 17, &overflow);
    if (overflow) {
      std::printf("%5u | %11s | %17s\n", depth, "overflow", "-");
      continue;
    }
    size_t atoms = 0;
    for (const HenkinTgd& h : henkins) atoms += h.body.size();
    std::printf("%5u | %11zu | %17zu\n", depth, henkins.size(), atoms);
  }

  // Theorem 4.3 equivalence spot-check on random instances.
  std::printf("\nequivalence spot-check (Theorem 4.3): ");
  Rng rng(2002);
  Workspace ws;
  NestedTgd nested = ChainNested(&ws, 3);
  SoTgd so = NestedToSo(&ws.arena, &ws.vocab, nested);
  std::vector<HenkinTgd> henkins =
      NestedToHenkin(&ws.arena, &ws.vocab, nested);
  std::vector<RelationId> relations;
  for (uint32_t level = 1; level <= 3; ++level) {
    relations.push_back(
        ws.vocab.FindRelation("BIn" + std::to_string(level)));
    relations.push_back(
        ws.vocab.FindRelation("BOut" + std::to_string(level)));
  }
  int agree = 0, total = 0, holds = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Instance inst(&ws.vocab);
    GenerateInstance(&ws.vocab, &rng, relations, 12, 3, 1, &inst);
    bool a = CheckNested(ws.arena, inst, nested);
    bool b = CheckSo(ws.arena, inst, so).satisfied;
    bool c = CheckHenkins(&ws.arena, &ws.vocab, inst, henkins).satisfied;
    agree += (a == b && b == c);
    holds += a;
    ++total;
  }
  std::printf("%d/%d instances agree across all three forms (%d satisfied)\n",
              agree, total, holds);
}

void BM_NestedToSo(benchmark::State& state) {
  Workspace ws;
  NestedTgd nested =
      ChainNested(&ws, static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NestedToSo(&ws.arena, &ws.vocab, nested));
  }
}
BENCHMARK(BM_NestedToSo)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_NestedToHenkin(benchmark::State& state) {
  Workspace ws;
  NestedTgd nested =
      ChainNested(&ws, static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    bool overflow = false;
    benchmark::DoNotOptimize(NestedToHenkin(&ws.arena, &ws.vocab, nested,
                                            1u << 17, &overflow));
  }
}
BENCHMARK(BM_NestedToHenkin)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tgdkit

int main(int argc, char** argv) {
  tgdkit::PrintBlowupTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
