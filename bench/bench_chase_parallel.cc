// E11 — parallel chase rounds: staged trigger matching over indexed
// candidate slices, fanned across a thread pool with a deterministic
// merge (docs/PARALLELISM.md). Prints the determinism spot-check (the
// 4-lane run must be byte-identical to the serial run), then benchmarks
// the chase engines at 1 and 4 lanes plus the matcher micro-kernel the
// rounds are built from. CI gates on these timings via
// tools/bench_gate.py (BENCH_chase.json).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "dep/skolem.h"
#include "homo/matcher.h"
#include "reduce/pcp.h"

namespace tgdkit {
namespace {

using bench::Workspace;

/// Transitive closure over a path: wide, regular rounds (the blow-up is
/// quadratic, the matching cost dominated by the two-atom join).
std::vector<Tgd> ClosureRules(Workspace* ws) {
  auto V = [&](const char* n) {
    return ws->arena.MakeVariable(ws->vocab.InternVariable(n));
  };
  RelationId e = ws->vocab.InternRelation("E", 2);
  Tgd trans;
  trans.body = {Atom{e, {V("x"), V("y")}}, Atom{e, {V("y"), V("z")}}};
  trans.head = {Atom{e, {V("x"), V("z")}}};
  return {trans};
}

/// Diverging blow-up: every edge spawns a fresh successor edge while
/// transitive closure keeps relating them; capped by max_rounds so each
/// iteration does a fixed amount of work.
SoTgd BlowupRules(Workspace* ws) {
  auto V = [&](const char* n) {
    return ws->arena.MakeVariable(ws->vocab.InternVariable(n));
  };
  RelationId e = ws->vocab.InternRelation("E", 2);
  FunctionId f = ws->vocab.InternFunction("succ", 2);
  SoTgd so;
  so.functions = {f};
  SoPart trans;
  trans.body = {Atom{e, {V("x"), V("y")}}, Atom{e, {V("y"), V("z")}}};
  trans.head = {Atom{e, {V("x"), V("z")}}};
  SoPart grow;
  grow.body = {Atom{e, {V("x"), V("y")}}};
  std::vector<TermId> succ_args = {V("x"), V("y")};
  grow.head = {Atom{e, {V("y"), ws->arena.MakeFunction(f, succ_args)}}};
  so.parts = {trans, grow};
  return so;
}

Instance PathInstance(Workspace* ws, int nodes) {
  Instance input(&ws->vocab);
  RelationId e = ws->vocab.InternRelation("E", 2);
  for (int i = 0; i + 1 < nodes; ++i) {
    input.AddFact(e, std::vector<Value>{
                         Value::Constant(ws->vocab.InternConstant(
                             "n" + std::to_string(i))),
                         Value::Constant(ws->vocab.InternConstant(
                             "n" + std::to_string(i + 1)))});
  }
  return input;
}

/// The Figure 4 unsolvable showcase (1,2)(2,1): the chase never reaches
/// a fixpoint, so a term-depth budget fixes the work per iteration.
PcpInstance UnsolvablePcp() {
  return PcpInstance{2, {{{1}, {2}}, {{2}, {1}}}};
}

void PrintParallelTable() {
  bench::Banner(
      "E11 — parallel chase rounds, deterministic merge",
      "any --threads value is byte-identical; lanes only change wall-clock");
  std::printf("\n%-22s | %7s | %8s | %10s | %s\n", "workload", "threads",
              "rounds", "facts", "identical to serial");
  std::printf("-----------------------+---------+----------+------------+---"
              "-----------------\n");
  for (uint32_t threads : {1u, 4u}) {
    Workspace ws;
    SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, ClosureRules(&ws));
    Instance input = PathInstance(&ws, 64);
    ChaseLimits limits;
    limits.threads = threads;
    ChaseEngine engine(&ws.arena, &ws.vocab, so, input, limits);
    engine.Run();
    static std::string serial_text;
    std::string text = engine.instance().ToExactText();
    if (threads == 1) serial_text = text;
    std::printf("%-22s | %7u | %8llu | %10llu | %s\n", "closure/path64",
                threads, static_cast<unsigned long long>(engine.rounds()),
                static_cast<unsigned long long>(engine.facts_created()),
                text == serial_text ? "yes" : "NO — BUG");
  }
}

void BM_ChaseClosure(benchmark::State& state) {
  for (auto _ : state) {
    Workspace ws;
    SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, ClosureRules(&ws));
    Instance input = PathInstance(&ws, 96);
    ChaseLimits limits;
    limits.threads = static_cast<uint32_t>(state.range(0));
    ChaseResult result = Chase(&ws.arena, &ws.vocab, so, input, limits);
    benchmark::DoNotOptimize(result.facts_created);
  }
}
BENCHMARK(BM_ChaseClosure)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ChaseBlowup(benchmark::State& state) {
  for (auto _ : state) {
    Workspace ws;
    SoTgd so = BlowupRules(&ws);
    Instance input = PathInstance(&ws, 12);
    ChaseLimits limits;
    limits.threads = static_cast<uint32_t>(state.range(0));
    limits.max_rounds = 7;
    limits.max_facts = 2000000;
    ChaseResult result = Chase(&ws.arena, &ws.vocab, so, input, limits);
    benchmark::DoNotOptimize(result.facts_created);
  }
}
BENCHMARK(BM_ChaseBlowup)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ChasePcp(benchmark::State& state) {
  // Fixed-budget semi-decision run on an unsolvable instance (the chase
  // always burns the full round budget — constant work per iteration).
  PcpInstance pcp = UnsolvablePcp();
  for (auto _ : state) {
    Workspace ws;
    PcpEncoding enc = BuildPcpEncoding(&ws.arena, &ws.vocab, pcp);
    SoTgd rules = enc.HenkinRuleSet(&ws.arena, &ws.vocab);
    ChaseLimits limits;
    limits.threads = static_cast<uint32_t>(state.range(0));
    limits.max_rounds = 60;
    limits.max_facts = 500000;
    limits.max_term_depth = 80;
    PcpChaseOutcome outcome =
        SemiDecidePcp(&ws.arena, &ws.vocab, enc, rules, limits);
    benchmark::DoNotOptimize(outcome.facts);
  }
}
BENCHMARK(BM_ChasePcp)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ChaseRestricted(benchmark::State& state) {
  for (auto _ : state) {
    Workspace ws;
    std::vector<Tgd> tgds = ClosureRules(&ws);
    Instance input = PathInstance(&ws, 72);
    ChaseLimits limits;
    limits.threads = static_cast<uint32_t>(state.range(0));
    ChaseResult result =
        RestrictedChaseTgds(&ws.arena, &ws.vocab, tgds, input, limits);
    benchmark::DoNotOptimize(result.facts_created);
  }
}
BENCHMARK(BM_ChaseRestricted)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MatcherTriangleJoin(benchmark::State& state) {
  // The micro-kernel under every round: a three-way join through the
  // per-position posting lists (with intersection) on a random digraph.
  Workspace ws;
  Instance inst(&ws.vocab);
  RelationId e = ws.vocab.InternRelation("E", 2);
  Rng rng(4242);
  const uint32_t kNodes = 160, kEdges = 2000;
  for (uint32_t i = 0; i < kEdges; ++i) {
    std::string a = "v" + std::to_string(rng.Below(kNodes));
    std::string b = "v" + std::to_string(rng.Below(kNodes));
    inst.AddFact(e, std::vector<Value>{
                        Value::Constant(ws.vocab.InternConstant(a)),
                        Value::Constant(ws.vocab.InternConstant(b))});
  }
  auto V = [&](const char* n) {
    return ws.arena.MakeVariable(ws.vocab.InternVariable(n));
  };
  std::vector<Atom> atoms{Atom{e, {V("x"), V("y")}},
                          Atom{e, {V("y"), V("z")}},
                          Atom{e, {V("z"), V("x")}}};
  Matcher matcher(&ws.arena, &inst, atoms);
  for (auto _ : state) {
    size_t count =
        matcher.ForEach({}, [](const Assignment&) { return true; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_MatcherTriangleJoin)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tgdkit

int main(int argc, char** argv) {
  tgdkit::PrintParallelTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
