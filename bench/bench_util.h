// Shared helpers for the experiment benchmarks. Each bench binary first
// prints the deterministic "experiment table" that reproduces its paper
// artifact (see DESIGN.md §4 and EXPERIMENTS.md), then runs
// google-benchmark timings for the operations involved.
#pragma once

#include <cstdio>
#include <string>

#include "base/budget.h"
#include "base/rng.h"
#include "data/instance.h"
#include "dep/dependency.h"
#include "term/term.h"

namespace tgdkit::bench {

/// One vocabulary + arena per benchmark workspace.
struct Workspace {
  Vocabulary vocab;
  TermArena arena;
};

/// Builds a chain-shaped nested tgd of the given depth:
///   In1(x1) -> ∃y1 Out1(x1,y1) ∧ [ In2(x2) -> ∃y2 Out2(x2,y2) ∧ [...] ].
inline NestedTgd ChainNested(Workspace* ws, uint32_t depth,
                             const std::string& tag = "") {
  NestedTgd nested;
  NestedNode* cursor = nullptr;
  for (uint32_t level = 1; level <= depth; ++level) {
    NestedNode node;
    std::string i = tag + std::to_string(level);
    VariableId x = ws->vocab.InternVariable("bx" + i);
    VariableId y = ws->vocab.InternVariable("by" + i);
    RelationId rin = ws->vocab.InternRelation("BIn" + i, 1);
    RelationId rout = ws->vocab.InternRelation("BOut" + i, 2);
    node.univ_vars = {x};
    node.body = {Atom{rin, {ws->arena.MakeVariable(x)}}};
    node.exist_vars = {y};
    node.head_atoms = {
        Atom{rout, {ws->arena.MakeVariable(x), ws->arena.MakeVariable(y)}}};
    if (cursor == nullptr) {
      nested.root = std::move(node);
      cursor = &nested.root;
    } else {
      cursor->children.push_back(std::move(node));
      cursor = &cursor->children[0];
    }
  }
  return nested;
}

/// Header for the governor-telemetry columns printed by BudgetColumns.
/// Call once before the rows, after the experiment-specific columns.
inline void BudgetHeader() {
  std::printf(" | %-12s | %10s | %9s", "stop", "steps", "MiB");
}

/// One row of governor telemetry: the structured stop reason, steps
/// polled, and bytes observed at the last slow-path sample.
inline void BudgetColumns(StopReason stop, uint64_t steps, uint64_t bytes) {
  std::printf(" | %-12s | %10llu | %9.2f", ToString(stop),
              static_cast<unsigned long long>(steps),
              static_cast<double>(bytes) / (1024.0 * 1024.0));
}

/// Section header for the experiment tables.
inline void Banner(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace tgdkit::bench
