#!/usr/bin/env python3
"""Generates a chase workload whose instance dwarfs a small memory budget.

Emits two files — DEPS (one projection tgd) and INSTANCE — shaped so the
fact store, not the term arena or the matcher, dominates memory:

  * one wide relation `Big` of arity A (default 9) with N rows
    (default 60000) of heavily repeated constants (R distinct values per
    column, default 128): wide rows make the flat fact payload large
    while the shared vocabulary stays tiny, which is exactly the shape
    the spill backend's sealed segments absorb;
  * the single rule `Big(x1, ..., xA) -> Want(x1) .` so the chase has
    real matching work over the big relation but creates few new facts
    (at most R), keeping the run's live-set pressure on the INPUT facts.

Row contents are a deterministic function of (row, column, R) — no RNG —
so every invocation with the same arguments writes byte-identical files
and the CI degradation job can diff chase outputs across budgets.

Stdlib only.

Usage:
  tools/gen_spill_workload.py --out-deps spill.tgd --out-instance spill.facts
                              [--rows N] [--arity A] [--repeat R]
"""

import argparse
import sys


def write_deps(path, arity):
    xs = ", ".join(f"x{i + 1}" for i in range(arity))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"Big({xs}) -> Want(x1) .\n")


def write_instance(path, rows, arity, repeat):
    with open(path, "w", encoding="utf-8") as fh:
        for row in range(rows):
            # Column c holds digit c of `row` in base `repeat`: tuples are
            # pairwise distinct (they spell the row number) while the
            # vocabulary stays at `repeat` constants, so the flat fact
            # payload — not the symbol table — carries the bytes.
            digits = []
            x = row
            for _ in range(arity):
                digits.append(f"v{x % repeat}")
                x //= repeat
            fh.write(f"Big({', '.join(digits)}) .\n")


def main(argv):
    parser = argparse.ArgumentParser(
        description="generate a spill-pressure chase workload"
    )
    parser.add_argument("--out-deps", required=True)
    parser.add_argument("--out-instance", required=True)
    parser.add_argument("--rows", type=int, default=60000)
    parser.add_argument("--arity", type=int, default=9)
    parser.add_argument("--repeat", type=int, default=128)
    args = parser.parse_args(argv)
    if args.rows <= 0 or args.arity <= 0 or args.repeat <= 0:
        parser.error("--rows, --arity and --repeat must be positive")
    write_deps(args.out_deps, args.arity)
    write_instance(args.out_instance, args.rows, args.arity, args.repeat)
    print(
        f"gen_spill_workload: wrote {args.rows} rows of arity {args.arity} "
        f"({args.repeat} distinct values/column) to {args.out_instance}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
