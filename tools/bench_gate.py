#!/usr/bin/env python3
"""Benchmark regression gate for the chase/matcher/serve/analyze lanes.

Compares a fresh Google Benchmark JSON report (--benchmark_format=json)
against the committed baseline (BENCH_chase.json, BENCH_spill.json,
BENCH_serve.json or BENCH_analyze.json). Fails (exit 1) when any gated
benchmark — one whose name contains "chase", "matcher", "serve" or
"analyze", case-insensitively — regressed by more than the threshold in
real_time.

Also prints the parallel speedup table for benchmarks that carry a
threads argument (name suffix "/1" vs "/4"), since that is the number
the parallel-rounds work is gated on in CI.

Stdlib only. Tolerant by design: a missing, empty, or malformed baseline
passes with a notice (first run on a new machine has nothing to gate
against); only benchmarks present in BOTH reports are compared.

Usage:
  tools/bench_gate.py --current report.json [--baseline BENCH_chase.json]
                      [--threshold 0.20] [--min-speedup 0]
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Returns {name: real_time_ns} for a Google Benchmark JSON file,
    or None when the file is unusable."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"bench_gate: cannot read {path}: {exc}")
        return None
    out = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name")
        time = bench.get("real_time")
        # Skip aggregate rows (mean/median/stddev) — gate on raw runs.
        if name is None or time is None or bench.get("run_type") == "aggregate":
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
        out[name] = float(time) * scale
    return out


def gated(name):
    lowered = name.lower()
    return ("chase" in lowered or "matcher" in lowered
            or "serve" in lowered or "analyze" in lowered)


def speedup_table(current):
    """Pairs .../1 with .../4 rows and prints the 4-lane speedup."""
    rows = []
    for name, t1 in sorted(current.items()):
        if not name.endswith("/1"):
            continue
        t4 = current.get(name[:-2] + "/4")
        if t4 and t4 > 0:
            rows.append((name[:-2], t1 / t4))
    if rows:
        print("\nparallel speedup (threads=4 vs threads=1, real time):")
        for base, ratio in rows:
            print(f"  {base:<40} {ratio:5.2f}x")
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="fresh benchmark JSON report")
    parser.add_argument("--baseline", default="BENCH_chase.json",
                        help="committed baseline JSON (default: %(default)s)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max allowed relative slowdown (default: 20%%)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="required threads=4 speedup on gated "
                             "benchmarks; 0 disables (default)")
    args = parser.parse_args()

    current = load_benchmarks(args.current)
    if current is None or not current:
        print("bench_gate: FAIL — current report is missing or empty")
        return 1

    rows = speedup_table(current)

    failures = []
    if args.min_speedup > 0:
        gated_rows = [(b, r) for b, r in rows if gated(b)]
        if not gated_rows:
            failures.append("no threaded chase/matcher benchmarks found "
                            "to check --min-speedup against")
        for base, ratio in gated_rows:
            if ratio < args.min_speedup:
                failures.append(
                    f"{base}: threads=4 speedup {ratio:.2f}x is below the "
                    f"required {args.min_speedup:.2f}x")

    baseline = load_benchmarks(args.baseline)
    if baseline is None or not baseline:
        print("bench_gate: no usable baseline — skipping regression "
              "comparison (this is expected on the first run)")
    else:
        compared = 0
        print(f"\nregression check vs {args.baseline} "
              f"(threshold {args.threshold:.0%}):")
        for name in sorted(current):
            if not gated(name) or name not in baseline:
                continue
            compared += 1
            before, after = baseline[name], current[name]
            change = (after - before) / before if before > 0 else 0.0
            marker = "REGRESSED" if change > args.threshold else "ok"
            print(f"  {name:<40} {before/1e6:9.2f}ms -> {after/1e6:9.2f}ms "
                  f"({change:+7.1%})  {marker}")
            if change > args.threshold:
                failures.append(
                    f"{name}: {change:+.1%} slower than baseline "
                    f"(threshold {args.threshold:.0%})")
        if compared == 0:
            print("  (no overlapping chase/matcher benchmarks to compare)")

    if failures:
        print("\nbench_gate: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbench_gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
