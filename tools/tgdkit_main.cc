// The tgdkit command-line tool. All logic lives in src/cli (testable);
// this file only adapts argv and wires SIGINT/SIGTERM to cooperative
// cancellation: the first signal asks the engines to stop cleanly
// (partial output, StopReason::kCancelled, and — with --checkpoint — a
// final snapshot); a second falls back to the default disposition and
// kills the process. The same wiring runs in every forked batch worker
// (src/supervise/worker.cc), so a supervisor SIGTERM always starts with
// a graceful stop.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  tgdkit::InstallCancellationSignalHandlers();
  std::vector<std::string> args(argv + 1, argv + argc);
  return tgdkit::RunCli(args, std::cout, std::cerr);
}
