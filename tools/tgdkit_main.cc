// The tgdkit command-line tool. All logic lives in src/cli (testable);
// this file only adapts argv.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return tgdkit::RunCli(args, std::cout, std::cerr);
}
