// The tgdkit command-line tool. All logic lives in src/cli (testable);
// this file only adapts argv and wires SIGINT/SIGTERM to cooperative
// cancellation: the first signal asks the engines to stop cleanly
// (partial output, StopReason::kCancelled, and — with --checkpoint — a
// final snapshot); a second falls back to the default disposition and
// kills the process.
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

namespace {

extern "C" void HandleInterrupt(int signum) {
  // Cancel() is a relaxed atomic store: async-signal-safe.
  tgdkit::GlobalCancellationToken().Cancel();
  std::signal(signum, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
  // Force the token's construction now, so the handler never triggers a
  // first-use static initialization (which would allocate) in signal
  // context.
  tgdkit::GlobalCancellationToken();
  std::signal(SIGINT, HandleInterrupt);
  std::signal(SIGTERM, HandleInterrupt);
  std::vector<std::string> args(argv + 1, argv + argc);
  return tgdkit::RunCli(args, std::cout, std::cerr);
}
