// The tgdkit command-line tool. All logic lives in src/api + src/cli
// (testable); this file only adapts argv. CliMain wires SIGINT/SIGTERM
// to cooperative cancellation (first signal asks the engines to stop
// cleanly; a second falls back to the default disposition and kills the
// process), ignores SIGPIPE so a closed stdout surfaces as a stream
// error, and maps an incompletely-delivered stdout to exit code 6. The
// same signal wiring runs in every forked batch worker
// (src/supervise/worker.cc), so a supervisor SIGTERM always starts with
// a graceful stop.
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return tgdkit::CliMain(args);
}
