#!/usr/bin/env python3
"""Black-box load/chaos replay client for `tgdkit serve`.

CI drives the daemon through this script in three modes:

  load          Start the daemon, generate a deterministic workload, and
                replay it from N concurrent connections. Every response
                must parse, echo its request id, and be either "ok" or a
                typed "overloaded" shed. Then SIGTERM, wait for a clean
                drain, and audit the ledger.
  kill-restart  Same workload, but SIGKILL the daemon mid-flight, then
                restart it on the same ledger and replay a second batch.
                The combined ledger must parse line-for-line (the
                restarted daemon heals any torn tail) and no request id
                may be answered twice.
  chaos         Interleave malformed, truncated, and oversized frames
                with valid pings. The daemon must answer every ping and
                survive to drain cleanly.

The ledger audit is the point: a "response" record is written before the
bytes are enqueued, so `answered ids are unique` proves no request was
double-answered even across a crash. Stdlib only; exit 0 iff every
assertion held.
"""

import argparse
import json
import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time

DEPS = "every: Emp(e) -> exists m . Mgr(e, m) .\n"

MAX_SHED_RETRIES = 6
DEFAULT_RETRY_AFTER_MS = 50


def fail(message):
    print(f"serve_replay: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def start_daemon(args, extra=None):
    cmd = [args.binary, "serve", "--socket", args.socket,
           "--ledger", args.ledger, "--serve-threads", str(args.threads)]
    if args.max_inflight:
        cmd += ["--max-inflight", str(args.max_inflight)]
    cmd += extra or []
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out, err = proc.communicate()
            fail(f"daemon exited {proc.returncode} before ready: "
                 f"{err.decode(errors='replace')}")
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as probe:
                probe.connect(args.socket)
            return proc
        except OSError:
            time.sleep(0.05)
    proc.kill()
    fail("daemon never opened its socket")


def stop_daemon(proc, expect_clean=True):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("daemon ignored SIGTERM for 30s")
    out, err = proc.communicate()
    if expect_clean and proc.returncode != 0:
        fail(f"drain exited {proc.returncode}: "
             f"{err.decode(errors='replace')}")
    return out.decode(errors="replace"), err.decode(errors="replace")


def call(sock_path, frame_bytes, read_reply=True, timeout=30.0):
    """Sends one raw frame; returns the reply line (bytes) or None."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as conn:
        conn.settimeout(timeout)
        conn.connect(sock_path)
        conn.sendall(frame_bytes)
        if not read_reply:
            return None
        reply = b""
        while not reply.endswith(b"\n"):
            chunk = conn.recv(65536)
            if not chunk:
                break
            reply += chunk
        return reply


def make_request(rid, shared):
    """One classify request; `shared` rulesets recur (cache-hit path),
    others are unique per id (miss/insert path)."""
    ruleset = DEPS if shared else f"p{rid.replace('-', 'x')}(X) -> q(X) .\n"
    return {"id": rid, "command": "classify", "args": ["deps.tgd"],
            "file_names": ["deps.tgd"], "file_contents": [ruleset]}


class ShedStats:
    """Thread-safe tally of overload sheds and the retry pacing audit.

    Every shed reply carries a `retry_after_ms` hint; the client must not
    come back sooner.  Each retry records (hint_ms, actual_wait_ms) so the
    caller can assert the busy-loop never happened: an actual wait below
    the hint means the backoff is broken and the client is hammering an
    overloaded daemon.
    """

    def __init__(self):
        self.lock = threading.Lock()
        self.sheds = 0
        self.retries = 0
        self.exhausted = 0
        self.early = []  # (rid, hint_ms, actual_ms) retries that jumped the gun

    def record_wait(self, rid, hint_ms, actual_ms):
        with self.lock:
            self.sheds += 1
            self.retries += 1
            if actual_ms < hint_ms:
                self.early.append((rid, hint_ms, actual_ms))

    def record_exhausted(self):
        with self.lock:
            self.sheds += 1
            self.exhausted += 1

    def assert_no_busy_loop(self):
        if self.early:
            rid, hint, actual = self.early[0]
            fail(f"busy-loop: {len(self.early)} retries fired before the "
                 f"retry_after_ms hint, first {rid}: waited {actual:.1f}ms "
                 f"< hinted {hint}ms")

    def summary(self):
        return (f"{self.sheds} sheds, {self.retries} retries, "
                f"{self.exhausted} given up")


def replay_batch(args, prefix, count, results, errors, sheds=None):
    """Replays `count` requests per worker thread; collects answered ids.

    An "overloaded" shed is retried with the SAME request id — the daemon
    never admitted it, so the ledger's answered-once audit still holds —
    sleeping at least the daemon's `retry_after_ms` hint plus jitter, at
    most MAX_SHED_RETRIES times before giving up on that id.
    """
    stats = sheds if sheds is not None else ShedStats()
    jitter = random.Random(0xC0FFEE)  # seeded: runs stay reproducible

    def worker(t):
        for r in range(count):
            rid = f"{prefix}-{t}-{r}"
            frame = json.dumps(make_request(rid, shared=(r % 3 == 0)))
            for attempt in range(1 + MAX_SHED_RETRIES):
                try:
                    reply = call(args.socket, frame.encode() + b"\n")
                except OSError as exc:
                    errors.append(f"{rid}: {exc}")
                    return
                if not reply:
                    errors.append(f"{rid}: connection closed without reply")
                    break
                try:
                    response = json.loads(reply)
                except ValueError:
                    errors.append(f"{rid}: unparseable reply {reply!r}")
                    break
                status = response.get("status")
                if status == "overloaded":
                    if attempt == MAX_SHED_RETRIES:
                        stats.record_exhausted()
                        break
                    hint_ms = response.get("retry_after_ms",
                                           DEFAULT_RETRY_AFTER_MS)
                    # Sleep >= the hint; the jitter factor in [1, 1.5)
                    # de-synchronizes the retrying clients.
                    shed_at = time.monotonic()
                    time.sleep(hint_ms / 1000.0 *
                               (1.0 + 0.5 * jitter.random()))
                    waited_ms = (time.monotonic() - shed_at) * 1000.0
                    stats.record_wait(rid, hint_ms, waited_ms)
                    continue
                if status != "ok" or response.get("id") != rid:
                    errors.append(f"{rid}: unexpected reply {reply!r}")
                    break
                if "figure-1" not in response.get("stdout", ""):
                    errors.append(f"{rid}: wrong classify output")
                    break
                results.append(rid)
                break

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(args.clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return stats


def audit_ledger(path, expect_drain):
    """Every line must parse as flat JSON; response ids must be unique.
    Returns the set of answered ids."""
    answered = []
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line:
                fail(f"ledger line {lineno} is empty")
            try:
                record = json.loads(line)
            except ValueError:
                fail(f"ledger line {lineno} does not parse: {line!r}")
            records.append(record)
            if record.get("type") == "response":
                answered.append(record["id"])
    if not records or records[0].get("type") != "serve":
        fail("ledger does not start with a serve header")
    duplicates = {rid for rid in answered if answered.count(rid) > 1}
    if duplicates:
        fail(f"request ids answered twice: {sorted(duplicates)[:5]}")
    if expect_drain and records[-1].get("type") != "drain":
        fail(f"ledger does not end with a drain record: {records[-1]}")
    return set(answered)


def mode_load(args):
    proc = start_daemon(args)
    results, errors = [], []
    sheds = replay_batch(args, "load", args.requests, results, errors)
    out, _ = stop_daemon(proc)
    if errors:
        fail(f"{len(errors)} bad replies, first: {errors[0]}")
    if len(results) < args.clients * args.requests // 2:
        fail(f"only {len(results)} requests answered ok")
    sheds.assert_no_busy_loop()
    answered = audit_ledger(args.ledger, expect_drain=True)
    missing = set(results) - answered
    if missing:
        fail(f"answered on the wire but absent from ledger: "
             f"{sorted(missing)[:5]}")
    if "drained" not in out:
        fail(f"no drain summary on stdout: {out!r}")
    print(f"serve_replay: load ok — {len(results)} answered, "
          f"{len(answered)} ledgered, {sheds.summary()}")


def mode_kill_restart(args):
    proc = start_daemon(args)
    results, errors = [], []
    replay = threading.Thread(
        target=replay_batch, args=(args, "k1", args.requests, results, errors))
    replay.start()
    time.sleep(args.kill_after)
    proc.kill()  # SIGKILL: no drain, torn tail is fair game
    proc.wait()
    replay.join()
    # In-flight replies legitimately fail at the kill point; what must
    # NOT happen is a double answer, which the combined ledger proves.
    proc = start_daemon(args)
    results2, errors2 = [], []
    sheds = replay_batch(args, "k2", args.requests, results2, errors2)
    stop_daemon(proc)
    if errors2:
        fail(f"post-restart replies broken, first: {errors2[0]}")
    if not results2:
        fail("restarted daemon answered nothing")
    sheds.assert_no_busy_loop()
    answered = audit_ledger(args.ledger, expect_drain=True)
    missing = set(results2) - answered
    if missing:
        fail(f"post-restart answers missing from ledger: "
             f"{sorted(missing)[:5]}")
    print(f"serve_replay: kill-restart ok — {len(results)} pre-kill, "
          f"{len(results2)} post-restart, {len(answered)} unique ledgered, "
          f"{sheds.summary()}")


CHAOS_FRAMES = [
    b"this is not json\n",
    b"{\n",
    b'{"command":"classify"}\n',                      # missing id
    b'{"id":"c1"}\n',                                  # missing command
    b'{"id":"c2","command":"classify","file_names":["a"],'
    b'"file_contents":[]}\n',                          # mismatched arrays
    b'{"id":"c3","command":"rm -rf"}\n',               # unknown command
    b'{"id":"c4","command":"classify","args":{"nested":true}}\n',
    b'{"id":"big","command":"classify","args":["' + b"A" * (4 << 20) +
    b'"]}\n',                                          # oversized frame
]


def mode_chaos(args):
    proc = start_daemon(args, extra=["--max-frame-kb", "64"])
    ping = b'{"id":"p","command":"ping"}\n'
    for i, frame in enumerate(CHAOS_FRAMES):
        try:
            call(args.socket, frame, read_reply=False)
        except OSError:
            pass  # the daemon may slam the door; it must not die
        # Truncated frame: bytes with no newline, then abrupt close.
        try:
            call(args.socket, frame[:max(1, len(frame) // 2)].rstrip(b"\n"),
                 read_reply=False)
        except OSError:
            pass
        reply = call(args.socket, ping)
        if not reply or json.loads(reply).get("status") != "ok":
            fail(f"daemon stopped answering pings after chaos frame {i}: "
                 f"{reply!r}")
    real = json.dumps(make_request("chaos-real", shared=True))
    reply = json.loads(call(args.socket, real.encode() + b"\n"))
    if reply.get("status") != "ok" or "figure-1" not in reply.get(
            "stdout", ""):
        fail(f"real request broken after chaos: {reply}")
    stop_daemon(proc)
    audit_ledger(args.ledger, expect_drain=True)
    print("serve_replay: chaos ok — daemon survived "
          f"{2 * len(CHAOS_FRAMES)} hostile frames")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True)
    parser.add_argument("--mode", required=True,
                        choices=["load", "kill-restart", "chaos"])
    parser.add_argument("--socket", required=True)
    parser.add_argument("--ledger", required=True)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=20,
                        help="requests per client thread")
    parser.add_argument("--kill-after", type=float, default=0.3,
                        help="seconds before SIGKILL in kill-restart mode")
    parser.add_argument("--max-inflight", type=int, default=0,
                        help="cap the daemon's admission window (0 = its "
                             "default); low values force overload sheds so "
                             "the retry/backoff path is actually exercised")
    args = parser.parse_args()
    {"load": mode_load, "kill-restart": mode_kill_restart,
     "chaos": mode_chaos}[args.mode](args)


if __name__ == "__main__":
    main()
