// Composition of schema mappings (Fagin, Kolaitis, Popa & Tan 2005) — the
// problem that motivated SO tgds, cited by the paper as their raison
// d'être ("SO tgds are needed to specify the composition of an arbitrary
// number of schema mappings based on s-t tgds").
//
// Given M12 = (S1, S2, Σ12) and M23 = (S2, S3, Σ23), both finite sets of
// s-t tgds, ComposeMappings produces one SO tgd over S1 → S3 defining the
// composition M12 ∘ M23: Σ12 is Skolemized, and every S2 body atom of a
// Σ23 tgd is resolved against every (fresh copy of a) Σ12 head atom; the
// resulting parts may contain nested terms and equalities — exactly the
// features that distinguish SO tgds from tgds.
#pragma once

#include <span>

#include "base/status.h"
#include "dep/dependency.h"

namespace tgdkit {

/// Composes two s-t tgd mappings into an SO tgd.
///
/// Σ23 tgds whose body mentions a relation not produced by any Σ12 head
/// contribute no parts (they can never fire over a chase of S1).
/// Fails if a rule set is ill-formed.
Result<SoTgd> ComposeMappings(TermArena* arena, Vocabulary* vocab,
                              std::span<const Tgd> sigma12,
                              std::span<const Tgd> sigma23);

/// Composes an s-t SO tgd mapping with an s-t tgd mapping — SO tgds are
/// closed under composition (Fagin et al.), which is how a CHAIN of n
/// tgd mappings folds into one SO tgd (see ComposeChain). Σ12's
/// equalities are carried into every derived part.
Result<SoTgd> ComposeSoWithTgds(TermArena* arena, Vocabulary* vocab,
                                const SoTgd& sigma12,
                                std::span<const Tgd> sigma23);

/// Folds a chain of s-t tgd mappings M1 ∘ M2 ∘ … ∘ Mn into one SO tgd.
/// Precondition: at least two mappings.
Result<SoTgd> ComposeChain(TermArena* arena, Vocabulary* vocab,
                           std::span<const std::vector<Tgd>> mappings);

}  // namespace tgdkit
