// The paper's two normalization algorithms for nested tgds:
//
//  * Algorithm 1, nested-to-so: removes nesting levels innermost-first via
//    ϕ → (ψ ∧ [ϕ₁ → ψ₁])  ⇒  [ϕ → ψ] ∧ [ϕ ∧ ϕ₁ → ψ₁],
//    producing a logically equivalent *plain SO tgd* with one part per
//    nested part — a linear blow-up.
//
//  * Algorithm 2, nested-to-henkin: same recursion, but since Henkin tgds
//    cannot share function quantifiers across parts, each level emits one
//    rule per SUBSET of the already-converted child rules (universals and
//    functions of each included child renamed apart). The result is a
//    logically equivalent set of *tree Henkin tgds* (Theorem 4.3) whose
//    size grows non-elementarily in the nesting depth.
#pragma once

#include <vector>

#include "dep/dependency.h"

namespace tgdkit {

/// Algorithm 1. Returns the normalized form: a plain SO tgd logically
/// equivalent to `nested`, with exactly NumParts() parts. Fresh Skolem
/// functions are interned in `vocab`.
SoTgd NestedToSo(TermArena* arena, Vocabulary* vocab, const NestedTgd& nested);

/// Algorithm 2. Returns a set of tree Henkin tgds logically equivalent to
/// `nested` (Theorem 4.3). May be non-elementarily larger than the input.
/// `max_rules` aborts runaway conversions: if the output would exceed it,
/// the returned vector is empty and `*overflow` (if given) is set.
std::vector<HenkinTgd> NestedToHenkin(TermArena* arena, Vocabulary* vocab,
                                      const NestedTgd& nested,
                                      size_t max_rules = 1u << 20,
                                      bool* overflow = nullptr);

/// Size of the Algorithm 2 output without materializing it: the number of
/// tree Henkin tgds nested-to-henkin would produce. Saturates at SIZE_MAX.
size_t NestedToHenkinRuleCount(const NestedTgd& nested);

}  // namespace tgdkit
