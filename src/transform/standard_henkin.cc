#include "transform/standard_henkin.h"

#include "base/strings.h"

namespace tgdkit {

StandardizedHenkin StandardizeHenkin(TermArena* arena, Vocabulary* vocab,
                                     const HenkinTgd& henkin) {
  StandardizedHenkin out;
  out.eq_relation = vocab->InternRelation("EqDom", 2);

  HenkinTgd& standard = out.standard;
  standard.body = henkin.body;

  // Row 0: all original universals, as one chain of universals (no
  // existentials). Chaining them keeps the quantifier a tree.
  VariableId previous = kInvalidSymbol;
  for (VariableId x : henkin.quantifier.universals()) {
    standard.quantifier.AddUniversal(x);
    if (previous != kInvalidSymbol) standard.quantifier.AddOrder(previous, x);
    previous = x;
  }

  // One row per existential: fresh copies of its dependency set, tied to
  // the originals through EqDom atoms in the body.
  Substitution head_subst;
  for (const auto& [y, deps] : henkin.quantifier.EssentialOrder()) {
    standard.quantifier.AddExistential(y);
    VariableId chain_prev = kInvalidSymbol;
    for (VariableId x : deps) {
      VariableId copy = vocab->FreshVariable(
          Cat(vocab->VariableName(x), "_for_", vocab->VariableName(y)));
      standard.quantifier.AddUniversal(copy);
      standard.body.push_back(Atom{
          out.eq_relation,
          {arena->MakeVariable(x), arena->MakeVariable(copy)}});
      if (chain_prev != kInvalidSymbol) {
        standard.quantifier.AddOrder(chain_prev, copy);
      }
      chain_prev = copy;
    }
    if (chain_prev != kInvalidSymbol) {
      standard.quantifier.AddOrder(chain_prev, y);
    }
    // y itself keeps its name in the head; no substitution needed. The
    // Skolem function now takes the copies, which EqDom forces equal to
    // the originals, so the essential dependence is unchanged.
  }
  standard.head = henkin.head;
  return out;
}

void AddIdentityFacts(RelationId eq_relation, Instance* instance) {
  for (Value v : instance->ActiveDomain()) {
    instance->AddFact(eq_relation, std::vector<Value>{v, v});
  }
}

}  // namespace tgdkit
