// Standardization of Henkin quantifiers (paper Section 3.1 / Theorem 6.2).
//
// "In first-order logic (with equality), every positive occurrence of a
// Henkin quantifier can be expressed by a standard Henkin quantifier":
// give all occurrences of shared universal variables unique names and
// associate them using equalities. Plain SO tgds do not allow equalities
// in the antecedent, so — as in the Theorem 6.2 proof — we realize the
// equalities through a schema extension instead: a binary relation EqDom
// interpreted as the identity over the active domain.
//
// StandardizeHenkin rewrites a Henkin tgd h over schema R into a STANDARD
// Henkin tgd h' over R ∪ {EqDom} such that for every R-instance I:
//     I ⊨ h  ⟺  I ∪ id(EqDom) ⊨ h'
// where id(EqDom) = {EqDom(v, v) | v in the active domain of I}
// (materialized by AddIdentityFacts).
//
// Construction: every existential y with dependency set D gets its own
// fresh copies D' of the universals in D, chained as one row ∀D' ∃y; the
// copies are tied to the originals by EqDom body atoms. The original
// universals form one further all-universal row.
#pragma once

#include "data/instance.h"
#include "dep/dependency.h"

namespace tgdkit {

struct StandardizedHenkin {
  HenkinTgd standard;
  /// The identity relation used by the rewriting ("EqDom", arity 2).
  RelationId eq_relation;
};

/// Rewrites `henkin` into an equivalent standard Henkin tgd over the
/// extended schema (see file comment).
StandardizedHenkin StandardizeHenkin(TermArena* arena, Vocabulary* vocab,
                                     const HenkinTgd& henkin);

/// Adds EqDom(v, v) for every active-domain value of `instance`.
void AddIdentityFacts(RelationId eq_relation, Instance* instance);

}  // namespace tgdkit
