#include "transform/nested.h"

#include <unordered_map>

#include "base/strings.h"
#include "dep/skolem.h"

namespace tgdkit {

namespace {

/// Rewrites a term: applies a variable substitution and a function-symbol
/// renaming simultaneously.
TermId RenameTerm(TermArena* arena, TermId t,
                  const Substitution& var_subst,
                  const std::unordered_map<FunctionId, FunctionId>& func_map) {
  switch (arena->kind(t)) {
    case TermKind::kVariable: {
      TermId bound = var_subst.Lookup(arena->symbol(t));
      return bound == kInvalidTerm ? t : bound;
    }
    case TermKind::kConstant:
      return t;
    case TermKind::kFunction: {
      std::vector<TermId> new_args;
      for (TermId a : arena->args(t)) {
        new_args.push_back(RenameTerm(arena, a, var_subst, func_map));
      }
      FunctionId f = arena->symbol(t);
      auto it = func_map.find(f);
      if (it != func_map.end()) f = it->second;
      return arena->MakeFunction(f, new_args);
    }
  }
  return t;
}

std::vector<Atom> RenameAtoms(TermArena* arena, std::span<const Atom> atoms,
                              const Substitution& var_subst,
                              const std::unordered_map<FunctionId, FunctionId>&
                                  func_map) {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& atom : atoms) {
    Atom renamed;
    renamed.relation = atom.relation;
    for (TermId t : atom.args) {
      renamed.args.push_back(RenameTerm(arena, t, var_subst, func_map));
    }
    out.push_back(std::move(renamed));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Algorithm 1: nested-to-so

namespace {

void FlattenNode(const NestedNode& node, std::vector<Atom> ancestor_body,
                 SoTgd* out) {
  ancestor_body.insert(ancestor_body.end(), node.body.begin(),
                       node.body.end());
  SoPart part;
  part.body = ancestor_body;
  part.head = node.head_atoms;
  if (!part.head.empty()) {
    out->parts.push_back(part);
  }
  for (const NestedNode& child : node.children) {
    FlattenNode(child, ancestor_body, out);
  }
}

}  // namespace

SoTgd NestedToSo(TermArena* arena, Vocabulary* vocab,
                 const NestedTgd& nested) {
  std::vector<FunctionId> functions;
  NestedTgd skolemized = SkolemizeNested(arena, vocab, nested, &functions);
  SoTgd so;
  so.functions = std::move(functions);
  FlattenNode(skolemized.root, {}, &so);
  return so;
}

// ---------------------------------------------------------------------------
// Algorithm 2: nested-to-henkin

namespace {

/// One intermediate rule during the bottom-up conversion. `inner_vars` and
/// `inner_funcs` are the universals / Skolem functions introduced strictly
/// inside the subtree this rule came from — exactly the symbols that must
/// be renamed apart when the rule is combined into a parent subset.
struct RuleDraft {
  std::vector<Atom> body;
  std::vector<Atom> head;
  std::vector<VariableId> inner_vars;
  std::vector<FunctionId> inner_funcs;
};

struct HenkinBuilder {
  TermArena* arena;
  Vocabulary* vocab;
  size_t max_rules;
  bool overflow = false;

  /// Fresh copy of a draft: inner universals and inner functions renamed.
  RuleDraft FreshCopy(const RuleDraft& draft) {
    Substitution var_subst;
    RuleDraft copy;
    for (VariableId v : draft.inner_vars) {
      VariableId fresh = vocab->FreshVariable(vocab->VariableName(v));
      var_subst.Bind(v, arena->MakeVariable(fresh));
      copy.inner_vars.push_back(fresh);
    }
    std::unordered_map<FunctionId, FunctionId> func_map;
    for (FunctionId f : draft.inner_funcs) {
      FunctionId fresh = vocab->FreshFunction(vocab->FunctionName(f),
                                              vocab->FunctionArity(f));
      func_map.emplace(f, fresh);
      copy.inner_funcs.push_back(fresh);
    }
    copy.body = RenameAtoms(arena, draft.body, var_subst, func_map);
    copy.head = RenameAtoms(arena, draft.head, var_subst, func_map);
    return copy;
  }

  /// Converts one node (already Skolemized via `subst` by the caller);
  /// returns the rules of the rewritten subtree.
  std::vector<RuleDraft> ConvertNode(const NestedNode& node,
                                     std::vector<VariableId> ancestor_vars,
                                     Substitution* subst) {
    std::vector<VariableId> all_vars = ancestor_vars;
    all_vars.insert(all_vars.end(), node.univ_vars.begin(),
                    node.univ_vars.end());

    // Skolemize this node's existentials over ancestors + own universals.
    std::vector<FunctionId> own_funcs;
    for (VariableId y : node.exist_vars) {
      FunctionId f = vocab->FreshFunction(
          Cat("hk_", vocab->VariableName(y)),
          static_cast<uint32_t>(all_vars.size()));
      own_funcs.push_back(f);
      std::vector<TermId> args;
      for (VariableId v : all_vars) args.push_back(arena->MakeVariable(v));
      subst->Bind(y, arena->MakeFunction(f, args));
    }

    // Convert children first (innermost-to-outermost in the paper).
    std::vector<RuleDraft> items;
    for (const NestedNode& child : node.children) {
      std::vector<RuleDraft> child_rules =
          ConvertNode(child, all_vars, subst);
      items.insert(items.end(),
                   std::make_move_iterator(child_rules.begin()),
                   std::make_move_iterator(child_rules.end()));
      if (overflow) return {};
    }

    // Rewrite step: one rule per subset of the child items.
    if (items.size() >= 8 * sizeof(size_t) ||
        (size_t(1) << items.size()) > max_rules) {
      overflow = true;
      return {};
    }
    Substitution head_subst = *subst;
    std::vector<Atom> own_head;
    for (const Atom& atom : node.head_atoms) {
      Atom mapped;
      mapped.relation = atom.relation;
      for (TermId t : atom.args) {
        mapped.args.push_back(head_subst.Apply(arena, t));
      }
      own_head.push_back(std::move(mapped));
    }

    std::vector<RuleDraft> out;
    size_t num_subsets = size_t(1) << items.size();
    for (size_t mask = 0; mask < num_subsets; ++mask) {
      RuleDraft rule;
      rule.body = node.body;
      rule.head = own_head;
      rule.inner_vars = node.univ_vars;
      rule.inner_funcs = own_funcs;
      for (size_t i = 0; i < items.size(); ++i) {
        if (!(mask & (size_t(1) << i))) continue;
        RuleDraft item = FreshCopy(items[i]);
        rule.body.insert(rule.body.end(), item.body.begin(), item.body.end());
        rule.head.insert(rule.head.end(), item.head.begin(), item.head.end());
        rule.inner_vars.insert(rule.inner_vars.end(), item.inner_vars.begin(),
                               item.inner_vars.end());
        rule.inner_funcs.insert(rule.inner_funcs.end(),
                                item.inner_funcs.begin(),
                                item.inner_funcs.end());
      }
      if (rule.head.empty()) continue;  // no conclusion: tautological
      out.push_back(std::move(rule));
      if (out.size() > max_rules) {
        overflow = true;
        return {};
      }
    }
    return out;
  }
};

/// De-Skolemizes a final rule into a Henkin tgd: every distinct function
/// term f(x̄) in the head becomes an existential variable depending on x̄.
HenkinTgd DeskolemizeRule(TermArena* arena, Vocabulary* vocab,
                          const RuleDraft& rule) {
  HenkinTgd henkin;
  henkin.body = rule.body;
  for (VariableId v : CollectAtomVariables(*arena, rule.body)) {
    henkin.quantifier.AddUniversal(v);
  }
  // Map each function symbol (one fixed argument list per symbol by
  // construction) to a fresh existential variable.
  std::unordered_map<FunctionId, TermId> replacement;
  auto deskolemize_term = [&](TermId t, auto&& self) -> TermId {
    if (!arena->IsFunction(t)) return t;
    FunctionId f = arena->symbol(t);
    auto it = replacement.find(f);
    if (it != replacement.end()) return it->second;
    VariableId y = vocab->FreshVariable(Cat("y_", vocab->FunctionName(f)));
    henkin.quantifier.AddExistential(y);
    // Arguments are universal variables in root-to-node order by
    // construction; emit them as a chain so the quantifier order's Hasse
    // graph is a tree (the class Theorem 4.3 promises).
    VariableId previous = kInvalidSymbol;
    for (TermId arg : arena->args(t)) {
      TermId resolved = self(arg, self);
      VariableId x = arena->symbol(resolved);
      if (previous != kInvalidSymbol) {
        henkin.quantifier.AddOrder(previous, x);
      }
      previous = x;
    }
    if (previous != kInvalidSymbol) {
      henkin.quantifier.AddOrder(previous, y);
    }
    TermId var = arena->MakeVariable(y);
    replacement.emplace(f, var);
    return var;
  };
  for (const Atom& atom : rule.head) {
    Atom mapped;
    mapped.relation = atom.relation;
    for (TermId t : atom.args) {
      mapped.args.push_back(deskolemize_term(t, deskolemize_term));
    }
    henkin.head.push_back(std::move(mapped));
  }
  return henkin;
}

}  // namespace

std::vector<HenkinTgd> NestedToHenkin(TermArena* arena, Vocabulary* vocab,
                                      const NestedTgd& nested,
                                      size_t max_rules, bool* overflow) {
  HenkinBuilder builder{arena, vocab, max_rules};
  Substitution subst;
  std::vector<RuleDraft> rules =
      builder.ConvertNode(nested.root, {}, &subst);
  if (overflow != nullptr) *overflow = builder.overflow;
  if (builder.overflow) return {};
  std::vector<HenkinTgd> out;
  out.reserve(rules.size());
  for (const RuleDraft& rule : rules) {
    out.push_back(DeskolemizeRule(arena, vocab, rule));
  }
  return out;
}

namespace {

size_t SaturatingPow2(size_t exponent) {
  if (exponent >= 8 * sizeof(size_t) - 1) return SIZE_MAX;
  return size_t(1) << exponent;
}

size_t SaturatingAdd(size_t a, size_t b) {
  size_t s = a + b;
  return s < a ? SIZE_MAX : s;
}

/// Number of rules ConvertNode yields for `node` (rules with empty
/// conclusions are dropped, matching the implementation).
size_t CountNode(const NestedNode& node) {
  size_t items = 0;
  for (const NestedNode& child : node.children) {
    items = SaturatingAdd(items, CountNode(child));
  }
  if (items >= 8 * sizeof(size_t) - 1) return SIZE_MAX;
  size_t subsets = SaturatingPow2(items);
  if (node.head_atoms.empty()) {
    // The empty subset yields a rule with no conclusion, which is dropped.
    subsets -= 1;
  }
  return subsets;
}

}  // namespace

size_t NestedToHenkinRuleCount(const NestedTgd& nested) {
  return CountNode(nested.root);
}

}  // namespace tgdkit
