#include "transform/composition.h"

#include <functional>
#include <set>
#include <unordered_map>

#include "base/strings.h"
#include "dep/skolem.h"

namespace tgdkit {

namespace {

/// A Skolemized Σ12 rule: S1 body (+ equalities) and S2 head atoms with
/// Skolem terms.
struct SkolemizedRule {
  std::vector<Atom> body;
  std::vector<SoEquality> equalities;
  std::vector<Atom> head;
  std::vector<VariableId> universals;
};

/// A fresh copy of one Skolemized rule, universals renamed apart
/// (function symbols stay shared — that is the essence of composition).
SkolemizedRule FreshCopy(TermArena* arena, Vocabulary* vocab,
                         const SkolemizedRule& rule) {
  Substitution subst;
  SkolemizedRule copy;
  for (VariableId v : rule.universals) {
    VariableId fresh = vocab->FreshVariable(vocab->VariableName(v));
    subst.Bind(v, arena->MakeVariable(fresh));
    copy.universals.push_back(fresh);
  }
  auto rename = [&](const std::vector<Atom>& atoms) {
    std::vector<Atom> out;
    for (const Atom& atom : atoms) {
      Atom mapped;
      mapped.relation = atom.relation;
      for (TermId t : atom.args) mapped.args.push_back(subst.Apply(arena, t));
      out.push_back(std::move(mapped));
    }
    return out;
  };
  copy.body = rename(rule.body);
  copy.head = rename(rule.head);
  for (const SoEquality& eq : rule.equalities) {
    copy.equalities.push_back(
        {subst.Apply(arena, eq.lhs), subst.Apply(arena, eq.rhs)});
  }
  return copy;
}

}  // namespace

Result<SoTgd> ComposeSoWithTgds(TermArena* arena, Vocabulary* vocab,
                                const SoTgd& sigma12,
                                std::span<const Tgd> sigma23) {
  TGDKIT_RETURN_IF_ERROR(ValidateSoTgd(*arena, sigma12));
  for (const Tgd& tgd : sigma23) {
    TGDKIT_RETURN_IF_ERROR(ValidateTgd(*arena, tgd));
  }

  SoTgd composed;
  composed.functions = sigma12.functions;

  std::vector<SkolemizedRule> rules12;
  for (const SoPart& part : sigma12.parts) {
    SkolemizedRule rule;
    rule.body = part.body;
    rule.equalities = part.equalities;
    rule.head = part.head;
    rule.universals = CollectAtomVariables(*arena, rule.body);
    rules12.push_back(std::move(rule));
  }

  // Choices for each S2 atom: (rule index, head atom index).
  auto choices_for = [&](RelationId relation) {
    std::vector<std::pair<size_t, size_t>> choices;
    for (size_t r = 0; r < rules12.size(); ++r) {
      for (size_t h = 0; h < rules12[r].head.size(); ++h) {
        if (rules12[r].head[h].relation == relation) choices.push_back({r, h});
      }
    }
    return choices;
  };

  for (const Tgd& tgd23 : sigma23) {
    // Enumerate all combinations of choices across the S2 body atoms.
    std::vector<std::vector<std::pair<size_t, size_t>>> atom_choices;
    bool feasible = true;
    for (const Atom& atom : tgd23.body) {
      atom_choices.push_back(choices_for(atom.relation));
      if (atom_choices.back().empty()) feasible = false;
    }
    if (!feasible) continue;  // a body relation is never produced by Σ12

    std::function<void(size_t, SoPart, Substitution)> expand =
        [&](size_t atom_index, SoPart part, Substitution binding) {
          if (atom_index == tgd23.body.size()) {
            // All atoms resolved: emit the part. Skolemize σ23's
            // existentials over its (now term-valued) universals.
            std::vector<VariableId> universals23 =
                CollectAtomVariables(*arena, tgd23.body);
            for (VariableId z : tgd23.exist_vars) {
              FunctionId h = vocab->FreshFunction(
                  Cat("comp_", vocab->VariableName(z)),
                  static_cast<uint32_t>(universals23.size()));
              composed.functions.push_back(h);
              std::vector<TermId> args;
              for (VariableId y : universals23) {
                TermId bound = binding.Lookup(y);
                args.push_back(bound == kInvalidTerm
                                   ? arena->MakeVariable(y)
                                   : bound);
              }
              binding.Bind(z, arena->MakeFunction(h, args));
            }
            for (const Atom& atom : tgd23.head) {
              Atom mapped;
              mapped.relation = atom.relation;
              for (TermId t : atom.args) {
                mapped.args.push_back(binding.Apply(arena, t));
              }
              part.head.push_back(std::move(mapped));
            }
            if (!part.head.empty() && !part.body.empty()) {
              composed.parts.push_back(std::move(part));
            }
            return;
          }
          const Atom& atom23 = tgd23.body[atom_index];
          for (const auto& [rule_index, head_index] :
               atom_choices[atom_index]) {
            SkolemizedRule copy =
                FreshCopy(arena, vocab, rules12[rule_index]);
            SoPart next_part = part;
            Substitution next_binding = binding;
            next_part.body.insert(next_part.body.end(), copy.body.begin(),
                                  copy.body.end());
            next_part.equalities.insert(next_part.equalities.end(),
                                        copy.equalities.begin(),
                                        copy.equalities.end());
            const Atom& head_atom = copy.head[head_index];
            bool ok = true;
            for (size_t pos = 0; pos < atom23.args.size(); ++pos) {
              TermId arg23 = atom23.args[pos];
              TermId term12 = head_atom.args[pos];
              if (arena->IsConstant(arg23)) {
                if (arena->IsConstant(term12)) {
                  if (arg23 != term12) {
                    ok = false;
                    break;
                  }
                } else {
                  // Tie the Σ12 head term to the constant.
                  next_part.equalities.push_back({term12, arg23});
                }
                continue;
              }
              // arg23 is a σ23 variable.
              VariableId y = arena->symbol(arg23);
              TermId bound = next_binding.Lookup(y);
              if (bound == kInvalidTerm) {
                next_binding.Bind(y, term12);
              } else if (bound != term12) {
                next_part.equalities.push_back({bound, term12});
              }
            }
            if (ok) expand(atom_index + 1, next_part, next_binding);
          }
        };
    expand(0, SoPart{}, Substitution{});
  }
  return composed;
}

Result<SoTgd> ComposeMappings(TermArena* arena, Vocabulary* vocab,
                              std::span<const Tgd> sigma12,
                              std::span<const Tgd> sigma23) {
  for (const Tgd& tgd : sigma12) {
    TGDKIT_RETURN_IF_ERROR(ValidateTgd(*arena, tgd));
  }
  SoTgd so12 = TgdsToSo(arena, vocab, sigma12);
  return ComposeSoWithTgds(arena, vocab, so12, sigma23);
}

Result<SoTgd> ComposeChain(TermArena* arena, Vocabulary* vocab,
                           std::span<const std::vector<Tgd>> mappings) {
  if (mappings.size() < 2) {
    return Status::InvalidArgument("ComposeChain needs at least 2 mappings");
  }
  Result<SoTgd> acc =
      ComposeMappings(arena, vocab, mappings[0], mappings[1]);
  if (!acc.ok()) return acc.status();
  for (size_t i = 2; i < mappings.size(); ++i) {
    if (acc->parts.empty()) return acc;  // empty composition stays empty
    acc = ComposeSoWithTgds(arena, vocab, *acc, mappings[i]);
    if (!acc.ok()) return acc.status();
  }
  return acc;
}

}  // namespace tgdkit
