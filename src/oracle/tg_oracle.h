// Brute-force triangular-guardedness oracle (after Asuncion–Zhang,
// arXiv:1804.05997). A deliberately naive reimplementation of the
// definition — quadratic reachability instead of Tarjan, direct fixpoints
// for affected positions and sticky marking, per-component discipline
// checks by enumeration — sharing no code with src/analyze, so the
// randomized differential suite can cross-check IsTriangularlyGuarded
// against an independent decision procedure on small vocabularies.
#pragma once

#include "dep/dependency.h"
#include "term/term.h"

namespace tgdkit {

/// True iff `so` is triangularly guarded: every SCC of the position
/// graph that contains an internal special edge satisfies the guard
/// discipline (b) or the sticky discipline (c).
bool BruteForceTriangularlyGuarded(const TermArena& arena, const SoTgd& so);

}  // namespace tgdkit
