#include "oracle/oracle.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <set>

namespace tgdkit {

std::optional<bool> ThreeColorableBudgeted(const Graph& graph,
                                           ResourceGovernor* governor) {
  if (graph.num_vertices == 0) return true;
  std::vector<std::vector<uint32_t>> adjacency(graph.num_vertices);
  for (const auto& [u, v] : graph.edges) {
    if (u == v) return false;  // self-loop is never properly colorable
    adjacency[u].push_back(v);
    adjacency[v].push_back(u);
  }
  std::vector<int> color(graph.num_vertices, -1);
  bool out_of_budget = false;
  std::function<bool(uint32_t)> assign = [&](uint32_t v) -> bool {
    if (v == graph.num_vertices) return true;
    // Symmetry breaking: the first vertex gets color 0 only.
    int limit = (v == 0) ? 1 : 3;
    for (int c = 0; c < limit; ++c) {
      if (governor != nullptr && !governor->Poll()) {
        out_of_budget = true;
        return false;
      }
      bool clash = false;
      for (uint32_t u : adjacency[v]) {
        if (u < v && color[u] == c) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      color[v] = c;
      if (assign(v + 1)) return true;
      color[v] = -1;
      if (out_of_budget) return false;
    }
    return false;
  };
  bool found = assign(0);
  if (!found && out_of_budget) return std::nullopt;
  return found;
}

bool ThreeColorable(const Graph& graph) {
  return *ThreeColorableBudgeted(graph, nullptr);
}

namespace {

bool EvalQbfLiteral(const QbfLiteral& literal,
                    const std::vector<bool>& x_values,
                    const std::vector<bool>& y_values) {
  bool value = literal.kind == QbfLiteral::Kind::kUniversal
                   ? x_values[literal.index]
                   : y_values[literal.index];
  return literal.negated ? !value : value;
}

bool EvalQbfMatrix(const Qbf& qbf, const std::vector<bool>& x_values,
                   const std::vector<bool>& y_values) {
  for (const auto& clause : qbf.clauses) {
    bool satisfied = false;
    for (const QbfLiteral& literal : clause) {
      if (EvalQbfLiteral(literal, x_values, y_values)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

bool EvalQbfFrom(const Qbf& qbf, uint32_t pair, std::vector<bool>* x_values,
                 std::vector<bool>* y_values, ResourceGovernor* governor,
                 bool* out_of_budget) {
  if (governor != nullptr && !governor->Poll()) {
    *out_of_budget = true;
    return false;
  }
  if (pair == qbf.num_pairs) {
    return EvalQbfMatrix(qbf, *x_values, *y_values);
  }
  // ∀x_pair ∃y_pair …
  for (bool x : {false, true}) {
    (*x_values)[pair] = x;
    bool exists = false;
    for (bool y : {false, true}) {
      (*y_values)[pair] = y;
      if (EvalQbfFrom(qbf, pair + 1, x_values, y_values, governor,
                      out_of_budget)) {
        exists = true;
        break;
      }
      if (*out_of_budget) return false;
    }
    if (!exists) return false;
  }
  return true;
}

}  // namespace

std::optional<bool> EvaluateQbfBudgeted(const Qbf& qbf,
                                        ResourceGovernor* governor) {
  std::vector<bool> x_values(qbf.num_pairs, false);
  std::vector<bool> y_values(qbf.num_pairs, false);
  bool out_of_budget = false;
  bool value =
      EvalQbfFrom(qbf, 0, &x_values, &y_values, governor, &out_of_budget);
  if (out_of_budget) return std::nullopt;
  return value;
}

bool EvaluateQbf(const Qbf& qbf) {
  return *EvaluateQbfBudgeted(qbf, nullptr);
}

namespace {

/// A PCP search configuration: the outstanding overhang. `first_longer`
/// tells which side the overhang belongs to.
struct PcpConfig {
  bool first_longer;
  std::vector<uint32_t> overhang;
  std::vector<uint32_t> sequence;

  std::pair<bool, std::vector<uint32_t>> Key() const {
    return {first_longer, overhang};
  }
};

/// Appends `word` to the shorter side; returns false on mismatch.
bool Extend(const PcpConfig& config, const std::vector<uint32_t>& w1,
            const std::vector<uint32_t>& w2, PcpConfig* out) {
  // Normalize: s1 = overhang of side 1 vs side 2.
  std::vector<uint32_t> s1 = config.first_longer ? config.overhang
                                                 : std::vector<uint32_t>{};
  std::vector<uint32_t> s2 = config.first_longer ? std::vector<uint32_t>{}
                                                 : config.overhang;
  s1.insert(s1.end(), w1.begin(), w1.end());
  s2.insert(s2.end(), w2.begin(), w2.end());
  size_t common = std::min(s1.size(), s2.size());
  for (size_t i = 0; i < common; ++i) {
    if (s1[i] != s2[i]) return false;
  }
  out->first_longer = s1.size() >= s2.size();
  if (s1.size() >= s2.size()) {
    out->overhang.assign(s1.begin() + common, s1.end());
  } else {
    out->overhang.assign(s2.begin() + common, s2.end());
  }
  return true;
}

/// Approximate heap bytes of one enqueued configuration (vectors + the
/// seen-set key), charged against a byte budget.
uint64_t ConfigBytes(const PcpConfig& config) {
  return (config.overhang.size() + config.sequence.size()) *
             sizeof(uint32_t) * 2 +
         96;
}

}  // namespace

PcpSearchOutcome SolvePcpBudgeted(const PcpInstance& instance,
                                  uint32_t max_sequence_length,
                                  ResourceGovernor* governor) {
  return SolvePcpResumable(instance, max_sequence_length, governor,
                           /*resume_from=*/nullptr,
                           /*checkpoint_hook=*/nullptr,
                           /*checkpoint_every_configs=*/0);
}

PcpSearchOutcome SolvePcpResumable(
    const PcpInstance& instance, uint32_t max_sequence_length,
    ResourceGovernor* governor, const PcpSearchCheckpoint* resume_from,
    const std::function<void(const PcpSearchCheckpoint&)>& checkpoint_hook,
    uint64_t checkpoint_every_configs) {
  PcpSearchOutcome outcome;
  std::deque<PcpConfig> queue;
  std::set<std::pair<bool, std::vector<uint32_t>>> seen;
  bool seeded = false;

  if (resume_from != nullptr) {
    seeded = resume_from->seeded;
    outcome.configs = resume_from->configs;
    for (const PcpSearchCheckpoint::Entry& e : resume_from->frontier) {
      PcpConfig config{e.first_longer, e.overhang, e.sequence};
      // The restored frontier and seen-set are live memory again: charge
      // them against the new byte budget (past *steps*, in contrast, are
      // history and are not re-charged).
      if (governor != nullptr) governor->ChargeBytes(ConfigBytes(config));
      queue.push_back(std::move(config));
    }
    seen.insert(resume_from->seen.begin(), resume_from->seen.end());
  }

  auto poll = [&]() {
    ++outcome.configs;
    if (governor == nullptr) return true;
    if (governor->Poll()) return true;
    outcome.stop = governor->reason();
    return false;
  };

  auto capture = [&]() {
    PcpSearchCheckpoint cp;
    cp.seeded = seeded;
    cp.configs = outcome.configs;
    cp.frontier.reserve(queue.size());
    for (const PcpConfig& c : queue) {
      cp.frontier.push_back({c.first_longer, c.overhang, c.sequence});
    }
    cp.seen.assign(seen.begin(), seen.end());
    return cp;
  };

  uint64_t expansions_since_checkpoint = 0;
  auto checkpoint_due = [&]() {
    if (!checkpoint_hook) return;
    ++expansions_since_checkpoint;
    if (expansions_since_checkpoint <
        std::max<uint64_t>(checkpoint_every_configs, 1)) {
      return;
    }
    expansions_since_checkpoint = 0;
    checkpoint_hook(capture());
  };

  if (!seeded) {
    // First selections.
    for (uint32_t i = 0; i < instance.pairs.size(); ++i) {
      if (!poll()) return outcome;
      PcpConfig start{true, {}, {}};
      PcpConfig next;
      if (!Extend(start, instance.pairs[i].first, instance.pairs[i].second,
                  &next)) {
        continue;
      }
      next.sequence = {i + 1};
      if (next.overhang.empty()) {
        outcome.witness = std::move(next.sequence);
        return outcome;
      }
      if (seen.insert(next.Key()).second) {
        if (governor != nullptr) governor->ChargeBytes(ConfigBytes(next));
        queue.push_back(std::move(next));
      }
    }
    seeded = true;
    checkpoint_due();
  }

  while (!queue.empty()) {
    PcpConfig config = std::move(queue.front());
    queue.pop_front();
    if (config.sequence.size() < max_sequence_length) {
      for (uint32_t i = 0; i < instance.pairs.size(); ++i) {
        if (!poll()) return outcome;
        PcpConfig next;
        if (!Extend(config, instance.pairs[i].first, instance.pairs[i].second,
                    &next)) {
          continue;
        }
        next.sequence = config.sequence;
        next.sequence.push_back(i + 1);
        if (next.overhang.empty()) {
          outcome.witness = std::move(next.sequence);
          return outcome;
        }
        if (seen.insert(next.Key()).second) {
          if (governor != nullptr) governor->ChargeBytes(ConfigBytes(next));
          queue.push_back(std::move(next));
        }
      }
    }
    // Expansion boundary: the state (queue + seen + configs) is exactly
    // what a resumed search needs to continue deterministically.
    checkpoint_due();
  }
  return outcome;
}

std::optional<std::vector<uint32_t>> SolvePcp(const PcpInstance& instance,
                                              uint32_t max_sequence_length) {
  return SolvePcpBudgeted(instance, max_sequence_length, nullptr).witness;
}

bool CheckPcpSolution(const PcpInstance& instance,
                      const std::vector<uint32_t>& sequence) {
  if (sequence.empty()) return false;
  std::vector<uint32_t> s1, s2;
  for (uint32_t index : sequence) {
    if (index == 0 || index > instance.pairs.size()) return false;
    const auto& [w1, w2] = instance.pairs[index - 1];
    s1.insert(s1.end(), w1.begin(), w1.end());
    s2.insert(s2.end(), w2.begin(), w2.end());
  }
  return s1 == s2;
}

}  // namespace tgdkit
