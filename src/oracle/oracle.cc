#include "oracle/oracle.h"

#include <deque>
#include <functional>
#include <set>

namespace tgdkit {

bool ThreeColorable(const Graph& graph) {
  if (graph.num_vertices == 0) return true;
  std::vector<std::vector<uint32_t>> adjacency(graph.num_vertices);
  for (const auto& [u, v] : graph.edges) {
    if (u == v) return false;  // self-loop is never properly colorable
    adjacency[u].push_back(v);
    adjacency[v].push_back(u);
  }
  std::vector<int> color(graph.num_vertices, -1);
  std::function<bool(uint32_t)> assign = [&](uint32_t v) -> bool {
    if (v == graph.num_vertices) return true;
    // Symmetry breaking: the first vertex gets color 0 only.
    int limit = (v == 0) ? 1 : 3;
    for (int c = 0; c < limit; ++c) {
      bool clash = false;
      for (uint32_t u : adjacency[v]) {
        if (u < v && color[u] == c) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      color[v] = c;
      if (assign(v + 1)) return true;
      color[v] = -1;
    }
    return false;
  };
  return assign(0);
}

namespace {

bool EvalQbfLiteral(const QbfLiteral& literal,
                    const std::vector<bool>& x_values,
                    const std::vector<bool>& y_values) {
  bool value = literal.kind == QbfLiteral::Kind::kUniversal
                   ? x_values[literal.index]
                   : y_values[literal.index];
  return literal.negated ? !value : value;
}

bool EvalQbfMatrix(const Qbf& qbf, const std::vector<bool>& x_values,
                   const std::vector<bool>& y_values) {
  for (const auto& clause : qbf.clauses) {
    bool satisfied = false;
    for (const QbfLiteral& literal : clause) {
      if (EvalQbfLiteral(literal, x_values, y_values)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

bool EvalQbfFrom(const Qbf& qbf, uint32_t pair, std::vector<bool>* x_values,
                 std::vector<bool>* y_values) {
  if (pair == qbf.num_pairs) {
    return EvalQbfMatrix(qbf, *x_values, *y_values);
  }
  // ∀x_pair ∃y_pair …
  for (bool x : {false, true}) {
    (*x_values)[pair] = x;
    bool exists = false;
    for (bool y : {false, true}) {
      (*y_values)[pair] = y;
      if (EvalQbfFrom(qbf, pair + 1, x_values, y_values)) {
        exists = true;
        break;
      }
    }
    if (!exists) return false;
  }
  return true;
}

}  // namespace

bool EvaluateQbf(const Qbf& qbf) {
  std::vector<bool> x_values(qbf.num_pairs, false);
  std::vector<bool> y_values(qbf.num_pairs, false);
  return EvalQbfFrom(qbf, 0, &x_values, &y_values);
}

namespace {

/// A PCP search configuration: the outstanding overhang. `first_longer`
/// tells which side the overhang belongs to.
struct PcpConfig {
  bool first_longer;
  std::vector<uint32_t> overhang;
  std::vector<uint32_t> sequence;

  std::pair<bool, std::vector<uint32_t>> Key() const {
    return {first_longer, overhang};
  }
};

/// Appends `word` to the shorter side; returns false on mismatch.
bool Extend(const PcpConfig& config, const std::vector<uint32_t>& w1,
            const std::vector<uint32_t>& w2, PcpConfig* out) {
  // Normalize: s1 = overhang of side 1 vs side 2.
  std::vector<uint32_t> s1 = config.first_longer ? config.overhang
                                                 : std::vector<uint32_t>{};
  std::vector<uint32_t> s2 = config.first_longer ? std::vector<uint32_t>{}
                                                 : config.overhang;
  s1.insert(s1.end(), w1.begin(), w1.end());
  s2.insert(s2.end(), w2.begin(), w2.end());
  size_t common = std::min(s1.size(), s2.size());
  for (size_t i = 0; i < common; ++i) {
    if (s1[i] != s2[i]) return false;
  }
  out->first_longer = s1.size() >= s2.size();
  if (s1.size() >= s2.size()) {
    out->overhang.assign(s1.begin() + common, s1.end());
  } else {
    out->overhang.assign(s2.begin() + common, s2.end());
  }
  return true;
}

}  // namespace

std::optional<std::vector<uint32_t>> SolvePcp(const PcpInstance& instance,
                                              uint32_t max_sequence_length) {
  std::deque<PcpConfig> queue;
  std::set<std::pair<bool, std::vector<uint32_t>>> seen;

  // First selections.
  for (uint32_t i = 0; i < instance.pairs.size(); ++i) {
    PcpConfig start{true, {}, {}};
    PcpConfig next;
    if (!Extend(start, instance.pairs[i].first, instance.pairs[i].second,
                &next)) {
      continue;
    }
    next.sequence = {i + 1};
    if (next.overhang.empty()) return next.sequence;
    if (seen.insert(next.Key()).second) queue.push_back(std::move(next));
  }

  while (!queue.empty()) {
    PcpConfig config = std::move(queue.front());
    queue.pop_front();
    if (config.sequence.size() >= max_sequence_length) continue;
    for (uint32_t i = 0; i < instance.pairs.size(); ++i) {
      PcpConfig next;
      if (!Extend(config, instance.pairs[i].first, instance.pairs[i].second,
                  &next)) {
        continue;
      }
      next.sequence = config.sequence;
      next.sequence.push_back(i + 1);
      if (next.overhang.empty()) return next.sequence;
      if (seen.insert(next.Key()).second) queue.push_back(std::move(next));
    }
  }
  return std::nullopt;
}

bool CheckPcpSolution(const PcpInstance& instance,
                      const std::vector<uint32_t>& sequence) {
  if (sequence.empty()) return false;
  std::vector<uint32_t> s1, s2;
  for (uint32_t index : sequence) {
    if (index == 0 || index > instance.pairs.size()) return false;
    const auto& [w1, w2] = instance.pairs[index - 1];
    s1.insert(s1.end(), w1.begin(), w1.end());
    s2.insert(s2.end(), w2.begin(), w2.end());
  }
  return s1 == s2;
}

}  // namespace tgdkit
