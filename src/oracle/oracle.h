// Independent brute-force decision procedures used to validate the
// paper's reductions (Sections 5 and 6). These deliberately share no code
// with the reductions they check.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/budget.h"

namespace tgdkit {

// ---------------------------------------------------------------------------
// Graphs and 3-colorability (Theorem 6.1)

/// A simple undirected graph on vertices 0..num_vertices-1.
struct Graph {
  uint32_t num_vertices = 0;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
};

/// Exhaustive 3-colorability test (with first-vertex symmetry breaking).
bool ThreeColorable(const Graph& graph);

/// Budgeted variant: polls `governor` once per color assignment tried and
/// returns nullopt when the budget runs out before the search completes
/// (governor->reason() says why). The unbudgeted overload above is
/// equivalent to passing an unlimited governor.
std::optional<bool> ThreeColorableBudgeted(const Graph& graph,
                                           ResourceGovernor* governor);

// ---------------------------------------------------------------------------
// Quantified Boolean formulas (Theorem 6.3)

/// A literal over the QBF's variables: universals x_1..x_n are
/// (kUniversal, i), existentials y_1..y_n are (kExistential, i), both
/// 0-based; `negated` selects the complement.
struct QbfLiteral {
  enum class Kind : uint8_t { kUniversal, kExistential };
  Kind kind;
  uint32_t index;
  bool negated;
};

/// A QBF in the restricted shape of Theorem 6.3's reduction:
///   ∀x₁∃y₁ … ∀xₙ∃yₙ (c₁ ∧ … ∧ c_m), each cᵢ a 3-clause.
struct Qbf {
  uint32_t num_pairs = 0;  // n: quantifier alternations
  std::vector<std::array<QbfLiteral, 3>> clauses;
};

/// Exhaustive QBF evaluation by quantifier recursion.
bool EvaluateQbf(const Qbf& qbf);

/// Budgeted variant: polls `governor` once per quantifier-tree node and
/// returns nullopt when the budget runs out mid-evaluation.
std::optional<bool> EvaluateQbfBudgeted(const Qbf& qbf,
                                        ResourceGovernor* governor);

// ---------------------------------------------------------------------------
// Post's Correspondence Problem (Theorems 5.1, 5.2)

/// A PCP instance: pairs of words over the alphabet {1, …, alphabet_size}.
/// Words are vectors of symbols (each in [1, alphabet_size]).
struct PcpInstance {
  uint32_t alphabet_size = 0;
  std::vector<std::pair<std::vector<uint32_t>, std::vector<uint32_t>>> pairs;
};

/// Bounded solver: searches index sequences of length ≤ max_sequence_length
/// (BFS over prefix configurations). Returns a witness sequence (1-based
/// indexes) or nullopt when no solution exists within the bound. PCP is
/// undecidable, so "nullopt" only means "none within the bound".
std::optional<std::vector<uint32_t>> SolvePcp(const PcpInstance& instance,
                                              uint32_t max_sequence_length);

/// Outcome of the budgeted PCP search, distinguishing "no solution within
/// the length bound" (search complete) from a resource stop mid-search.
struct PcpSearchOutcome {
  std::optional<std::vector<uint32_t>> witness;
  /// kFixpoint when the bounded search ran to completion; a resource stop
  /// reason when the budget cut it short (the absence of a witness is
  /// then inconclusive even within the bound).
  StopReason stop = StopReason::kFixpoint;
  /// Configurations expanded (also the governor step count).
  uint64_t configs = 0;

  bool Complete() const { return stop == StopReason::kFixpoint; }
};

/// Budgeted variant of SolvePcp: polls `governor` once per configuration
/// expanded and charges it per configuration enqueued, so a byte budget
/// bounds the (worst-case exponential) BFS frontier and seen-set.
PcpSearchOutcome SolvePcpBudgeted(const PcpInstance& instance,
                                  uint32_t max_sequence_length,
                                  ResourceGovernor* governor);

/// Resumable state of the budgeted PCP search. Captured only at expansion
/// boundaries (before a frontier configuration is popped), so a resumed
/// search replays the interrupted expansion from its start; the seen-set
/// makes expansion idempotent and the search deterministic, hence the
/// continuation is identical to the uninterrupted run.
struct PcpSearchCheckpoint {
  struct Entry {
    bool first_longer = false;
    std::vector<uint32_t> overhang;
    std::vector<uint32_t> sequence;
  };
  /// True once the first-selections pass over the pairs has completed.
  bool seeded = false;
  /// Lifetime configurations expanded (budget polls), across resumes.
  uint64_t configs = 0;
  /// The BFS queue, front first.
  std::vector<Entry> frontier;
  /// The seen-set keys (first_longer, overhang), in set order.
  std::vector<std::pair<bool, std::vector<uint32_t>>> seen;
};

/// SolvePcpBudgeted with checkpoint/resume support. When `resume_from` is
/// non-null the search continues from that checkpoint instead of starting
/// fresh (`outcome.configs` then counts lifetime expansions). When
/// `checkpoint_hook` is non-null it receives a consistent checkpoint every
/// `checkpoint_every_configs` expansions (0 = every expansion). The
/// restored frontier/seen-set are live memory again and are re-charged
/// against `governor`'s byte budget; past steps are not re-charged (the
/// governor's step budget applies to new work only).
PcpSearchOutcome SolvePcpResumable(
    const PcpInstance& instance, uint32_t max_sequence_length,
    ResourceGovernor* governor, const PcpSearchCheckpoint* resume_from,
    const std::function<void(const PcpSearchCheckpoint&)>& checkpoint_hook,
    uint64_t checkpoint_every_configs);

/// Checks a candidate solution (1-based pair indexes).
bool CheckPcpSolution(const PcpInstance& instance,
                      const std::vector<uint32_t>& sequence);

}  // namespace tgdkit
