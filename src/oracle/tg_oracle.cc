#include "oracle/tg_oracle.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

namespace tgdkit {

namespace {

using Pos = std::pair<RelationId, uint32_t>;

/// Does term `t` mention variable `v` anywhere (including under nesting)?
bool Mentions(const TermArena& arena, TermId t, VariableId v) {
  std::vector<VariableId> vars;
  arena.CollectVariables(t, &vars);
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

/// Top-level body positions per variable of one part.
std::map<VariableId, std::set<Pos>> TopLevelBodyPositions(
    const TermArena& arena, const SoPart& part) {
  std::map<VariableId, std::set<Pos>> out;
  for (const Atom& atom : part.body) {
    for (uint32_t i = 0; i < atom.args.size(); ++i) {
      if (arena.IsVariable(atom.args[i])) {
        out[arena.symbol(atom.args[i])].insert({atom.relation, i});
      }
    }
  }
  return out;
}

bool OccursTopLevel(const TermArena& arena, VariableId var, const Atom& atom) {
  for (TermId t : atom.args) {
    if (arena.IsVariable(t) && arena.symbol(t) == var) return true;
  }
  return false;
}

}  // namespace

bool BruteForceTriangularlyGuarded(const TermArena& arena, const SoTgd& so) {
  const std::vector<SoPart>& rules = so.parts;

  // Every position mentioned by any atom.
  std::set<Pos> position_set;
  for (const SoPart& part : rules) {
    for (const Atom& atom : part.body) {
      for (uint32_t i = 0; i < atom.args.size(); ++i) {
        position_set.insert({atom.relation, i});
      }
    }
    for (const Atom& atom : part.head) {
      for (uint32_t i = 0; i < atom.args.size(); ++i) {
        position_set.insert({atom.relation, i});
      }
    }
  }
  std::vector<Pos> nodes(position_set.begin(), position_set.end());
  auto index_of = [&nodes](const Pos& p) {
    return static_cast<size_t>(
        std::lower_bound(nodes.begin(), nodes.end(), p) - nodes.begin());
  };
  size_t n = nodes.size();

  // Dependency edges: from each top-level body position of a variable to
  // each head argument using it — regular when the argument IS the
  // variable, special when it is a functional term mentioning it.
  struct Edge {
    size_t from, to;
    bool special;
    uint32_t rule;
  };
  std::vector<Edge> edges;
  for (uint32_t r = 0; r < rules.size(); ++r) {
    const SoPart& part = rules[r];
    for (const auto& [var, froms] : TopLevelBodyPositions(arena, part)) {
      for (const Pos& from : froms) {
        for (const Atom& atom : part.head) {
          for (uint32_t i = 0; i < atom.args.size(); ++i) {
            TermId t = atom.args[i];
            if (arena.IsVariable(t) && arena.symbol(t) == var) {
              edges.push_back(
                  {index_of(from), index_of({atom.relation, i}), false, r});
            } else if (arena.IsFunction(t) && Mentions(arena, t, var)) {
              edges.push_back(
                  {index_of(from), index_of({atom.relation, i}), true, r});
            }
          }
        }
      }
    }
  }

  // Reachability by naive closure; two nodes share an SCC when they reach
  // each other (or are equal).
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (const Edge& e : edges) reach[e.from][e.to] = true;
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }
  auto same_scc = [&reach](size_t a, size_t b) {
    return a == b || (reach[a][b] && reach[b][a]);
  };

  // Affected positions: functional head arguments, then propagation
  // through variables bound only at affected positions.
  std::set<Pos> affected;
  for (const SoPart& part : rules) {
    for (const Atom& atom : part.head) {
      for (uint32_t i = 0; i < atom.args.size(); ++i) {
        if (arena.IsFunction(atom.args[i])) {
          affected.insert({atom.relation, i});
        }
      }
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const SoPart& part : rules) {
      for (const auto& [var, froms] : TopLevelBodyPositions(arena, part)) {
        bool all_affected = true;
        for (const Pos& p : froms) {
          if (!affected.count(p)) {
            all_affected = false;
            break;
          }
        }
        if (!all_affected) continue;
        for (const Atom& atom : part.head) {
          for (uint32_t i = 0; i < atom.args.size(); ++i) {
            TermId t = atom.args[i];
            if (!arena.IsVariable(t) || arena.symbol(t) != var) continue;
            if (affected.insert({atom.relation, i}).second) changed = true;
          }
        }
      }
    }
  }

  // Sticky marking: a rule variable is marked when some head atom drops
  // it (top level), or when it flows into a head position holding a
  // marked body occurrence somewhere in the rule set.
  std::vector<std::set<VariableId>> marked(rules.size());
  std::set<Pos> marked_positions;
  auto mark = [&](uint32_t r, VariableId var) {
    if (!marked[r].insert(var).second) return false;
    auto froms = TopLevelBodyPositions(arena, rules[r]);
    marked_positions.insert(froms[var].begin(), froms[var].end());
    return true;
  };
  for (uint32_t r = 0; r < rules.size(); ++r) {
    const SoPart& part = rules[r];
    for (const auto& [var, froms] : TopLevelBodyPositions(arena, part)) {
      for (const Atom& atom : part.head) {
        if (!OccursTopLevel(arena, var, atom)) {
          mark(r, var);
          break;
        }
      }
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (uint32_t r = 0; r < rules.size(); ++r) {
      const SoPart& part = rules[r];
      for (const auto& [var, froms] : TopLevelBodyPositions(arena, part)) {
        if (marked[r].count(var)) continue;
        bool hits_marked = false;
        for (const Atom& atom : part.head) {
          for (uint32_t i = 0; i < atom.args.size(); ++i) {
            TermId t = atom.args[i];
            if (arena.IsVariable(t) && arena.symbol(t) == var &&
                marked_positions.count({atom.relation, i})) {
              hits_marked = true;
              break;
            }
          }
          if (hits_marked) break;
        }
        if (hits_marked && mark(r, var)) changed = true;
      }
    }
  }

  // Triangular components: SCCs with an internal special edge, each
  // represented by its smallest member node.
  std::set<size_t> components;
  for (const Edge& e : edges) {
    if (!e.special || !same_scc(e.from, e.to)) continue;
    size_t canon = e.from;
    for (size_t b = 0; b < canon; ++b) {
      if (same_scc(e.from, b)) {
        canon = b;
        break;
      }
    }
    components.insert(canon);
  }

  for (size_t comp : components) {
    auto in_component = [&](const Pos& p) {
      if (!position_set.count(p)) return false;
      return same_scc(index_of(p), comp);
    };
    std::set<uint32_t> touching;
    for (const Edge& e : edges) {
      if (same_scc(e.from, comp) && same_scc(e.to, comp)) {
        touching.insert(e.rule);
      }
    }
    // Discipline (b): one body atom covers every component-dangerous
    // variable of each touching rule.
    bool guard_ok = true;
    for (uint32_t r : touching) {
      const SoPart& part = rules[r];
      std::set<VariableId> must_guard;
      for (const auto& [var, froms] : TopLevelBodyPositions(arena, part)) {
        bool all_affected = true, touches = false;
        for (const Pos& p : froms) {
          if (!affected.count(p)) all_affected = false;
          if (in_component(p)) touches = true;
        }
        if (all_affected && touches) must_guard.insert(var);
      }
      if (must_guard.empty()) continue;
      bool guarded = false;
      for (const Atom& atom : part.body) {
        std::set<VariableId> atom_vars;
        for (TermId t : atom.args) {
          std::vector<VariableId> vs;
          arena.CollectVariables(t, &vs);
          atom_vars.insert(vs.begin(), vs.end());
        }
        bool covers = true;
        for (VariableId v : must_guard) {
          if (!atom_vars.count(v)) {
            covers = false;
            break;
          }
        }
        if (covers) {
          guarded = true;
          break;
        }
      }
      if (!guarded) {
        guard_ok = false;
        break;
      }
    }
    if (guard_ok) continue;
    // Discipline (c): no marked variable of a touching rule joins two
    // component positions across distinct body atoms.
    bool join_ok = true;
    for (uint32_t r : touching) {
      const SoPart& part = rules[r];
      for (uint32_t a1 = 0; a1 < part.body.size() && join_ok; ++a1) {
        const Atom& atom1 = part.body[a1];
        for (uint32_t g1 = 0; g1 < atom1.args.size() && join_ok; ++g1) {
          TermId t1 = atom1.args[g1];
          if (!arena.IsVariable(t1)) continue;
          VariableId var = arena.symbol(t1);
          if (!marked[r].count(var)) continue;
          if (!in_component({atom1.relation, g1})) continue;
          for (uint32_t a2 = a1 + 1; a2 < part.body.size() && join_ok; ++a2) {
            const Atom& atom2 = part.body[a2];
            for (uint32_t g2 = 0; g2 < atom2.args.size(); ++g2) {
              TermId t2 = atom2.args[g2];
              if (!arena.IsVariable(t2) || arena.symbol(t2) != var) continue;
              if (in_component({atom2.relation, g2})) {
                join_ok = false;
                break;
              }
            }
          }
        }
      }
      if (!join_ok) break;
    }
    if (join_ok) continue;
    return false;  // both disciplines fail: an unguarded triangle
  }
  return true;
}

}  // namespace tgdkit
