#include "reduce/pcp.h"

#include <cassert>

#include "base/strings.h"
#include "dep/skolem.h"
#include "transform/nested.h"

namespace tgdkit {

namespace {

/// Bit width needed to encode values 0..count-1 (at least 1).
uint32_t BitWidth(uint32_t count) {
  uint32_t width = 1;
  while ((1u << width) < count) ++width;
  return width;
}

/// Builder holding the shared symbols of the construction.
class PcpBuilder {
 public:
  PcpBuilder(TermArena* arena, Vocabulary* vocab, const PcpInstance& pcp)
      : arena_(arena), vocab_(vocab), pcp_(pcp) {
    r_rel_ = vocab->InternRelation("R", 3);
    ap_rel_[0] = vocab->InternRelation("AP0", 3);
    ap_rel_[1] = vocab->InternRelation("AP1", 3);
    done_rel_ = vocab->InternRelation("Done", 3);
    start_rel_ = vocab->InternRelation("Start", 1);
    y_rel_ = vocab->InternRelation("Y", 1);
    index_width_ = BitWidth(static_cast<uint32_t>(pcp.pairs.size()));
    char_width_ = BitWidth(pcp.alphabet_size);
    q_ = Var("q");
    s_ = Var("s");
    w_ = Var("w");
    a_ = Var("a");
    p_ = Var("p");
  }

  TermId Var(const char* name) {
    return arena_->MakeVariable(vocab_->InternVariable(name));
  }
  TermId Const(const std::string& name) {
    return arena_->MakeConstant(vocab_->InternConstant(name));
  }

  /// Bit t (0-based) of the fixed-width code of `value`.
  static uint32_t Bit(uint32_t value, uint32_t t) {
    return (value >> t) & 1u;
  }

  std::string BranchState(uint32_t b) { return Cat("B", b); }
  std::string StartState(uint32_t b) { return Cat("S", b); }
  std::string SelState(uint32_t b, uint32_t i, uint32_t t) {
    return Cat("sel_", b, "_", i, "_", t);
  }
  std::string ChrState(uint32_t b, uint32_t i, uint32_t j, uint32_t t) {
    return Cat("chr_", b, "_", i, "_", j, "_", t);
  }

  const std::vector<uint32_t>& Word(uint32_t b, uint32_t i) {
    return b == 1 ? pcp_.pairs[i - 1].first : pcp_.pairs[i - 1].second;
  }

  /// Full tgd: From(q = from_state, x, y) -> To(q = to_state, x', y') where
  /// the argument order of the head is given by swap.
  Tgd Route(RelationId from_rel, const std::string& from_state,
            RelationId to_rel, const std::string& to_state, bool swap) {
    Tgd tgd;
    tgd.body = {Atom{from_rel, {Const(from_state), a_, p_}}};
    if (swap) {
      tgd.head = {Atom{to_rel, {Const(to_state), p_, a_}}};
    } else {
      tgd.head = {Atom{to_rel, {Const(to_state), a_, p_}}};
    }
    return tgd;
  }

  /// The state/request the selection machine enters after applying bit t
  /// of index i in branch b, plus which AP relation carries it.
  void EmitSelectionRules(PcpEncoding* out) {
    uint32_t n = static_cast<uint32_t>(pcp_.pairs.size());
    for (uint32_t b = 1; b <= 2; ++b) {
      for (uint32_t i = 1; i <= n; ++i) {
        uint32_t code = i - 1;
        // Kick off from both the start state and the branch-ready state.
        for (const std::string& from :
             {StartState(b), BranchState(b)}) {
          out->full_rules.push_back(
              Route(r_rel_, from, ap_rel_[Bit(code, 0)], SelState(b, i, 1),
                    /*swap=*/false));
        }
        // Continue applying index bits.
        for (uint32_t t = 1; t < index_width_; ++t) {
          out->full_rules.push_back(
              Route(done_rel_, SelState(b, i, t), ap_rel_[Bit(code, t)],
                    SelState(b, i, t + 1), /*swap=*/false));
        }
        // Index applied; move to the word characters (active term becomes
        // the string, hence the swap) or — for the empty word — return.
        const std::vector<uint32_t>& word = Word(b, i);
        if (word.empty()) {
          out->full_rules.push_back(Route(done_rel_,
                                          SelState(b, i, index_width_),
                                          r_rel_, BranchState(b),
                                          /*swap=*/false));
        } else {
          uint32_t c0 = word[0] - 1;
          out->full_rules.push_back(
              Route(done_rel_, SelState(b, i, index_width_),
                    ap_rel_[Bit(c0, 0)], ChrState(b, i, 0, 1),
                    /*swap=*/true));
          EmitCharRules(out, b, i);
        }
      }
    }
  }

  void EmitCharRules(PcpEncoding* out, uint32_t b, uint32_t i) {
    const std::vector<uint32_t>& word = Word(b, i);
    for (uint32_t j = 0; j < word.size(); ++j) {
      uint32_t code = word[j] - 1;
      for (uint32_t t = 1; t < char_width_; ++t) {
        out->full_rules.push_back(Route(done_rel_, ChrState(b, i, j, t),
                                        ap_rel_[Bit(code, t)],
                                        ChrState(b, i, j, t + 1),
                                        /*swap=*/false));
      }
      if (j + 1 < word.size()) {
        uint32_t next = word[j + 1] - 1;
        out->full_rules.push_back(Route(done_rel_, ChrState(b, i, j, char_width_),
                                        ap_rel_[Bit(next, 0)],
                                        ChrState(b, i, j + 1, 1),
                                        /*swap=*/false));
      } else {
        // Word complete: back to the branch-ready state, swapping the
        // string back into the w slot.
        out->full_rules.push_back(Route(done_rel_,
                                        ChrState(b, i, j, char_width_),
                                        r_rel_, BranchState(b),
                                        /*swap=*/true));
      }
    }
  }

  void EmitInit(PcpEncoding* out) {
    Tgd init;
    init.body = {Atom{start_rel_, {Var("z")}}};
    init.head = {Atom{r_rel_, {Const(StartState(1)), Const("eps"),
                               Const("eps")}},
                 Atom{r_rel_, {Const(StartState(2)), Const("eps"),
                               Const("eps")}}};
    out->full_rules.push_back(std::move(init));
  }

  void EmitApplyRules(PcpEncoding* out) {
    for (uint32_t bit = 0; bit <= 1; ++bit) {
      // Standard Henkin tgd: AP<bit>(q, a, p) -> exists a2(a) Done(q, a2, p).
      HenkinTgd henkin;
      VariableId q = vocab_->InternVariable("q");
      VariableId a = vocab_->InternVariable("a");
      VariableId p = vocab_->InternVariable("p");
      VariableId a2 = vocab_->InternVariable(Cat("a2_", bit));
      henkin.quantifier = HenkinQuantifier::FromRows(
          {{{a}, {a2}}, {{q, p}, {}}});
      henkin.body = {Atom{ap_rel_[bit], {q_, a_, p_}}};
      henkin.head = {Atom{done_rel_, {q_, arena_->MakeVariable(a2), p_}}};
      out->henkin_rules.push_back(std::move(henkin));

      // Nested variant (Idea 3⁺): Y(a) -> exists a2 [ AP(q,a,p) ->
      // Done(q,a2,p) ], with a full Y-producer.
      NestedTgd nested;
      VariableId a3 = vocab_->InternVariable(Cat("a3_", bit));
      nested.root.univ_vars = {a};
      nested.root.body = {Atom{y_rel_, {a_}}};
      nested.root.exist_vars = {a3};
      NestedNode child;
      child.univ_vars = {q, p};
      child.body = {Atom{ap_rel_[bit], {q_, a_, p_}}};
      child.head_atoms = {
          Atom{done_rel_, {q_, arena_->MakeVariable(a3), p_}}};
      nested.root.children.push_back(std::move(child));
      out->nested_rules.push_back(std::move(nested));

      Tgd producer;
      producer.body = {Atom{ap_rel_[bit], {q_, a_, p_}}};
      producer.head = {Atom{y_rel_, {a_}}};
      out->nested_producers.push_back(std::move(producer));
    }
  }

  void EmitGoal(PcpEncoding* out) {
    out->goal.atoms = {Atom{r_rel_, {Const(BranchState(1)), s_, w_}},
                       Atom{r_rel_, {Const(BranchState(2)), s_, w_}}};
  }

  void EmitSeed(PcpEncoding* out) {
    out->seed.AddFact(start_rel_,
                      std::vector<Value>{Value::Constant(
                          vocab_->InternConstant("go"))});
  }

 private:
  TermArena* arena_;
  Vocabulary* vocab_;
  const PcpInstance& pcp_;
  RelationId r_rel_, done_rel_, start_rel_, y_rel_;
  RelationId ap_rel_[2];
  uint32_t index_width_, char_width_;
  TermId q_, s_, w_, a_, p_;
};

}  // namespace

PcpEncoding BuildPcpEncoding(TermArena* arena, Vocabulary* vocab,
                             const PcpInstance& instance) {
  assert(!instance.pairs.empty() && instance.alphabet_size >= 1);
  PcpEncoding out(vocab);
  PcpBuilder builder(arena, vocab, instance);
  builder.EmitInit(&out);
  builder.EmitSelectionRules(&out);
  builder.EmitApplyRules(&out);
  builder.EmitGoal(&out);
  builder.EmitSeed(&out);
  return out;
}

SoTgd PcpEncoding::HenkinRuleSet(TermArena* arena, Vocabulary* vocab) const {
  SoTgd merged = TgdsToSo(arena, vocab, full_rules);
  SoTgd henkin = HenkinsToSo(arena, vocab, henkin_rules);
  std::vector<SoTgd> both{merged, henkin};
  return MergeSo(both);
}

SoTgd PcpEncoding::NestedRuleSet(TermArena* arena, Vocabulary* vocab) const {
  std::vector<SoTgd> pieces;
  pieces.push_back(TgdsToSo(arena, vocab, full_rules));
  pieces.push_back(TgdsToSo(arena, vocab, nested_producers));
  for (const NestedTgd& nested : nested_rules) {
    pieces.push_back(NestedToSo(arena, vocab, nested));
  }
  return MergeSo(pieces);
}

PcpChaseOutcome SemiDecidePcp(TermArena* arena, Vocabulary* vocab,
                              const PcpEncoding& encoding, const SoTgd& rules,
                              ChaseLimits limits) {
  ChaseEngine engine(arena, vocab, rules, encoding.seed, limits);
  PcpChaseOutcome outcome;
  auto goal_reached = [&]() {
    return EvaluateBoolean(*arena, engine.instance(), encoding.goal);
  };
  if (goal_reached()) {
    outcome.solved = true;
  } else {
    while (engine.Step()) {
      if (goal_reached()) {
        outcome.solved = true;
        break;
      }
    }
  }
  outcome.rounds = engine.rounds();
  outcome.facts = engine.instance().NumFacts();
  outcome.stop = engine.stop_reason();
  outcome.budget_steps = engine.governor().steps();
  outcome.budget_bytes = engine.governor().memory_bytes();
  return outcome;
}

}  // namespace tgdkit
