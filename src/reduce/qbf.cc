#include "reduce/qbf.h"

#include <cassert>

#include "base/strings.h"

namespace tgdkit {

QbfReduction BuildQbfReduction(TermArena* arena, Vocabulary* vocab,
                               const Qbf& qbf) {
  assert(qbf.num_pairs >= 1);
  RelationId p_rel = vocab->InternRelation("P", 2);
  RelationId q_rel = vocab->InternRelation("Q", 2);
  RelationId c_rel = vocab->InternRelation("C", 3);

  // Variables x_i / x~_i (universal) and y_i / y~_i (existential); the
  // tilde variable carries the complement value.
  auto var = [&](const char* base, uint32_t i) {
    return vocab->InternVariable(Cat(base, i));
  };

  // The literal-encoding l*: positive literals map to the plain variable,
  // negative literals to its complement twin.
  auto literal_term = [&](const QbfLiteral& literal) {
    const char* base;
    if (literal.kind == QbfLiteral::Kind::kUniversal) {
      base = literal.negated ? "xc" : "x";
    } else {
      base = literal.negated ? "yc" : "y";
    }
    return arena->MakeVariable(var(base, literal.index));
  };

  // Build the nesting chain from the innermost level outward.
  NestedTgd tau;
  NestedNode* slot = nullptr;  // where the next deeper node goes
  for (uint32_t i = 0; i < qbf.num_pairs; ++i) {
    NestedNode node;
    node.univ_vars = {var("x", i), var("xc", i)};
    node.body = {Atom{p_rel,
                      {arena->MakeVariable(var("x", i)),
                       arena->MakeVariable(var("xc", i))}}};
    node.exist_vars = {var("y", i), var("yc", i)};
    node.head_atoms = {Atom{q_rel,
                            {arena->MakeVariable(var("y", i)),
                             arena->MakeVariable(var("yc", i))}}};
    if (slot == nullptr) {
      tau.root = std::move(node);
      slot = &tau.root;
    } else {
      slot->children.push_back(std::move(node));
      slot = &slot->children[0];
    }
  }
  // Innermost level carries the clause atoms.
  for (const auto& clause : qbf.clauses) {
    slot->head_atoms.push_back(Atom{
        c_rel,
        {literal_term(clause[0]), literal_term(clause[1]),
         literal_term(clause[2])}});
  }

  // Fixed instance: truth values with complements, and the OR table.
  QbfReduction out{std::move(tau), Instance(vocab)};
  Value zero = Value::Constant(vocab->InternConstant("0"));
  Value one = Value::Constant(vocab->InternConstant("1"));
  out.instance.AddFact(p_rel, std::vector<Value>{one, zero});
  out.instance.AddFact(p_rel, std::vector<Value>{zero, one});
  out.instance.AddFact(q_rel, std::vector<Value>{one, zero});
  out.instance.AddFact(q_rel, std::vector<Value>{zero, one});
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int c = 0; c <= 1; ++c) {
        if (a == 0 && b == 0 && c == 0) continue;
        out.instance.AddFact(
            c_rel, std::vector<Value>{a ? one : zero, b ? one : zero,
                                      c ? one : zero});
      }
    }
  }
  return out;
}

}  // namespace tgdkit
