#include "reduce/separation.h"

#include <map>

#include "base/strings.h"
#include "dep/skolem.h"
#include "transform/nested.h"

namespace tgdkit {

Theorem41Witness BuildTheorem41Witness(TermArena* arena, Vocabulary* vocab) {
  Theorem41Witness out;
  RelationId p = vocab->InternRelation("P", 2);
  RelationId q = vocab->InternRelation("Q", 2);
  RelationId r = vocab->InternRelation("R", 2);
  RelationId s = vocab->InternRelation("S", 2);
  RelationId q0 = vocab->InternRelation("Q0", 2);
  RelationId r0 = vocab->InternRelation("R0", 2);
  RelationId s0 = vocab->InternRelation("S0", 2);

  VariableId x1 = vocab->InternVariable("x1");
  VariableId x2 = vocab->InternVariable("x2");
  VariableId u = vocab->InternVariable("u");
  VariableId v = vocab->InternVariable("v");
  auto var = [&](VariableId id) { return arena->MakeVariable(id); };

  out.sigma1.quantifier =
      HenkinQuantifier::FromRows({{{x1}, {u}}, {{x2}, {v}}});
  out.sigma1.body = {Atom{p, {var(x1), var(x2)}}};
  out.sigma1.head = {Atom{q, {var(x1), var(u)}},
                     Atom{r, {var(u), var(v)}},
                     Atom{s, {var(v), var(x2)}}};

  auto copy = [&](RelationId from, RelationId to) {
    Tgd tgd;
    tgd.body = {Atom{from, {var(x1), var(x2)}}};
    tgd.head = {Atom{to, {var(x1), var(x2)}}};
    return tgd;
  };
  out.copies = {copy(q0, q), copy(r0, r), copy(s0, s)};

  SoTgd henkin_part = HenkinToSo(arena, vocab, out.sigma1);
  SoTgd copies_part = TgdsToSo(arena, vocab, out.copies);
  std::vector<SoTgd> both{henkin_part, copies_part};
  out.rules = MergeSo(both);
  return out;
}

Instance BuildTheorem41Instance(Vocabulary* vocab, uint32_t n) {
  Instance instance(vocab);
  RelationId p = vocab->InternRelation("P", 2);
  for (uint32_t i = 1; i <= n; ++i) {
    Value a = Value::Constant(vocab->InternConstant(Cat("a", i)));
    for (uint32_t j = 1; j <= n; ++j) {
      Value b = Value::Constant(vocab->InternConstant(Cat("b", j)));
      instance.AddFact(p, std::vector<Value>{a, b});
    }
  }
  return instance;
}

SoTgd BuildTheorem44Witness(TermArena* arena, Vocabulary* vocab) {
  RelationId emps = vocab->InternRelation("Emps", 2);
  RelationId mgrs = vocab->InternRelation("Mgrs", 2);
  FunctionId f = vocab->InternFunction("fmgr44", 1);
  TermId e1 = arena->MakeVariable(vocab->InternVariable("e1"));
  TermId e2 = arena->MakeVariable(vocab->InternVariable("e2"));
  SoTgd so;
  so.functions = {f};
  SoPart part;
  part.body = {Atom{emps, {e1, e2}}};
  part.head = {Atom{mgrs,
                    {arena->MakeFunction(f, std::vector<TermId>{e1}),
                     arena->MakeFunction(f, std::vector<TermId>{e2})}}};
  so.parts = {part};
  return so;
}

Theorem42Witness BuildTheorem42Witness(TermArena* arena, Vocabulary* vocab) {
  Theorem42Witness out;
  RelationId y_rel = vocab->InternRelation("Y42", 1);
  RelationId p_rel = vocab->InternRelation("P42", 2);
  RelationId r_rel = vocab->InternRelation("R42", 3);
  VariableId x = vocab->InternVariable("x");
  VariableId y = vocab->InternVariable("y");
  VariableId u = vocab->InternVariable("u42");
  VariableId w = vocab->InternVariable("w42");
  auto var = [&](VariableId id) { return arena->MakeVariable(id); };

  out.tau.root.univ_vars = {x};
  out.tau.root.body = {Atom{y_rel, {var(x)}}};
  out.tau.root.exist_vars = {u};
  NestedNode child;
  child.univ_vars = {y};
  child.body = {Atom{p_rel, {var(x), var(y)}}};
  child.exist_vars = {w};
  child.head_atoms = {Atom{r_rel, {var(u), var(w), var(y)}}};
  out.tau.root.children.push_back(std::move(child));

  // The root has no direct head atoms, so normalization yields one part:
  // τ is a SIMPLE nested tgd.
  out.normalized = NestedToSo(arena, vocab, out.tau);
  return out;
}

bool FunctionalDependencyHolds(const Instance& instance, RelationId relation,
                               uint32_t determinant, uint32_t dependent) {
  std::map<Value, Value> mapping;
  size_t n = instance.NumTuples(relation);
  for (uint32_t row = 0; row < n; ++row) {
    auto tuple = instance.Tuple(relation, row);
    auto [it, inserted] = mapping.emplace(tuple[determinant],
                                          tuple[dependent]);
    if (!inserted && it->second != tuple[dependent]) return false;
  }
  return true;
}

}  // namespace tgdkit
