// Theorems 5.1 / 5.2 and Figure 4: encoding Post's Correspondence Problem
// into query answering under sticky linear standard Henkin tgds with two
// unary function symbols (and, alternatively, sticky guarded simple nested
// tgds).
//
// Construction (following the paper's Ideas 1–3, 3⁺):
//
//  * Idea 1 — two branches build the first and second string of the PCP.
//    A configuration is a fact R(q, s, w): control state q (a constant),
//    selection-sequence term s, string term w. Both pair indexes and
//    alphabet symbols are binary-coded, so the only functions are the two
//    unary symbols f0, f1 (Theorem 5.1's "two unary function symbols").
//
//  * Idea 2 — the branch/state is carried as a constant in the first
//    argument, protecting configurations from collapsing (the paper uses
//    an N-vector for the same purpose under its representation).
//
//  * Idea 3 — two-phase function application: full tgds emit application
//    requests AP0/AP1(q, a, p) ("apply f0/f1 to a, then continue in q");
//    exactly ONE dependency per function symbol performs the application:
//
//       AP0(q, a, p) → ∃a'(a) Done(q, a', p)      (standard Henkin tgd)
//       AP1(q, a, p) → ∃a'(a) Done(q, a', p)
//
//    All other rules are full tgds, matching the paper's remark that
//    undecidability holds "given just two Henkin tgds, while the rest are
//    full tgds". Every rule body is a single atom, so the set is linear,
//    guarded and sticky.
//
//  * Idea 3⁺ — the nested variant replaces each application rule by the
//    simple nested tgd  Y(a) → ∃a' [ AP(q, a, p) → Done(q, a', p) ]  plus
//    full Y-producers; its normalization is sticky and guarded but (as the
//    paper notes) no longer linear.
//
// The PCP instance has a solution iff the Boolean query
//   ∃s,w R("B1", s, w) ∧ R("B2", s, w)
// is certain, with "B1"/"B2" only reachable after at least one selection.
// Since the chase is a semi-decision procedure, SemiDecidePcp runs it
// round-by-round under a budget.
#pragma once

#include "chase/chase.h"
#include "data/instance.h"
#include "dep/dependency.h"
#include "oracle/oracle.h"
#include "query/query.h"

namespace tgdkit {

struct PcpEncoding {
  /// All full tgds of the construction (init, routing, branch logic).
  std::vector<Tgd> full_rules;
  /// The two function-applying standard Henkin tgds.
  std::vector<HenkinTgd> henkin_rules;
  /// Nested-variant application rules (Theorem 5.2) and their Y-producers.
  std::vector<NestedTgd> nested_rules;
  std::vector<Tgd> nested_producers;
  /// The seed instance: a single Start fact.
  Instance seed;
  /// The Boolean goal query ∃s,w R(B1,s,w) ∧ R(B2,s,w).
  ConjunctiveQuery goal;

  explicit PcpEncoding(const Vocabulary* vocab) : seed(vocab) {}

  /// Skolemizes and merges the Henkin-variant rule set (for the chase and
  /// the Figure 2 classifiers).
  SoTgd HenkinRuleSet(TermArena* arena, Vocabulary* vocab) const;
  /// Skolemizes and merges the nested-variant rule set (Theorem 5.2).
  SoTgd NestedRuleSet(TermArena* arena, Vocabulary* vocab) const;
};

/// Builds the encoding of `instance` per Theorem 5.1 / 5.2.
/// Precondition: instance has at least one pair and alphabet_size >= 1.
PcpEncoding BuildPcpEncoding(TermArena* arena, Vocabulary* vocab,
                             const PcpInstance& instance);

struct PcpChaseOutcome {
  /// True when the goal query became certain (the PCP has a solution).
  bool solved = false;
  uint64_t rounds = 0;
  uint64_t facts = 0;
  ChaseStop stop = ChaseStop::kFixpoint;
  /// Governor telemetry: chase steps taken and bytes observed.
  uint64_t budget_steps = 0;
  uint64_t budget_bytes = 0;

  /// Ok when the goal was reached or a true fixpoint proved it
  /// unreachable; ResourceExhausted when a budget cut the search short.
  Status ToStatus() const {
    if (solved || stop == ChaseStop::kFixpoint) return Status::Ok();
    return StopReasonToStatus(stop, "pcp semi-decision");
  }
};

/// Runs the chase on the given rule set as a semi-decision procedure:
/// stops as soon as the goal is derivable, or when the budget is
/// exhausted ("not solved within budget").
PcpChaseOutcome SemiDecidePcp(TermArena* arena, Vocabulary* vocab,
                              const PcpEncoding& encoding, const SoTgd& rules,
                              ChaseLimits limits);

}  // namespace tgdkit
