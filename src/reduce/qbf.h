// Theorem 6.3: PSPACE-hardness of nested tgd model checking in query
// complexity, by reduction from QBF satisfiability. For
//   ψ = ∀x₁∃y₁ … ∀xₙ∃yₙ (c₁ ∧ … ∧ c_m)
// the construction produces the s-t simple nested tgd
//
//   τ: ∀x₁,x̃₁ P(x₁,x̃₁) → ∃y₁,ỹ₁ Q(y₁,ỹ₁) ∧
//        [ ∀x₂,x̃₂ P(x₂,x̃₂) → ∃y₂,ỹ₂ Q(y₂,ỹ₂) ∧ [ … ∧ ⋀ᵢ C(lᵢ₁*,lᵢ₂*,lᵢ₃*) ]]
//
// over the fixed instance I = {P(1,0), P(0,1)},
// J = {Q(1,0), Q(0,1)} ∪ ({0,1}³ \ {(0,0,0)}) as C-facts. Negation is
// encoded by the complement variables x̃/ỹ, disjunction by the C relation.
// Then ψ is true iff the instance satisfies τ.
#pragma once

#include "data/instance.h"
#include "dep/dependency.h"
#include "oracle/oracle.h"

namespace tgdkit {

struct QbfReduction {
  NestedTgd tau;
  Instance instance;
};

/// Builds the Theorem 6.3 model-checking instance for `qbf`.
/// Precondition: qbf.num_pairs >= 1.
QbfReduction BuildQbfReduction(TermArena* arena, Vocabulary* vocab,
                               const Qbf& qbf);

}  // namespace tgdkit
