// Theorem 6.1: NP-hardness of Henkin tgd model checking in data
// complexity, by reduction from 3-colorability. For a graph G = (V, E) the
// construction produces the single s-t standard Henkin tgd
//
//   σ:  V(x) ∧ V(y) → T(x, y, f(x), g(y))
//
// and the instance I ∪ J with I = V_G and T_J given by three groups of
// facts: edges get differing color pairs, self-pairs get equal color pairs
// (forcing f = g), and non-adjacent distinct pairs are unconstrained. Then
// G is 3-colorable iff the instance satisfies σ.
#pragma once

#include "data/instance.h"
#include "dep/dependency.h"
#include "oracle/oracle.h"

namespace tgdkit {

struct ThreeColReduction {
  HenkinTgd sigma;
  Instance instance;
};

/// Builds the Theorem 6.1 model-checking instance for `graph`.
ThreeColReduction BuildThreeColReduction(TermArena* arena, Vocabulary* vocab,
                                         const Graph& graph);

}  // namespace tgdkit
