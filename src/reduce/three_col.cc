#include "reduce/three_col.h"

#include <set>
#include <string>

#include "base/strings.h"

namespace tgdkit {

ThreeColReduction BuildThreeColReduction(TermArena* arena, Vocabulary* vocab,
                                         const Graph& graph) {
  RelationId v_rel = vocab->InternRelation("V", 1);
  RelationId t_rel = vocab->InternRelation("T", 4);

  // σ: V(x) ∧ V(y) → T(x, y, cx, cy) with the standard Henkin quantifier
  // (∀x ∃cx / ∀y ∃cy) — the Skolemized form is T(x, y, f(x), g(y)).
  VariableId x = vocab->InternVariable("x");
  VariableId y = vocab->InternVariable("y");
  VariableId cx = vocab->InternVariable("cx");
  VariableId cy = vocab->InternVariable("cy");
  HenkinTgd sigma;
  sigma.quantifier = HenkinQuantifier::FromRows({{{x}, {cx}}, {{y}, {cy}}});
  sigma.body = {Atom{v_rel, {arena->MakeVariable(x)}},
                Atom{v_rel, {arena->MakeVariable(y)}}};
  sigma.head = {Atom{t_rel,
                     {arena->MakeVariable(x), arena->MakeVariable(y),
                      arena->MakeVariable(cx), arena->MakeVariable(cy)}}};

  ThreeColReduction out{std::move(sigma), Instance(vocab)};
  Instance& instance = out.instance;

  std::vector<Value> vertex;
  for (uint32_t i = 0; i < graph.num_vertices; ++i) {
    vertex.push_back(
        Value::Constant(vocab->InternConstant(Cat("v", i))));
    instance.AddFact(v_rel, std::vector<Value>{vertex.back()});
  }
  const std::vector<Value> colors{
      Value::Constant(vocab->InternConstant("r")),
      Value::Constant(vocab->InternConstant("g")),
      Value::Constant(vocab->InternConstant("b"))};

  std::set<std::pair<uint32_t, uint32_t>> edge_set;
  for (const auto& [a, b] : graph.edges) {
    edge_set.insert({a, b});
    edge_set.insert({b, a});
  }

  for (uint32_t a = 0; a < graph.num_vertices; ++a) {
    for (uint32_t b = 0; b < graph.num_vertices; ++b) {
      if (edge_set.count({a, b})) {
        // Edge: endpoints must get different colors.
        for (Value c1 : colors) {
          for (Value c2 : colors) {
            if (c1 != c2) {
              instance.AddFact(
                  t_rel, std::vector<Value>{vertex[a], vertex[b], c1, c2});
            }
          }
        }
      } else if (a == b) {
        // Same vertex: forces f(v) = g(v).
        for (Value c : colors) {
          instance.AddFact(t_rel,
                           std::vector<Value>{vertex[a], vertex[b], c, c});
        }
      } else {
        // Distinct non-adjacent: unconstrained.
        for (Value c1 : colors) {
          for (Value c2 : colors) {
            instance.AddFact(
                t_rel, std::vector<Value>{vertex[a], vertex[b], c1, c2});
          }
        }
      }
    }
  }
  return out;
}

}  // namespace tgdkit
