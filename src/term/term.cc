#include "term/term.h"

#include <algorithm>
#include <unordered_set>

#include "base/strings.h"

namespace tgdkit {

namespace {

uint64_t NodeHash(TermKind kind, SymbolId symbol,
                  std::span<const TermId> args) {
  size_t seed = 0x100001b3ULL;
  HashCombine(&seed, static_cast<size_t>(kind));
  HashCombine(&seed, symbol);
  for (TermId a : args) HashCombine(&seed, a);
  return seed;
}

}  // namespace

TermId TermArena::InternNode(TermKind kind, SymbolId symbol,
                             std::span<const TermId> args) {
  uint64_t h = NodeHash(kind, symbol, args);
  std::vector<TermId>& bucket = buckets_[h];
  for (TermId candidate : bucket) {
    const Node& n = nodes_[candidate];
    if (n.kind != kind || n.symbol != symbol || n.num_args != args.size()) {
      continue;
    }
    if (std::equal(args.begin(), args.end(), args_.begin() + n.first_arg)) {
      return candidate;
    }
  }
  Node node;
  node.kind = kind;
  node.symbol = symbol;
  node.first_arg = static_cast<uint32_t>(args_.size());
  node.num_args = static_cast<uint32_t>(args.size());
  args_.insert(args_.end(), args.begin(), args.end());
  TermId id = static_cast<TermId>(nodes_.size());
  nodes_.push_back(node);
  bucket.push_back(id);
  return id;
}

TermId TermArena::MakeVariable(VariableId v) {
  return InternNode(TermKind::kVariable, v, {});
}

TermId TermArena::MakeConstant(ConstantId c) {
  return InternNode(TermKind::kConstant, c, {});
}

TermId TermArena::MakeFunction(FunctionId f, std::span<const TermId> args) {
  return InternNode(TermKind::kFunction, f, args);
}

uint32_t TermArena::Depth(TermId t) const {
  const Node& n = nodes_[t];
  if (n.kind != TermKind::kFunction) return 0;
  uint32_t max_child = 0;
  for (TermId a : args(t)) max_child = std::max(max_child, Depth(a));
  return 1 + max_child;
}

uint64_t TermArena::Size(TermId t) const {
  uint64_t total = 1;
  for (TermId a : args(t)) total += Size(a);
  return total;
}

bool TermArena::IsGround(TermId t) const {
  if (IsVariable(t)) return false;
  for (TermId a : args(t)) {
    if (!IsGround(a)) return false;
  }
  return true;
}

bool TermArena::HasNestedFunction(TermId t) const {
  if (!IsFunction(t)) return false;
  for (TermId a : args(t)) {
    if (IsFunction(a)) return true;
    if (HasNestedFunction(a)) return true;
  }
  return false;
}

void TermArena::CollectVariables(TermId t,
                                 std::vector<VariableId>* out) const {
  if (IsVariable(t)) {
    VariableId v = symbol(t);
    if (std::find(out->begin(), out->end(), v) == out->end()) {
      out->push_back(v);
    }
    return;
  }
  for (TermId a : args(t)) CollectVariables(a, out);
}

std::string TermArena::ToString(TermId t, const Vocabulary& vocab) const {
  switch (kind(t)) {
    case TermKind::kVariable:
      return vocab.VariableName(symbol(t));
    case TermKind::kConstant:
      return Cat("\"", vocab.ConstantName(symbol(t)), "\"");
    case TermKind::kFunction: {
      std::string out = vocab.FunctionName(symbol(t));
      out += "(";
      out += JoinMapped(args(t), ", ", [&](TermId a) {
        return ToString(a, vocab);
      });
      out += ")";
      return out;
    }
  }
  return "<bad-term>";
}

TermId Substitution::Apply(TermArena* arena, TermId t) const {
  switch (arena->kind(t)) {
    case TermKind::kVariable: {
      TermId bound = Lookup(arena->symbol(t));
      return bound == kInvalidTerm ? t : bound;
    }
    case TermKind::kConstant:
      return t;
    case TermKind::kFunction: {
      std::span<const TermId> old_args = arena->args(t);
      std::vector<TermId> new_args;
      new_args.reserve(old_args.size());
      bool changed = false;
      for (TermId a : old_args) {
        TermId na = Apply(arena, a);
        changed |= (na != a);
        new_args.push_back(na);
      }
      if (!changed) return t;
      return arena->MakeFunction(arena->symbol(t), new_args);
    }
  }
  return t;
}

bool MatchTerm(const TermArena& arena, TermId pattern, TermId target,
               Substitution* subst) {
  if (arena.IsVariable(pattern)) {
    VariableId v = arena.symbol(pattern);
    TermId bound = subst->Lookup(v);
    if (bound != kInvalidTerm) return bound == target;
    subst->Bind(v, target);
    return true;
  }
  if (arena.kind(pattern) != arena.kind(target)) return false;
  if (arena.symbol(pattern) != arena.symbol(target)) return false;
  std::span<const TermId> pa = arena.args(pattern);
  std::span<const TermId> ta = arena.args(target);
  if (pa.size() != ta.size()) return false;
  for (size_t i = 0; i < pa.size(); ++i) {
    if (!MatchTerm(arena, pa[i], ta[i], subst)) return false;
  }
  return true;
}

}  // namespace tgdkit
