// Hash-consed first-order terms: variables, constants and function
// applications. Terms are immutable and deduplicated within a TermArena,
// so structural equality is id equality and sub-term sharing is free.
//
// Two distinct uses share this representation:
//  * symbolic terms inside dependencies (variables allowed), and
//  * ground Skolem terms produced by the chase (no variables), whose
//    arena doubles as the canonical labeled-null store.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/vocabulary.h"

namespace tgdkit {

/// Index of a term within its TermArena.
using TermId = uint32_t;

inline constexpr TermId kInvalidTerm = static_cast<TermId>(-1);

enum class TermKind : uint8_t {
  kVariable,
  kConstant,
  kFunction,
};

/// Arena of hash-consed terms. Append-only; TermIds stay valid forever.
class TermArena {
 public:
  /// Returns the unique term id for variable `v`.
  TermId MakeVariable(VariableId v);
  /// Returns the unique term id for constant `c`.
  TermId MakeConstant(ConstantId c);
  /// Returns the unique term id for `f(args...)`.
  TermId MakeFunction(FunctionId f, std::span<const TermId> args);

  TermKind kind(TermId t) const { return nodes_[t].kind; }
  bool IsVariable(TermId t) const { return kind(t) == TermKind::kVariable; }
  bool IsConstant(TermId t) const { return kind(t) == TermKind::kConstant; }
  bool IsFunction(TermId t) const { return kind(t) == TermKind::kFunction; }

  /// The symbol id: VariableId / ConstantId / FunctionId depending on kind.
  SymbolId symbol(TermId t) const { return nodes_[t].symbol; }

  /// Arguments of a function term (empty span for variables/constants).
  std::span<const TermId> args(TermId t) const {
    const Node& n = nodes_[t];
    return {args_.data() + n.first_arg, n.num_args};
  }

  /// Nesting depth: variables/constants have depth 0, f(t1..tk) has
  /// depth 1 + max depth of arguments (f() has depth 1).
  uint32_t Depth(TermId t) const;

  /// Number of nodes in the term tree (with sharing expanded).
  uint64_t Size(TermId t) const;

  /// True iff the term contains no variables.
  bool IsGround(TermId t) const;

  /// True iff the term contains at least one function application nested
  /// inside another function application ("nested term" in SO tgds).
  bool HasNestedFunction(TermId t) const;

  /// Collects the distinct variables of `t` in first-occurrence order.
  void CollectVariables(TermId t, std::vector<VariableId>* out) const;

  /// Renders the term, resolving symbol names through `vocab`.
  std::string ToString(TermId t, const Vocabulary& vocab) const;

  size_t size() const { return nodes_.size(); }

  /// Approximate heap footprint in bytes, for memory-budget accounting
  /// (ResourceGovernor memory source). O(1); counts node/argument storage
  /// plus an amortized estimate of the hash-cons buckets.
  uint64_t ApproxBytes() const {
    return nodes_.capacity() * sizeof(Node) +
           args_.capacity() * sizeof(TermId) +
           nodes_.size() * sizeof(TermId) +  // bucket entries
           buckets_.size() * kBucketOverheadBytes;
  }

 private:
  struct Node {
    TermKind kind;
    SymbolId symbol;
    uint32_t first_arg;
    uint32_t num_args;
  };

  /// Estimated per-bucket overhead of the hash-cons map (node + vector).
  static constexpr uint64_t kBucketOverheadBytes = 64;

  TermId InternNode(TermKind kind, SymbolId symbol,
                    std::span<const TermId> args);

  std::vector<Node> nodes_;
  std::vector<TermId> args_;
  std::unordered_map<uint64_t, std::vector<TermId>> buckets_;
};

/// A mapping from variables to terms; applied recursively.
class Substitution {
 public:
  /// Binds variable `v` to `t`, overwriting any previous binding.
  void Bind(VariableId v, TermId t) { map_[v] = t; }

  /// Returns the binding of `v`, or kInvalidTerm if unbound.
  TermId Lookup(VariableId v) const {
    auto it = map_.find(v);
    return it == map_.end() ? kInvalidTerm : it->second;
  }

  bool Contains(VariableId v) const { return map_.count(v) > 0; }
  size_t size() const { return map_.size(); }
  void Clear() { map_.clear(); }

  /// Applies the substitution to `t`, leaving unbound variables in place.
  /// Result terms are interned in `arena` (which must own `t`).
  TermId Apply(TermArena* arena, TermId t) const;

  const std::unordered_map<VariableId, TermId>& map() const { return map_; }

 private:
  std::unordered_map<VariableId, TermId> map_;
};

/// Syntactic matching: finds a substitution s with s(pattern) == target.
/// `target` is typically ground. Bindings already in `subst` are respected.
/// Returns false and leaves `subst` in an unspecified state on mismatch.
bool MatchTerm(const TermArena& arena, TermId pattern, TermId target,
               Substitution* subst);

}  // namespace tgdkit
