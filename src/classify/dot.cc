#include "classify/dot.h"

#include <map>
#include <set>
#include <vector>

#include "base/strings.h"

namespace tgdkit {

namespace {

std::string PositionName(const Vocabulary& vocab, const Position& p) {
  return Cat(vocab.RelationName(p.first), ".", p.second);
}

/// Collects the body positions of each variable of a part (top level).
std::map<VariableId, std::set<Position>> BodyPositionsOf(
    const TermArena& arena, const SoPart& part) {
  std::map<VariableId, std::set<Position>> out;
  for (const Atom& atom : part.body) {
    for (uint32_t i = 0; i < atom.args.size(); ++i) {
      if (arena.IsVariable(atom.args[i])) {
        out[arena.symbol(atom.args[i])].insert({atom.relation, i});
      }
    }
  }
  return out;
}

}  // namespace

std::string AnalysisDot(const Vocabulary& vocab,
                        const ProgramAnalysis& analysis) {
  const PositionGraph& graph = analysis.graph;
  std::set<uint32_t> cycle_edges;
  const CriterionVerdict& wa = analysis.verdict(Criterion::kWeaklyAcyclic);
  if (const auto* w = std::get_if<CycleWitness>(&wa.witness)) {
    cycle_edges.insert(w->edges.begin(), w->edges.end());
  }
  // A failed triangular-guardedness verdict pins an unguarded triangle:
  // its witness cycle joins the red edge set and the component's nodes
  // get a red border.
  std::set<uint32_t> triangle_nodes;
  const CriterionVerdict& tg =
      analysis.verdict(Criterion::kTriangularlyGuarded);
  if (const auto* w = std::get_if<TriangleWitness>(&tg.witness)) {
    cycle_edges.insert(w->cycle.begin(), w->cycle.end());
    triangle_nodes.insert(w->component.begin(), w->component.end());
  }
  std::string out = "digraph analysis {\n  rankdir=LR;\n";
  for (uint32_t n = 0; n < graph.nodes.size(); ++n) {
    const Position& p = graph.nodes[n];
    out += Cat("  \"", PositionName(vocab, p), "\"");
    std::vector<std::string> attrs;
    if (analysis.affected.affected.count(p)) {
      attrs.push_back("style=filled, fillcolor=lightgray");
    }
    if (triangle_nodes.count(n)) {
      attrs.push_back("penwidth=2, color=red");
    } else if (analysis.marking.marked_positions.count(p)) {
      attrs.push_back("penwidth=2, color=blue");
    }
    if (!attrs.empty()) out += Cat(" [", Join(attrs, ", "), "]");
    out += ";\n";
  }
  for (uint32_t e = 0; e < graph.edges.size(); ++e) {
    const PositionEdge& edge = graph.edges[e];
    out += Cat("  \"", PositionName(vocab, graph.nodes[edge.from]),
               "\" -> \"", PositionName(vocab, graph.nodes[edge.to]),
               "\" [label=\"", analysis.rules[edge.rule].label, "/",
               vocab.VariableName(edge.var), "\"");
    if (edge.special) out += ", style=dashed";
    if (cycle_edges.count(e)) out += ", color=red, penwidth=2";
    out += "];\n";
  }
  out += "}\n";
  return out;
}

std::string Figure2HasseDot(const Figure2Membership& m) {
  std::string out = "digraph hasse {\n  rankdir=BT;\n";
  auto node = [&](const char* name, bool member) {
    out += Cat("  \"", name, "\"");
    if (member) out += " [style=filled, fillcolor=lightgreen]";
    out += ";\n";
  };
  node("full", m.full);
  node("weakly-acyclic", m.weakly_acyclic);
  node("linear", m.linear);
  node("guarded", m.guarded);
  node("weakly-guarded", m.weakly_guarded);
  node("sticky", m.sticky);
  node("sticky-join", m.sticky_join);
  node("triangularly-guarded", m.triangularly_guarded);
  // An edge a -> b reads "a is subsumed by b"; rankdir=BT draws the
  // larger class above, Hasse style.
  const char* edges[][2] = {
      {"full", "weakly-acyclic"},
      {"linear", "guarded"},
      {"guarded", "weakly-guarded"},
      {"sticky", "sticky-join"},
      {"linear", "sticky-join"},
      {"weakly-acyclic", "triangularly-guarded"},
      {"weakly-guarded", "triangularly-guarded"},
      {"sticky-join", "triangularly-guarded"},
  };
  for (const auto& edge : edges) {
    out += Cat("  \"", edge[0], "\" -> \"", edge[1], "\";\n");
  }
  out += "}\n";
  return out;
}

std::string PositionGraphDot(const TermArena& arena, const Vocabulary& vocab,
                             const SoTgd& so) {
  std::set<Position> affected = AffectedPositions(arena, so);
  std::set<Position> nodes;
  // (from, to, special)
  std::set<std::tuple<Position, Position, bool>> edges;

  for (const SoPart& part : so.parts) {
    auto body_positions = BodyPositionsOf(arena, part);
    for (const auto& [var, positions] : body_positions) {
      for (const Position& from : positions) {
        nodes.insert(from);
        for (const Atom& atom : part.head) {
          for (uint32_t i = 0; i < atom.args.size(); ++i) {
            TermId t = atom.args[i];
            Position to{atom.relation, i};
            if (arena.IsVariable(t) && arena.symbol(t) == var) {
              nodes.insert(to);
              edges.insert({from, to, false});
            } else if (arena.IsFunction(t)) {
              std::vector<VariableId> term_vars;
              arena.CollectVariables(t, &term_vars);
              for (VariableId tv : term_vars) {
                if (tv == var) {
                  nodes.insert(to);
                  edges.insert({from, to, true});
                }
              }
            }
          }
        }
      }
    }
  }

  std::string out = "digraph positions {\n  rankdir=LR;\n";
  for (const Position& p : nodes) {
    out += Cat("  \"", PositionName(vocab, p), "\"");
    if (affected.count(p)) {
      out += " [style=filled, fillcolor=lightgray]";
    }
    out += ";\n";
  }
  for (const auto& [from, to, special] : edges) {
    out += Cat("  \"", PositionName(vocab, from), "\" -> \"",
               PositionName(vocab, to), "\"");
    if (special) out += " [style=dashed, label=\"*\"]";
    out += ";\n";
  }
  out += "}\n";
  return out;
}

std::string QuantifierDot(const Vocabulary& vocab,
                          const HenkinQuantifier& quantifier) {
  std::string out = "digraph quantifier {\n";
  for (VariableId x : quantifier.universals()) {
    out += Cat("  \"", vocab.VariableName(x), "\" [shape=box];\n");
  }
  for (VariableId y : quantifier.existentials()) {
    out += Cat("  \"", vocab.VariableName(y),
               "\" [shape=ellipse, style=filled, fillcolor=lightblue];\n");
  }
  for (const auto& [a, b] : quantifier.order()) {
    out += Cat("  \"", vocab.VariableName(a), "\" -> \"",
               vocab.VariableName(b), "\";\n");
  }
  out += "}\n";
  return out;
}

namespace {

void NestingNodeDot(const TermArena& arena, const Vocabulary& vocab,
                    const NestedNode& node, int* counter, int parent,
                    std::string* out) {
  int id = (*counter)++;
  std::string label = JoinMapped(node.body, " & ", [&](const Atom& a) {
    return ToString(arena, vocab, a);
  });
  label += " ->";
  if (!node.exist_vars.empty()) {
    label += " exists ";
    label += JoinMapped(node.exist_vars, ",", [&](VariableId v) {
      return vocab.VariableName(v);
    });
  }
  for (const Atom& atom : node.head_atoms) {
    label += " ";
    label += ToString(arena, vocab, atom);
  }
  *out += Cat("  n", id, " [shape=box, label=\"", label, "\"];\n");
  if (parent >= 0) {
    *out += Cat("  n", parent, " -> n", id, ";\n");
  }
  for (const NestedNode& child : node.children) {
    NestingNodeDot(arena, vocab, child, counter, id, out);
  }
}

}  // namespace

std::string NestingTreeDot(const TermArena& arena, const Vocabulary& vocab,
                           const NestedTgd& nested) {
  std::string out = "digraph nesting {\n";
  int counter = 0;
  NestingNodeDot(arena, vocab, nested.root, &counter, -1, &out);
  out += "}\n";
  return out;
}

}  // namespace tgdkit
