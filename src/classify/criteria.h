// Syntactic decidability criteria for query answering (Figure 2 of the
// paper): the acyclicity, guarded and sticky families. All criteria are
// evaluated on dependencies in Skolemized form (SoTgd rule sets); as the
// paper notes, "allowing plain SO tgds rather than ordinary tgds has no
// effect on the definition of these restrictions".
//
//   finite-expansion / treewidth / unification sets are semantic classes
//   and are represented by their syntactic members below:
//
//   acyclicity family:  full ⊂ weakly acyclic          (Fagin et al. 2005)
//   guarded family:     linear ⊂ guarded ⊂ weakly guarded   (Calì et al.)
//   sticky family:      sticky ⊂ sticky-join            (Calì et al. 2010)
//
// These predicates are thin wrappers over the witness-producing analyzer
// in analyze/analysis.h, which also explains every negative answer.
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <utility>

#include "chase/chase.h"
#include "dep/dependency.h"

namespace tgdkit {

/// A relation position (relation symbol, argument index).
using Position = std::pair<RelationId, uint32_t>;

/// Full: no function terms anywhere (no existential quantification).
bool IsFull(const TermArena& arena, const SoTgd& so);

/// Linear: every rule body is a single atom.
bool IsLinear(const TermArena& arena, const SoTgd& so);

/// Guarded: every rule body has an atom containing all its body variables.
bool IsGuarded(const TermArena& arena, const SoTgd& so);

/// Affected positions (Calì, Gottlob & Kifer): positions where labeled
/// nulls can appear during the chase. Least fixpoint of
///  (1) head positions carrying a functional term are affected;
///  (2) if a body variable occurs only at affected positions, its head
///      positions are affected.
std::set<Position> AffectedPositions(const TermArena& arena, const SoTgd& so);

/// Weakly guarded: every rule body has an atom containing all body
/// variables that occur only at affected positions in the body.
bool IsWeaklyGuarded(const TermArena& arena, const SoTgd& so);

/// Weakly acyclic (Fagin et al. 2005): the position dependency graph —
/// regular edges propagate a universal variable from a body position to a
/// head position, special edges lead from a universal's body positions to
/// every functional-term (existential) head position of the same rule —
/// has no cycle through a special edge. Guarantees chase termination,
/// hence decidable query answering even for SO tgds (paper Section 5).
bool IsWeaklyAcyclic(const TermArena& arena, const SoTgd& so);

/// Sticky (Calì, Gottlob & Pieris): the marking procedure — mark body
/// variables missing from some head atom, propagate markings backwards
/// through head positions — leaves no marked variable occurring in two
/// body positions of one rule.
bool IsSticky(const TermArena& arena, const SoTgd& so);

/// Sticky-join (Calì, Gottlob & Pieris 2010): same marking as sticky,
/// but a marked variable only violates when it occurs in two DISTINCT
/// body atoms — a within-atom repeat is a selection, not a join. Keeps
/// both sticky ⊂ sticky-join and linear ⊂ sticky-join.
bool IsStickyJoin(const TermArena& arena, const SoTgd& so);

/// Triangularly guarded (after Asuncion–Zhang): every triangular
/// component — a strongly connected component of the position dependency
/// graph containing a special edge, i.e. a null-generating loop — obeys
/// one of two repair disciplines: every rule with an edge inside the
/// component guards its component-dangerous variables (the body variables
/// bound only at affected positions that touch the component) with a
/// single body atom, OR no marked variable of such a rule joins two
/// component positions across distinct atoms. Strictly subsumes
/// weakly-acyclic (no triangular components), weakly-guarded (the global
/// guard covers every component-dangerous subset) and sticky-join (no
/// cross-atom marked join anywhere), unifying Figure 2's three maximal
/// decidable fragments.
bool IsTriangularlyGuarded(const TermArena& arena, const SoTgd& so);

/// Structural Skolem-chase complexity tiers (Hanisch–Krötzsch-style):
/// upper bounds on chase cost read off the generating strongly connected
/// components of the position dependency graph. kPolynomial coincides
/// with weak acyclicity (termination guaranteed, null depth bounded by
/// the rank); the higher tiers are bounds conditional on termination.
enum class ComplexityTier : uint8_t {
  kPolynomial,
  kExponential,
  kNonElementary,
};

/// "polynomial" / "exponential" / "non-elementary".
const char* ComplexityTierName(ComplexityTier tier);

/// The structural complexity tier of a rule set.
ComplexityTier ChaseComplexityTier(const TermArena& arena, const SoTgd& so);

/// Empirical termination check via the critical instance (Marnette 2009):
/// the Skolem chase terminates on EVERY instance iff it terminates on the
/// critical instance (one constant ⋆, every relation holding the all-⋆
/// tuple). A semi-decision proxy for the paper's semantic "finite
/// expansion set" class: `true` proves universal termination; `false`
/// only means "no fixpoint within the limits".
struct CriticalInstanceReport {
  bool terminated = false;
  uint64_t rounds = 0;
  uint64_t facts = 0;
};

/// `relations` lists the schema (every relation a body may mention).
CriticalInstanceReport TerminatesOnCriticalInstance(
    TermArena* arena, Vocabulary* vocab, const SoTgd& so,
    std::span<const RelationId> relations, ChaseLimits limits = {});

/// Full membership row for Figure 2. `triangularly_guarded` rides at the
/// end so the rendered row stays a byte-stable extension of the old one.
struct Figure2Membership {
  bool full = false;
  bool weakly_acyclic = false;
  bool linear = false;
  bool guarded = false;
  bool weakly_guarded = false;
  bool sticky = false;
  bool sticky_join = false;
  bool triangularly_guarded = false;
};

Figure2Membership ClassifyFigure2(const TermArena& arena, const SoTgd& so);

/// Renders a membership row, e.g. "linear,guarded,sticky". Class names
/// appear in declaration order; new classes only ever append, so any
/// membership row is a prefix-stable extension of its pre-extension form.
std::string ToString(const Figure2Membership& membership);

}  // namespace tgdkit
