#include "classify/criteria.h"

#include "analyze/analysis.h"

namespace tgdkit {

// The classifiers are thin wrappers over the static analyzer
// (analyze/analysis.h): one source of truth builds the position graph,
// the affected fixpoint and the sticky marking table, and renders a
// verdict — with a concrete witness on failure — per criterion. The
// boolean API below is kept for callers that only need the bit.

bool IsFull(const TermArena& arena, const SoTgd& so) {
  return AnalyzeSo(arena, so).verdict(Criterion::kFull).holds;
}

bool IsLinear(const TermArena& arena, const SoTgd& so) {
  return AnalyzeSo(arena, so).verdict(Criterion::kLinear).holds;
}

bool IsGuarded(const TermArena& arena, const SoTgd& so) {
  return AnalyzeSo(arena, so).verdict(Criterion::kGuarded).holds;
}

std::set<Position> AffectedPositions(const TermArena& arena,
                                     const SoTgd& so) {
  return AnalyzeSo(arena, so).affected.affected;
}

bool IsWeaklyGuarded(const TermArena& arena, const SoTgd& so) {
  return AnalyzeSo(arena, so).verdict(Criterion::kWeaklyGuarded).holds;
}

bool IsWeaklyAcyclic(const TermArena& arena, const SoTgd& so) {
  return AnalyzeSo(arena, so).verdict(Criterion::kWeaklyAcyclic).holds;
}

bool IsSticky(const TermArena& arena, const SoTgd& so) {
  return AnalyzeSo(arena, so).verdict(Criterion::kSticky).holds;
}

bool IsStickyJoin(const TermArena& arena, const SoTgd& so) {
  return AnalyzeSo(arena, so).verdict(Criterion::kStickyJoin).holds;
}

bool IsTriangularlyGuarded(const TermArena& arena, const SoTgd& so) {
  return AnalyzeSo(arena, so).verdict(Criterion::kTriangularlyGuarded).holds;
}

const char* ComplexityTierName(ComplexityTier tier) {
  switch (tier) {
    case ComplexityTier::kPolynomial:
      return "polynomial";
    case ComplexityTier::kExponential:
      return "exponential";
    case ComplexityTier::kNonElementary:
      return "non-elementary";
  }
  return "?";
}

ComplexityTier ChaseComplexityTier(const TermArena& arena, const SoTgd& so) {
  return AnalyzeSo(arena, so).complexity.tier;
}

CriticalInstanceReport TerminatesOnCriticalInstance(
    TermArena* arena, Vocabulary* vocab, const SoTgd& so,
    std::span<const RelationId> relations, ChaseLimits limits) {
  Instance critical(vocab);
  Value star = Value::Constant(vocab->InternConstant("@star"));
  for (RelationId relation : relations) {
    std::vector<Value> tuple(vocab->RelationArity(relation), star);
    critical.AddFact(relation, tuple);
  }
  ChaseResult result = Chase(arena, vocab, so, critical, limits);
  CriticalInstanceReport report;
  report.terminated = result.Terminated();
  report.rounds = result.rounds;
  report.facts = result.instance.NumFacts();
  return report;
}

Figure2Membership ClassifyFigure2(const TermArena& arena, const SoTgd& so) {
  return AnalyzeSo(arena, so).Membership();
}

std::string ToString(const Figure2Membership& m) {
  std::string out;
  auto add = [&](bool flag, const char* name) {
    if (!flag) return;
    if (!out.empty()) out += ",";
    out += name;
  };
  add(m.full, "full");
  add(m.weakly_acyclic, "weakly-acyclic");
  add(m.linear, "linear");
  add(m.guarded, "guarded");
  add(m.weakly_guarded, "weakly-guarded");
  add(m.sticky, "sticky");
  add(m.sticky_join, "sticky-join");
  add(m.triangularly_guarded, "triangularly-guarded");
  return out;
}

}  // namespace tgdkit
