#include "classify/criteria.h"

#include <map>
#include <unordered_set>
#include <vector>

namespace tgdkit {

namespace {

/// Distinct variables of a term, including those nested inside functions.
void TermVariables(const TermArena& arena, TermId t,
                   std::set<VariableId>* out) {
  std::vector<VariableId> vars;
  arena.CollectVariables(t, &vars);
  out->insert(vars.begin(), vars.end());
}

std::set<VariableId> BodyVariables(const TermArena& arena,
                                   const SoPart& part) {
  std::set<VariableId> vars;
  for (const Atom& atom : part.body) {
    for (TermId t : atom.args) TermVariables(arena, t, &vars);
  }
  return vars;
}

/// Body positions of each variable in a part.
std::map<VariableId, std::set<Position>> BodyPositions(
    const TermArena& arena, const SoPart& part) {
  std::map<VariableId, std::set<Position>> out;
  for (const Atom& atom : part.body) {
    for (uint32_t i = 0; i < atom.args.size(); ++i) {
      if (arena.IsVariable(atom.args[i])) {
        out[arena.symbol(atom.args[i])].insert({atom.relation, i});
      }
    }
  }
  return out;
}

}  // namespace

bool IsFull(const TermArena& arena, const SoTgd& so) {
  for (const SoPart& part : so.parts) {
    if (!part.equalities.empty()) return false;
    for (const Atom& atom : part.head) {
      for (TermId t : atom.args) {
        if (arena.IsFunction(t) || arena.HasNestedFunction(t)) return false;
      }
    }
  }
  return true;
}

bool IsLinear(const TermArena& arena, const SoTgd& so) {
  (void)arena;
  for (const SoPart& part : so.parts) {
    if (part.body.size() != 1) return false;
  }
  return true;
}

bool IsGuarded(const TermArena& arena, const SoTgd& so) {
  for (const SoPart& part : so.parts) {
    std::set<VariableId> body_vars = BodyVariables(arena, part);
    bool has_guard = false;
    for (const Atom& atom : part.body) {
      std::set<VariableId> atom_vars;
      for (TermId t : atom.args) TermVariables(arena, t, &atom_vars);
      if (atom_vars == body_vars) {
        has_guard = true;
        break;
      }
    }
    if (!has_guard) return false;
  }
  return true;
}

std::set<Position> AffectedPositions(const TermArena& arena,
                                     const SoTgd& so) {
  std::set<Position> affected;
  // (1) Head positions carrying functional terms.
  for (const SoPart& part : so.parts) {
    for (const Atom& atom : part.head) {
      for (uint32_t i = 0; i < atom.args.size(); ++i) {
        if (arena.IsFunction(atom.args[i])) {
          affected.insert({atom.relation, i});
        }
      }
    }
  }
  // (2) Propagate through universal variables occurring only at affected
  // body positions.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const SoPart& part : so.parts) {
      auto positions = BodyPositions(arena, part);
      for (const auto& [var, body_positions] : positions) {
        bool all_affected = true;
        for (const Position& p : body_positions) {
          if (!affected.count(p)) {
            all_affected = false;
            break;
          }
        }
        if (!all_affected) continue;
        // Every head position where `var` occurs (at the top level)
        // becomes affected.
        for (const Atom& atom : part.head) {
          for (uint32_t i = 0; i < atom.args.size(); ++i) {
            TermId t = atom.args[i];
            if (arena.IsVariable(t) && arena.symbol(t) == var) {
              if (affected.insert({atom.relation, i}).second) changed = true;
            }
          }
        }
      }
    }
  }
  return affected;
}

bool IsWeaklyGuarded(const TermArena& arena, const SoTgd& so) {
  std::set<Position> affected = AffectedPositions(arena, so);
  for (const SoPart& part : so.parts) {
    auto positions = BodyPositions(arena, part);
    // Variables occurring only at affected positions in this body.
    std::set<VariableId> must_guard;
    for (const auto& [var, body_positions] : positions) {
      bool all_affected = true;
      for (const Position& p : body_positions) {
        if (!affected.count(p)) {
          all_affected = false;
          break;
        }
      }
      if (all_affected) must_guard.insert(var);
    }
    if (must_guard.empty()) continue;
    bool has_guard = false;
    for (const Atom& atom : part.body) {
      std::set<VariableId> atom_vars;
      for (TermId t : atom.args) TermVariables(arena, t, &atom_vars);
      bool covers = true;
      for (VariableId v : must_guard) {
        if (!atom_vars.count(v)) {
          covers = false;
          break;
        }
      }
      if (covers) {
        has_guard = true;
        break;
      }
    }
    if (!has_guard) return false;
  }
  return true;
}

bool IsWeaklyAcyclic(const TermArena& arena, const SoTgd& so) {
  // Build the position dependency graph.
  std::map<Position, size_t> index;
  auto node = [&](Position p) {
    auto [it, inserted] = index.emplace(p, index.size());
    return it->second;
  };
  std::vector<std::pair<size_t, size_t>> regular, special;
  for (const SoPart& part : so.parts) {
    auto body_positions = BodyPositions(arena, part);
    for (const auto& [var, positions] : body_positions) {
      for (const Position& from : positions) {
        size_t from_node = node(from);
        for (const Atom& atom : part.head) {
          for (uint32_t i = 0; i < atom.args.size(); ++i) {
            TermId t = atom.args[i];
            if (arena.IsVariable(t) && arena.symbol(t) == var) {
              regular.emplace_back(from_node, node({atom.relation, i}));
            } else if (arena.IsFunction(t)) {
              // Special edge if `var` occurs inside the functional term
              // (the null's value depends on it), per Fagin et al.
              std::set<VariableId> term_vars;
              TermVariables(arena, t, &term_vars);
              if (term_vars.count(var)) {
                special.emplace_back(from_node, node({atom.relation, i}));
              }
            }
          }
        }
      }
    }
  }
  size_t n = index.size();
  // Weak acyclicity fails iff some special edge (u, v) lies on a cycle,
  // i.e. v reaches u through any edges. Compute reachability.
  std::vector<std::vector<size_t>> adjacency(n);
  for (const auto& [u, v] : regular) adjacency[u].push_back(v);
  for (const auto& [u, v] : special) adjacency[u].push_back(v);
  auto reaches = [&](size_t from, size_t to) {
    std::vector<bool> seen(n, false);
    std::vector<size_t> stack{from};
    seen[from] = true;
    while (!stack.empty()) {
      size_t u = stack.back();
      stack.pop_back();
      if (u == to) return true;
      for (size_t v : adjacency[u]) {
        if (!seen[v]) {
          seen[v] = true;
          stack.push_back(v);
        }
      }
    }
    return false;
  };
  for (const auto& [u, v] : special) {
    if (reaches(v, u)) return false;
  }
  return true;
}

bool IsSticky(const TermArena& arena, const SoTgd& so) {
  // Marking procedure of Calì, Gottlob & Pieris, applied to Skolemized
  // rules. Occurrences are TOP-LEVEL only: a variable hidden inside a
  // Skolem term corresponds, in the original dependency, to a position
  // held by an existential variable — the universal itself does not
  // appear there, so it counts as dropped (exactly the reading under
  // which the marking is defined on tgds).
  std::set<Position> marked;

  auto occurs_top_level = [&](VariableId var, const Atom& atom) {
    for (TermId t : atom.args) {
      if (arena.IsVariable(t) && arena.symbol(t) == var) return true;
    }
    return false;
  };

  // Initial marking: for each rule and body variable v, if some head atom
  // does not contain v (top level), mark all body positions of v.
  for (const SoPart& part : so.parts) {
    auto body_positions = BodyPositions(arena, part);
    for (const auto& [var, positions] : body_positions) {
      bool in_all_heads = true;
      for (const Atom& atom : part.head) {
        if (!occurs_top_level(var, atom)) {
          in_all_heads = false;
          break;
        }
      }
      if (!in_all_heads) {
        marked.insert(positions.begin(), positions.end());
      }
    }
  }

  // Propagation: if v occurs (top level) in the head of a rule at a
  // marked position, mark all body positions of v in that rule.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const SoPart& part : so.parts) {
      auto body_positions = BodyPositions(arena, part);
      for (const auto& [var, positions] : body_positions) {
        bool propagates = false;
        for (const Atom& atom : part.head) {
          for (uint32_t i = 0; i < atom.args.size(); ++i) {
            if (!marked.count({atom.relation, i})) continue;
            TermId t = atom.args[i];
            if (arena.IsVariable(t) && arena.symbol(t) == var) {
              propagates = true;
              break;
            }
          }
          if (propagates) break;
        }
        if (!propagates) continue;
        for (const Position& p : positions) {
          if (marked.insert(p).second) changed = true;
        }
      }
    }
  }

  // Sticky iff no marked variable occurs more than once in a body.
  for (const SoPart& part : so.parts) {
    std::map<VariableId, int> occurrence_count;
    std::map<VariableId, bool> is_marked;
    for (const Atom& atom : part.body) {
      for (uint32_t i = 0; i < atom.args.size(); ++i) {
        if (!arena.IsVariable(atom.args[i])) continue;
        VariableId v = arena.symbol(atom.args[i]);
        occurrence_count[v] += 1;
        if (marked.count({atom.relation, i})) is_marked[v] = true;
      }
    }
    for (const auto& [var, count] : occurrence_count) {
      if (count > 1 && is_marked[var]) return false;
    }
  }
  return true;
}

bool IsStickyJoin(const TermArena& arena, const SoTgd& so) {
  return IsSticky(arena, so) || IsLinear(arena, so);
}

CriticalInstanceReport TerminatesOnCriticalInstance(
    TermArena* arena, Vocabulary* vocab, const SoTgd& so,
    std::span<const RelationId> relations, ChaseLimits limits) {
  Instance critical(vocab);
  Value star = Value::Constant(vocab->InternConstant("@star"));
  for (RelationId relation : relations) {
    std::vector<Value> tuple(vocab->RelationArity(relation), star);
    critical.AddFact(relation, tuple);
  }
  ChaseResult result = Chase(arena, vocab, so, critical, limits);
  CriticalInstanceReport report;
  report.terminated = result.Terminated();
  report.rounds = result.rounds;
  report.facts = result.instance.NumFacts();
  return report;
}

Figure2Membership ClassifyFigure2(const TermArena& arena, const SoTgd& so) {
  Figure2Membership m;
  m.full = IsFull(arena, so);
  m.weakly_acyclic = IsWeaklyAcyclic(arena, so);
  m.linear = IsLinear(arena, so);
  m.guarded = IsGuarded(arena, so);
  m.weakly_guarded = IsWeaklyGuarded(arena, so);
  m.sticky = IsSticky(arena, so);
  m.sticky_join = IsStickyJoin(arena, so);
  return m;
}

std::string ToString(const Figure2Membership& m) {
  std::string out;
  auto add = [&](bool flag, const char* name) {
    if (!flag) return;
    if (!out.empty()) out += ",";
    out += name;
  };
  add(m.full, "full");
  add(m.weakly_acyclic, "weakly-acyclic");
  add(m.linear, "linear");
  add(m.guarded, "guarded");
  add(m.weakly_guarded, "weakly-guarded");
  add(m.sticky, "sticky");
  add(m.sticky_join, "sticky-join");
  return out;
}

}  // namespace tgdkit
