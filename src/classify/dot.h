// GraphViz (DOT) exports of the structures behind the paper's figures:
// the position dependency graph of a rule set (weak acyclicity, Figure 2),
// the order graph of a Henkin quantifier (Section 3.1), and the nesting
// tree of a nested tgd. Render with `dot -Tpng`.
#pragma once

#include <string>

#include "analyze/analysis.h"
#include "classify/criteria.h"
#include "dep/dependency.h"

namespace tgdkit {

/// The analyzer's position dependency graph with full provenance: nodes
/// are relation positions (affected ones shaded, sticky-marked ones with
/// a bold border), edges carry "rule label / variable" labels, special
/// edges are dashed, and — when the weak-acyclicity verdict failed — the
/// witness cycle is drawn in red. A failed triangular-guardedness
/// verdict additionally draws its witness triangle in red: the unguarded
/// component's nodes get a red border and its cycle joins the red edges.
std::string AnalysisDot(const Vocabulary& vocab,
                        const ProgramAnalysis& analysis);

/// The Hasse diagram of the Figure 2 class landscape, membership-colored:
/// one node per class (members filled green), one edge per direct
/// subsumption — full ⊂ weakly-acyclic, linear ⊂ guarded ⊂
/// weakly-guarded, sticky ⊂ sticky-join ⊃ linear, and triangularly-
/// guarded above weakly-acyclic, weakly-guarded and sticky-join.
std::string Figure2HasseDot(const Figure2Membership& membership);

/// The position dependency graph of `so`: nodes are relation positions,
/// solid edges are regular, dashed edges are special (they introduce
/// nulls). Affected positions are shaded. A cycle through a dashed edge
/// is exactly a weak-acyclicity violation.
std::string PositionGraphDot(const TermArena& arena, const Vocabulary& vocab,
                             const SoTgd& so);

/// The order graph of a Henkin quantifier: universals as boxes,
/// existentials as ellipses, one edge per generator pair.
std::string QuantifierDot(const Vocabulary& vocab,
                          const HenkinQuantifier& quantifier);

/// The nesting tree of a nested tgd: one node per part, labeled with its
/// body and direct head atoms.
std::string NestingTreeDot(const TermArena& arena, const Vocabulary& vocab,
                           const NestedTgd& nested);

}  // namespace tgdkit
