#include "mc/model_check.h"

#include <functional>
#include <map>
#include <optional>
#include <unordered_set>

#include "dep/skolem.h"
#include "homo/matcher.h"

namespace tgdkit {

// ---------------------------------------------------------------------------
// tgds

bool CheckTgd(const TermArena& arena, const Instance& instance,
              const Tgd& tgd) {
  Matcher body(&arena, &instance, tgd.body);
  Matcher head(&arena, &instance, tgd.head);
  bool ok = true;
  body.ForEach({}, [&](const Assignment& assignment) {
    if (!head.Exists(assignment)) {
      ok = false;
      return false;
    }
    return true;
  });
  return ok;
}

std::string TgdViolation::ToString(const Vocabulary& vocab,
                                   const Instance& instance) const {
  std::string out;
  // Deterministic order for readability.
  std::map<std::string, Value> sorted;
  for (const auto& [var, value] : trigger) {
    sorted.emplace(vocab.VariableName(var), value);
  }
  for (const auto& [name, value] : sorted) {
    if (!out.empty()) out += ", ";
    out += name;
    out += "=";
    out += instance.ValueToString(value);
  }
  return out;
}

std::optional<TgdViolation> FindTgdViolation(const TermArena& arena,
                                             const Instance& instance,
                                             const Tgd& tgd,
                                             ResourceGovernor* governor) {
  Matcher body(&arena, &instance, tgd.body);
  body.set_governor(governor);
  Matcher head(&arena, &instance, tgd.head);
  head.set_governor(governor);
  std::optional<TgdViolation> violation;
  body.ForEach({}, [&](const Assignment& assignment) {
    if (!head.Exists(assignment)) {
      violation = TgdViolation{assignment};
      return false;
    }
    return true;
  });
  return violation;
}

bool CheckTgds(const TermArena& arena, const Instance& instance,
               std::span<const Tgd> tgds) {
  for (const Tgd& tgd : tgds) {
    if (!CheckTgd(arena, instance, tgd)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// nested tgds

namespace {

bool EvalNestedNode(const TermArena& arena, const Instance& instance,
                    const NestedNode& node, const Assignment& assignment,
                    const std::vector<Value>& domain,
                    ResourceGovernor* governor);

/// Checks one trigger of a nested node: given bindings for the node's
/// body (and all outer variables), some choice of the existentials must
/// satisfy the direct head atoms and, recursively, all children. A budget
/// stop surfaces as "false" here; callers must consult the governor
/// before trusting a negative verdict.
bool EvalNestedConclusion(const TermArena& arena, const Instance& instance,
                          const NestedNode& node,
                          const Assignment& body_assignment,
                          const std::vector<Value>& domain,
                          ResourceGovernor* governor) {
  const std::vector<VariableId>& exist = node.exist_vars;
  std::function<bool(size_t, Assignment&)> choose =
      [&](size_t index, Assignment& current) -> bool {
    if (governor != nullptr && !governor->Poll()) return false;
    if (index == exist.size()) {
      // All existentials chosen: direct head atoms must be facts.
      Matcher head(&arena, &instance, node.head_atoms);
      head.set_governor(governor);
      Assignment probe = current;
      if (!node.head_atoms.empty() && !head.FindOne(&probe)) return false;
      for (const NestedNode& child : node.children) {
        if (!EvalNestedNode(arena, instance, child, current, domain,
                            governor)) {
          return false;
        }
      }
      return true;
    }
    for (Value v : domain) {
      current[exist[index]] = v;
      if (choose(index + 1, current)) return true;
      if (governor != nullptr && governor->exhausted()) break;
    }
    current.erase(exist[index]);
    return false;
  };
  Assignment current = body_assignment;
  return choose(0, current);
}

/// Evaluates a nested node under `assignment` (bindings for all outer
/// variables): every homomorphism of the body must admit a satisfying
/// choice of existentials.
bool EvalNestedNode(const TermArena& arena, const Instance& instance,
                    const NestedNode& node, const Assignment& assignment,
                    const std::vector<Value>& domain,
                    ResourceGovernor* governor) {
  Matcher body(&arena, &instance, node.body);
  body.set_governor(governor);
  bool ok = true;
  body.ForEach(assignment, [&](const Assignment& body_assignment) {
    if (!EvalNestedConclusion(arena, instance, node, body_assignment,
                              domain, governor)) {
      ok = false;
      return false;
    }
    return true;
  });
  return ok;
}

}  // namespace

bool CheckNested(const TermArena& arena, const Instance& instance,
                 const NestedTgd& nested) {
  std::vector<Value> domain = instance.ActiveDomain();
  return EvalNestedNode(arena, instance, nested.root, {}, domain, nullptr);
}

std::optional<TgdViolation> FindNestedViolation(const TermArena& arena,
                                                const Instance& instance,
                                                const NestedTgd& nested,
                                                ResourceGovernor* governor) {
  std::vector<Value> domain = instance.ActiveDomain();
  Matcher body(&arena, &instance, nested.root.body);
  body.set_governor(governor);
  std::optional<TgdViolation> violation;
  body.ForEach({}, [&](const Assignment& body_assignment) {
    if (!EvalNestedConclusion(arena, instance, nested.root, body_assignment,
                              domain, governor)) {
      if (governor != nullptr && governor->exhausted()) return false;
      violation = TgdViolation{body_assignment};
      return false;
    }
    return true;
  });
  return violation;
}

// ---------------------------------------------------------------------------
// SO tgds: lazy second-order search

namespace {

/// Key of one function-table entry: function symbol + argument values.
struct EntryKey {
  FunctionId function;
  std::vector<Value> args;

  bool operator<(const EntryKey& other) const {
    if (function != other.function) return function < other.function;
    return args < other.args;
  }
};

class SoSearcher {
 public:
  SoSearcher(const TermArena& arena, const Instance& instance,
             const SoTgd& so, const McOptions& options)
      : arena_(arena),
        instance_(instance),
        options_(options),
        governor_(options.budget) {
    governor_.AddMemorySource([this] { return TableBytes(); });
    governor_.AddMemorySource(
        [this] { return constraints_.size() * kConstraintOverheadBytes; });
    // Catch budgets that are exhausted on entry (a cancelled token, an
    // already-passed deadline) even when the search itself would finish
    // before the first slow-path poll.
    governor_.CheckNow();
    if (governor_.exhausted()) return;
    domain_ = instance.ActiveDomain();
    // Materialize all ground constraints: one per part per body
    // homomorphism. This enumeration itself can be exponential, so it
    // runs under the governor too.
    for (const SoPart& part : so.parts) {
      Matcher body(&arena_, &instance_, part.body);
      body.set_governor(&governor_);
      body.ForEach({}, [&](const Assignment& assignment) {
        constraints_.push_back(Constraint{&part, assignment});
        return true;
      });
      if (governor_.exhausted()) break;
    }
  }

  McResult Run() {
    McResult result;
    if (governor_.exhausted()) {
      result.budget_exceeded = true;
      result.stop = governor_.reason();
      return result;
    }
    if (domain_.empty()) {
      // No active domain: bodies cannot match (non-empty by definition),
      // so there are no constraints and the SO tgd holds vacuously.
      result.satisfied = constraints_.empty();
      result.branches = 0;
      return result;
    }
    bool ok = Satisfy(0);
    result.satisfied = ok;
    result.budget_exceeded = budget_exceeded_ || governor_.exhausted();
    result.branches = branches_;
    if (result.budget_exceeded) {
      result.satisfied = false;
      result.stop = governor_.exhausted() ? governor_.reason()
                                          : StopReason::kStepLimit;
    }
    return result;
  }

 private:
  struct Constraint {
    const SoPart* part;
    Assignment assignment;
  };

  /// Evaluates a term under `assignment` and the current partial table.
  /// Returns the value, or nullopt with `*blocked` set to the missing
  /// entry.
  std::optional<Value> Eval(TermId t, const Assignment& assignment,
                            EntryKey* blocked) {
    switch (arena_.kind(t)) {
      case TermKind::kVariable:
        return assignment.at(arena_.symbol(t));
      case TermKind::kConstant:
        return Value::Constant(arena_.symbol(t));
      case TermKind::kFunction: {
        EntryKey key;
        key.function = arena_.symbol(t);
        for (TermId a : arena_.args(t)) {
          std::optional<Value> v = Eval(a, assignment, blocked);
          if (!v.has_value()) return std::nullopt;
          key.args.push_back(*v);
        }
        auto it = table_.find(key);
        if (it == table_.end()) {
          *blocked = std::move(key);
          return std::nullopt;
        }
        return it->second;
      }
    }
    return std::nullopt;
  }

  /// Checks constraint `index` as far as possible. Returns:
  ///   kSatisfied / kViolated, or kBlocked with the missing entry.
  enum class Outcome { kSatisfied, kViolated, kBlocked };

  Outcome Check(const Constraint& c, EntryKey* blocked) {
    for (const SoEquality& eq : c.part->equalities) {
      std::optional<Value> lhs = Eval(eq.lhs, c.assignment, blocked);
      if (!lhs.has_value()) return Outcome::kBlocked;
      std::optional<Value> rhs = Eval(eq.rhs, c.assignment, blocked);
      if (!rhs.has_value()) return Outcome::kBlocked;
      if (*lhs != *rhs) return Outcome::kSatisfied;  // antecedent false
    }
    for (const Atom& atom : c.part->head) {
      std::vector<Value> args;
      for (TermId t : atom.args) {
        std::optional<Value> v = Eval(t, c.assignment, blocked);
        if (!v.has_value()) return Outcome::kBlocked;
        args.push_back(*v);
      }
      if (!instance_.Contains(atom.relation, args)) return Outcome::kViolated;
    }
    return Outcome::kSatisfied;
  }

  /// Satisfies constraints [index, end), branching on blocked entries.
  bool Satisfy(size_t index) {
    if (budget_exceeded_) return false;
    if (index == constraints_.size()) return true;
    EntryKey blocked;
    switch (Check(constraints_[index], &blocked)) {
      case Outcome::kSatisfied:
        return Satisfy(index + 1);
      case Outcome::kViolated:
        return false;
      case Outcome::kBlocked:
        break;
    }
    for (Value v : domain_) {
      if (++branches_ > options_.max_branches) {
        budget_exceeded_ = true;
        return false;
      }
      if (!governor_.Poll()) {
        budget_exceeded_ = true;
        return false;
      }
      table_[blocked] = v;
      // Re-check the same constraint; it may block on further entries.
      if (Satisfy(index)) return true;
      table_.erase(blocked);
      if (budget_exceeded_) return false;
    }
    return false;
  }

  /// Approximate bytes held by the partial function table (map nodes plus
  /// the argument vectors inside the keys).
  uint64_t TableBytes() const {
    return table_.size() * (sizeof(EntryKey) + sizeof(Value) + 48);
  }

  static constexpr uint64_t kConstraintOverheadBytes = 96;

  const TermArena& arena_;
  const Instance& instance_;
  McOptions options_;
  ResourceGovernor governor_;
  std::vector<Value> domain_;
  std::vector<Constraint> constraints_;
  std::map<EntryKey, Value> table_;
  uint64_t branches_ = 0;
  bool budget_exceeded_ = false;
};

}  // namespace

McResult CheckSo(const TermArena& arena, const Instance& instance,
                 const SoTgd& so, const McOptions& options) {
  SoSearcher searcher(arena, instance, so, options);
  return searcher.Run();
}

McResult CheckHenkin(TermArena* arena, Vocabulary* vocab,
                     const Instance& instance, const HenkinTgd& henkin,
                     const McOptions& options) {
  SoTgd so = HenkinToSo(arena, vocab, henkin);
  return CheckSo(*arena, instance, so, options);
}

McResult CheckHenkins(TermArena* arena, Vocabulary* vocab,
                      const Instance& instance,
                      std::span<const HenkinTgd> henkins,
                      const McOptions& options) {
  McResult combined;
  combined.satisfied = true;
  for (const HenkinTgd& henkin : henkins) {
    McResult one = CheckHenkin(arena, vocab, instance, henkin, options);
    combined.branches += one.branches;
    if (one.budget_exceeded) {
      combined.budget_exceeded = true;
      combined.satisfied = false;
      combined.stop = one.stop;
      return combined;
    }
    if (!one.satisfied) {
      combined.satisfied = false;
      return combined;
    }
  }
  return combined;
}

}  // namespace tgdkit
