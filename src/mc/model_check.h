// Model checking (Section 6 of the paper): does an instance satisfy a
// dependency?
//
//  * tgds — first-order: for every body homomorphism there must be an
//    extension satisfying the head (Π₂ᵖ in combined complexity).
//  * nested tgds — recursive quantifier-alternation evaluator (PSPACE in
//    query/combined complexity, Theorem 6.3).
//  * SO tgds / Henkin tgds — second-order semantics: there must EXIST
//    interpretations of the function symbols over the active domain of the
//    instance making every part true (Fagin et al. 2005). Implemented as a
//    lazy backtracking search over partial function tables, branching only
//    on entries that constraints actually touch (NEXPTIME in general,
//    Theorems 6.1/6.2).
//
// A set of Henkin tgds is checked dependency-by-dependency: each Henkin
// tgd quantifies its own functions, unlike the parts of one SO tgd which
// share a single ∃f̄ prefix — the distinction at the heart of Section 4.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "base/budget.h"
#include "data/instance.h"
#include "dep/dependency.h"
#include "homo/matcher.h"

namespace tgdkit {

/// Budget for the second-order search.
struct McOptions {
  /// Maximum number of branching decisions before giving up.
  uint64_t max_branches = 50'000'000;
  /// Cross-cutting resource budget (deadline, bytes, steps, cancellation).
  /// One step = one matcher row probe or one branching decision.
  ExecutionBudget budget;
};

/// Result of a (possibly budgeted) model check.
struct McResult {
  bool satisfied = false;
  /// True when the search exhausted its budget; `satisfied` is then
  /// meaningless.
  bool budget_exceeded = false;
  /// Branching decisions taken (second-order checks only).
  uint64_t branches = 0;
  /// Why the search ended; kFixpoint means it ran to completion and
  /// `satisfied` is authoritative.
  StopReason stop = StopReason::kFixpoint;

  /// Machine-readable outcome: Ok when complete, ResourceExhausted with
  /// the stop reason otherwise.
  Status ToStatus() const { return StopReasonToStatus(stop, "model check"); }
};

/// First-order model checking for a tgd.
bool CheckTgd(const TermArena& arena, const Instance& instance,
              const Tgd& tgd);

/// A violation witness: the body homomorphism that has no head extension.
struct TgdViolation {
  Assignment trigger;

  /// Renders the witness, e.g. "e=alice, d=cs".
  std::string ToString(const Vocabulary& vocab,
                       const Instance& instance) const;
};

/// Finds a violating trigger of `tgd` in `instance`, if any. With a
/// governor, the search stops cleanly once the budget is exhausted;
/// `nullopt` then means "no violation found within budget" (check
/// governor->exhausted()).
std::optional<TgdViolation> FindTgdViolation(const TermArena& arena,
                                             const Instance& instance,
                                             const Tgd& tgd,
                                             ResourceGovernor* governor =
                                                 nullptr);

/// Checks every tgd in the set.
bool CheckTgds(const TermArena& arena, const Instance& instance,
               std::span<const Tgd> tgds);

/// PSPACE evaluator for nested tgds (recursive quantifier alternation).
bool CheckNested(const TermArena& arena, const Instance& instance,
                 const NestedTgd& nested);

/// Finds a violating ROOT trigger of a nested tgd: a homomorphism of the
/// root body for which no choice of existentials satisfies the nested
/// conclusion. Returns nullopt when the instance is a model (or, with a
/// governor, when the budget ran out first — check governor->exhausted()).
std::optional<TgdViolation> FindNestedViolation(const TermArena& arena,
                                                const Instance& instance,
                                                const NestedTgd& nested,
                                                ResourceGovernor* governor =
                                                    nullptr);

/// Second-order model checking for an SO tgd: searches for function
/// interpretations over the active domain satisfying all parts.
McResult CheckSo(const TermArena& arena, const Instance& instance,
                 const SoTgd& so, const McOptions& options = {});

/// Second-order model checking for one Henkin tgd (via its Skolemization).
McResult CheckHenkin(TermArena* arena, Vocabulary* vocab,
                     const Instance& instance, const HenkinTgd& henkin,
                     const McOptions& options = {});

/// Checks a set of Henkin tgds, each with its own function quantifiers.
McResult CheckHenkins(TermArena* arena, Vocabulary* vocab,
                      const Instance& instance,
                      std::span<const HenkinTgd> henkins,
                      const McOptions& options = {});

}  // namespace tgdkit
