// The tgdkit command-line driver, as a testable library. The `tgdkit`
// binary (tools/tgdkit_main.cc) forwards straight into CliMain. The
// command implementations live in src/api (a request-scoped library the
// serve daemon shares); this layer binds them to the process: the
// signal-driven global cancellation token, SIGPIPE handling, and the
// `serve` subcommand that turns the process into a resident service.
//
// Commands:
//   tgdkit classify  DEPS                 Figure 1 + Figure 2 membership
//   tgdkit lint      DEPS                 static analysis diagnostics
//   tgdkit chase     DEPS INSTANCE        chase to fixpoint/budget, print
//   tgdkit check     DEPS INSTANCE        model-check each dependency
//   tgdkit certain   DEPS INSTANCE QUERY  certain answers to a query
//   tgdkit normalize DEPS                 Algorithm 1 + Algorithm 2 output
//   tgdkit batch     MANIFEST             fault-isolated corpus sweep
//   tgdkit serve     [--socket PATH]      resident reasoning service
//
// DEPS/INSTANCE are file paths in the formats of parse/parser.h; QUERY is
// a Datalog-style query string. Options:
//   --max-rounds N --max-facts N --max-depth N        chase caps
//   --max-steps N --deadline-ms N --max-memory-mb N   resource budget
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "api/api.h"  // IWYU pragma: export (ExitCode & friends)
#include "base/budget.h"
#include "base/status.h"

namespace tgdkit {

/// Runs one CLI invocation bound to the process-global cancellation
/// token. `args` excludes the program name. Returns a process exit code
/// from the ExitCode table (api/api.h).
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

/// The `tgdkit` binary's entire main: ignores SIGPIPE (a closed stdout
/// must become kExitPipe, not a silent death mid-output), installs the
/// cancellation signal handlers, runs RunCli against std::cout/cerr,
/// and downgrades the exit code to kExitPipe when stdout failed.
int CliMain(const std::vector<std::string>& args);

/// The process-wide cancellation token every RunCli invocation listens
/// on. Cancel() is async-signal-safe, so a SIGINT handler may call it;
/// engines then stop cleanly with StopReason::kCancelled. Reset() before
/// reuse (tests cancel and then run again in the same process).
CancellationToken& GlobalCancellationToken();

/// Wires SIGINT and SIGTERM to cooperative cancellation: the first
/// signal cancels GlobalCancellationToken() (engines stop cleanly with
/// partial output and — with --checkpoint — a final snapshot); a second
/// restores the default disposition and kills the process. Called by the
/// tgdkit binary and by forked batch workers (after resetting the
/// inherited token).
void InstallCancellationSignalHandlers();

}  // namespace tgdkit
