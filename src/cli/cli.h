// The tgdkit command-line driver, as a testable library. The `tgdkit`
// binary (tools/tgdkit_main.cc) forwards straight into RunCli.
//
// Commands:
//   tgdkit classify  DEPS                 Figure 1 + Figure 2 membership
//   tgdkit chase     DEPS INSTANCE        chase to fixpoint/budget, print
//   tgdkit check     DEPS INSTANCE        model-check each dependency
//   tgdkit certain   DEPS INSTANCE QUERY  certain answers to a query
//   tgdkit normalize DEPS                 Algorithm 1 + Algorithm 2 output
//
// DEPS/INSTANCE are file paths in the formats of parse/parser.h; QUERY is
// a Datalog-style query string. Options:
//   --max-rounds N --max-facts N --max-depth N        chase caps
//   --max-steps N --deadline-ms N --max-memory-mb N   resource budget
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "base/budget.h"

namespace tgdkit {

/// Runs one CLI invocation. `args` excludes the program name. Returns the
/// process exit code (0 success, 1 usage error, 2 input error).
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

/// The process-wide cancellation token every RunCli invocation listens
/// on. Cancel() is async-signal-safe, so a SIGINT handler may call it;
/// engines then stop cleanly with StopReason::kCancelled. Reset() before
/// reuse (tests cancel and then run again in the same process).
CancellationToken& GlobalCancellationToken();

}  // namespace tgdkit
