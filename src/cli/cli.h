// The tgdkit command-line driver, as a testable library. The `tgdkit`
// binary (tools/tgdkit_main.cc) forwards straight into RunCli.
//
// Commands:
//   tgdkit classify  DEPS                 Figure 1 + Figure 2 membership
//   tgdkit lint      DEPS                 static analysis diagnostics
//   tgdkit chase     DEPS INSTANCE        chase to fixpoint/budget, print
//   tgdkit check     DEPS INSTANCE        model-check each dependency
//   tgdkit certain   DEPS INSTANCE QUERY  certain answers to a query
//   tgdkit normalize DEPS                 Algorithm 1 + Algorithm 2 output
//   tgdkit batch     MANIFEST             fault-isolated corpus sweep
//
// DEPS/INSTANCE are file paths in the formats of parse/parser.h; QUERY is
// a Datalog-style query string. Options:
//   --max-rounds N --max-facts N --max-depth N        chase caps
//   --max-steps N --deadline-ms N --max-memory-mb N   resource budget
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "base/budget.h"
#include "base/status.h"

namespace tgdkit {

/// Process exit codes of every tgdkit subcommand. The mapping is part of
/// the CLI contract (docs/FORMAT.md, "Exit codes"): the batch
/// supervisor's run ledger and retry policy key off these values, so
/// every subcommand must conform (asserted by tests/cli_exit_code_test).
enum ExitCode : int {
  /// Command completed and every verdict it computed is positive.
  kExitOk = 0,
  /// Malformed command line: unknown command/option, wrong arity,
  /// invalid option value. Deterministic; retrying is pointless.
  kExitUsage = 1,
  /// An input could not be loaded: missing file, parse error, corrupt or
  /// version-mismatched snapshot. Deterministic; retrying is pointless.
  kExitInput = 2,
  /// The command ran to completion and the answer is negative: `check`
  /// found a violation, `lint` found findings at/above --fail-on,
  /// `batch` ended with quarantined or negative-verdict tasks.
  kExitVerdict = 3,
  /// A resource budget stopped the engine (StopReason other than
  /// fixpoint, including cooperative SIGINT/SIGTERM cancellation). The
  /// partial result and a `# status:` line are on stdout.
  kExitResource = 4,
  /// Environment/internal failure: a checkpoint or ledger write failed,
  /// worker subprocess machinery broke. Possibly transient.
  kExitInternal = 5,
};

/// Maps a Status to the exit-code contract above.
int ExitCodeForStatus(const Status& status);

/// Maps an engine stop reason: kExitOk for fixpoint, kExitResource
/// otherwise.
int ExitCodeForStop(StopReason stop);

/// Runs one CLI invocation. `args` excludes the program name. Returns a
/// process exit code from the ExitCode table.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

/// The process-wide cancellation token every RunCli invocation listens
/// on. Cancel() is async-signal-safe, so a SIGINT handler may call it;
/// engines then stop cleanly with StopReason::kCancelled. Reset() before
/// reuse (tests cancel and then run again in the same process).
CancellationToken& GlobalCancellationToken();

/// Wires SIGINT and SIGTERM to cooperative cancellation: the first
/// signal cancels GlobalCancellationToken() (engines stop cleanly with
/// partial output and — with --checkpoint — a final snapshot); a second
/// restores the default disposition and kills the process. Called by the
/// tgdkit binary and by forked batch workers (after resetting the
/// inherited token).
void InstallCancellationSignalHandlers();

}  // namespace tgdkit
