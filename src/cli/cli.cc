#include "cli/cli.h"

#include <csignal>

#include <iostream>

#include "api/api.h"
#include "serve/server.h"

namespace tgdkit {

CancellationToken& GlobalCancellationToken() {
  static CancellationToken token;
  return token;
}

namespace {

extern "C" void HandleCancelSignal(int signum) {
  // Cancel() is a relaxed atomic store: async-signal-safe. The reset to
  // SIG_DFL makes a second signal kill the process the default way.
  GlobalCancellationToken().Cancel();
  std::signal(signum, SIG_DFL);
}

}  // namespace

void InstallCancellationSignalHandlers() {
  // Force the token's construction now, so the handler never triggers a
  // first-use static initialization (which would allocate) in signal
  // context.
  GlobalCancellationToken();
  std::signal(SIGINT, HandleCancelSignal);
  std::signal(SIGTERM, HandleCancelSignal);
}

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  // serve runs the process as a daemon and owns its own drain-on-SIGTERM
  // semantics; everything else is a one-shot command bound to the global
  // token.
  if (!args.empty() && args[0] == "serve") {
    return RunServeCommand(args, out, err);
  }
  ApiOptions options;
  options.cancel = GlobalCancellationToken();
  return RunCommand(args, out, err, options);
}

int CliMain(const std::vector<std::string>& args) {
  // A downstream reader that goes away (`tgdkit chase ... | head`) turns
  // stdout writes into SIGPIPE, which by default kills the process with
  // no exit code and no diagnostic. Ignore it: the write then fails with
  // EPIPE, the stream goes bad, and we can report the distinct
  // kExitPipe code from the documented contract instead.
  std::signal(SIGPIPE, SIG_IGN);
  InstallCancellationSignalHandlers();
  int code = RunCli(args, std::cout, std::cerr);
  std::cout.flush();
  if (std::cout.fail()) {
    // An unknown prefix of the result was dropped; whatever the command
    // computed, the caller must not treat this run as delivered. The
    // diagnostic itself may also hit a closed stderr — nothing to be
    // done about that.
    std::cerr << "tgdkit: stdout write failed (broken pipe?); output is "
                 "incomplete\n";
    return kExitPipe;
  }
  return code;
}

}  // namespace tgdkit
