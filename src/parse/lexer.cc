#include "parse/lexer.h"

#include <cctype>

#include "base/strings.h"

namespace tgdkit {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kString:
      return "string";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kSemi:
      return "';'";
    case TokenKind::kAmp:
      return "'&'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kColonDash:
      return "':-'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "unknown";
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  uint32_t line = 1;
  uint32_t column = 1;
  size_t i = 0;

  auto push = [&](TokenKind kind, std::string text, uint32_t col) {
    tokens.push_back(Token{kind, std::move(text), line, col});
  };
  auto error = [&](const std::string& msg) {
    return Status::ParseError(
        Cat("line ", line, ", column ", column, ": ", msg));
  };

  while (i < input.size()) {
    char c = input[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++column;
      ++i;
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < input.size() && input[i + 1] == '/')) {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    uint32_t start_col = column;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_' || input[i] == '$')) {
        ++i;
        ++column;
      }
      push(TokenKind::kIdent, std::string(input.substr(start, i - start)),
           start_col);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i]))) {
        ++i;
        ++column;
      }
      push(TokenKind::kInt, std::string(input.substr(start, i - start)),
           start_col);
      continue;
    }
    if (c == '"') {
      ++i;
      ++column;
      size_t start = i;
      while (i < input.size() && input[i] != '"' && input[i] != '\n') {
        ++i;
        ++column;
      }
      if (i >= input.size() || input[i] != '"') {
        return error("unterminated string literal");
      }
      push(TokenKind::kString, std::string(input.substr(start, i - start)),
           start_col);
      ++i;
      ++column;
      continue;
    }
    if (c == '-' && i + 1 < input.size() && input[i + 1] == '>') {
      push(TokenKind::kArrow, "->", start_col);
      i += 2;
      column += 2;
      continue;
    }
    if (c == ':' && i + 1 < input.size() && input[i + 1] == '-') {
      push(TokenKind::kColonDash, ":-", start_col);
      i += 2;
      column += 2;
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '(':
        kind = TokenKind::kLParen;
        break;
      case ')':
        kind = TokenKind::kRParen;
        break;
      case ',':
        kind = TokenKind::kComma;
        break;
      case '.':
        kind = TokenKind::kDot;
        break;
      case ';':
        kind = TokenKind::kSemi;
        break;
      case '&':
        kind = TokenKind::kAmp;
        break;
      case '=':
        kind = TokenKind::kEq;
        break;
      case '[':
        kind = TokenKind::kLBracket;
        break;
      case ']':
        kind = TokenKind::kRBracket;
        break;
      case '{':
        kind = TokenKind::kLBrace;
        break;
      case '}':
        kind = TokenKind::kRBrace;
        break;
      case ':':
        kind = TokenKind::kColon;
        break;
      default:
        return error(Cat("unexpected character '", std::string(1, c), "'"));
    }
    push(kind, std::string(1, c), start_col);
    ++i;
    ++column;
  }
  tokens.push_back(Token{TokenKind::kEnd, "", line, column});
  return tokens;
}

}  // namespace tgdkit
