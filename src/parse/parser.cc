#include "parse/parser.h"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "base/strings.h"

namespace tgdkit {

std::vector<Tgd> DependencyProgram::Tgds() const {
  std::vector<Tgd> out;
  for (const ParsedDependency& d : dependencies) {
    if (d.kind == ParsedDependency::Kind::kTgd) out.push_back(d.tgd);
  }
  return out;
}

std::vector<HenkinTgd> DependencyProgram::Henkins() const {
  std::vector<HenkinTgd> out;
  for (const ParsedDependency& d : dependencies) {
    if (d.kind == ParsedDependency::Kind::kHenkin) out.push_back(d.henkin);
  }
  return out;
}

std::vector<NestedTgd> DependencyProgram::Nesteds() const {
  std::vector<NestedTgd> out;
  for (const ParsedDependency& d : dependencies) {
    if (d.kind == ParsedDependency::Kind::kNested) out.push_back(d.nested);
  }
  return out;
}

std::vector<SoTgd> DependencyProgram::Sos() const {
  std::vector<SoTgd> out;
  for (const ParsedDependency& d : dependencies) {
    if (d.kind == ParsedDependency::Kind::kSo) out.push_back(d.so);
  }
  return out;
}

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords{
      "forall", "exists", "so", "nested", "henkin"};
  return kKeywords;
}

/// Token cursor with arity bookkeeping and error formatting.
class Cursor {
 public:
  Cursor(std::vector<Token> tokens, TermArena* arena, Vocabulary* vocab)
      : tokens_(std::move(tokens)), arena_(arena), vocab_(vocab) {}

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  bool AtKeyword(const char* kw) const {
    return At(TokenKind::kIdent) && Peek().text == kw;
  }
  Token Take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool TryTake(TokenKind kind) {
    if (!At(kind)) return false;
    Take();
    return true;
  }
  bool TryTakeKeyword(const char* kw) {
    if (!AtKeyword(kw)) return false;
    Take();
    return true;
  }

  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    return Status::ParseError(
        Cat("line ", t.line, ", column ", t.column, ": ", msg, " (found ",
            TokenKindName(t.kind),
            t.kind == TokenKind::kIdent ? Cat(" '", t.text, "'") : "", ")"));
  }

  Status Expect(TokenKind kind) {
    if (!At(kind)) {
      return Error(Cat("expected ", TokenKindName(kind)));
    }
    Take();
    return Status::Ok();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (!At(TokenKind::kIdent)) return Error(Cat("expected ", what));
    if (Keywords().count(Peek().text)) {
      return Error(Cat("reserved word '", Peek().text, "' used as ", what));
    }
    return Take().text;
  }

  /// Interns a relation, checking arity consistency.
  Result<RelationId> Relation(const std::string& name, uint32_t arity) {
    RelationId existing = vocab_->FindRelation(name);
    if (existing != kInvalidSymbol &&
        vocab_->RelationArity(existing) != arity) {
      return Error(Cat("relation '", name, "' used with arity ", arity,
                       " but declared with arity ",
                       vocab_->RelationArity(existing)));
    }
    return vocab_->InternRelation(name, arity);
  }

  /// Interns a function, checking arity consistency.
  Result<FunctionId> Function(const std::string& name, uint32_t arity) {
    FunctionId existing = vocab_->FindFunction(name);
    if (existing != kInvalidSymbol &&
        vocab_->FunctionArity(existing) != arity) {
      return Error(Cat("function '", name, "' used with arity ", arity,
                       " but declared with arity ",
                       vocab_->FunctionArity(existing)));
    }
    return vocab_->InternFunction(name, arity);
  }

  TermArena* arena() { return arena_; }
  Vocabulary* vocab() { return vocab_; }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  TermArena* arena_;
  Vocabulary* vocab_;
};

/// Maximum syntactic nesting of function terms. The recursive-descent
/// parser uses one stack frame per level; the cap keeps hostile inputs
/// like f(f(f(...))) from overflowing the stack (clean ParseError
/// instead). Far above anything a real dependency program needs.
constexpr uint32_t kMaxTermNesting = 1000;

/// Parses a term in dependency context: identifiers are variables (or
/// function applications when followed by '('), strings/ints constants.
Result<TermId> ParseTerm(Cursor* c, uint32_t depth = 0) {
  if (depth > kMaxTermNesting) {
    return c->Error(
        Cat("term nesting deeper than ", kMaxTermNesting, " levels"));
  }
  if (c->At(TokenKind::kString) || c->At(TokenKind::kInt)) {
    return c->arena()->MakeConstant(c->vocab()->InternConstant(c->Take().text));
  }
  Result<std::string> name = c->ExpectIdent("term");
  if (!name.ok()) return name.status();
  if (!c->TryTake(TokenKind::kLParen)) {
    return c->arena()->MakeVariable(c->vocab()->InternVariable(*name));
  }
  std::vector<TermId> args;
  if (!c->At(TokenKind::kRParen)) {
    for (;;) {
      Result<TermId> arg = ParseTerm(c, depth + 1);
      if (!arg.ok()) return arg.status();
      args.push_back(*arg);
      if (!c->TryTake(TokenKind::kComma)) break;
    }
  }
  TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kRParen));
  Result<FunctionId> f =
      c->Function(*name, static_cast<uint32_t>(args.size()));
  if (!f.ok()) return f.status();
  return c->arena()->MakeFunction(*f, args);
}

/// Parses a relational atom R(t1, ..., tk).
Result<Atom> ParseAtom(Cursor* c) {
  Result<std::string> name = c->ExpectIdent("relation name");
  if (!name.ok()) return name.status();
  TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kLParen));
  Atom atom;
  if (!c->At(TokenKind::kRParen)) {
    for (;;) {
      Result<TermId> arg = ParseTerm(c);
      if (!arg.ok()) return arg.status();
      atom.args.push_back(*arg);
      if (!c->TryTake(TokenKind::kComma)) break;
    }
  }
  TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kRParen));
  Result<RelationId> rel =
      c->Relation(*name, static_cast<uint32_t>(atom.args.size()));
  if (!rel.ok()) return rel.status();
  atom.relation = *rel;
  return atom;
}

/// Parses '&'-separated atoms (function-free enforced by validation later).
Result<std::vector<Atom>> ParseAtomList(Cursor* c) {
  std::vector<Atom> atoms;
  for (;;) {
    Result<Atom> atom = ParseAtom(c);
    if (!atom.ok()) return atom.status();
    atoms.push_back(*atom);
    if (!c->TryTake(TokenKind::kAmp)) break;
  }
  return atoms;
}

Result<std::vector<VariableId>> ParseVarList(Cursor* c) {
  std::vector<VariableId> vars;
  for (;;) {
    Result<std::string> name = c->ExpectIdent("variable");
    if (!name.ok()) return name.status();
    vars.push_back(c->vocab()->InternVariable(*name));
    if (!c->TryTake(TokenKind::kComma)) break;
  }
  return vars;
}

// --- tgd -------------------------------------------------------------------

Result<Tgd> ParseTgd(Cursor* c) {
  Tgd tgd;
  if (c->TryTakeKeyword("forall")) {
    // Universals are implicit from the body; an explicit list is allowed
    // and ignored (checked by validation).
    Result<std::vector<VariableId>> vars = ParseVarList(c);
    if (!vars.ok()) return vars.status();
  }
  Result<std::vector<Atom>> body = ParseAtomList(c);
  if (!body.ok()) return body.status();
  tgd.body = std::move(*body);
  TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kArrow));
  if (c->TryTakeKeyword("exists")) {
    Result<std::vector<VariableId>> vars = ParseVarList(c);
    if (!vars.ok()) return vars.status();
    tgd.exist_vars = std::move(*vars);
    TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kDot));
  }
  Result<std::vector<Atom>> head = ParseAtomList(c);
  if (!head.ok()) return head.status();
  tgd.head = std::move(*head);
  return tgd;
}

// --- SO tgd ----------------------------------------------------------------

/// A body item of an SO part: either a relational atom or an equality.
/// Disambiguated by the token after the callable: '=' makes it a term.
Status ParseSoBodyItem(Cursor* c, SoPart* part) {
  if (c->At(TokenKind::kString) || c->At(TokenKind::kInt)) {
    // Constant on the left of an equality.
    Result<TermId> lhs = ParseTerm(c);
    if (!lhs.ok()) return lhs.status();
    TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kEq));
    Result<TermId> rhs = ParseTerm(c);
    if (!rhs.ok()) return rhs.status();
    part->equalities.push_back({*lhs, *rhs});
    return Status::Ok();
  }
  Result<std::string> name = c->ExpectIdent("atom or term");
  if (!name.ok()) return name.status();
  if (!c->At(TokenKind::kLParen)) {
    // Bare identifier: must be the left side of an equality (a variable).
    TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kEq));
    TermId lhs = c->arena()->MakeVariable(c->vocab()->InternVariable(*name));
    Result<TermId> rhs = ParseTerm(c);
    if (!rhs.ok()) return rhs.status();
    part->equalities.push_back({lhs, *rhs});
    return Status::Ok();
  }
  // name '(' args ')': atom, or function term if '=' follows.
  c->Take();  // '('
  std::vector<TermId> args;
  if (!c->At(TokenKind::kRParen)) {
    for (;;) {
      Result<TermId> arg = ParseTerm(c);
      if (!arg.ok()) return arg.status();
      args.push_back(*arg);
      if (!c->TryTake(TokenKind::kComma)) break;
    }
  }
  TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kRParen));
  if (c->TryTake(TokenKind::kEq)) {
    Result<FunctionId> f =
        c->Function(*name, static_cast<uint32_t>(args.size()));
    if (!f.ok()) return f.status();
    TermId lhs = c->arena()->MakeFunction(*f, args);
    Result<TermId> rhs = ParseTerm(c);
    if (!rhs.ok()) return rhs.status();
    part->equalities.push_back({lhs, *rhs});
    return Status::Ok();
  }
  Result<RelationId> rel =
      c->Relation(*name, static_cast<uint32_t>(args.size()));
  if (!rel.ok()) return rel.status();
  Atom atom;
  atom.relation = *rel;
  atom.args = std::move(args);
  part->body.push_back(std::move(atom));
  return Status::Ok();
}

Result<SoTgd> ParseSoTgd(Cursor* c) {
  SoTgd so;
  std::vector<std::string> function_names;
  // `so { ... }` with no function symbols is the full-tgd case.
  if (c->TryTakeKeyword("exists")) {
    for (;;) {
      Result<std::string> name = c->ExpectIdent("function symbol");
      if (!name.ok()) return name.status();
      // Arity is fixed at first use inside the parts; remember the name.
      so.functions.push_back(kInvalidSymbol);  // patched below
      function_names.push_back(*name);
      if (!c->TryTake(TokenKind::kComma)) break;
    }
  } else if (!c->At(TokenKind::kLBrace)) {
    return c->Error("expected 'exists' or '{' after 'so'");
  }
  TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kLBrace));
  for (;;) {
    SoPart part;
    for (;;) {
      TGDKIT_RETURN_IF_ERROR(ParseSoBodyItem(c, &part));
      if (!c->TryTake(TokenKind::kAmp)) break;
    }
    TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kArrow));
    Result<std::vector<Atom>> head = ParseAtomList(c);
    if (!head.ok()) return head.status();
    part.head = std::move(*head);
    so.parts.push_back(std::move(part));
    if (!c->TryTake(TokenKind::kSemi)) break;
  }
  TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kRBrace));
  // Patch function ids now that arities are known from use.
  for (size_t i = 0; i < so.functions.size(); ++i) {
    FunctionId f = c->vocab()->FindFunction(function_names[i]);
    if (f == kInvalidSymbol) {
      return c->Error(Cat("declared function '", function_names[i],
                          "' never used in the SO tgd"));
    }
    so.functions[i] = f;
  }
  return so;
}

// --- nested tgd -------------------------------------------------------------

Result<NestedNode> ParseNestedNode(Cursor* c,
                                   std::unordered_set<VariableId> scope) {
  NestedNode node;
  bool explicit_forall = false;
  if (c->TryTakeKeyword("forall")) {
    explicit_forall = true;
    Result<std::vector<VariableId>> vars = ParseVarList(c);
    if (!vars.ok()) return vars.status();
    node.univ_vars = std::move(*vars);
  }
  Result<std::vector<Atom>> body = ParseAtomList(c);
  if (!body.ok()) return body.status();
  node.body = std::move(*body);
  if (!explicit_forall) {
    // Infer universals: body variables not bound by an outer part.
    for (VariableId v : CollectAtomVariables(*c->arena(), node.body)) {
      if (!scope.count(v)) node.univ_vars.push_back(v);
    }
  }
  for (VariableId v : node.univ_vars) scope.insert(v);
  TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kArrow));
  if (c->TryTakeKeyword("exists")) {
    Result<std::vector<VariableId>> vars = ParseVarList(c);
    if (!vars.ok()) return vars.status();
    node.exist_vars = std::move(*vars);
    TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kDot));
  }
  for (VariableId v : node.exist_vars) scope.insert(v);
  for (;;) {
    if (c->TryTake(TokenKind::kLBracket)) {
      Result<NestedNode> child = ParseNestedNode(c, scope);
      if (!child.ok()) return child.status();
      node.children.push_back(std::move(*child));
      TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kRBracket));
    } else {
      Result<Atom> atom = ParseAtom(c);
      if (!atom.ok()) return atom.status();
      node.head_atoms.push_back(std::move(*atom));
    }
    if (!c->TryTake(TokenKind::kAmp)) break;
  }
  return node;
}

Result<NestedTgd> ParseNestedTgd(Cursor* c) {
  Result<NestedNode> root = ParseNestedNode(c, {});
  if (!root.ok()) return root.status();
  NestedTgd nested;
  nested.root = std::move(*root);
  return nested;
}

// --- Henkin tgd --------------------------------------------------------------

Result<HenkinTgd> ParseHenkinTgd(Cursor* c) {
  HenkinTgd henkin;
  TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kLBrace));
  for (;;) {
    if (c->TryTakeKeyword("forall")) {
      Result<std::vector<VariableId>> vars = ParseVarList(c);
      if (!vars.ok()) return vars.status();
      for (VariableId v : *vars) henkin.quantifier.AddUniversal(v);
    } else if (c->TryTakeKeyword("exists")) {
      Result<std::string> name = c->ExpectIdent("existential variable");
      if (!name.ok()) return name.status();
      VariableId y = c->vocab()->InternVariable(*name);
      henkin.quantifier.AddExistential(y);
      if (c->TryTake(TokenKind::kLParen)) {
        if (!c->At(TokenKind::kRParen)) {
          Result<std::vector<VariableId>> deps = ParseVarList(c);
          if (!deps.ok()) return deps.status();
          // Dependency lists specify the essential order directly: each
          // listed universal precedes the existential, nothing more.
          for (VariableId x : *deps) henkin.quantifier.AddOrder(x, y);
        }
        TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kRParen));
      }
    } else {
      return c->Error("expected 'forall' or 'exists' in Henkin quantifier");
    }
    if (!c->TryTake(TokenKind::kSemi)) break;
  }
  TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kRBrace));
  Result<std::vector<Atom>> body = ParseAtomList(c);
  if (!body.ok()) return body.status();
  henkin.body = std::move(*body);
  TGDKIT_RETURN_IF_ERROR(c->Expect(TokenKind::kArrow));
  Result<std::vector<Atom>> head = ParseAtomList(c);
  if (!head.ok()) return head.status();
  henkin.head = std::move(*head);
  return henkin;
}

}  // namespace

Result<DependencyProgram> Parser::ParseDependencies(std::string_view text) {
  return ParseDependencyProgram(text, /*validate=*/true);
}

Result<DependencyProgram> Parser::ParseDependenciesLenient(
    std::string_view text) {
  return ParseDependencyProgram(text, /*validate=*/false);
}

Result<DependencyProgram> Parser::ParseDependencyProgram(
    std::string_view text, bool validate) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Cursor c(std::move(*tokens), arena_, vocab_);

  DependencyProgram program;
  while (!c.At(TokenKind::kEnd)) {
    ParsedDependency dep;
    dep.line = c.Peek().line;
    dep.column = c.Peek().column;
    // Optional "label :" prefix.
    if (c.At(TokenKind::kIdent) && !Keywords().count(c.Peek().text) &&
        c.Peek(1).kind == TokenKind::kColon) {
      dep.label = c.Take().text;
      c.Take();  // ':'
    }
    if (c.TryTakeKeyword("so")) {
      dep.kind = ParsedDependency::Kind::kSo;
      Result<SoTgd> so = ParseSoTgd(&c);
      if (!so.ok()) return so.status();
      dep.so = std::move(*so);
      if (validate) TGDKIT_RETURN_IF_ERROR(ValidateSoTgd(*arena_, dep.so));
    } else if (c.TryTakeKeyword("nested")) {
      dep.kind = ParsedDependency::Kind::kNested;
      Result<NestedTgd> nested = ParseNestedTgd(&c);
      if (!nested.ok()) return nested.status();
      dep.nested = std::move(*nested);
      if (validate) {
        TGDKIT_RETURN_IF_ERROR(ValidateNestedTgd(*arena_, dep.nested));
      }
    } else if (c.TryTakeKeyword("henkin")) {
      dep.kind = ParsedDependency::Kind::kHenkin;
      Result<HenkinTgd> henkin = ParseHenkinTgd(&c);
      if (!henkin.ok()) return henkin.status();
      dep.henkin = std::move(*henkin);
      if (validate) {
        TGDKIT_RETURN_IF_ERROR(ValidateHenkinTgd(*arena_, dep.henkin));
      }
    } else {
      dep.kind = ParsedDependency::Kind::kTgd;
      Result<Tgd> tgd = ParseTgd(&c);
      if (!tgd.ok()) return tgd.status();
      dep.tgd = std::move(*tgd);
      if (validate) TGDKIT_RETURN_IF_ERROR(ValidateTgd(*arena_, dep.tgd));
    }
    TGDKIT_RETURN_IF_ERROR(c.Expect(TokenKind::kDot));
    program.dependencies.push_back(std::move(dep));
  }
  return program;
}

Status Parser::ParseInstanceInto(std::string_view text, Instance* out) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Cursor c(std::move(*tokens), arena_, vocab_);
  std::unordered_map<std::string, Value> nulls;

  while (!c.At(TokenKind::kEnd)) {
    Result<std::string> name = c.ExpectIdent("relation name");
    if (!name.ok()) return name.status();
    TGDKIT_RETURN_IF_ERROR(c.Expect(TokenKind::kLParen));
    std::vector<Value> args;
    if (!c.At(TokenKind::kRParen)) {
      for (;;) {
        if (c.At(TokenKind::kIdent) && c.Peek().text[0] == '_') {
          std::string label = c.Take().text.substr(1);
          auto it = nulls.find(label);
          if (it == nulls.end()) {
            it = nulls.emplace(label, out->FreshNull(label)).first;
          }
          args.push_back(it->second);
        } else if (c.At(TokenKind::kIdent) || c.At(TokenKind::kString) ||
                   c.At(TokenKind::kInt)) {
          args.push_back(
              Value::Constant(vocab_->InternConstant(c.Take().text)));
        } else {
          return c.Error("expected constant or _null");
        }
        if (!c.TryTake(TokenKind::kComma)) break;
      }
    }
    TGDKIT_RETURN_IF_ERROR(c.Expect(TokenKind::kRParen));
    TGDKIT_RETURN_IF_ERROR(c.Expect(TokenKind::kDot));
    Result<RelationId> rel =
        c.Relation(*name, static_cast<uint32_t>(args.size()));
    if (!rel.ok()) return rel.status();
    out->AddFact(*rel, args);
  }
  return Status::Ok();
}

Result<ConjunctiveQuery> Parser::ParseQuery(std::string_view text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Cursor c(std::move(*tokens), arena_, vocab_);

  ConjunctiveQuery query;
  // Head: name(vars) :- ...; the head relation is not interned.
  Result<std::string> head_name = c.ExpectIdent("query head");
  if (!head_name.ok()) return head_name.status();
  TGDKIT_RETURN_IF_ERROR(c.Expect(TokenKind::kLParen));
  if (!c.At(TokenKind::kRParen)) {
    Result<std::vector<VariableId>> vars = ParseVarList(&c);
    if (!vars.ok()) return vars.status();
    query.free_vars = std::move(*vars);
  }
  TGDKIT_RETURN_IF_ERROR(c.Expect(TokenKind::kRParen));
  TGDKIT_RETURN_IF_ERROR(c.Expect(TokenKind::kColonDash));
  for (;;) {
    Result<Atom> atom = ParseAtom(&c);
    if (!atom.ok()) return atom.status();
    query.atoms.push_back(std::move(*atom));
    if (!c.TryTake(TokenKind::kComma) && !c.TryTake(TokenKind::kAmp)) break;
  }
  c.TryTake(TokenKind::kDot);
  if (!c.At(TokenKind::kEnd)) {
    return c.Error("trailing input after query");
  }
  // Free variables must occur in the body.
  std::vector<VariableId> body_vars =
      CollectAtomVariables(*arena_, query.atoms);
  for (VariableId v : query.free_vars) {
    if (std::find(body_vars.begin(), body_vars.end(), v) == body_vars.end()) {
      return Status::ParseError(Cat("free variable '",
                                    vocab_->VariableName(v),
                                    "' does not occur in the query body"));
    }
  }
  return query;
}

}  // namespace tgdkit
