// Recursive-descent parser for the tgdkit text format.
//
// Dependency programs (ParseDependencies):
//
//   // tgd (universals implicit from the body)
//   Emp(e, d) -> exists dm . Mgr(e, dm) .
//
//   // SO tgd: parts in braces, terms and equalities allowed
//   so exists fmgr {
//     Emp(e) -> Mgr(e, fmgr(e)) ;
//     Emp(e) & e = fmgr(e) -> SelfMgr(e)
//   } .
//
//   // nested tgd: nested implications in brackets
//   nested Dep(d) -> exists dm . Dep2(d, dm) &
//     [ Emp(e, d) -> Mgr(e, d, dm) ] .
//
//   // Henkin tgd: quantifier block of universals and existentials with
//   // their (essential-order) dependency lists
//   henkin { forall e, d ; exists eid(e) ; exists dm(d) }
//     Emp(e, d) -> Mgr(eid, dm) .
//
// Statements end with '.'; an optional "label :" prefix names them.
// In dependencies, identifiers in term position are variables; constants
// are written as "quoted strings" or integers.
//
// Instances (ParseInstanceInto):  Emp(alice, cs). Dep(cs).
// Here identifiers/strings/integers are constants and _name is a labeled
// null (same name = same null within one call).
//
// Queries (ParseQuery):  ans(x, y) :- Emp(x, d), Mgr(x, y) .
// Free variables are the head arguments; body constants as in deps.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "dep/dependency.h"
#include "parse/lexer.h"
#include "query/query.h"

namespace tgdkit {

/// One parsed statement: exactly one of the four dependency kinds.
struct ParsedDependency {
  enum class Kind { kTgd, kSo, kNested, kHenkin };
  Kind kind;
  std::string label;  // empty if unlabeled
  Tgd tgd;
  SoTgd so;
  NestedTgd nested;
  HenkinTgd henkin;
  /// Source span of the statement (its first token, label included);
  /// 1-based, 0 when the dependency was built programmatically.
  uint32_t line = 0;
  uint32_t column = 0;
};

struct DependencyProgram {
  std::vector<ParsedDependency> dependencies;

  std::vector<Tgd> Tgds() const;
  std::vector<HenkinTgd> Henkins() const;
  std::vector<NestedTgd> Nesteds() const;
  std::vector<SoTgd> Sos() const;
};

/// Parser bound to one arena + vocabulary. Relations and functions get
/// their arity from first use; later uses with a different arity are
/// parse errors.
class Parser {
 public:
  Parser(TermArena* arena, Vocabulary* vocab) : arena_(arena), vocab_(vocab) {}

  /// Parses a dependency program. All parsed dependencies are validated.
  Result<DependencyProgram> ParseDependencies(std::string_view text);

  /// Like ParseDependencies, but skips semantic validation (ValidateTgd
  /// and friends), so structurally complete but ill-formed statements
  /// still come back with their source spans. Used by the static analyzer
  /// to turn validation failures into located diagnostics instead of
  /// aborting at the first offender. Grammar errors still fail the parse.
  Result<DependencyProgram> ParseDependenciesLenient(std::string_view text);

  /// Parses facts into `out` (which must use this parser's vocabulary).
  Status ParseInstanceInto(std::string_view text, Instance* out);

  /// Parses a single Datalog-style conjunctive query.
  Result<ConjunctiveQuery> ParseQuery(std::string_view text);

 private:
  Result<DependencyProgram> ParseDependencyProgram(std::string_view text,
                                                   bool validate);

  TermArena* arena_;
  Vocabulary* vocab_;
};

}  // namespace tgdkit
