// Lexer for the tgdkit text format (dependencies, instances, queries).
//
// Tokens: identifiers ([A-Za-z_][A-Za-z0-9_]*), quoted strings, integers,
// and punctuation ( ) , . ; & = -> [ ] { } : :- . Comments run from
// '//' or '#' to end of line.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace tgdkit {

enum class TokenKind : uint8_t {
  kIdent,
  kString,
  kInt,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemi,
  kAmp,
  kEq,
  kArrow,      // ->
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kColon,
  kColonDash,  // :-
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;  // identifier text / string contents / digits
  uint32_t line;
  uint32_t column;
};

/// Tokenizes `input` completely. Returns ParseError on illegal characters
/// or unterminated strings.
Result<std::vector<Token>> Tokenize(std::string_view input);

/// Human-readable token kind name for error messages.
const char* TokenKindName(TokenKind kind);

}  // namespace tgdkit
