#include "query/query.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "base/strings.h"
#include "homo/matcher.h"

namespace tgdkit {

std::vector<std::vector<Value>> Evaluate(const TermArena& arena,
                                         const Instance& instance,
                                         const ConjunctiveQuery& q) {
  Matcher matcher(&arena, &instance, q.atoms);
  std::set<std::vector<Value>> distinct;
  matcher.ForEach({}, [&](const Assignment& assignment) {
    std::vector<Value> tuple;
    tuple.reserve(q.free_vars.size());
    for (VariableId v : q.free_vars) tuple.push_back(assignment.at(v));
    distinct.insert(std::move(tuple));
    // Boolean queries need only one witness.
    return !q.free_vars.empty();
  });
  return {distinct.begin(), distinct.end()};
}

bool EvaluateBoolean(const TermArena& arena, const Instance& instance,
                     const ConjunctiveQuery& q) {
  Matcher matcher(&arena, &instance, q.atoms);
  return matcher.Exists({});
}

CertainAnswers ComputeCertainAnswers(TermArena* arena, Vocabulary* vocab,
                                     const SoTgd& rules, const Instance& input,
                                     const ConjunctiveQuery& q,
                                     ChaseLimits limits) {
  ChaseResult chased = Chase(arena, vocab, rules, input, limits);
  CertainAnswers out;
  out.chase_stop = chased.stop_reason;
  out.chase_rounds = chased.rounds;
  out.chase_facts = chased.facts_created;
  for (std::vector<Value>& tuple : Evaluate(*arena, chased.instance, q)) {
    bool null_free = true;
    for (Value v : tuple) null_free &= v.is_constant();
    if (null_free) out.answers.push_back(std::move(tuple));
  }
  return out;
}

bool CertainlyHolds(TermArena* arena, Vocabulary* vocab, const SoTgd& rules,
                    const Instance& input, const Fact& goal,
                    ChaseLimits limits) {
  // Chase round-by-round and stop as soon as the goal appears: the chase
  // is a semi-decision procedure for the undecidable cases of Section 5.
  ChaseEngine engine(arena, vocab, rules, input, limits);
  if (engine.instance().Contains(goal.relation, goal.args)) return true;
  while (engine.Step()) {
    if (engine.instance().Contains(goal.relation, goal.args)) return true;
  }
  return engine.instance().Contains(goal.relation, goal.args);
}

namespace {

/// Builds the canonical instance of `atoms` with free variables frozen to
/// distinguished constants and bound variables mapped to nulls.
Instance FreezeAtoms(TermArena* arena, Vocabulary* vocab,
                     std::span<const Atom> atoms,
                     const std::unordered_set<VariableId>& frozen) {
  Instance canonical(vocab);
  std::unordered_map<VariableId, Value> value_of;
  auto value_for = [&](TermId t) {
    if (arena->IsConstant(t)) return Value::Constant(arena->symbol(t));
    VariableId v = arena->symbol(t);
    auto it = value_of.find(v);
    if (it != value_of.end()) return it->second;
    Value value =
        frozen.count(v)
            ? Value::Constant(vocab->InternConstant(
                  Cat("@frz$", vocab->VariableName(v))))
            : canonical.FreshNull();
    value_of.emplace(v, value);
    return value;
  };
  for (const Atom& atom : atoms) {
    std::vector<Value> args;
    for (TermId t : atom.args) args.push_back(value_for(t));
    canonical.AddFact(atom.relation, args);
  }
  return canonical;
}

/// Replaces the free variables of `atoms` by their frozen constants.
std::vector<Atom> FreezeFreeVariables(
    TermArena* arena, Vocabulary* vocab, std::span<const Atom> atoms,
    const std::unordered_set<VariableId>& frozen) {
  std::vector<Atom> out;
  for (const Atom& atom : atoms) {
    Atom mapped;
    mapped.relation = atom.relation;
    for (TermId t : atom.args) {
      if (arena->IsVariable(t) && frozen.count(arena->symbol(t))) {
        mapped.args.push_back(arena->MakeConstant(vocab->InternConstant(
            Cat("@frz$", vocab->VariableName(arena->symbol(t))))));
      } else {
        mapped.args.push_back(t);
      }
    }
    out.push_back(std::move(mapped));
  }
  return out;
}

}  // namespace

bool QueryContained(TermArena* arena, Vocabulary* vocab,
                    const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  std::unordered_set<VariableId> frozen(q1.free_vars.begin(),
                                        q1.free_vars.end());
  Instance canonical = FreezeAtoms(arena, vocab, q1.atoms, frozen);
  std::vector<Atom> frozen_q2 =
      FreezeFreeVariables(arena, vocab, q2.atoms, frozen);
  Matcher matcher(arena, &canonical, frozen_q2);
  return matcher.Exists({});
}

bool QueryEquivalent(TermArena* arena, Vocabulary* vocab,
                     const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return QueryContained(arena, vocab, q1, q2) &&
         QueryContained(arena, vocab, q2, q1);
}

ImplicationResult ImpliesTgd(TermArena* arena, Vocabulary* vocab,
                             const SoTgd& rules, const Tgd& sigma,
                             ChaseLimits limits) {
  // Freeze σ's body: universals become fresh constants.
  std::vector<VariableId> universals =
      CollectAtomVariables(*arena, sigma.body);
  std::unordered_set<VariableId> frozen(universals.begin(),
                                        universals.end());
  Instance canonical = FreezeAtoms(arena, vocab, sigma.body, frozen);
  ChaseResult chased = Chase(arena, vocab, rules, canonical, limits);
  // σ is implied iff the frozen head is satisfiable in the chase result.
  std::vector<Atom> frozen_head =
      FreezeFreeVariables(arena, vocab, sigma.head, frozen);
  Matcher matcher(arena, &chased.instance, frozen_head);
  ImplicationResult out;
  out.implied = matcher.Exists({});
  out.complete = chased.Terminated() || out.implied;
  return out;
}

ConjunctiveQuery MinimizeQuery(TermArena* arena, Vocabulary* vocab,
                               const ConjunctiveQuery& q) {
  ConjunctiveQuery current = q;
  std::unordered_set<VariableId> frozen(q.free_vars.begin(),
                                        q.free_vars.end());
  bool changed = true;
  while (changed && current.atoms.size() > 1) {
    changed = false;
    for (size_t drop = 0; drop < current.atoms.size(); ++drop) {
      // q is equivalent to q-minus-atom iff q maps homomorphically into
      // the canonical instance of q-minus-atom, fixing free variables.
      std::vector<Atom> reduced;
      for (size_t i = 0; i < current.atoms.size(); ++i) {
        if (i != drop) reduced.push_back(current.atoms[i]);
      }
      // Free variables must stay safe (occur in the body).
      std::vector<VariableId> remaining =
          CollectAtomVariables(*arena, reduced);
      bool safe = true;
      for (VariableId v : q.free_vars) {
        if (std::find(remaining.begin(), remaining.end(), v) ==
            remaining.end()) {
          safe = false;
          break;
        }
      }
      if (!safe) continue;
      Instance canonical = FreezeAtoms(arena, vocab, reduced, frozen);
      std::vector<Atom> frozen_query =
          FreezeFreeVariables(arena, vocab, current.atoms, frozen);
      Matcher matcher(arena, &canonical, frozen_query);
      if (matcher.Exists({})) {
        current.atoms = std::move(reduced);
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace tgdkit
