// Conjunctive queries and certain-answer query answering (Section 5 of the
// paper). Certain answers are computed by chasing the input instance into
// a (possibly truncated) universal model and keeping the null-free answer
// tuples: sound always, and complete whenever the chase reaches a fixpoint
// (e.g. under weak acyclicity).
#pragma once

#include <vector>

#include "chase/chase.h"
#include "data/instance.h"
#include "dep/dependency.h"

namespace tgdkit {

/// A conjunctive query ∃x̄ (A₁ ∧ … ∧ Aₙ) with free (answer) variables.
/// Atoms may contain variables and constants.
struct ConjunctiveQuery {
  std::vector<Atom> atoms;
  std::vector<VariableId> free_vars;

  bool IsBoolean() const { return free_vars.empty(); }
  bool IsAtomic() const { return atoms.size() == 1; }
};

/// Evaluates `q` over `instance`; returns the distinct answer tuples (in
/// free-variable order). For Boolean queries the result is empty or a
/// single empty tuple.
std::vector<std::vector<Value>> Evaluate(const TermArena& arena,
                                         const Instance& instance,
                                         const ConjunctiveQuery& q);

/// True iff the Boolean query holds.
bool EvaluateBoolean(const TermArena& arena, const Instance& instance,
                     const ConjunctiveQuery& q);

struct CertainAnswers {
  /// Null-free answer tuples found in the chase result.
  std::vector<std::vector<Value>> answers;
  /// How the chase ended. Answers are sound regardless; they are complete
  /// only when this is ChaseStop::kFixpoint.
  ChaseStop chase_stop;
  uint64_t chase_rounds;
  uint64_t chase_facts;

  bool Complete() const { return chase_stop == ChaseStop::kFixpoint; }
};

/// Computes certain answers to `q` over `input` under the dependencies
/// `rules` by chasing and filtering null-free tuples.
CertainAnswers ComputeCertainAnswers(TermArena* arena, Vocabulary* vocab,
                                     const SoTgd& rules, const Instance& input,
                                     const ConjunctiveQuery& q,
                                     ChaseLimits limits = {});

/// Atomic Boolean certain-answer check: is `goal` (a ground fact) certain?
/// This is the query-answering problem of Theorems 5.1/5.2 specialized to
/// the goal facts used in the PCP encodings.
bool CertainlyHolds(TermArena* arena, Vocabulary* vocab, const SoTgd& rules,
                    const Instance& input, const Fact& goal,
                    ChaseLimits limits = {});

/// Minimizes a conjunctive query: repeatedly drops atoms that are
/// subsumed by a homomorphism of the query into itself fixing the free
/// variables (the query's core; Chandra–Merlin). The result is equivalent
/// to `q` on every instance and has a minimal atom set.
ConjunctiveQuery MinimizeQuery(TermArena* arena, Vocabulary* vocab,
                               const ConjunctiveQuery& q);

/// CQ containment q1 ⊑ q2 (every answer of q1 is an answer of q2 on every
/// instance), decided Chandra–Merlin style: q2 must map homomorphically
/// into the frozen canonical instance of q1, fixing free variables.
/// Precondition: identical free-variable lists.
bool QueryContained(TermArena* arena, Vocabulary* vocab,
                    const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// CQ equivalence: containment both ways.
bool QueryEquivalent(TermArena* arena, Vocabulary* vocab,
                     const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// Logical implication Σ ⊨ σ for dependencies, decided by chasing σ's
/// frozen body under Σ and checking that the head becomes satisfiable
/// (sound and complete when the chase terminates; `complete` reports
/// whether it did). Works for any SoTgd rule set and tgd σ.
struct ImplicationResult {
  bool implied = false;
  bool complete = true;  // false when the chase hit a budget
};
ImplicationResult ImpliesTgd(TermArena* arena, Vocabulary* vocab,
                             const SoTgd& rules, const Tgd& sigma,
                             ChaseLimits limits = {});

}  // namespace tgdkit
