// Static analysis of dependency programs: the data structures behind the
// Figure 2 classifiers, materialized as first-class artifacts instead of
// bare booleans.
//
//   * PositionGraph — the position dependency graph of Fagin et al. 2005,
//     every edge carrying provenance (rule, variable, head occurrence);
//   * AffectedAnalysis — the affected-positions least fixpoint of Calì,
//     Gottlob & Kifer, each position remembering the derivation step that
//     put it there;
//   * StickyMarking — the Calì–Gottlob–Pieris marking table: per-rule
//     marked variables plus the global marked-position set driving the
//     propagation, again with per-entry provenance;
//   * ComplexityBound — a structural Skolem-chase complexity tier
//     (polynomial / exponential / non-elementary) read off the generating
//     strongly connected components of the position graph, after
//     Hanisch–Krötzsch's chase-termination-complexity criteria.
//
// On top of the artifacts, AnalyzeRules renders a verdict for each
// Figure 2 criterion. A negative verdict is never a bare `false`: it
// carries a concrete witness — a cycle through a special edge, a rule
// whose body atoms each miss a variable that needs guarding, a marked
// variable with two join occurrences — that ReplayWitness re-validates
// against the very graph or table it indicts. Witnesses pin the offending
// rule to its statement label and source span (threaded through
// parse/parser.h from the lexer).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "base/status.h"
#include "classify/criteria.h"
#include "dep/dependency.h"
#include "parse/parser.h"

namespace tgdkit {

// ---------------------------------------------------------------------------
// Input: flattened, origin-tracked rules

/// One Skolemized rule (an SO-tgd part) plus where it came from.
struct AnalyzedRule {
  SoPart part;
  uint32_t dep_index = 0;   // statement index in the source program
  uint32_t part_index = 0;  // part within that statement's Skolemized form
  std::string label;        // statement label, or "#k" for unlabeled
  uint32_t line = 0;        // statement span (0 = built programmatically)
  uint32_t column = 0;
};

// ---------------------------------------------------------------------------
// Artifact 1: the position dependency graph

/// One edge of the position dependency graph, with provenance: rule
/// `rule`'s body variable `var` flows from node `from` into head atom
/// `head_atom` at argument `head_arg` (= node `to`). A special edge means
/// the head argument is a functional term mentioning `var` — the position
/// receives a fresh null whose value depends on `var`.
struct PositionEdge {
  uint32_t from = 0;
  uint32_t to = 0;
  bool special = false;
  uint32_t rule = 0;
  VariableId var = 0;
  uint32_t head_atom = 0;
  uint32_t head_arg = 0;
};

struct PositionGraph {
  std::vector<Position> nodes;
  std::map<Position, uint32_t> node_index;
  std::vector<PositionEdge> edges;
  /// Outgoing edge indexes per node.
  std::vector<std::vector<uint32_t>> out_edges;

  bool HasNode(const Position& p) const { return node_index.count(p) != 0; }
};

// ---------------------------------------------------------------------------
// Artifact 2: affected positions with derivation provenance

/// Why a position entered the affected fixpoint.
struct AffectedReason {
  enum class Kind : uint8_t {
    /// Base case: head atom `head_atom` of rule `rule` carries a
    /// functional term at argument `head_arg`.
    kFunctionalHead,
    /// Inductive step: body variable `var` of rule `rule` occurs only at
    /// affected positions and lands here (head atom/arg as recorded).
    kPropagated,
  };
  Kind kind = Kind::kFunctionalHead;
  uint32_t rule = 0;
  uint32_t head_atom = 0;
  uint32_t head_arg = 0;
  VariableId var = 0;  // kPropagated only
};

struct AffectedAnalysis {
  std::set<Position> affected;
  /// First derivation recorded per position (a witness, not the full set
  /// of derivations). kPropagated reasons only cite positions that were
  /// already affected, so chains always ground out in a kFunctionalHead.
  std::map<Position, AffectedReason> reasons;
};

// ---------------------------------------------------------------------------
// Artifact 3: the sticky marking table

/// Why a (rule, variable) pair got marked.
struct MarkReason {
  enum class Kind : uint8_t {
    /// Initial step: head atom `head_atom` of the rule does not contain
    /// the variable (top level), so its body occurrences are marked.
    kDropped,
    /// Propagation: the variable occurs in head atom `head_atom` at
    /// argument `head_arg`, whose position `via` holds a marked body
    /// occurrence somewhere in the rule set.
    kPropagated,
  };
  Kind kind = Kind::kDropped;
  uint32_t head_atom = 0;
  uint32_t head_arg = 0;   // kPropagated only
  Position via{0, 0};      // kPropagated only
};

struct StickyMarking {
  /// Marked variables per rule (indexes parallel the analyzed rule list),
  /// each with the first derivation that marked it.
  std::vector<std::map<VariableId, MarkReason>> marked_vars;
  /// Body positions holding a marked occurrence in some rule — the key
  /// the propagation step joins on.
  std::set<Position> marked_positions;

  bool IsMarked(uint32_t rule, VariableId var) const {
    return rule < marked_vars.size() && marked_vars[rule].count(var) != 0;
  }
};

// ---------------------------------------------------------------------------
// Witnesses: one concrete, machine-checkable counterexample per criterion

/// Not full: a functional (existential) head term — or, for SO tgds, an
/// equality in the rule (then `equality` is set, `term` is its lhs and the
/// atom/arg fields are meaningless).
struct FullWitness {
  uint32_t rule = 0;
  uint32_t head_atom = 0;
  uint32_t head_arg = 0;
  TermId term = 0;
  bool equality = false;
};

/// Not linear: a rule with more than one body atom.
struct LinearWitness {
  uint32_t rule = 0;
  uint32_t body_atoms = 0;
};

/// Not (weakly) guarded: a rule where every body atom misses at least one
/// of the variables that need guarding. `missing[i]` names a required
/// variable absent from body atom i — together they prove no atom guards.
struct GuardWitness {
  uint32_t rule = 0;
  /// Guarded: all body variables. Weakly guarded: the variables occurring
  /// only at affected positions (their positions justified by `affected`).
  std::vector<VariableId> required;
  std::vector<VariableId> missing;  // one entry per body atom
};

/// Not weakly acyclic: a closed walk in the position graph through at
/// least one special edge. `edges[i].to == edges[i+1].from` and the walk
/// closes back on `edges.front().from`.
struct CycleWitness {
  std::vector<uint32_t> edges;  // indexes into PositionGraph::edges
};

/// Not sticky / sticky-join: variable `var`, marked in rule `rule`,
/// occurs at two body occurrences (atom, arg) — for sticky any repeat,
/// for sticky-join a repeat across two distinct atoms.
struct StickyWitness {
  uint32_t rule = 0;
  VariableId var = 0;
  uint32_t atom1 = 0, arg1 = 0;
  uint32_t atom2 = 0, arg2 = 0;
};

/// Not triangularly guarded: an unguarded triangle. `component` is a
/// triangular component — a strongly connected component of the position
/// graph containing a special edge — given as sorted node indexes, and
/// `cycle` is a closed walk inside it through that special edge (side 1
/// of the triangle). The component satisfies neither repair discipline:
/// `guard` indicts a component rule whose component-dangerous variables
/// no body atom covers (side 2), and `join` indicts a marked variable
/// joining two component positions across distinct atoms of a component
/// rule (side 3). All three sides replay independently.
struct TriangleWitness {
  std::vector<uint32_t> component;  // sorted node indexes
  std::vector<uint32_t> cycle;      // edge indexes, closes through a special
  GuardWitness guard;
  StickyWitness join;
};

using Witness =
    std::variant<std::monostate, FullWitness, LinearWitness, GuardWitness,
                 CycleWitness, StickyWitness, TriangleWitness>;

/// Figure 2 criteria, in ToString(Figure2Membership) order.
enum class Criterion : uint8_t {
  kFull,
  kWeaklyAcyclic,
  kLinear,
  kGuarded,
  kWeaklyGuarded,
  kSticky,
  kStickyJoin,
  kTriangularlyGuarded,
};

const char* CriterionName(Criterion criterion);

struct CriterionVerdict {
  Criterion criterion = Criterion::kFull;
  bool holds = true;
  Witness witness;  // monostate iff holds
};

// ---------------------------------------------------------------------------
// Artifact 4: the structural chase-complexity bound

/// A structural upper bound on Skolem-chase cost, derived from the
/// generating strongly connected components of the position graph (the
/// SCCs containing a special edge), in the spirit of Hanisch–Krötzsch's
/// complexity-bounded chase termination criteria. The tier is an upper
/// bound conditional on termination; for the polynomial tier (no
/// generating SCC — exactly weak acyclicity) termination itself is
/// guaranteed. Every claim carries a provenance witness:
///
///   * polynomial — `rank` is the maximum number of special edges on any
///     path, bounding null-nesting depth; `rank_path` lists `rank`
///     special edges, each reaching the next (a realizing chain).
///   * exponential — generating SCCs exist but none reaches another;
///     `cycle` is a closed walk through one in-component special edge.
///   * non-elementary — a generating SCC feeds a second one: `cycle` and
///     `cycle2` are closed special walks in two distinct SCCs and `link`
///     is an edge path from the first onto the second.
struct ComplexityBound {
  ComplexityTier tier = ComplexityTier::kPolynomial;
  uint32_t rank = 0;                 // polynomial tier only
  std::vector<uint32_t> rank_path;   // special edge indexes, `rank` of them
  std::vector<uint32_t> cycle;       // exponential and above
  std::vector<uint32_t> link;        // non-elementary only
  std::vector<uint32_t> cycle2;      // non-elementary only
};

// ---------------------------------------------------------------------------
// The analysis result

struct ProgramAnalysis {
  /// The arena the rules live in (borrowed; must outlive the analysis).
  const TermArena* arena = nullptr;
  std::vector<AnalyzedRule> rules;
  PositionGraph graph;
  AffectedAnalysis affected;
  StickyMarking marking;
  ComplexityBound complexity;
  std::vector<CriterionVerdict> verdicts;  // one per Criterion, in order

  const CriterionVerdict& verdict(Criterion criterion) const {
    return verdicts[static_cast<size_t>(criterion)];
  }
  Figure2Membership Membership() const;
};

/// Runs every analysis over `rules`. Pure: reads the arena only.
ProgramAnalysis AnalyzeRules(const TermArena& arena,
                             std::vector<AnalyzedRule> rules);

/// Convenience: analyzes a single SO tgd (one synthetic statement).
ProgramAnalysis AnalyzeSo(const TermArena& arena, const SoTgd& so);

/// Flattens a parsed program into origin-tracked Skolemized rules. Spans
/// and labels come from the statements; tgd/nested/Henkin statements are
/// Skolemized (fresh function symbols are interned into `vocab`).
std::vector<AnalyzedRule> FlattenProgram(TermArena* arena, Vocabulary* vocab,
                                         const DependencyProgram& program);

/// FlattenProgram + AnalyzeRules.
ProgramAnalysis AnalyzeProgram(TermArena* arena, Vocabulary* vocab,
                               const DependencyProgram& program);

// ---------------------------------------------------------------------------
// Witness replay

/// Re-validates a verdict's witness against the analysis artifacts: cycle
/// edges must chain and close through a special edge of the graph, guard
/// witnesses must name a missing required variable for every body atom,
/// sticky witnesses must point at genuinely marked variables and real
/// occurrences, and so on. Ok for positive verdicts (nothing to check);
/// InvalidArgument with a reason when a witness does not replay.
Status ReplayWitness(const TermArena& arena, const ProgramAnalysis& analysis,
                     const CriterionVerdict& verdict);

/// Re-validates the complexity bound: the tier must match a recomputation
/// from the graph and the witness walks must chain, close and reach as
/// claimed (rank_path edges special and pairwise reaching, cycles closed
/// through a special edge, the link landing on the second cycle, the two
/// cycles in distinct SCCs). InvalidArgument when tampered.
Status ReplayComplexity(const ProgramAnalysis& analysis);

/// Replays every verdict plus the complexity bound; first failure wins.
Status ReplayAllWitnesses(const TermArena& arena,
                          const ProgramAnalysis& analysis);

// ---------------------------------------------------------------------------
// Rendering

/// Renders a witness as one line, e.g.
///   "cycle N.0 -> E.1 -*-> N.0 (rules s1, s2)" or
///   "rule s3: marked variable y joins P.1 and Q.0".
std::string WitnessToString(const TermArena& arena, const Vocabulary& vocab,
                            const ProgramAnalysis& analysis,
                            const CriterionVerdict& verdict);

/// Renders the complexity bound with its witness, e.g.
///   "polynomial (rank 2: A.0 -*-> B.1 => B.0 -*-> C.1)" or
///   "exponential (generating cycle E.0 -*-> E.1 -> E.0)".
std::string ComplexityToString(const Vocabulary& vocab,
                               const ProgramAnalysis& analysis);

/// Renders the derivation chain of an affected position, innermost first.
std::string ExplainAffected(const Vocabulary& vocab,
                            const ProgramAnalysis& analysis,
                            const Position& position);

/// Renders the derivation chain of a marked (rule, variable) pair.
std::string ExplainMarked(const Vocabulary& vocab,
                          const ProgramAnalysis& analysis, uint32_t rule,
                          VariableId var);

}  // namespace tgdkit
