#include "analyze/analysis.h"

#include <algorithm>

#include "base/strings.h"
#include "dep/skolem.h"
#include "transform/nested.h"

namespace tgdkit {

namespace {

void TermVariables(const TermArena& arena, TermId t,
                   std::set<VariableId>* out) {
  std::vector<VariableId> vars;
  arena.CollectVariables(t, &vars);
  out->insert(vars.begin(), vars.end());
}

std::set<VariableId> BodyVariables(const TermArena& arena,
                                   const SoPart& part) {
  std::set<VariableId> vars;
  for (const Atom& atom : part.body) {
    for (TermId t : atom.args) TermVariables(arena, t, &vars);
  }
  return vars;
}

/// Top-level body occurrences (atom index, arg index) per variable.
std::map<VariableId, std::vector<std::pair<uint32_t, uint32_t>>>
BodyOccurrences(const TermArena& arena, const SoPart& part) {
  std::map<VariableId, std::vector<std::pair<uint32_t, uint32_t>>> out;
  for (uint32_t a = 0; a < part.body.size(); ++a) {
    const Atom& atom = part.body[a];
    for (uint32_t i = 0; i < atom.args.size(); ++i) {
      if (arena.IsVariable(atom.args[i])) {
        out[arena.symbol(atom.args[i])].emplace_back(a, i);
      }
    }
  }
  return out;
}

/// Distinct body positions per variable (top level).
std::map<VariableId, std::set<Position>> BodyPositions(
    const TermArena& arena, const SoPart& part) {
  std::map<VariableId, std::set<Position>> out;
  for (const Atom& atom : part.body) {
    for (uint32_t i = 0; i < atom.args.size(); ++i) {
      if (arena.IsVariable(atom.args[i])) {
        out[arena.symbol(atom.args[i])].insert({atom.relation, i});
      }
    }
  }
  return out;
}

bool OccursTopLevel(const TermArena& arena, VariableId var, const Atom& atom) {
  for (TermId t : atom.args) {
    if (arena.IsVariable(t) && arena.symbol(t) == var) return true;
  }
  return false;
}

// --- artifact builders ------------------------------------------------------

PositionGraph BuildPositionGraph(const TermArena& arena,
                                 const std::vector<AnalyzedRule>& rules) {
  PositionGraph graph;
  auto node = [&graph](const Position& p) {
    auto [it, inserted] = graph.node_index.emplace(
        p, static_cast<uint32_t>(graph.nodes.size()));
    if (inserted) graph.nodes.push_back(p);
    return it->second;
  };
  // Every position mentioned by a rule is a node, even an isolated one:
  // the graph is an artifact in its own right, not just cycle fodder.
  for (const AnalyzedRule& rule : rules) {
    for (const Atom& atom : rule.part.body) {
      for (uint32_t i = 0; i < atom.args.size(); ++i) {
        node({atom.relation, i});
      }
    }
    for (const Atom& atom : rule.part.head) {
      for (uint32_t i = 0; i < atom.args.size(); ++i) {
        node({atom.relation, i});
      }
    }
  }
  for (uint32_t r = 0; r < rules.size(); ++r) {
    const SoPart& part = rules[r].part;
    for (const auto& [var, positions] : BodyPositions(arena, part)) {
      for (const Position& from : positions) {
        uint32_t from_node = node(from);
        for (uint32_t a = 0; a < part.head.size(); ++a) {
          const Atom& atom = part.head[a];
          for (uint32_t i = 0; i < atom.args.size(); ++i) {
            TermId t = atom.args[i];
            if (arena.IsVariable(t) && arena.symbol(t) == var) {
              graph.edges.push_back({from_node, node({atom.relation, i}),
                                     /*special=*/false, r, var, a, i});
            } else if (arena.IsFunction(t)) {
              std::set<VariableId> term_vars;
              TermVariables(arena, t, &term_vars);
              if (term_vars.count(var)) {
                graph.edges.push_back({from_node, node({atom.relation, i}),
                                       /*special=*/true, r, var, a, i});
              }
            }
          }
        }
      }
    }
  }
  graph.out_edges.assign(graph.nodes.size(), {});
  for (uint32_t e = 0; e < graph.edges.size(); ++e) {
    graph.out_edges[graph.edges[e].from].push_back(e);
  }
  return graph;
}

AffectedAnalysis BuildAffected(const TermArena& arena,
                               const std::vector<AnalyzedRule>& rules) {
  AffectedAnalysis out;
  // (1) Head positions carrying functional terms.
  for (uint32_t r = 0; r < rules.size(); ++r) {
    const SoPart& part = rules[r].part;
    for (uint32_t a = 0; a < part.head.size(); ++a) {
      const Atom& atom = part.head[a];
      for (uint32_t i = 0; i < atom.args.size(); ++i) {
        if (!arena.IsFunction(atom.args[i])) continue;
        Position p{atom.relation, i};
        if (out.affected.insert(p).second) {
          out.reasons[p] = {AffectedReason::Kind::kFunctionalHead, r, a, i,
                            /*var=*/0};
        }
      }
    }
  }
  // (2) Propagate through variables occurring only at affected positions.
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t r = 0; r < rules.size(); ++r) {
      const SoPart& part = rules[r].part;
      for (const auto& [var, positions] : BodyPositions(arena, part)) {
        bool all_affected = std::all_of(
            positions.begin(), positions.end(),
            [&out](const Position& p) { return out.affected.count(p) != 0; });
        if (!all_affected) continue;
        for (uint32_t a = 0; a < part.head.size(); ++a) {
          const Atom& atom = part.head[a];
          for (uint32_t i = 0; i < atom.args.size(); ++i) {
            TermId t = atom.args[i];
            if (!arena.IsVariable(t) || arena.symbol(t) != var) continue;
            Position p{atom.relation, i};
            if (out.affected.insert(p).second) {
              out.reasons[p] = {AffectedReason::Kind::kPropagated, r, a, i,
                                var};
              changed = true;
            }
          }
        }
      }
    }
  }
  return out;
}

/// The Calì–Gottlob–Pieris marking procedure, per-rule. A variable is
/// marked in a rule when (initial step) some head atom of the rule drops
/// it, or (propagation) it flows into a head position that holds a marked
/// body occurrence somewhere in the rule set.
StickyMarking BuildMarking(const TermArena& arena,
                           const std::vector<AnalyzedRule>& rules) {
  StickyMarking marking;
  marking.marked_vars.resize(rules.size());
  auto mark = [&](uint32_t r, VariableId var, const MarkReason& reason) {
    auto [it, inserted] = marking.marked_vars[r].emplace(var, reason);
    if (!inserted) return false;
    auto positions = BodyPositions(arena, rules[r].part);
    marking.marked_positions.insert(positions[var].begin(),
                                    positions[var].end());
    return true;
  };
  // Initial step: mark variables missing from some head atom.
  for (uint32_t r = 0; r < rules.size(); ++r) {
    const SoPart& part = rules[r].part;
    for (const auto& [var, positions] : BodyPositions(arena, part)) {
      for (uint32_t a = 0; a < part.head.size(); ++a) {
        if (!OccursTopLevel(arena, var, part.head[a])) {
          mark(r, var, {MarkReason::Kind::kDropped, a, 0, {0, 0}});
          break;
        }
      }
    }
  }
  // Propagation: follow head occurrences into marked positions.
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t r = 0; r < rules.size(); ++r) {
      const SoPart& part = rules[r].part;
      for (const auto& [var, positions] : BodyPositions(arena, part)) {
        if (marking.IsMarked(r, var)) continue;
        for (uint32_t a = 0; a < part.head.size() && !changed; ++a) {
          const Atom& atom = part.head[a];
          for (uint32_t i = 0; i < atom.args.size(); ++i) {
            TermId t = atom.args[i];
            if (!arena.IsVariable(t) || arena.symbol(t) != var) continue;
            Position p{atom.relation, i};
            if (!marking.marked_positions.count(p)) continue;
            if (mark(r, var, {MarkReason::Kind::kPropagated, a, i, p})) {
              changed = true;
              break;
            }
          }
        }
      }
    }
  }
  return marking;
}

// --- verdict builders -------------------------------------------------------

CriterionVerdict JudgeFull(const TermArena& arena,
                           const std::vector<AnalyzedRule>& rules) {
  CriterionVerdict v{Criterion::kFull, true, {}};
  for (uint32_t r = 0; r < rules.size(); ++r) {
    const SoPart& part = rules[r].part;
    if (!part.equalities.empty()) {
      v.holds = false;
      v.witness = FullWitness{r, /*head_atom=*/0, /*head_arg=*/0,
                              part.equalities[0].lhs, /*equality=*/true};
      return v;
    }
    for (uint32_t a = 0; a < part.head.size(); ++a) {
      const Atom& atom = part.head[a];
      for (uint32_t i = 0; i < atom.args.size(); ++i) {
        TermId t = atom.args[i];
        if (arena.IsFunction(t) || arena.HasNestedFunction(t)) {
          v.holds = false;
          v.witness = FullWitness{r, a, i, t, /*equality=*/false};
          return v;
        }
      }
    }
  }
  return v;
}

CriterionVerdict JudgeLinear(const std::vector<AnalyzedRule>& rules) {
  CriterionVerdict v{Criterion::kLinear, true, {}};
  for (uint32_t r = 0; r < rules.size(); ++r) {
    if (rules[r].part.body.size() != 1) {
      v.holds = false;
      v.witness = LinearWitness{
          r, static_cast<uint32_t>(rules[r].part.body.size())};
      return v;
    }
  }
  return v;
}

/// Shared guard search: does some body atom of `part` contain every
/// variable of `required`? If not, fills `missing` with one absent
/// required variable per body atom.
bool FindGuard(const TermArena& arena, const SoPart& part,
               const std::set<VariableId>& required,
               std::vector<VariableId>* missing) {
  missing->clear();
  for (const Atom& atom : part.body) {
    std::set<VariableId> atom_vars;
    for (TermId t : atom.args) TermVariables(arena, t, &atom_vars);
    VariableId absent = 0;
    bool covers = true;
    for (VariableId v : required) {
      if (!atom_vars.count(v)) {
        covers = false;
        absent = v;
        break;
      }
    }
    if (covers) return true;
    missing->push_back(absent);
  }
  return false;
}

CriterionVerdict JudgeGuarded(const TermArena& arena,
                              const std::vector<AnalyzedRule>& rules) {
  CriterionVerdict v{Criterion::kGuarded, true, {}};
  for (uint32_t r = 0; r < rules.size(); ++r) {
    std::set<VariableId> body_vars = BodyVariables(arena, rules[r].part);
    std::vector<VariableId> missing;
    if (FindGuard(arena, rules[r].part, body_vars, &missing)) continue;
    v.holds = false;
    v.witness = GuardWitness{
        r, {body_vars.begin(), body_vars.end()}, std::move(missing)};
    return v;
  }
  return v;
}

CriterionVerdict JudgeWeaklyGuarded(const TermArena& arena,
                                    const std::vector<AnalyzedRule>& rules,
                                    const AffectedAnalysis& affected) {
  CriterionVerdict v{Criterion::kWeaklyGuarded, true, {}};
  for (uint32_t r = 0; r < rules.size(); ++r) {
    const SoPart& part = rules[r].part;
    std::set<VariableId> must_guard;
    for (const auto& [var, positions] : BodyPositions(arena, part)) {
      bool all_affected = std::all_of(
          positions.begin(), positions.end(), [&affected](const Position& p) {
            return affected.affected.count(p) != 0;
          });
      if (all_affected) must_guard.insert(var);
    }
    if (must_guard.empty()) continue;
    std::vector<VariableId> missing;
    if (FindGuard(arena, part, must_guard, &missing)) continue;
    v.holds = false;
    v.witness = GuardWitness{
        r, {must_guard.begin(), must_guard.end()}, std::move(missing)};
    return v;
  }
  return v;
}

CriterionVerdict JudgeWeaklyAcyclic(const PositionGraph& graph) {
  CriterionVerdict v{Criterion::kWeaklyAcyclic, true, {}};
  for (uint32_t se = 0; se < graph.edges.size(); ++se) {
    if (!graph.edges[se].special) continue;
    // A special edge (u, v) lies on a cycle iff v reaches u. BFS with
    // parent edges so the witness is the actual closed walk.
    uint32_t u = graph.edges[se].from;
    uint32_t start = graph.edges[se].to;
    std::vector<int64_t> parent_edge(graph.nodes.size(), -1);
    std::vector<bool> seen(graph.nodes.size(), false);
    std::vector<uint32_t> queue{start};
    seen[start] = true;
    bool found = (start == u);
    for (size_t q = 0; q < queue.size() && !found; ++q) {
      for (uint32_t e : graph.out_edges[queue[q]]) {
        uint32_t to = graph.edges[e].to;
        if (seen[to]) continue;
        seen[to] = true;
        parent_edge[to] = e;
        if (to == u) {
          found = true;
          break;
        }
        queue.push_back(to);
      }
    }
    if (!found) continue;
    CycleWitness witness;
    witness.edges.push_back(se);
    std::vector<uint32_t> path;
    for (uint32_t at = u; at != start;) {
      uint32_t e = static_cast<uint32_t>(parent_edge[at]);
      path.push_back(e);
      at = graph.edges[e].from;
    }
    std::reverse(path.begin(), path.end());
    witness.edges.insert(witness.edges.end(), path.begin(), path.end());
    v.holds = false;
    v.witness = std::move(witness);
    return v;
  }
  return v;
}

CriterionVerdict JudgeSticky(const TermArena& arena,
                             const std::vector<AnalyzedRule>& rules,
                             const StickyMarking& marking, bool join_only) {
  CriterionVerdict v{join_only ? Criterion::kStickyJoin : Criterion::kSticky,
                     true,
                     {}};
  for (uint32_t r = 0; r < rules.size(); ++r) {
    for (const auto& [var, occurrences] :
         BodyOccurrences(arena, rules[r].part)) {
      if (occurrences.size() < 2 || !marking.IsMarked(r, var)) continue;
      if (join_only) {
        // Sticky-join tolerates repeats inside a single atom (a selection,
        // compilable away); only a repeat across two atoms is a join.
        for (size_t i = 1; i < occurrences.size(); ++i) {
          if (occurrences[i].first != occurrences[0].first) {
            v.holds = false;
            v.witness = StickyWitness{r, var, occurrences[0].first,
                                      occurrences[0].second,
                                      occurrences[i].first,
                                      occurrences[i].second};
            return v;
          }
        }
      } else {
        v.holds = false;
        v.witness = StickyWitness{r, var, occurrences[0].first,
                                  occurrences[0].second,
                                  occurrences[1].first,
                                  occurrences[1].second};
        return v;
      }
    }
  }
  return v;
}

}  // namespace

const char* CriterionName(Criterion criterion) {
  switch (criterion) {
    case Criterion::kFull:
      return "full";
    case Criterion::kWeaklyAcyclic:
      return "weakly-acyclic";
    case Criterion::kLinear:
      return "linear";
    case Criterion::kGuarded:
      return "guarded";
    case Criterion::kWeaklyGuarded:
      return "weakly-guarded";
    case Criterion::kSticky:
      return "sticky";
    case Criterion::kStickyJoin:
      return "sticky-join";
  }
  return "?";
}

Figure2Membership ProgramAnalysis::Membership() const {
  Figure2Membership m;
  m.full = verdict(Criterion::kFull).holds;
  m.weakly_acyclic = verdict(Criterion::kWeaklyAcyclic).holds;
  m.linear = verdict(Criterion::kLinear).holds;
  m.guarded = verdict(Criterion::kGuarded).holds;
  m.weakly_guarded = verdict(Criterion::kWeaklyGuarded).holds;
  m.sticky = verdict(Criterion::kSticky).holds;
  m.sticky_join = verdict(Criterion::kStickyJoin).holds;
  return m;
}

ProgramAnalysis AnalyzeRules(const TermArena& arena,
                             std::vector<AnalyzedRule> rules) {
  ProgramAnalysis analysis;
  analysis.arena = &arena;
  analysis.rules = std::move(rules);
  analysis.graph = BuildPositionGraph(arena, analysis.rules);
  analysis.affected = BuildAffected(arena, analysis.rules);
  analysis.marking = BuildMarking(arena, analysis.rules);
  analysis.verdicts.push_back(JudgeFull(arena, analysis.rules));
  analysis.verdicts.push_back(JudgeWeaklyAcyclic(analysis.graph));
  analysis.verdicts.push_back(JudgeLinear(analysis.rules));
  analysis.verdicts.push_back(JudgeGuarded(arena, analysis.rules));
  analysis.verdicts.push_back(
      JudgeWeaklyGuarded(arena, analysis.rules, analysis.affected));
  analysis.verdicts.push_back(
      JudgeSticky(arena, analysis.rules, analysis.marking, false));
  analysis.verdicts.push_back(
      JudgeSticky(arena, analysis.rules, analysis.marking, true));
  return analysis;
}

ProgramAnalysis AnalyzeSo(const TermArena& arena, const SoTgd& so) {
  std::vector<AnalyzedRule> rules;
  for (uint32_t j = 0; j < so.parts.size(); ++j) {
    AnalyzedRule rule;
    rule.part = so.parts[j];
    rule.dep_index = 0;
    rule.part_index = j;
    rule.label = "#1";
    rules.push_back(std::move(rule));
  }
  return AnalyzeRules(arena, std::move(rules));
}

std::vector<AnalyzedRule> FlattenProgram(TermArena* arena, Vocabulary* vocab,
                                         const DependencyProgram& program) {
  std::vector<AnalyzedRule> rules;
  for (uint32_t i = 0; i < program.dependencies.size(); ++i) {
    const ParsedDependency& dep = program.dependencies[i];
    SoTgd so;
    switch (dep.kind) {
      case ParsedDependency::Kind::kTgd:
        so = TgdToSo(arena, vocab, dep.tgd);
        break;
      case ParsedDependency::Kind::kSo:
        so = dep.so;
        break;
      case ParsedDependency::Kind::kNested:
        so = NestedToSo(arena, vocab, dep.nested);
        break;
      case ParsedDependency::Kind::kHenkin:
        so = HenkinToSo(arena, vocab, dep.henkin);
        break;
    }
    for (uint32_t j = 0; j < so.parts.size(); ++j) {
      AnalyzedRule rule;
      rule.part = so.parts[j];
      rule.dep_index = i;
      rule.part_index = j;
      rule.label = dep.label.empty() ? Cat("#", i + 1) : dep.label;
      rule.line = dep.line;
      rule.column = dep.column;
      rules.push_back(std::move(rule));
    }
  }
  return rules;
}

ProgramAnalysis AnalyzeProgram(TermArena* arena, Vocabulary* vocab,
                               const DependencyProgram& program) {
  return AnalyzeRules(*arena, FlattenProgram(arena, vocab, program));
}

// ---------------------------------------------------------------------------
// Replay

namespace {

Status Fail(const std::string& what) {
  return Status::InvalidArgument(Cat("witness replay failed: ", what));
}

Status ReplayFull(const TermArena& arena, const ProgramAnalysis& analysis,
                  const FullWitness& w) {
  if (w.rule >= analysis.rules.size()) return Fail("rule out of range");
  const SoPart& part = analysis.rules[w.rule].part;
  if (w.equality) {
    if (part.equalities.empty()) return Fail("rule has no equalities");
    return Status::Ok();
  }
  if (w.head_atom >= part.head.size()) return Fail("head atom out of range");
  const Atom& atom = part.head[w.head_atom];
  if (w.head_arg >= atom.args.size()) return Fail("head arg out of range");
  TermId t = atom.args[w.head_arg];
  if (t != w.term) return Fail("term does not match head occurrence");
  if (!arena.IsFunction(t) && !arena.HasNestedFunction(t)) {
    return Fail("cited term is not functional");
  }
  return Status::Ok();
}

Status ReplayLinear(const ProgramAnalysis& analysis, const LinearWitness& w) {
  if (w.rule >= analysis.rules.size()) return Fail("rule out of range");
  size_t atoms = analysis.rules[w.rule].part.body.size();
  if (atoms != w.body_atoms) return Fail("body atom count mismatch");
  if (atoms == 1) return Fail("rule is linear after all");
  return Status::Ok();
}

Status ReplayGuard(const TermArena& arena, const ProgramAnalysis& analysis,
                   const GuardWitness& w, bool weakly) {
  if (w.rule >= analysis.rules.size()) return Fail("rule out of range");
  const SoPart& part = analysis.rules[w.rule].part;
  if (w.required.empty()) return Fail("empty required set");
  std::set<VariableId> required(w.required.begin(), w.required.end());
  std::set<VariableId> body_vars = BodyVariables(arena, part);
  for (VariableId v : required) {
    if (!body_vars.count(v)) return Fail("required variable not in body");
  }
  if (!weakly && required != body_vars) {
    return Fail("guarded witness must require every body variable");
  }
  if (weakly) {
    // Every required variable must occur only at affected positions.
    auto positions = BodyPositions(arena, part);
    for (VariableId v : required) {
      for (const Position& p : positions[v]) {
        if (!analysis.affected.affected.count(p)) {
          return Fail("required variable occurs at an unaffected position");
        }
      }
    }
  }
  if (w.missing.size() != part.body.size()) {
    return Fail("missing list must cover every body atom");
  }
  for (uint32_t a = 0; a < part.body.size(); ++a) {
    VariableId absent = w.missing[a];
    if (!required.count(absent)) return Fail("missing variable not required");
    std::set<VariableId> atom_vars;
    for (TermId t : part.body[a].args) TermVariables(arena, t, &atom_vars);
    if (atom_vars.count(absent)) {
      return Fail("cited variable actually occurs in the atom");
    }
  }
  return Status::Ok();
}

Status ReplayCycle(const ProgramAnalysis& analysis, const CycleWitness& w) {
  if (w.edges.empty()) return Fail("empty cycle");
  const PositionGraph& graph = analysis.graph;
  bool has_special = false;
  for (size_t i = 0; i < w.edges.size(); ++i) {
    if (w.edges[i] >= graph.edges.size()) return Fail("edge out of range");
    const PositionEdge& edge = graph.edges[w.edges[i]];
    has_special |= edge.special;
    const PositionEdge& next =
        graph.edges[w.edges[(i + 1) % w.edges.size()]];
    if (edge.to != next.from) return Fail("cycle edges do not chain");
  }
  if (!has_special) return Fail("cycle has no special edge");
  return Status::Ok();
}

Status ReplaySticky(const TermArena& arena, const ProgramAnalysis& analysis,
                    const StickyWitness& w, bool join_only) {
  if (w.rule >= analysis.rules.size()) return Fail("rule out of range");
  const SoPart& part = analysis.rules[w.rule].part;
  auto occurrence_is_var = [&](uint32_t atom, uint32_t arg) {
    if (atom >= part.body.size()) return false;
    if (arg >= part.body[atom].args.size()) return false;
    TermId t = part.body[atom].args[arg];
    return arena.IsVariable(t) && arena.symbol(t) == w.var;
  };
  if (!occurrence_is_var(w.atom1, w.arg1) ||
      !occurrence_is_var(w.atom2, w.arg2)) {
    return Fail("cited occurrence does not hold the variable");
  }
  if (w.atom1 == w.atom2 && w.arg1 == w.arg2) {
    return Fail("witness cites one occurrence twice");
  }
  if (join_only && w.atom1 == w.atom2) {
    return Fail("sticky-join witness must span two atoms");
  }
  if (!analysis.marking.IsMarked(w.rule, w.var)) {
    return Fail("variable is not marked in the rule");
  }
  // Replay the marking derivation itself.
  const MarkReason& reason =
      analysis.marking.marked_vars[w.rule].at(w.var);
  if (reason.kind == MarkReason::Kind::kDropped) {
    if (reason.head_atom >= part.head.size()) {
      return Fail("mark reason head atom out of range");
    }
    if (OccursTopLevel(arena, w.var, part.head[reason.head_atom])) {
      return Fail("mark reason claims a drop but the head keeps the variable");
    }
  } else {
    if (reason.head_atom >= part.head.size()) {
      return Fail("mark reason head atom out of range");
    }
    const Atom& atom = part.head[reason.head_atom];
    if (reason.head_arg >= atom.args.size()) {
      return Fail("mark reason head arg out of range");
    }
    TermId t = atom.args[reason.head_arg];
    if (!arena.IsVariable(t) || arena.symbol(t) != w.var) {
      return Fail("mark reason head occurrence does not hold the variable");
    }
    if (Position{atom.relation, reason.head_arg} != reason.via) {
      return Fail("mark reason position mismatch");
    }
    if (!analysis.marking.marked_positions.count(reason.via)) {
      return Fail("mark reason cites an unmarked position");
    }
    // The via position must hold a marked occurrence somewhere.
    bool justified = false;
    for (uint32_t r = 0; r < analysis.rules.size() && !justified; ++r) {
      for (const auto& [var, positions] :
           BodyPositions(arena, analysis.rules[r].part)) {
        if (positions.count(reason.via) &&
            analysis.marking.IsMarked(r, var)) {
          justified = true;
          break;
        }
      }
    }
    if (!justified) {
      return Fail("no marked occurrence justifies the via position");
    }
  }
  return Status::Ok();
}

}  // namespace

Status ReplayWitness(const TermArena& arena, const ProgramAnalysis& analysis,
                     const CriterionVerdict& verdict) {
  if (verdict.holds) {
    if (!std::holds_alternative<std::monostate>(verdict.witness)) {
      return Fail("positive verdict carries a witness");
    }
    return Status::Ok();
  }
  switch (verdict.criterion) {
    case Criterion::kFull:
      return ReplayFull(arena, analysis,
                        std::get<FullWitness>(verdict.witness));
    case Criterion::kLinear:
      return ReplayLinear(analysis,
                          std::get<LinearWitness>(verdict.witness));
    case Criterion::kGuarded:
      return ReplayGuard(arena, analysis,
                         std::get<GuardWitness>(verdict.witness), false);
    case Criterion::kWeaklyGuarded:
      return ReplayGuard(arena, analysis,
                         std::get<GuardWitness>(verdict.witness), true);
    case Criterion::kWeaklyAcyclic:
      return ReplayCycle(analysis, std::get<CycleWitness>(verdict.witness));
    case Criterion::kSticky:
      return ReplaySticky(arena, analysis,
                          std::get<StickyWitness>(verdict.witness), false);
    case Criterion::kStickyJoin:
      return ReplaySticky(arena, analysis,
                          std::get<StickyWitness>(verdict.witness), true);
  }
  return Fail("unknown criterion");
}

Status ReplayAllWitnesses(const TermArena& arena,
                          const ProgramAnalysis& analysis) {
  for (const CriterionVerdict& verdict : analysis.verdicts) {
    Status status = ReplayWitness(arena, analysis, verdict);
    if (!status.ok()) {
      return Status::InvalidArgument(
          Cat(CriterionName(verdict.criterion), ": ", status.ToString()));
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Rendering

namespace {

std::string PositionName(const Vocabulary& vocab, const Position& p) {
  return Cat(vocab.RelationName(p.first), ".", p.second);
}

std::string RuleRef(const ProgramAnalysis& analysis, uint32_t rule) {
  const AnalyzedRule& r = analysis.rules[rule];
  std::string out = Cat("rule ", r.label);
  bool multi_part = r.part_index > 0 ||
                    (rule + 1 < analysis.rules.size() &&
                     analysis.rules[rule + 1].dep_index == r.dep_index);
  if (multi_part) out += Cat("/", r.part_index + 1);
  return out;
}

}  // namespace

std::string ExplainAffected(const Vocabulary& vocab,
                            const ProgramAnalysis& analysis,
                            const Position& position) {
  std::string out;
  std::set<Position> visited;
  Position at = position;
  const TermArena* arena = analysis.arena;
  for (;;) {
    auto it = analysis.affected.reasons.find(at);
    if (it == analysis.affected.reasons.end()) {
      return out + Cat(PositionName(vocab, at), " (unexplained)");
    }
    if (!visited.insert(at).second) return out + "(cycle)";
    const AffectedReason& reason = it->second;
    if (reason.kind == AffectedReason::Kind::kFunctionalHead ||
        arena == nullptr) {
      return out + Cat(PositionName(vocab, at),
                       " receives a functional term in ",
                       RuleRef(analysis, reason.rule));
    }
    out += Cat(PositionName(vocab, at), " <- variable ",
               vocab.VariableName(reason.var), " of ",
               RuleRef(analysis, reason.rule),
               " bound only at affected positions, e.g. ");
    // Continue through one of the variable's body positions (all affected
    // by construction; pick the smallest for determinism).
    auto positions =
        BodyPositions(*arena, analysis.rules[reason.rule].part)[reason.var];
    if (positions.empty()) return out + "(none)";
    at = *positions.begin();
  }
}

std::string ExplainMarked(const Vocabulary& vocab,
                          const ProgramAnalysis& analysis, uint32_t rule,
                          VariableId var) {
  std::string out;
  std::set<std::pair<uint32_t, VariableId>> visited;
  uint32_t r = rule;
  VariableId v = var;
  for (;;) {
    if (!analysis.marking.IsMarked(r, v)) {
      return out +
             Cat(vocab.VariableName(v), " unmarked in ", RuleRef(analysis, r));
    }
    if (!visited.insert({r, v}).second) return out + "(cycle)";
    const MarkReason& reason = analysis.marking.marked_vars[r].at(v);
    if (reason.kind == MarkReason::Kind::kDropped) {
      return out + Cat(vocab.VariableName(v), " dropped from head atom ",
                       reason.head_atom + 1, " of ", RuleRef(analysis, r));
    }
    out += Cat(vocab.VariableName(v), " of ", RuleRef(analysis, r),
               " flows into marked position ", PositionName(vocab, reason.via),
               " <- ");
    // Chain on to a marked occurrence justifying `via`.
    bool found = false;
    if (analysis.arena != nullptr) {
      for (uint32_t r2 = 0; r2 < analysis.rules.size() && !found; ++r2) {
        for (const auto& [v2, positions] :
             BodyPositions(*analysis.arena, analysis.rules[r2].part)) {
          if (positions.count(reason.via) && analysis.marking.IsMarked(r2, v2)) {
            r = r2;
            v = v2;
            found = true;
            break;
          }
        }
      }
    }
    if (!found) return out + "(marked occurrence)";
  }
}

std::string WitnessToString(const TermArena& arena, const Vocabulary& vocab,
                            const ProgramAnalysis& analysis,
                            const CriterionVerdict& verdict) {
  if (verdict.holds) return "";
  if (const auto* w = std::get_if<FullWitness>(&verdict.witness)) {
    if (w->equality) {
      return Cat(RuleRef(analysis, w->rule), ": body carries an equality");
    }
    const Atom& atom = analysis.rules[w->rule].part.head[w->head_atom];
    return Cat(RuleRef(analysis, w->rule), ": functional term ",
               arena.ToString(w->term, vocab), " at ",
               PositionName(vocab, {atom.relation, w->head_arg}));
  }
  if (const auto* w = std::get_if<LinearWitness>(&verdict.witness)) {
    return Cat(RuleRef(analysis, w->rule), ": body has ", w->body_atoms,
               " atoms (linear needs exactly 1)");
  }
  if (const auto* w = std::get_if<GuardWitness>(&verdict.witness)) {
    const SoPart& part = analysis.rules[w->rule].part;
    std::string vars = JoinMapped(w->required, ", ", [&](VariableId v) {
      return vocab.VariableName(v);
    });
    std::string out = Cat(RuleRef(analysis, w->rule),
                          ": no body atom covers {", vars, "}");
    for (uint32_t a = 0; a < w->missing.size() && a < part.body.size(); ++a) {
      out += Cat("; ", ToString(arena, vocab, part.body[a]), " misses ",
                 vocab.VariableName(w->missing[a]));
    }
    return out;
  }
  if (const auto* w = std::get_if<CycleWitness>(&verdict.witness)) {
    std::string out = "cycle ";
    for (size_t i = 0; i < w->edges.size(); ++i) {
      const PositionEdge& edge = analysis.graph.edges[w->edges[i]];
      if (i == 0) out += PositionName(vocab, analysis.graph.nodes[edge.from]);
      out += edge.special ? " -*-> " : " -> ";
      out += PositionName(vocab, analysis.graph.nodes[edge.to]);
    }
    std::set<std::string> labels;
    for (uint32_t e : w->edges) {
      labels.insert(analysis.rules[analysis.graph.edges[e].rule].label);
    }
    out += Cat(" (rules ", JoinMapped(labels, ", ", [](const std::string& l) {
                 return l;
               }),
               ")");
    return out;
  }
  if (const auto* w = std::get_if<StickyWitness>(&verdict.witness)) {
    const SoPart& part = analysis.rules[w->rule].part;
    return Cat(RuleRef(analysis, w->rule), ": marked variable ",
               vocab.VariableName(w->var), " joins ",
               PositionName(vocab,
                            {part.body[w->atom1].relation, w->arg1}),
               " and ",
               PositionName(vocab,
                            {part.body[w->atom2].relation, w->arg2}),
               " (", ExplainMarked(vocab, analysis, w->rule, w->var), ")");
  }
  return "";
}

}  // namespace tgdkit
