#include "analyze/analysis.h"

#include <algorithm>

#include "base/strings.h"
#include "dep/skolem.h"
#include "transform/nested.h"

namespace tgdkit {

namespace {

void TermVariables(const TermArena& arena, TermId t,
                   std::set<VariableId>* out) {
  std::vector<VariableId> vars;
  arena.CollectVariables(t, &vars);
  out->insert(vars.begin(), vars.end());
}

std::set<VariableId> BodyVariables(const TermArena& arena,
                                   const SoPart& part) {
  std::set<VariableId> vars;
  for (const Atom& atom : part.body) {
    for (TermId t : atom.args) TermVariables(arena, t, &vars);
  }
  return vars;
}

/// Top-level body occurrences (atom index, arg index) per variable.
std::map<VariableId, std::vector<std::pair<uint32_t, uint32_t>>>
BodyOccurrences(const TermArena& arena, const SoPart& part) {
  std::map<VariableId, std::vector<std::pair<uint32_t, uint32_t>>> out;
  for (uint32_t a = 0; a < part.body.size(); ++a) {
    const Atom& atom = part.body[a];
    for (uint32_t i = 0; i < atom.args.size(); ++i) {
      if (arena.IsVariable(atom.args[i])) {
        out[arena.symbol(atom.args[i])].emplace_back(a, i);
      }
    }
  }
  return out;
}

/// Distinct body positions per variable (top level).
std::map<VariableId, std::set<Position>> BodyPositions(
    const TermArena& arena, const SoPart& part) {
  std::map<VariableId, std::set<Position>> out;
  for (const Atom& atom : part.body) {
    for (uint32_t i = 0; i < atom.args.size(); ++i) {
      if (arena.IsVariable(atom.args[i])) {
        out[arena.symbol(atom.args[i])].insert({atom.relation, i});
      }
    }
  }
  return out;
}

bool OccursTopLevel(const TermArena& arena, VariableId var, const Atom& atom) {
  for (TermId t : atom.args) {
    if (arena.IsVariable(t) && arena.symbol(t) == var) return true;
  }
  return false;
}

// --- artifact builders ------------------------------------------------------

PositionGraph BuildPositionGraph(const TermArena& arena,
                                 const std::vector<AnalyzedRule>& rules) {
  PositionGraph graph;
  auto node = [&graph](const Position& p) {
    auto [it, inserted] = graph.node_index.emplace(
        p, static_cast<uint32_t>(graph.nodes.size()));
    if (inserted) graph.nodes.push_back(p);
    return it->second;
  };
  // Every position mentioned by a rule is a node, even an isolated one:
  // the graph is an artifact in its own right, not just cycle fodder.
  for (const AnalyzedRule& rule : rules) {
    for (const Atom& atom : rule.part.body) {
      for (uint32_t i = 0; i < atom.args.size(); ++i) {
        node({atom.relation, i});
      }
    }
    for (const Atom& atom : rule.part.head) {
      for (uint32_t i = 0; i < atom.args.size(); ++i) {
        node({atom.relation, i});
      }
    }
  }
  for (uint32_t r = 0; r < rules.size(); ++r) {
    const SoPart& part = rules[r].part;
    for (const auto& [var, positions] : BodyPositions(arena, part)) {
      for (const Position& from : positions) {
        uint32_t from_node = node(from);
        for (uint32_t a = 0; a < part.head.size(); ++a) {
          const Atom& atom = part.head[a];
          for (uint32_t i = 0; i < atom.args.size(); ++i) {
            TermId t = atom.args[i];
            if (arena.IsVariable(t) && arena.symbol(t) == var) {
              graph.edges.push_back({from_node, node({atom.relation, i}),
                                     /*special=*/false, r, var, a, i});
            } else if (arena.IsFunction(t)) {
              std::set<VariableId> term_vars;
              TermVariables(arena, t, &term_vars);
              if (term_vars.count(var)) {
                graph.edges.push_back({from_node, node({atom.relation, i}),
                                       /*special=*/true, r, var, a, i});
              }
            }
          }
        }
      }
    }
  }
  graph.out_edges.assign(graph.nodes.size(), {});
  for (uint32_t e = 0; e < graph.edges.size(); ++e) {
    graph.out_edges[graph.edges[e].from].push_back(e);
  }
  return graph;
}

AffectedAnalysis BuildAffected(const TermArena& arena,
                               const std::vector<AnalyzedRule>& rules) {
  AffectedAnalysis out;
  // (1) Head positions carrying functional terms.
  for (uint32_t r = 0; r < rules.size(); ++r) {
    const SoPart& part = rules[r].part;
    for (uint32_t a = 0; a < part.head.size(); ++a) {
      const Atom& atom = part.head[a];
      for (uint32_t i = 0; i < atom.args.size(); ++i) {
        if (!arena.IsFunction(atom.args[i])) continue;
        Position p{atom.relation, i};
        if (out.affected.insert(p).second) {
          out.reasons[p] = {AffectedReason::Kind::kFunctionalHead, r, a, i,
                            /*var=*/0};
        }
      }
    }
  }
  // (2) Propagate through variables occurring only at affected positions.
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t r = 0; r < rules.size(); ++r) {
      const SoPart& part = rules[r].part;
      for (const auto& [var, positions] : BodyPositions(arena, part)) {
        bool all_affected = std::all_of(
            positions.begin(), positions.end(),
            [&out](const Position& p) { return out.affected.count(p) != 0; });
        if (!all_affected) continue;
        for (uint32_t a = 0; a < part.head.size(); ++a) {
          const Atom& atom = part.head[a];
          for (uint32_t i = 0; i < atom.args.size(); ++i) {
            TermId t = atom.args[i];
            if (!arena.IsVariable(t) || arena.symbol(t) != var) continue;
            Position p{atom.relation, i};
            if (out.affected.insert(p).second) {
              out.reasons[p] = {AffectedReason::Kind::kPropagated, r, a, i,
                                var};
              changed = true;
            }
          }
        }
      }
    }
  }
  return out;
}

/// The Calì–Gottlob–Pieris marking procedure, per-rule. A variable is
/// marked in a rule when (initial step) some head atom of the rule drops
/// it, or (propagation) it flows into a head position that holds a marked
/// body occurrence somewhere in the rule set.
StickyMarking BuildMarking(const TermArena& arena,
                           const std::vector<AnalyzedRule>& rules) {
  StickyMarking marking;
  marking.marked_vars.resize(rules.size());
  auto mark = [&](uint32_t r, VariableId var, const MarkReason& reason) {
    auto [it, inserted] = marking.marked_vars[r].emplace(var, reason);
    if (!inserted) return false;
    auto positions = BodyPositions(arena, rules[r].part);
    marking.marked_positions.insert(positions[var].begin(),
                                    positions[var].end());
    return true;
  };
  // Initial step: mark variables missing from some head atom.
  for (uint32_t r = 0; r < rules.size(); ++r) {
    const SoPart& part = rules[r].part;
    for (const auto& [var, positions] : BodyPositions(arena, part)) {
      for (uint32_t a = 0; a < part.head.size(); ++a) {
        if (!OccursTopLevel(arena, var, part.head[a])) {
          mark(r, var, {MarkReason::Kind::kDropped, a, 0, {0, 0}});
          break;
        }
      }
    }
  }
  // Propagation: follow head occurrences into marked positions.
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t r = 0; r < rules.size(); ++r) {
      const SoPart& part = rules[r].part;
      for (const auto& [var, positions] : BodyPositions(arena, part)) {
        if (marking.IsMarked(r, var)) continue;
        for (uint32_t a = 0; a < part.head.size() && !changed; ++a) {
          const Atom& atom = part.head[a];
          for (uint32_t i = 0; i < atom.args.size(); ++i) {
            TermId t = atom.args[i];
            if (!arena.IsVariable(t) || arena.symbol(t) != var) continue;
            Position p{atom.relation, i};
            if (!marking.marked_positions.count(p)) continue;
            if (mark(r, var, {MarkReason::Kind::kPropagated, a, i, p})) {
              changed = true;
              break;
            }
          }
        }
      }
    }
  }
  return marking;
}

// --- verdict builders -------------------------------------------------------

CriterionVerdict JudgeFull(const TermArena& arena,
                           const std::vector<AnalyzedRule>& rules) {
  CriterionVerdict v{Criterion::kFull, true, {}};
  for (uint32_t r = 0; r < rules.size(); ++r) {
    const SoPart& part = rules[r].part;
    if (!part.equalities.empty()) {
      v.holds = false;
      v.witness = FullWitness{r, /*head_atom=*/0, /*head_arg=*/0,
                              part.equalities[0].lhs, /*equality=*/true};
      return v;
    }
    for (uint32_t a = 0; a < part.head.size(); ++a) {
      const Atom& atom = part.head[a];
      for (uint32_t i = 0; i < atom.args.size(); ++i) {
        TermId t = atom.args[i];
        if (arena.IsFunction(t) || arena.HasNestedFunction(t)) {
          v.holds = false;
          v.witness = FullWitness{r, a, i, t, /*equality=*/false};
          return v;
        }
      }
    }
  }
  return v;
}

CriterionVerdict JudgeLinear(const std::vector<AnalyzedRule>& rules) {
  CriterionVerdict v{Criterion::kLinear, true, {}};
  for (uint32_t r = 0; r < rules.size(); ++r) {
    if (rules[r].part.body.size() != 1) {
      v.holds = false;
      v.witness = LinearWitness{
          r, static_cast<uint32_t>(rules[r].part.body.size())};
      return v;
    }
  }
  return v;
}

/// Shared guard search: does some body atom of `part` contain every
/// variable of `required`? If not, fills `missing` with one absent
/// required variable per body atom.
bool FindGuard(const TermArena& arena, const SoPart& part,
               const std::set<VariableId>& required,
               std::vector<VariableId>* missing) {
  missing->clear();
  for (const Atom& atom : part.body) {
    std::set<VariableId> atom_vars;
    for (TermId t : atom.args) TermVariables(arena, t, &atom_vars);
    VariableId absent = 0;
    bool covers = true;
    for (VariableId v : required) {
      if (!atom_vars.count(v)) {
        covers = false;
        absent = v;
        break;
      }
    }
    if (covers) return true;
    missing->push_back(absent);
  }
  return false;
}

CriterionVerdict JudgeGuarded(const TermArena& arena,
                              const std::vector<AnalyzedRule>& rules) {
  CriterionVerdict v{Criterion::kGuarded, true, {}};
  for (uint32_t r = 0; r < rules.size(); ++r) {
    std::set<VariableId> body_vars = BodyVariables(arena, rules[r].part);
    std::vector<VariableId> missing;
    if (FindGuard(arena, rules[r].part, body_vars, &missing)) continue;
    v.holds = false;
    v.witness = GuardWitness{
        r, {body_vars.begin(), body_vars.end()}, std::move(missing)};
    return v;
  }
  return v;
}

CriterionVerdict JudgeWeaklyGuarded(const TermArena& arena,
                                    const std::vector<AnalyzedRule>& rules,
                                    const AffectedAnalysis& affected) {
  CriterionVerdict v{Criterion::kWeaklyGuarded, true, {}};
  for (uint32_t r = 0; r < rules.size(); ++r) {
    const SoPart& part = rules[r].part;
    std::set<VariableId> must_guard;
    for (const auto& [var, positions] : BodyPositions(arena, part)) {
      bool all_affected = std::all_of(
          positions.begin(), positions.end(), [&affected](const Position& p) {
            return affected.affected.count(p) != 0;
          });
      if (all_affected) must_guard.insert(var);
    }
    if (must_guard.empty()) continue;
    std::vector<VariableId> missing;
    if (FindGuard(arena, part, must_guard, &missing)) continue;
    v.holds = false;
    v.witness = GuardWitness{
        r, {must_guard.begin(), must_guard.end()}, std::move(missing)};
    return v;
  }
  return v;
}

// --- position graph walks ---------------------------------------------------

/// BFS edge path from node `from` to node `to` (empty when from == to).
/// False when unreachable.
bool EdgePath(const PositionGraph& graph, uint32_t from, uint32_t to,
              std::vector<uint32_t>* path) {
  path->clear();
  if (from == to) return true;
  std::vector<int64_t> parent_edge(graph.nodes.size(), -1);
  std::vector<bool> seen(graph.nodes.size(), false);
  std::vector<uint32_t> queue{from};
  seen[from] = true;
  bool found = false;
  for (size_t q = 0; q < queue.size() && !found; ++q) {
    for (uint32_t e : graph.out_edges[queue[q]]) {
      uint32_t next = graph.edges[e].to;
      if (seen[next]) continue;
      seen[next] = true;
      parent_edge[next] = e;
      if (next == to) {
        found = true;
        break;
      }
      queue.push_back(next);
    }
  }
  if (!found) return false;
  for (uint32_t at = to; at != from;) {
    uint32_t e = static_cast<uint32_t>(parent_edge[at]);
    path->push_back(e);
    at = graph.edges[e].from;
  }
  std::reverse(path->begin(), path->end());
  return true;
}

/// Closed walk through edge `se` (edge `se` followed by a path back from
/// its head to its tail), or empty when `se` lies on no cycle.
std::vector<uint32_t> CloseWalkThrough(const PositionGraph& graph,
                                       uint32_t se) {
  std::vector<uint32_t> back;
  if (!EdgePath(graph, graph.edges[se].to, graph.edges[se].from, &back)) {
    return {};
  }
  std::vector<uint32_t> walk{se};
  walk.insert(walk.end(), back.begin(), back.end());
  return walk;
}

/// Strongly connected components of the position graph (iterative
/// Tarjan). Returns the component id per node; ids number the components
/// in reverse topological order (every component only reaches lower ids).
std::vector<uint32_t> ComputeSccs(const PositionGraph& graph) {
  uint32_t n = static_cast<uint32_t>(graph.nodes.size());
  std::vector<uint32_t> scc(n, 0);
  std::vector<uint32_t> index(n, UINT32_MAX);
  std::vector<uint32_t> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  uint32_t next_index = 0;
  uint32_t next_scc = 0;
  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != UINT32_MAX) continue;
    // Explicit frames (node, next out-edge slot): the graph can be as
    // deep as the program is long, so no recursion.
    std::vector<std::pair<uint32_t, size_t>> frames{{root, 0}};
    while (!frames.empty()) {
      uint32_t v = frames.back().first;
      if (frames.back().second == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (frames.back().second < graph.out_edges[v].size()) {
        uint32_t w = graph.edges[graph.out_edges[v][frames.back().second]].to;
        ++frames.back().second;
        if (index[w] == UINT32_MAX) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        for (;;) {
          uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc[w] = next_scc;
          if (w == v) break;
        }
        ++next_scc;
      }
      frames.pop_back();
      if (!frames.empty()) {
        uint32_t parent = frames.back().first;
        low[parent] = std::min(low[parent], low[v]);
      }
    }
  }
  return scc;
}

CriterionVerdict JudgeWeaklyAcyclic(const PositionGraph& graph) {
  CriterionVerdict v{Criterion::kWeaklyAcyclic, true, {}};
  for (uint32_t se = 0; se < graph.edges.size(); ++se) {
    if (!graph.edges[se].special) continue;
    std::vector<uint32_t> walk = CloseWalkThrough(graph, se);
    if (walk.empty()) continue;
    v.holds = false;
    v.witness = CycleWitness{std::move(walk)};
    return v;
  }
  return v;
}

CriterionVerdict JudgeSticky(const TermArena& arena,
                             const std::vector<AnalyzedRule>& rules,
                             const StickyMarking& marking, bool join_only) {
  CriterionVerdict v{join_only ? Criterion::kStickyJoin : Criterion::kSticky,
                     true,
                     {}};
  for (uint32_t r = 0; r < rules.size(); ++r) {
    for (const auto& [var, occurrences] :
         BodyOccurrences(arena, rules[r].part)) {
      if (occurrences.size() < 2 || !marking.IsMarked(r, var)) continue;
      if (join_only) {
        // Sticky-join tolerates repeats inside a single atom (a selection,
        // compilable away); only a repeat across two atoms is a join.
        for (size_t i = 1; i < occurrences.size(); ++i) {
          if (occurrences[i].first != occurrences[0].first) {
            v.holds = false;
            v.witness = StickyWitness{r, var, occurrences[0].first,
                                      occurrences[0].second,
                                      occurrences[i].first,
                                      occurrences[i].second};
            return v;
          }
        }
      } else {
        v.holds = false;
        v.witness = StickyWitness{r, var, occurrences[0].first,
                                  occurrences[0].second,
                                  occurrences[1].first,
                                  occurrences[1].second};
        return v;
      }
    }
  }
  return v;
}

/// Triangular guardedness (after Asuncion–Zhang). A triangular component
/// is an SCC of the position graph containing a special edge — a loop
/// that keeps re-generating nulls. The criterion holds when every such
/// component obeys at least one repair discipline:
///   (b) guarded: every rule with an edge inside the component has one
///       body atom covering all its component-dangerous variables (body
///       variables bound only at affected positions, at least one of them
///       inside the component);
///   (c) sticky: no marked variable of a component rule joins two
///       component positions across distinct body atoms.
/// Weak acyclicity (no triangular components at all), weak guardedness
/// (the global guard covers every component subset) and sticky-join (no
/// cross-atom marked join anywhere) each imply it.
CriterionVerdict JudgeTriangularlyGuarded(
    const TermArena& arena, const std::vector<AnalyzedRule>& rules,
    const PositionGraph& graph, const AffectedAnalysis& affected,
    const StickyMarking& marking) {
  CriterionVerdict v{Criterion::kTriangularlyGuarded, true, {}};
  std::vector<uint32_t> scc = ComputeSccs(graph);
  // Triangular components, each with one witnessing in-component special
  // edge (the first, for determinism).
  std::map<uint32_t, uint32_t> components;
  for (uint32_t e = 0; e < graph.edges.size(); ++e) {
    const PositionEdge& edge = graph.edges[e];
    if (edge.special && scc[edge.from] == scc[edge.to]) {
      components.emplace(scc[edge.from], e);
    }
  }
  for (const auto& [component, special_edge] : components) {
    std::set<uint32_t> nodes;
    for (uint32_t node = 0; node < graph.nodes.size(); ++node) {
      if (scc[node] == component) nodes.insert(node);
    }
    auto in_component = [&](const Position& p) {
      auto it = graph.node_index.find(p);
      return it != graph.node_index.end() && nodes.count(it->second) != 0;
    };
    std::set<uint32_t> touching;  // rules with an edge inside the component
    for (const PositionEdge& edge : graph.edges) {
      if (scc[edge.from] == component && scc[edge.to] == component) {
        touching.insert(edge.rule);
      }
    }
    // Discipline (b): guard the component-dangerous variables.
    std::optional<GuardWitness> guard_fail;
    for (uint32_t r : touching) {
      const SoPart& part = rules[r].part;
      std::set<VariableId> must_guard;
      for (const auto& [var, positions] : BodyPositions(arena, part)) {
        bool all_affected = std::all_of(
            positions.begin(), positions.end(),
            [&affected](const Position& p) {
              return affected.affected.count(p) != 0;
            });
        if (!all_affected) continue;
        bool touches = std::any_of(positions.begin(), positions.end(),
                                   in_component);
        if (touches) must_guard.insert(var);
      }
      if (must_guard.empty()) continue;
      std::vector<VariableId> missing;
      if (FindGuard(arena, part, must_guard, &missing)) continue;
      guard_fail = GuardWitness{
          r, {must_guard.begin(), must_guard.end()}, std::move(missing)};
      break;
    }
    if (!guard_fail.has_value()) continue;
    // Discipline (c): no marked cross-atom join on component positions.
    std::optional<StickyWitness> join_fail;
    for (uint32_t r : touching) {
      const SoPart& part = rules[r].part;
      for (const auto& [var, occurrences] : BodyOccurrences(arena, part)) {
        if (occurrences.size() < 2 || !marking.IsMarked(r, var)) continue;
        for (size_t i = 0; i < occurrences.size() && !join_fail; ++i) {
          const auto& [a1, g1] = occurrences[i];
          if (!in_component({part.body[a1].relation, g1})) continue;
          for (size_t j = i + 1; j < occurrences.size(); ++j) {
            const auto& [a2, g2] = occurrences[j];
            if (a2 == a1) continue;
            if (!in_component({part.body[a2].relation, g2})) continue;
            join_fail = StickyWitness{r, var, a1, g1, a2, g2};
            break;
          }
        }
        if (join_fail) break;
      }
      if (join_fail) break;
    }
    if (!join_fail.has_value()) continue;
    // Both disciplines fail: the component is an unguarded triangle.
    TriangleWitness witness;
    witness.component.assign(nodes.begin(), nodes.end());
    witness.cycle = CloseWalkThrough(graph, special_edge);
    witness.guard = std::move(*guard_fail);
    witness.join = std::move(*join_fail);
    v.holds = false;
    v.witness = std::move(witness);
    return v;
  }
  return v;
}

/// The structural complexity bound. Generating SCC = one containing a
/// special edge. None: the graph is weakly acyclic, the chase is
/// polynomial with null depth bounded by the special-edge rank. Some, but
/// none reaching another: one self-feeding generation stage —
/// exponential. A generating SCC feeding a second one: stacked generation
/// stages — non-elementary.
ComplexityBound BuildComplexity(const PositionGraph& graph) {
  ComplexityBound out;
  std::vector<uint32_t> scc = ComputeSccs(graph);
  std::map<uint32_t, uint32_t> generating;  // scc -> in-component special
  for (uint32_t e = 0; e < graph.edges.size(); ++e) {
    const PositionEdge& edge = graph.edges[e];
    if (edge.special && scc[edge.from] == scc[edge.to]) {
      generating.emplace(scc[edge.from], e);
    }
  }
  if (generating.empty()) {
    out.tier = ComplexityTier::kPolynomial;
    // Rank per SCC: max special edges on any path leaving it. Tarjan ids
    // are reverse-topological, so every successor SCC is already final
    // when its predecessors are folded in. Track the realizing edge.
    uint32_t scc_count = 0;
    for (uint32_t id : scc) scc_count = std::max(scc_count, id + 1);
    if (scc_count == 0) return out;
    std::vector<uint32_t> rank(scc_count, 0);
    std::vector<int64_t> via_edge(scc_count, -1);
    for (uint32_t c = 0; c < scc_count; ++c) {
      for (uint32_t e = 0; e < graph.edges.size(); ++e) {
        const PositionEdge& edge = graph.edges[e];
        if (scc[edge.from] != c || scc[edge.to] == c) continue;
        uint32_t reach = rank[scc[edge.to]] + (edge.special ? 1 : 0);
        if (reach > rank[c]) {
          rank[c] = reach;
          via_edge[c] = e;
        }
      }
    }
    uint32_t best = 0;
    for (uint32_t c = 0; c < scc_count; ++c) {
      if (rank[c] > rank[best]) best = c;
    }
    out.rank = rank[best];
    for (uint32_t c = best; via_edge[c] >= 0;) {
      uint32_t e = static_cast<uint32_t>(via_edge[c]);
      if (graph.edges[e].special) out.rank_path.push_back(e);
      c = scc[graph.edges[e].to];
    }
    return out;
  }
  // Does any generating SCC feed a different one? (Tarjan ids are
  // reverse-topological, so reachability is only possible toward lower
  // ids; the path check settles it either way.)
  for (const auto& [c1, e1] : generating) {
    for (const auto& [c2, e2] : generating) {
      if (c1 == c2) continue;
      std::vector<uint32_t> link;
      if (!EdgePath(graph, graph.edges[e1].to, graph.edges[e2].from, &link)) {
        continue;
      }
      out.tier = ComplexityTier::kNonElementary;
      out.cycle = CloseWalkThrough(graph, e1);
      out.link = std::move(link);
      out.cycle2 = CloseWalkThrough(graph, e2);
      return out;
    }
  }
  out.tier = ComplexityTier::kExponential;
  out.cycle = CloseWalkThrough(graph, generating.begin()->second);
  return out;
}

}  // namespace

const char* CriterionName(Criterion criterion) {
  switch (criterion) {
    case Criterion::kFull:
      return "full";
    case Criterion::kWeaklyAcyclic:
      return "weakly-acyclic";
    case Criterion::kLinear:
      return "linear";
    case Criterion::kGuarded:
      return "guarded";
    case Criterion::kWeaklyGuarded:
      return "weakly-guarded";
    case Criterion::kSticky:
      return "sticky";
    case Criterion::kStickyJoin:
      return "sticky-join";
    case Criterion::kTriangularlyGuarded:
      return "triangularly-guarded";
  }
  return "?";
}

Figure2Membership ProgramAnalysis::Membership() const {
  Figure2Membership m;
  m.full = verdict(Criterion::kFull).holds;
  m.weakly_acyclic = verdict(Criterion::kWeaklyAcyclic).holds;
  m.linear = verdict(Criterion::kLinear).holds;
  m.guarded = verdict(Criterion::kGuarded).holds;
  m.weakly_guarded = verdict(Criterion::kWeaklyGuarded).holds;
  m.sticky = verdict(Criterion::kSticky).holds;
  m.sticky_join = verdict(Criterion::kStickyJoin).holds;
  m.triangularly_guarded = verdict(Criterion::kTriangularlyGuarded).holds;
  return m;
}

ProgramAnalysis AnalyzeRules(const TermArena& arena,
                             std::vector<AnalyzedRule> rules) {
  ProgramAnalysis analysis;
  analysis.arena = &arena;
  analysis.rules = std::move(rules);
  analysis.graph = BuildPositionGraph(arena, analysis.rules);
  analysis.affected = BuildAffected(arena, analysis.rules);
  analysis.marking = BuildMarking(arena, analysis.rules);
  analysis.verdicts.push_back(JudgeFull(arena, analysis.rules));
  analysis.verdicts.push_back(JudgeWeaklyAcyclic(analysis.graph));
  analysis.verdicts.push_back(JudgeLinear(analysis.rules));
  analysis.verdicts.push_back(JudgeGuarded(arena, analysis.rules));
  analysis.verdicts.push_back(
      JudgeWeaklyGuarded(arena, analysis.rules, analysis.affected));
  analysis.verdicts.push_back(
      JudgeSticky(arena, analysis.rules, analysis.marking, false));
  analysis.verdicts.push_back(
      JudgeSticky(arena, analysis.rules, analysis.marking, true));
  analysis.verdicts.push_back(JudgeTriangularlyGuarded(
      arena, analysis.rules, analysis.graph, analysis.affected,
      analysis.marking));
  analysis.complexity = BuildComplexity(analysis.graph);
  return analysis;
}

ProgramAnalysis AnalyzeSo(const TermArena& arena, const SoTgd& so) {
  std::vector<AnalyzedRule> rules;
  for (uint32_t j = 0; j < so.parts.size(); ++j) {
    AnalyzedRule rule;
    rule.part = so.parts[j];
    rule.dep_index = 0;
    rule.part_index = j;
    rule.label = "#1";
    rules.push_back(std::move(rule));
  }
  return AnalyzeRules(arena, std::move(rules));
}

std::vector<AnalyzedRule> FlattenProgram(TermArena* arena, Vocabulary* vocab,
                                         const DependencyProgram& program) {
  std::vector<AnalyzedRule> rules;
  for (uint32_t i = 0; i < program.dependencies.size(); ++i) {
    const ParsedDependency& dep = program.dependencies[i];
    SoTgd so;
    switch (dep.kind) {
      case ParsedDependency::Kind::kTgd:
        so = TgdToSo(arena, vocab, dep.tgd);
        break;
      case ParsedDependency::Kind::kSo:
        so = dep.so;
        break;
      case ParsedDependency::Kind::kNested:
        so = NestedToSo(arena, vocab, dep.nested);
        break;
      case ParsedDependency::Kind::kHenkin:
        so = HenkinToSo(arena, vocab, dep.henkin);
        break;
    }
    for (uint32_t j = 0; j < so.parts.size(); ++j) {
      AnalyzedRule rule;
      rule.part = so.parts[j];
      rule.dep_index = i;
      rule.part_index = j;
      rule.label = dep.label.empty() ? Cat("#", i + 1) : dep.label;
      rule.line = dep.line;
      rule.column = dep.column;
      rules.push_back(std::move(rule));
    }
  }
  return rules;
}

ProgramAnalysis AnalyzeProgram(TermArena* arena, Vocabulary* vocab,
                               const DependencyProgram& program) {
  return AnalyzeRules(*arena, FlattenProgram(arena, vocab, program));
}

// ---------------------------------------------------------------------------
// Replay

namespace {

Status Fail(const std::string& what) {
  return Status::InvalidArgument(Cat("witness replay failed: ", what));
}

Status ReplayFull(const TermArena& arena, const ProgramAnalysis& analysis,
                  const FullWitness& w) {
  if (w.rule >= analysis.rules.size()) return Fail("rule out of range");
  const SoPart& part = analysis.rules[w.rule].part;
  if (w.equality) {
    if (part.equalities.empty()) return Fail("rule has no equalities");
    return Status::Ok();
  }
  if (w.head_atom >= part.head.size()) return Fail("head atom out of range");
  const Atom& atom = part.head[w.head_atom];
  if (w.head_arg >= atom.args.size()) return Fail("head arg out of range");
  TermId t = atom.args[w.head_arg];
  if (t != w.term) return Fail("term does not match head occurrence");
  if (!arena.IsFunction(t) && !arena.HasNestedFunction(t)) {
    return Fail("cited term is not functional");
  }
  return Status::Ok();
}

Status ReplayLinear(const ProgramAnalysis& analysis, const LinearWitness& w) {
  if (w.rule >= analysis.rules.size()) return Fail("rule out of range");
  size_t atoms = analysis.rules[w.rule].part.body.size();
  if (atoms != w.body_atoms) return Fail("body atom count mismatch");
  if (atoms == 1) return Fail("rule is linear after all");
  return Status::Ok();
}

Status ReplayGuard(const TermArena& arena, const ProgramAnalysis& analysis,
                   const GuardWitness& w, bool weakly) {
  if (w.rule >= analysis.rules.size()) return Fail("rule out of range");
  const SoPart& part = analysis.rules[w.rule].part;
  if (w.required.empty()) return Fail("empty required set");
  std::set<VariableId> required(w.required.begin(), w.required.end());
  std::set<VariableId> body_vars = BodyVariables(arena, part);
  for (VariableId v : required) {
    if (!body_vars.count(v)) return Fail("required variable not in body");
  }
  if (!weakly && required != body_vars) {
    return Fail("guarded witness must require every body variable");
  }
  if (weakly) {
    // Every required variable must occur only at affected positions.
    auto positions = BodyPositions(arena, part);
    for (VariableId v : required) {
      for (const Position& p : positions[v]) {
        if (!analysis.affected.affected.count(p)) {
          return Fail("required variable occurs at an unaffected position");
        }
      }
    }
  }
  if (w.missing.size() != part.body.size()) {
    return Fail("missing list must cover every body atom");
  }
  for (uint32_t a = 0; a < part.body.size(); ++a) {
    VariableId absent = w.missing[a];
    if (!required.count(absent)) return Fail("missing variable not required");
    std::set<VariableId> atom_vars;
    for (TermId t : part.body[a].args) TermVariables(arena, t, &atom_vars);
    if (atom_vars.count(absent)) {
      return Fail("cited variable actually occurs in the atom");
    }
  }
  return Status::Ok();
}

Status ReplayCycle(const ProgramAnalysis& analysis, const CycleWitness& w) {
  if (w.edges.empty()) return Fail("empty cycle");
  const PositionGraph& graph = analysis.graph;
  bool has_special = false;
  for (size_t i = 0; i < w.edges.size(); ++i) {
    if (w.edges[i] >= graph.edges.size()) return Fail("edge out of range");
    const PositionEdge& edge = graph.edges[w.edges[i]];
    has_special |= edge.special;
    const PositionEdge& next =
        graph.edges[w.edges[(i + 1) % w.edges.size()]];
    if (edge.to != next.from) return Fail("cycle edges do not chain");
  }
  if (!has_special) return Fail("cycle has no special edge");
  return Status::Ok();
}

Status ReplaySticky(const TermArena& arena, const ProgramAnalysis& analysis,
                    const StickyWitness& w, bool join_only) {
  if (w.rule >= analysis.rules.size()) return Fail("rule out of range");
  const SoPart& part = analysis.rules[w.rule].part;
  auto occurrence_is_var = [&](uint32_t atom, uint32_t arg) {
    if (atom >= part.body.size()) return false;
    if (arg >= part.body[atom].args.size()) return false;
    TermId t = part.body[atom].args[arg];
    return arena.IsVariable(t) && arena.symbol(t) == w.var;
  };
  if (!occurrence_is_var(w.atom1, w.arg1) ||
      !occurrence_is_var(w.atom2, w.arg2)) {
    return Fail("cited occurrence does not hold the variable");
  }
  if (w.atom1 == w.atom2 && w.arg1 == w.arg2) {
    return Fail("witness cites one occurrence twice");
  }
  if (join_only && w.atom1 == w.atom2) {
    return Fail("sticky-join witness must span two atoms");
  }
  if (!analysis.marking.IsMarked(w.rule, w.var)) {
    return Fail("variable is not marked in the rule");
  }
  // Replay the marking derivation itself.
  const MarkReason& reason =
      analysis.marking.marked_vars[w.rule].at(w.var);
  if (reason.kind == MarkReason::Kind::kDropped) {
    if (reason.head_atom >= part.head.size()) {
      return Fail("mark reason head atom out of range");
    }
    if (OccursTopLevel(arena, w.var, part.head[reason.head_atom])) {
      return Fail("mark reason claims a drop but the head keeps the variable");
    }
  } else {
    if (reason.head_atom >= part.head.size()) {
      return Fail("mark reason head atom out of range");
    }
    const Atom& atom = part.head[reason.head_atom];
    if (reason.head_arg >= atom.args.size()) {
      return Fail("mark reason head arg out of range");
    }
    TermId t = atom.args[reason.head_arg];
    if (!arena.IsVariable(t) || arena.symbol(t) != w.var) {
      return Fail("mark reason head occurrence does not hold the variable");
    }
    if (Position{atom.relation, reason.head_arg} != reason.via) {
      return Fail("mark reason position mismatch");
    }
    if (!analysis.marking.marked_positions.count(reason.via)) {
      return Fail("mark reason cites an unmarked position");
    }
    // The via position must hold a marked occurrence somewhere.
    bool justified = false;
    for (uint32_t r = 0; r < analysis.rules.size() && !justified; ++r) {
      for (const auto& [var, positions] :
           BodyPositions(arena, analysis.rules[r].part)) {
        if (positions.count(reason.via) &&
            analysis.marking.IsMarked(r, var)) {
          justified = true;
          break;
        }
      }
    }
    if (!justified) {
      return Fail("no marked occurrence justifies the via position");
    }
  }
  return Status::Ok();
}

Status ReplayTriangle(const TermArena& arena, const ProgramAnalysis& analysis,
                      const TriangleWitness& w) {
  const PositionGraph& graph = analysis.graph;
  if (w.component.empty()) return Fail("empty triangular component");
  for (uint32_t node : w.component) {
    if (node >= graph.nodes.size()) return Fail("component node out of range");
  }
  // The component must be exactly one strongly connected component.
  std::vector<uint32_t> scc = ComputeSccs(graph);
  uint32_t id = scc[w.component.front()];
  std::set<uint32_t> expected;
  for (uint32_t node = 0; node < graph.nodes.size(); ++node) {
    if (scc[node] == id) expected.insert(node);
  }
  if (std::set<uint32_t>(w.component.begin(), w.component.end()) != expected) {
    return Fail("component is not a strongly connected component");
  }
  auto in_component = [&](const Position& p) {
    auto it = graph.node_index.find(p);
    return it != graph.node_index.end() && scc[it->second] == id;
  };
  auto touches = [&](uint32_t rule) {
    for (const PositionEdge& edge : graph.edges) {
      if (edge.rule == rule && scc[edge.from] == id && scc[edge.to] == id) {
        return true;
      }
    }
    return false;
  };
  // Side 1: a closed walk through a special edge, inside the component.
  Status cycle_status = ReplayCycle(analysis, CycleWitness{w.cycle});
  if (!cycle_status.ok()) return cycle_status;
  for (uint32_t e : w.cycle) {
    if (scc[graph.edges[e].from] != id || scc[graph.edges[e].to] != id) {
      return Fail("cycle leaves the component");
    }
  }
  // Side 2: the guard failure, with every required variable dangerous
  // (affected-only) and touching the component.
  Status guard_status = ReplayGuard(arena, analysis, w.guard, /*weakly=*/true);
  if (!guard_status.ok()) return guard_status;
  if (!touches(w.guard.rule)) {
    return Fail("guard rule has no edge inside the component");
  }
  {
    auto positions = BodyPositions(arena, analysis.rules[w.guard.rule].part);
    for (VariableId var : w.guard.required) {
      bool touching = std::any_of(positions[var].begin(),
                                  positions[var].end(), in_component);
      if (!touching) {
        return Fail("required variable never touches the component");
      }
    }
  }
  // Side 3: the marked cross-atom join, both ends on component positions.
  Status join_status =
      ReplaySticky(arena, analysis, w.join, /*join_only=*/true);
  if (!join_status.ok()) return join_status;
  if (!touches(w.join.rule)) {
    return Fail("join rule has no edge inside the component");
  }
  const SoPart& join_part = analysis.rules[w.join.rule].part;
  if (!in_component({join_part.body[w.join.atom1].relation, w.join.arg1}) ||
      !in_component({join_part.body[w.join.atom2].relation, w.join.arg2})) {
    return Fail("join occurrence lies outside the component");
  }
  return Status::Ok();
}

}  // namespace

Status ReplayComplexity(const ProgramAnalysis& analysis) {
  const PositionGraph& graph = analysis.graph;
  const ComplexityBound& c = analysis.complexity;
  ComplexityBound fresh = BuildComplexity(graph);
  if (fresh.tier != c.tier) return Fail("tier does not match the graph");
  auto closed_special_walk = [&](const std::vector<uint32_t>& walk) {
    return ReplayCycle(analysis, CycleWitness{walk});
  };
  switch (c.tier) {
    case ComplexityTier::kPolynomial: {
      if (fresh.rank != c.rank) return Fail("rank does not match the graph");
      if (c.rank_path.size() != c.rank) {
        return Fail("rank path does not realize the rank");
      }
      for (size_t i = 0; i < c.rank_path.size(); ++i) {
        if (c.rank_path[i] >= graph.edges.size()) {
          return Fail("rank path edge out of range");
        }
        if (!graph.edges[c.rank_path[i]].special) {
          return Fail("rank path cites a non-special edge");
        }
        if (i == 0) continue;
        std::vector<uint32_t> hop;
        if (!EdgePath(graph, graph.edges[c.rank_path[i - 1]].to,
                      graph.edges[c.rank_path[i]].from, &hop)) {
          return Fail("rank path special edges do not chain");
        }
      }
      return Status::Ok();
    }
    case ComplexityTier::kExponential:
      return closed_special_walk(c.cycle);
    case ComplexityTier::kNonElementary: {
      Status status = closed_special_walk(c.cycle);
      if (!status.ok()) return status;
      status = closed_special_walk(c.cycle2);
      if (!status.ok()) return status;
      if (c.link.empty()) return Fail("missing link between the cycles");
      std::vector<uint32_t> scc = ComputeSccs(graph);
      uint32_t first = scc[graph.edges[c.cycle.front()].from];
      uint32_t second = scc[graph.edges[c.cycle2.front()].from];
      if (first == second) {
        return Fail("cycles share a strongly connected component");
      }
      std::set<uint32_t> on_first, on_second;
      for (uint32_t e : c.cycle) {
        on_first.insert(graph.edges[e].from);
        on_first.insert(graph.edges[e].to);
      }
      for (uint32_t e : c.cycle2) {
        on_second.insert(graph.edges[e].from);
        on_second.insert(graph.edges[e].to);
      }
      for (size_t i = 0; i < c.link.size(); ++i) {
        if (c.link[i] >= graph.edges.size()) {
          return Fail("link edge out of range");
        }
        if (i > 0 &&
            graph.edges[c.link[i - 1]].to != graph.edges[c.link[i]].from) {
          return Fail("link edges do not chain");
        }
      }
      if (!on_first.count(graph.edges[c.link.front()].from)) {
        return Fail("link does not start on the first cycle");
      }
      if (!on_second.count(graph.edges[c.link.back()].to)) {
        return Fail("link does not land on the second cycle");
      }
      return Status::Ok();
    }
  }
  return Fail("unknown complexity tier");
}

Status ReplayWitness(const TermArena& arena, const ProgramAnalysis& analysis,
                     const CriterionVerdict& verdict) {
  if (verdict.holds) {
    if (!std::holds_alternative<std::monostate>(verdict.witness)) {
      return Fail("positive verdict carries a witness");
    }
    return Status::Ok();
  }
  switch (verdict.criterion) {
    case Criterion::kFull:
      return ReplayFull(arena, analysis,
                        std::get<FullWitness>(verdict.witness));
    case Criterion::kLinear:
      return ReplayLinear(analysis,
                          std::get<LinearWitness>(verdict.witness));
    case Criterion::kGuarded:
      return ReplayGuard(arena, analysis,
                         std::get<GuardWitness>(verdict.witness), false);
    case Criterion::kWeaklyGuarded:
      return ReplayGuard(arena, analysis,
                         std::get<GuardWitness>(verdict.witness), true);
    case Criterion::kWeaklyAcyclic:
      return ReplayCycle(analysis, std::get<CycleWitness>(verdict.witness));
    case Criterion::kSticky:
      return ReplaySticky(arena, analysis,
                          std::get<StickyWitness>(verdict.witness), false);
    case Criterion::kStickyJoin:
      return ReplaySticky(arena, analysis,
                          std::get<StickyWitness>(verdict.witness), true);
    case Criterion::kTriangularlyGuarded:
      return ReplayTriangle(arena, analysis,
                            std::get<TriangleWitness>(verdict.witness));
  }
  return Fail("unknown criterion");
}

Status ReplayAllWitnesses(const TermArena& arena,
                          const ProgramAnalysis& analysis) {
  for (const CriterionVerdict& verdict : analysis.verdicts) {
    Status status = ReplayWitness(arena, analysis, verdict);
    if (!status.ok()) {
      return Status::InvalidArgument(
          Cat(CriterionName(verdict.criterion), ": ", status.ToString()));
    }
  }
  Status status = ReplayComplexity(analysis);
  if (!status.ok()) {
    return Status::InvalidArgument(Cat("complexity: ", status.ToString()));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Rendering

namespace {

std::string PositionName(const Vocabulary& vocab, const Position& p) {
  return Cat(vocab.RelationName(p.first), ".", p.second);
}

std::string RuleRef(const ProgramAnalysis& analysis, uint32_t rule) {
  const AnalyzedRule& r = analysis.rules[rule];
  std::string out = Cat("rule ", r.label);
  bool multi_part = r.part_index > 0 ||
                    (rule + 1 < analysis.rules.size() &&
                     analysis.rules[rule + 1].dep_index == r.dep_index);
  if (multi_part) out += Cat("/", r.part_index + 1);
  return out;
}

std::string WalkToString(const Vocabulary& vocab,
                         const ProgramAnalysis& analysis,
                         const std::vector<uint32_t>& edges) {
  std::string out;
  for (size_t i = 0; i < edges.size(); ++i) {
    const PositionEdge& edge = analysis.graph.edges[edges[i]];
    if (i == 0) out += PositionName(vocab, analysis.graph.nodes[edge.from]);
    out += edge.special ? " -*-> " : " -> ";
    out += PositionName(vocab, analysis.graph.nodes[edge.to]);
  }
  return out;
}

}  // namespace

std::string ExplainAffected(const Vocabulary& vocab,
                            const ProgramAnalysis& analysis,
                            const Position& position) {
  std::string out;
  std::set<Position> visited;
  Position at = position;
  const TermArena* arena = analysis.arena;
  for (;;) {
    auto it = analysis.affected.reasons.find(at);
    if (it == analysis.affected.reasons.end()) {
      return out + Cat(PositionName(vocab, at), " (unexplained)");
    }
    if (!visited.insert(at).second) return out + "(cycle)";
    const AffectedReason& reason = it->second;
    if (reason.kind == AffectedReason::Kind::kFunctionalHead ||
        arena == nullptr) {
      return out + Cat(PositionName(vocab, at),
                       " receives a functional term in ",
                       RuleRef(analysis, reason.rule));
    }
    out += Cat(PositionName(vocab, at), " <- variable ",
               vocab.VariableName(reason.var), " of ",
               RuleRef(analysis, reason.rule),
               " bound only at affected positions, e.g. ");
    // Continue through one of the variable's body positions (all affected
    // by construction; pick the smallest for determinism).
    auto positions =
        BodyPositions(*arena, analysis.rules[reason.rule].part)[reason.var];
    if (positions.empty()) return out + "(none)";
    at = *positions.begin();
  }
}

std::string ExplainMarked(const Vocabulary& vocab,
                          const ProgramAnalysis& analysis, uint32_t rule,
                          VariableId var) {
  std::string out;
  std::set<std::pair<uint32_t, VariableId>> visited;
  uint32_t r = rule;
  VariableId v = var;
  for (;;) {
    if (!analysis.marking.IsMarked(r, v)) {
      return out +
             Cat(vocab.VariableName(v), " unmarked in ", RuleRef(analysis, r));
    }
    if (!visited.insert({r, v}).second) return out + "(cycle)";
    const MarkReason& reason = analysis.marking.marked_vars[r].at(v);
    if (reason.kind == MarkReason::Kind::kDropped) {
      return out + Cat(vocab.VariableName(v), " dropped from head atom ",
                       reason.head_atom + 1, " of ", RuleRef(analysis, r));
    }
    out += Cat(vocab.VariableName(v), " of ", RuleRef(analysis, r),
               " flows into marked position ", PositionName(vocab, reason.via),
               " <- ");
    // Chain on to a marked occurrence justifying `via`.
    bool found = false;
    if (analysis.arena != nullptr) {
      for (uint32_t r2 = 0; r2 < analysis.rules.size() && !found; ++r2) {
        for (const auto& [v2, positions] :
             BodyPositions(*analysis.arena, analysis.rules[r2].part)) {
          if (positions.count(reason.via) && analysis.marking.IsMarked(r2, v2)) {
            r = r2;
            v = v2;
            found = true;
            break;
          }
        }
      }
    }
    if (!found) return out + "(marked occurrence)";
  }
}

std::string WitnessToString(const TermArena& arena, const Vocabulary& vocab,
                            const ProgramAnalysis& analysis,
                            const CriterionVerdict& verdict) {
  if (verdict.holds) return "";
  if (const auto* w = std::get_if<FullWitness>(&verdict.witness)) {
    if (w->equality) {
      return Cat(RuleRef(analysis, w->rule), ": body carries an equality");
    }
    const Atom& atom = analysis.rules[w->rule].part.head[w->head_atom];
    return Cat(RuleRef(analysis, w->rule), ": functional term ",
               arena.ToString(w->term, vocab), " at ",
               PositionName(vocab, {atom.relation, w->head_arg}));
  }
  if (const auto* w = std::get_if<LinearWitness>(&verdict.witness)) {
    return Cat(RuleRef(analysis, w->rule), ": body has ", w->body_atoms,
               " atoms (linear needs exactly 1)");
  }
  if (const auto* w = std::get_if<GuardWitness>(&verdict.witness)) {
    const SoPart& part = analysis.rules[w->rule].part;
    std::string vars = JoinMapped(w->required, ", ", [&](VariableId v) {
      return vocab.VariableName(v);
    });
    std::string out = Cat(RuleRef(analysis, w->rule),
                          ": no body atom covers {", vars, "}");
    for (uint32_t a = 0; a < w->missing.size() && a < part.body.size(); ++a) {
      out += Cat("; ", ToString(arena, vocab, part.body[a]), " misses ",
                 vocab.VariableName(w->missing[a]));
    }
    return out;
  }
  if (const auto* w = std::get_if<CycleWitness>(&verdict.witness)) {
    std::string out = Cat("cycle ", WalkToString(vocab, analysis, w->edges));
    std::set<std::string> labels;
    for (uint32_t e : w->edges) {
      labels.insert(analysis.rules[analysis.graph.edges[e].rule].label);
    }
    out += Cat(" (rules ", JoinMapped(labels, ", ", [](const std::string& l) {
                 return l;
               }),
               ")");
    return out;
  }
  if (const auto* w = std::get_if<StickyWitness>(&verdict.witness)) {
    const SoPart& part = analysis.rules[w->rule].part;
    return Cat(RuleRef(analysis, w->rule), ": marked variable ",
               vocab.VariableName(w->var), " joins ",
               PositionName(vocab,
                            {part.body[w->atom1].relation, w->arg1}),
               " and ",
               PositionName(vocab,
                            {part.body[w->atom2].relation, w->arg2}),
               " (", ExplainMarked(vocab, analysis, w->rule, w->var), ")");
  }
  if (const auto* w = std::get_if<TriangleWitness>(&verdict.witness)) {
    std::string nodes = JoinMapped(w->component, ", ", [&](uint32_t n) {
      return PositionName(vocab, analysis.graph.nodes[n]);
    });
    // Render the two discipline failures by reusing the guard and sticky
    // printers through synthetic negative verdicts.
    CriterionVerdict guard{Criterion::kWeaklyGuarded, false, w->guard};
    CriterionVerdict join{Criterion::kStickyJoin, false, w->join};
    return Cat("triangular component {", nodes, "} with cycle ",
               WalkToString(vocab, analysis, w->cycle), "; unguarded: ",
               WitnessToString(arena, vocab, analysis, guard),
               "; unsticky: ",
               WitnessToString(arena, vocab, analysis, join));
  }
  return "";
}

std::string ComplexityToString(const Vocabulary& vocab,
                               const ProgramAnalysis& analysis) {
  const ComplexityBound& c = analysis.complexity;
  switch (c.tier) {
    case ComplexityTier::kPolynomial: {
      if (c.rank_path.empty()) return Cat("polynomial (rank ", c.rank, ")");
      std::string path = JoinMapped(c.rank_path, " => ", [&](uint32_t e) {
        const PositionEdge& edge = analysis.graph.edges[e];
        return Cat(PositionName(vocab, analysis.graph.nodes[edge.from]),
                   " -*-> ",
                   PositionName(vocab, analysis.graph.nodes[edge.to]));
      });
      return Cat("polynomial (rank ", c.rank, ": ", path, ")");
    }
    case ComplexityTier::kExponential:
      return Cat("exponential (generating cycle ",
                 WalkToString(vocab, analysis, c.cycle), ")");
    case ComplexityTier::kNonElementary:
      return Cat("non-elementary (generating cycle ",
                 WalkToString(vocab, analysis, c.cycle), " feeds ",
                 WalkToString(vocab, analysis, c.cycle2), " via ",
                 WalkToString(vocab, analysis, c.link), ")");
  }
  return "?";
}

}  // namespace tgdkit
