// Lint checks over dependency programs, built on the static analyzer.
//
// A lint run parses the program leniently (so ill-formed statements still
// get located diagnostics), runs the Figure 2 analyses, and emits
// diagnostics pinned to statement spans:
//
//   error   invalid-statement          statement fails semantic validation
//   error   non-range-restricted-head  head variable missing from the body
//   warning no-decidable-class         not weakly acyclic, weakly guarded
//                                      or sticky-join — with one witness
//                                      per failed criterion; DOWNGRADED to
//                                      a note when triangular guardedness
//                                      still certifies decidability
//   warning shared-skolem-function     a function symbol existentially
//                                      quantified by two statements
//   note    chase-complexity           structural Skolem-chase tier
//                                      (polynomial rank / exponential /
//                                      non-elementary); only emitted when
//                                      the program mints nulls
//   note    unused-body-variable       variable occurs once, only in the
//                                      body (often a typo)
//   note    duplicate-atom             the same atom twice in a body/head
//
// Reports render as text ("file:line:col: severity [check] message"),
// JSON, or SARIF 2.1.0 (docs/ANALYSIS.md documents the schemas).
#pragma once

#include <string>
#include <vector>

#include "analyze/analysis.h"

namespace tgdkit {

enum class LintSeverity : uint8_t { kNote, kWarning, kError };

/// Name as rendered in diagnostics ("note" / "warning" / "error").
const char* LintSeverityName(LintSeverity severity);

/// Parses "note" / "warning" / "error"; false on anything else.
bool ParseLintSeverity(const std::string& text, LintSeverity* out);

struct LintDiagnostic {
  LintSeverity severity = LintSeverity::kNote;
  std::string check;    // stable check name, e.g. "unused-body-variable"
  std::string message;
  uint32_t line = 0;    // 1-based; 0 = no span (whole program)
  uint32_t column = 0;
};

struct LintReport {
  std::vector<LintDiagnostic> diagnostics;
  /// The analysis the Figure 2 checks were computed from (for dot export
  /// and witness replay by callers).
  ProgramAnalysis analysis;

  /// True iff some diagnostic is at least `threshold` severe.
  bool HasAtLeast(LintSeverity threshold) const;
};

/// Runs every lint check over `program` (parsed leniently). Diagnostics
/// come back sorted by (line, column, check).
LintReport LintProgram(TermArena* arena, Vocabulary* vocab,
                       const DependencyProgram& program);

/// "file:line:col: severity [check] message" per diagnostic, one per line.
/// Diagnostics without a span render as "file: severity [check] message".
std::string RenderLintText(const std::string& file, const LintReport& report);

/// {"file": ..., "diagnostics": [{line, column, severity, check, message}]}
std::string RenderLintJson(const std::string& file, const LintReport& report);

/// Minimal SARIF 2.1.0 log: one run, one rule per distinct check, one
/// result per diagnostic with a physicalLocation region.
std::string RenderLintSarif(const std::string& file, const LintReport& report);

}  // namespace tgdkit
