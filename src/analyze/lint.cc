#include "analyze/lint.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>

#include "base/strings.h"

namespace tgdkit {

namespace {

/// Body and head atoms of a statement in its original (pre-Skolemization)
/// form, plus equality terms, for the purely syntactic checks.
struct StatementAtoms {
  std::vector<const Atom*> body;
  std::vector<const Atom*> head;
  std::vector<TermId> extra_terms;  // equality sides (count as body use)
};

void CollectNested(const NestedNode& node, StatementAtoms* out) {
  for (const Atom& a : node.body) out->body.push_back(&a);
  for (const Atom& a : node.head_atoms) out->head.push_back(&a);
  for (const NestedNode& child : node.children) CollectNested(child, out);
}

StatementAtoms CollectAtoms(const ParsedDependency& dep) {
  StatementAtoms out;
  switch (dep.kind) {
    case ParsedDependency::Kind::kTgd:
      for (const Atom& a : dep.tgd.body) out.body.push_back(&a);
      for (const Atom& a : dep.tgd.head) out.head.push_back(&a);
      break;
    case ParsedDependency::Kind::kSo:
      for (const SoPart& part : dep.so.parts) {
        for (const Atom& a : part.body) out.body.push_back(&a);
        for (const Atom& a : part.head) out.head.push_back(&a);
        for (const SoEquality& eq : part.equalities) {
          out.extra_terms.push_back(eq.lhs);
          out.extra_terms.push_back(eq.rhs);
        }
      }
      break;
    case ParsedDependency::Kind::kNested:
      CollectNested(dep.nested.root, &out);
      break;
    case ParsedDependency::Kind::kHenkin:
      for (const Atom& a : dep.henkin.body) out.body.push_back(&a);
      for (const Atom& a : dep.henkin.head) out.head.push_back(&a);
      break;
  }
  return out;
}

void CollectFunctions(const TermArena& arena, TermId t,
                      std::set<FunctionId>* out) {
  if (!arena.IsFunction(t)) return;
  out->insert(arena.symbol(t));
  for (TermId a : arena.args(t)) CollectFunctions(arena, a, out);
}

std::string LabelOf(const ParsedDependency& dep, size_t index) {
  return dep.label.empty() ? Cat("#", index + 1) : dep.label;
}

// --- per-statement syntactic checks ----------------------------------------

void CheckUnusedAndDuplicates(const TermArena& arena, const Vocabulary& vocab,
                              const DependencyProgram& program,
                              std::vector<LintDiagnostic>* out) {
  for (size_t s = 0; s < program.dependencies.size(); ++s) {
    const ParsedDependency& dep = program.dependencies[s];
    StatementAtoms atoms = CollectAtoms(dep);
    // Unused body variables: exactly one occurrence, all of them in the
    // body. (Counts nested occurrences inside head terms as uses.)
    std::map<VariableId, int> body_occurrences;
    for (const Atom* atom : atoms.body) {
      for (TermId t : atom->args) {
        std::vector<VariableId> vars;
        arena.CollectVariables(t, &vars);
        for (VariableId v : vars) body_occurrences[v] += 1;
      }
    }
    std::set<VariableId> used_elsewhere;
    for (const Atom* atom : atoms.head) {
      for (TermId t : atom->args) {
        std::vector<VariableId> vars;
        arena.CollectVariables(t, &vars);
        used_elsewhere.insert(vars.begin(), vars.end());
      }
    }
    for (TermId t : atoms.extra_terms) {
      std::vector<VariableId> vars;
      arena.CollectVariables(t, &vars);
      used_elsewhere.insert(vars.begin(), vars.end());
    }
    for (const auto& [var, count] : body_occurrences) {
      if (count == 1 && !used_elsewhere.count(var)) {
        out->push_back({LintSeverity::kNote, "unused-body-variable",
                        Cat("variable ", vocab.VariableName(var),
                            " of statement ", LabelOf(dep, s),
                            " occurs once and never reaches the head"),
                        dep.line, dep.column});
      }
    }
    // Exact duplicate atoms (hash-consing makes TermId equality exact).
    auto report_duplicates = [&](const std::vector<const Atom*>& list,
                                 const char* where) {
      std::set<std::pair<RelationId, std::vector<TermId>>> seen;
      for (const Atom* atom : list) {
        if (!seen.insert({atom->relation, atom->args}).second) {
          out->push_back({LintSeverity::kNote, "duplicate-atom",
                          Cat("duplicate ", where, " atom ",
                              ToString(arena, vocab, *atom),
                              " in statement ", LabelOf(dep, s)),
                          dep.line, dep.column});
        }
      }
    };
    report_duplicates(atoms.body, "body");
    report_duplicates(atoms.head, "head");
  }
}

void CheckSharedSkolems(const TermArena& arena, const Vocabulary& vocab,
                        const DependencyProgram& program,
                        std::vector<LintDiagnostic>* out) {
  // Only literal `so` statements can share function symbols: Skolemization
  // of the other kinds always draws fresh ones. Sharing silently couples
  // the statements' existential choices, which is almost never intended.
  std::map<FunctionId, size_t> first_use;
  std::set<FunctionId> reported;
  for (size_t s = 0; s < program.dependencies.size(); ++s) {
    const ParsedDependency& dep = program.dependencies[s];
    if (dep.kind != ParsedDependency::Kind::kSo) continue;
    std::set<FunctionId> functions;
    for (const SoPart& part : dep.so.parts) {
      for (const Atom& atom : part.head) {
        for (TermId t : atom.args) CollectFunctions(arena, t, &functions);
      }
      for (const SoEquality& eq : part.equalities) {
        CollectFunctions(arena, eq.lhs, &functions);
        CollectFunctions(arena, eq.rhs, &functions);
      }
    }
    for (FunctionId f : functions) {
      auto [it, inserted] = first_use.emplace(f, s);
      if (inserted || it->second == s || !reported.insert(f).second) continue;
      const ParsedDependency& first = program.dependencies[it->second];
      out->push_back({LintSeverity::kWarning, "shared-skolem-function",
                      Cat("function ", vocab.FunctionName(f),
                          " is existentially quantified by both statement ",
                          LabelOf(first, it->second), " and statement ",
                          LabelOf(dep, s),
                          "; their choices are silently coupled"),
                      dep.line, dep.column});
    }
  }
}

void CheckValidity(const TermArena& arena, const Vocabulary& vocab,
                   const DependencyProgram& program,
                   const ProgramAnalysis& analysis,
                   std::vector<LintDiagnostic>* out) {
  // Range restriction, on the Skolemized rules: every head variable must
  // occur in the body (nested occurrences inside Skolem terms included).
  std::set<size_t> range_flagged;
  for (const AnalyzedRule& rule : analysis.rules) {
    std::set<VariableId> body_vars;
    for (const Atom& atom : rule.part.body) {
      for (TermId t : atom.args) {
        std::vector<VariableId> vars;
        arena.CollectVariables(t, &vars);
        body_vars.insert(vars.begin(), vars.end());
      }
    }
    for (const Atom& atom : rule.part.head) {
      for (TermId t : atom.args) {
        std::vector<VariableId> vars;
        arena.CollectVariables(t, &vars);
        for (VariableId v : vars) {
          if (body_vars.count(v)) continue;
          if (!range_flagged.insert(rule.dep_index).second) break;
          out->push_back({LintSeverity::kError, "non-range-restricted-head",
                          Cat("head variable ", vocab.VariableName(v),
                              " of statement ", rule.label,
                              " does not occur in the body"),
                          rule.line, rule.column});
          break;
        }
      }
    }
  }
  // Anything else the validators reject (arity is grammar-level; this
  // catches Henkin dependency-list and nesting-structure errors).
  for (size_t s = 0; s < program.dependencies.size(); ++s) {
    if (range_flagged.count(s)) continue;
    const ParsedDependency& dep = program.dependencies[s];
    Status status = Status::Ok();
    switch (dep.kind) {
      case ParsedDependency::Kind::kTgd:
        status = ValidateTgd(arena, dep.tgd);
        break;
      case ParsedDependency::Kind::kSo:
        status = ValidateSoTgd(arena, dep.so);
        break;
      case ParsedDependency::Kind::kNested:
        status = ValidateNestedTgd(arena, dep.nested);
        break;
      case ParsedDependency::Kind::kHenkin:
        status = ValidateHenkinTgd(arena, dep.henkin);
        break;
    }
    if (!status.ok()) {
      out->push_back({LintSeverity::kError, "invalid-statement",
                      Cat("statement ", LabelOf(dep, s), ": ",
                          status.message()),
                      dep.line, dep.column});
    }
  }
}

void CheckDecidableClass(const TermArena& arena, const Vocabulary& vocab,
                         const ProgramAnalysis& analysis,
                         std::vector<LintDiagnostic>* out) {
  if (analysis.rules.empty()) return;
  const CriterionVerdict& wa = analysis.verdict(Criterion::kWeaklyAcyclic);
  const CriterionVerdict& wg = analysis.verdict(Criterion::kWeaklyGuarded);
  const CriterionVerdict& sj = analysis.verdict(Criterion::kStickyJoin);
  const CriterionVerdict& tg =
      analysis.verdict(Criterion::kTriangularlyGuarded);
  if (wa.holds || wg.holds || sj.holds) return;
  std::string message =
      "no classic Figure 2 class applies: "
      "not weakly acyclic (";
  message += WitnessToString(arena, vocab, analysis, wa);
  message += "); not weakly guarded (";
  message += WitnessToString(arena, vocab, analysis, wg);
  message += "); not sticky-join (";
  message += WitnessToString(arena, vocab, analysis, sj);
  message += ")";
  // Pin to the rule the weakly-guarded witness indicts (an arbitrary but
  // deterministic choice among the three).
  uint32_t line = 0, column = 0;
  if (const auto* w = std::get_if<GuardWitness>(&wg.witness)) {
    line = analysis.rules[w->rule].line;
    column = analysis.rules[w->rule].column;
  }
  if (tg.holds) {
    // Triangular guardedness rescues decidability: downgrade to a note.
    message +=
        "; still decidable: every triangular component is guarded or "
        "sticky (triangularly-guarded)";
    out->push_back({LintSeverity::kNote, "no-decidable-class",
                    std::move(message), line, column});
    return;
  }
  message += "; not triangularly guarded (";
  message += WitnessToString(arena, vocab, analysis, tg);
  message += ")";
  out->push_back({LintSeverity::kWarning, "no-decidable-class",
                  std::move(message), line, column});
}

void CheckChaseComplexity(const Vocabulary& vocab,
                          const ProgramAnalysis& analysis,
                          std::vector<LintDiagnostic>* out) {
  // Only worth a note when the program mints nulls at all: a program
  // without special edges chases in one round per fact and should stay
  // diagnostic-free.
  const PositionGraph& graph = analysis.graph;
  const PositionEdge* special = nullptr;
  for (const PositionEdge& edge : graph.edges) {
    if (edge.special) {
      special = &edge;
      break;
    }
  }
  if (special == nullptr) return;
  // Pin to the rule owning the first special edge — the first null mint.
  out->push_back({LintSeverity::kNote, "chase-complexity",
                  Cat("Skolem chase complexity: ",
                      ComplexityToString(vocab, analysis)),
                  analysis.rules[special->rule].line,
                  analysis.rules[special->rule].column});
}

}  // namespace

const char* LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kNote:
      return "note";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "?";
}

bool ParseLintSeverity(const std::string& text, LintSeverity* out) {
  if (text == "note") {
    *out = LintSeverity::kNote;
  } else if (text == "warning") {
    *out = LintSeverity::kWarning;
  } else if (text == "error") {
    *out = LintSeverity::kError;
  } else {
    return false;
  }
  return true;
}

bool LintReport::HasAtLeast(LintSeverity threshold) const {
  for (const LintDiagnostic& d : diagnostics) {
    if (d.severity >= threshold) return true;
  }
  return false;
}

LintReport LintProgram(TermArena* arena, Vocabulary* vocab,
                       const DependencyProgram& program) {
  LintReport report;
  report.analysis = AnalyzeProgram(arena, vocab, program);
  CheckValidity(*arena, *vocab, program, report.analysis,
                &report.diagnostics);
  CheckDecidableClass(*arena, *vocab, report.analysis, &report.diagnostics);
  CheckChaseComplexity(*vocab, report.analysis, &report.diagnostics);
  CheckSharedSkolems(*arena, *vocab, program, &report.diagnostics);
  CheckUnusedAndDuplicates(*arena, *vocab, program, &report.diagnostics);
  std::sort(report.diagnostics.begin(), report.diagnostics.end(),
            [](const LintDiagnostic& a, const LintDiagnostic& b) {
              return std::tie(a.line, a.column, a.check, a.message) <
                     std::tie(b.line, b.column, b.check, b.message);
            });
  return report;
}

// ---------------------------------------------------------------------------
// Rendering

std::string RenderLintText(const std::string& file, const LintReport& report) {
  std::string out;
  for (const LintDiagnostic& d : report.diagnostics) {
    out += file;
    if (d.line > 0) out += Cat(":", d.line, ":", d.column);
    out += Cat(": ", LintSeverityName(d.severity), " [", d.check, "] ",
               d.message, "\n");
  }
  return out;
}

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderLintJson(const std::string& file, const LintReport& report) {
  std::string out = Cat("{\"file\": \"", JsonEscape(file),
                        "\", \"diagnostics\": [");
  for (size_t i = 0; i < report.diagnostics.size(); ++i) {
    const LintDiagnostic& d = report.diagnostics[i];
    if (i > 0) out += ", ";
    out += Cat("{\"line\": ", d.line, ", \"column\": ", d.column,
               ", \"severity\": \"", LintSeverityName(d.severity),
               "\", \"check\": \"", JsonEscape(d.check),
               "\", \"message\": \"", JsonEscape(d.message), "\"}");
  }
  out += "]}\n";
  return out;
}

std::string RenderLintSarif(const std::string& file,
                            const LintReport& report) {
  // SARIF wants "note"/"warning"/"error" too, conveniently.
  std::vector<std::string> rule_ids;
  for (const LintDiagnostic& d : report.diagnostics) {
    if (std::find(rule_ids.begin(), rule_ids.end(), d.check) ==
        rule_ids.end()) {
      rule_ids.push_back(d.check);
    }
  }
  std::string out =
      "{\"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\", "
      "\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": "
      "{\"name\": \"tgdkit-lint\", \"rules\": [";
  for (size_t i = 0; i < rule_ids.size(); ++i) {
    if (i > 0) out += ", ";
    out += Cat("{\"id\": \"", JsonEscape(rule_ids[i]), "\"}");
  }
  out += "]}}, \"results\": [";
  for (size_t i = 0; i < report.diagnostics.size(); ++i) {
    const LintDiagnostic& d = report.diagnostics[i];
    if (i > 0) out += ", ";
    out += Cat("{\"ruleId\": \"", JsonEscape(d.check), "\", \"level\": \"",
               LintSeverityName(d.severity),
               "\", \"message\": {\"text\": \"", JsonEscape(d.message),
               "\"}, \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \"",
               JsonEscape(file), "\"}");
    if (d.line > 0) {
      out += Cat(", \"region\": {\"startLine\": ", d.line,
                 ", \"startColumn\": ", d.column, "}");
    }
    out += "}}]}";
  }
  out += "]}]}\n";
  return out;
}

}  // namespace tgdkit
