#include "serve/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "base/net.h"
#include "base/strings.h"

namespace tgdkit {

namespace {
// A response frame holds whole engine outputs; allow plenty before
// concluding the server went insane.
constexpr size_t kMaxResponseBytes = 256u << 20;
}  // namespace

Result<ServeClient> ServeClient::ConnectUnixSocket(const std::string& path) {
  Result<int> fd = ConnectUnix(path);
  if (!fd.ok()) return fd.status();
  return ServeClient(*fd);
}

Result<ServeClient> ServeClient::ConnectTcp(uint16_t port) {
  Result<int> fd = ConnectTcpLocal(port);
  if (!fd.ok()) return fd.status();
  return ServeClient(*fd);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

ServeClient::~ServeClient() { Close(); }

void ServeClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

void ServeClient::CloseWrite() {
  if (fd_ >= 0) shutdown(fd_, SHUT_WR);
}

Status ServeClient::Send(const ServeRequest& request) {
  return SendRaw(RenderServeRequest(request) + "\n");
}

Status ServeClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::Internal("client closed");
  return WriteAll(fd_, bytes);
}

Result<std::string> ServeClient::ReadFrame() {
  if (fd_ < 0) return Status::Internal("client closed");
  for (;;) {
    size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      std::string line = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      return line;
    }
    if (buffer_.size() > kMaxResponseBytes) {
      return Status::ResourceExhausted("response frame too large");
    }
    char chunk[4096];
    ssize_t n = read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Cat("read: ", strerror(errno)));
    }
    if (n == 0) return Status::NotFound("server closed the connection");
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<ServeResponse> ServeClient::ReadResponse() {
  Result<std::string> frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  ServeResponse response;
  TGDKIT_RETURN_IF_ERROR(ParseServeResponse(*frame, &response));
  return response;
}

Result<ServeResponse> ServeClient::Call(const ServeRequest& request) {
  TGDKIT_RETURN_IF_ERROR(Send(request));
  return ReadResponse();
}

}  // namespace tgdkit
