// `tgdkit serve` — the fault-contained resident reasoning service.
//
// One process, one poll loop, a fixed worker pool. Requests arrive as
// line-delimited JSON frames (serve/protocol.h) over a Unix or local
// TCP socket and execute through the request-scoped library API
// (api/api.h), so a served answer is byte-identical to the one-shot CLI
// for the same inputs. The robustness spine:
//
//   * admission control — every request carries (or is assigned) a
//     deadline and memory commitment; when the aggregate of admitted
//     commitments would exceed configured capacity the request is shed
//     immediately with a typed `overloaded` response, never queued
//     unboundedly;
//   * per-request cancellation — each request gets its own token,
//     cancelled on client disconnect and by the server-side deadline
//     watchdog; cooperative engines stop with their usual exit-4
//     partial output;
//   * hard-overrun abandonment — a request that ignores cancellation
//     past deadline + grace gets a typed `timeout` response and is
//     abandoned (its eventual output is discarded); its worker lane
//     stays occupied, which is exactly what admission should see;
//   * quarantine — repeated in-flight failures (exit 5, hard overruns)
//     for the same ruleset hash trip a breaker and further requests for
//     that hash are refused without burning a worker;
//   * strict request scoping — the response cache only ever learns a
//     fully-validated success whose inputs were all inline, so a
//     failed, cancelled or filesystem-dependent request can never
//     poison it;
//   * graceful drain — on SIGTERM the daemon stops accepting, lets
//     in-flight requests finish for --drain-ms, then cancels them,
//     then abandons the truly hostile, and flushes a durable JSONL
//     serve ledger (supervise/jsonl discipline) whose last record is
//     the drain summary.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "base/budget.h"
#include "base/status.h"

namespace tgdkit {

struct ServeOptions {
  /// Exactly one transport: a Unix socket path, or a local TCP port
  /// (0 = ephemeral; the readiness callback reports the real one).
  std::string socket_path;
  int tcp_port = -1;

  /// Worker lanes executing requests (the poll loop is separate).
  uint32_t threads = 4;
  /// Admission caps: concurrent requests (0 = same as threads), and the
  /// aggregate deadline / memory commitments of admitted requests.
  uint32_t max_inflight = 0;
  uint64_t max_commit_deadline_ms = 60000;
  uint64_t max_commit_memory_mb = 4096;
  /// Commitments assumed for requests that do not declare their own.
  uint64_t default_deadline_ms = 10000;
  uint64_t default_memory_mb = 256;
  /// How long past its deadline a request may ignore cancellation
  /// before it is abandoned with a `timeout` response.
  uint64_t hard_grace_ms = 2000;

  uint64_t max_frame_bytes = 1u << 20;
  uint64_t cache_bytes = 64u << 20;
  uint32_t quarantine_after = 3;
  /// Durable request/response/drain ledger (empty = no ledger).
  std::string ledger_path;
  /// Worker binary injected into `batch` requests lacking --worker
  /// (in-process forks are rejected inside the daemon).
  std::string worker_binary;
  /// Drain patience before in-flight requests are cancelled.
  uint64_t drain_ms = 5000;
  /// Drain automatically after this many responses (0 = never); a test
  /// and bench hook.
  uint64_t max_requests = 0;

  /// Cancelling this token starts the graceful drain (the CLI wires it
  /// to the SIGTERM-driven global token).
  CancellationToken shutdown;
  /// Called once listening, with the bound TCP port (0 for Unix
  /// sockets). Tests use this instead of scraping stdout.
  std::function<void(uint16_t port)> on_ready;
};

struct ServeSummary {
  uint64_t admitted = 0;
  uint64_t ok = 0;          // responses with status "ok" (incl. cached)
  uint64_t cache_hits = 0;
  uint64_t shed = 0;        // overloaded refusals
  uint64_t quarantined = 0; // quarantined refusals
  uint64_t bad_frames = 0;
  uint64_t timeouts = 0;    // hard-overrun abandonments
  uint64_t draining_refusals = 0;
  /// Workers still wedged in abandoned requests at exit. The caller
  /// must not join them (RunServeCommand hard-exits instead).
  bool stuck_workers = false;
};

/// Runs the daemon until drain completes. `out` carries the readiness
/// line and the drain summary (both `# serve:`-prefixed machine lines);
/// `err` carries diagnostics.
Result<ServeSummary> RunServer(const ServeOptions& options,
                               std::ostream& out, std::ostream& err);

/// `tgdkit serve` entry point: parses flags, binds the drain trigger to
/// the global (SIGTERM-driven) cancellation token, runs the server.
int RunServeCommand(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err);

}  // namespace tgdkit
