#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/api.h"
#include "base/fileio.h"
#include "base/net.h"
#include "base/strings.h"
#include "base/thread_pool.h"
#include "cli/cli.h"
#include "serve/cache.h"
#include "serve/protocol.h"
#include "supervise/jsonl.h"
#include "supervise/ledger.h"

namespace tgdkit {

namespace {

using Clock = std::chrono::steady_clock;

/// Poll granularity: the watchdog's resolution for deadlines and drain
/// phases. Small enough that tests with ~50ms deadlines are stable.
constexpr int kPollIntervalMs = 20;

bool IsServable(const std::string& command) {
  static constexpr const char* kCommands[] = {
      "classify", "lint",    "chase",   "check", "certain", "normalize",
      "dot",      "explain", "compose", "solve", "batch",   "selftest",
  };
  for (const char* candidate : kCommands) {
    if (command == candidate) return true;
  }
  return false;
}

/// A request may enter the response cache only when replaying the cached
/// bytes is indistinguishable from re-running it: no side-effecting
/// options (checkpoints, spill files, snapshot resume), no subcommand
/// with process-level effects. Filesystem reads are checked separately
/// at completion (the file could change between requests).
bool CacheEligible(const ServeRequest& request) {
  if (request.command == "batch" || request.command == "selftest") {
    return false;
  }
  for (const std::string& arg : request.args) {
    if (arg == "--checkpoint" || arg == "--resume" ||
        arg == "--spill-dir") {
      return false;
    }
  }
  return true;
}

struct Completion {
  uint64_t seq = 0;
  ServeResponse response;
};

/// Shared between the poll loop and worker tasks. Held by shared_ptr so
/// that a worker wedged in an abandoned request can still complete
/// safely after the server has given up on it (and, in the worst case,
/// after RunServer returned).
struct CompletionQueue {
  std::mutex mutex;
  std::vector<Completion> items;
  int wake_fd = -1;

  void Push(uint64_t seq, ServeResponse response) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      items.push_back({seq, std::move(response)});
    }
    char byte = 1;
    // A full pipe already guarantees a pending wake-up.
    (void)!write(wake_fd, &byte, 1);
  }

  ~CompletionQueue() {
    if (wake_fd >= 0) close(wake_fd);
  }
};

struct Connection {
  int fd = -1;
  uint64_t id = 0;
  std::string in;
  std::string out;
  /// Discarding input until the next newline (oversized frame recovery).
  bool resync = false;
  /// Peer sent EOF: no more requests, but responses still flow.
  bool read_closed = false;
  /// Connection is gone (hangup / write error): cancel its requests.
  bool dead = false;
};

struct Inflight {
  uint64_t seq = 0;
  std::string id;
  uint64_t conn_id = 0;
  std::string command;
  CancellationToken cancel;
  uint64_t deadline_commit_ms = 0;
  uint64_t memory_commit_mb = 0;
  Clock::time_point deadline;
  Clock::time_point abandon_at;
  bool cancelled = false;
  bool abandoned = false;
  uint64_t request_key = 0;
  uint64_t ruleset_key = 0;
  bool cache_eligible = false;
  /// Set by the resolver when any input came from the daemon's
  /// filesystem — such a response is never cached.
  std::shared_ptr<std::atomic<bool>> touched_fs;
};

class Server {
 public:
  Server(const ServeOptions& options, std::ostream& out, std::ostream& err)
      : options_(options),
        out_(out),
        err_(err),
        cache_(options.cache_bytes),
        quarantine_(options.quarantine_after) {}

  Result<ServeSummary> Run();

 private:
  std::string Endpoint(uint16_t port) const {
    return options_.socket_path.empty()
               ? Cat("tcp:127.0.0.1:", port)
               : Cat("unix:", options_.socket_path);
  }

  void AppendLedgerLine(const std::string& record);
  void LedgerRequest(const ServeRequest& request, uint64_t conn_id,
                     uint64_t request_key, uint64_t ruleset_key);
  void LedgerResponse(const ServeResponse& response);

  void Respond(Connection& conn, const ServeResponse& response);
  void RespondToConn(uint64_t conn_id, const ServeResponse& response);
  void FlushConn(Connection& conn);

  void PollOnce();
  void HandleConnRead(Connection& conn);
  void ProcessInput(Connection& conn);
  void HandleFrame(Connection& conn, std::string line);
  void Admit(Connection& conn, ServeRequest request, uint64_t deadline_ms,
             uint64_t memory_mb, uint64_t request_key,
             uint64_t ruleset_key, bool cache_eligible);
  void DrainCompletions();
  void Watchdog(Clock::time_point now);
  void AbandonRequest(Inflight& request);
  void BeginDrain(const char* reason, Clock::time_point now);
  void ReapConnections();
  bool ConnHasInflight(uint64_t conn_id) const;
  void FinalFlush();

  const ServeOptions& options_;
  std::ostream& out_;
  std::ostream& err_;
  ResponseCache cache_;
  QuarantineRegistry quarantine_;

  uint32_t max_inflight_ = 0;
  int listen_fd_ = -1;
  int wake_read_ = -1;
  std::unique_ptr<ThreadPool> pool_;
  std::shared_ptr<CompletionQueue> completions_;

  std::unordered_map<uint64_t, Connection> conns_;
  uint64_t conn_seq_ = 0;
  std::unordered_map<uint64_t, Inflight> inflight_;
  uint64_t request_seq_ = 0;
  uint64_t committed_deadline_ms_ = 0;
  uint64_t committed_memory_mb_ = 0;
  uint64_t responded_ = 0;

  bool draining_ = false;
  const char* drain_reason_ = "shutdown";
  bool drain_cancelled_ = false;
  Clock::time_point drain_cancel_at_;
  Clock::time_point drain_abandon_at_;

  bool ledger_failed_ = false;
  ServeSummary summary_;
};

void Server::AppendLedgerLine(const std::string& record) {
  if (options_.ledger_path.empty()) return;
  Status status = AppendLineDurable(options_.ledger_path, record);
  if (!status.ok() && !ledger_failed_) {
    // Report once and keep serving: a full disk must not take the
    // daemon down, it just stops being journaled.
    err_ << "tgdkit: serve: ledger: " << status.ToString() << "\n";
    ledger_failed_ = true;
  }
}

void Server::LedgerRequest(const ServeRequest& request, uint64_t conn_id,
                           uint64_t request_key, uint64_t ruleset_key) {
  if (options_.ledger_path.empty()) return;
  std::string record = "{";
  AppendJsonString(&record, "type", "request");
  AppendJsonString(&record, "id", request.id);
  AppendJsonRaw(&record, "conn", std::to_string(conn_id));
  AppendJsonString(&record, "command", request.command);
  AppendJsonRaw(&record, "request_key", std::to_string(request_key));
  AppendJsonRaw(&record, "ruleset_key", std::to_string(ruleset_key));
  record += '}';
  AppendLedgerLine(record);
}

void Server::LedgerResponse(const ServeResponse& response) {
  if (options_.ledger_path.empty()) return;
  // Written BEFORE the bytes are queued to the socket: a response on the
  // wire therefore implies a ledger record, which is what lets a replay
  // after kill-and-restart prove no request was answered twice.
  std::string record = "{";
  AppendJsonString(&record, "type", "response");
  AppendJsonString(&record, "id", response.id);
  AppendJsonString(&record, "status", ToString(response.status));
  AppendJsonRaw(&record, "exit", std::to_string(response.exit_code));
  AppendJsonRaw(&record, "cached", response.cached ? "true" : "false");
  AppendJsonRaw(&record, "duration_ms",
                std::to_string(response.duration_ms));
  record += '}';
  AppendLedgerLine(record);
}

void Server::Respond(Connection& conn, const ServeResponse& response) {
  conn.out += RenderServeResponse(response);
  conn.out += '\n';
  FlushConn(conn);
}

void Server::RespondToConn(uint64_t conn_id, const ServeResponse& response) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.dead) return;  // client is gone
  Respond(it->second, response);
}

void Server::FlushConn(Connection& conn) {
  while (!conn.out.empty() && !conn.dead) {
    // MSG_NOSIGNAL: a vanished client is a dead connection, not a
    // process-killing SIGPIPE (RunServer also runs in-process in tests
    // that do not ignore the signal globally).
    ssize_t n =
        send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn.dead = true;  // EPIPE, ECONNRESET, ...
  }
}

void Server::HandleConnRead(Connection& conn) {
  for (;;) {
    char buf[8192];
    ssize_t n = read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      // EOF on the request stream; the peer may still be reading
      // responses (a half-close), so the connection stays up. Full
      // closes surface as POLLHUP or a write error.
      conn.read_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.dead = true;
    break;
  }
  ProcessInput(conn);
}

void Server::ProcessInput(Connection& conn) {
  for (;;) {
    size_t eol = conn.in.find('\n');
    if (eol == std::string::npos) {
      if (conn.resync) {
        conn.in.clear();
      } else if (conn.in.size() > options_.max_frame_bytes) {
        // Refuse and resynchronize at the next newline — an oversized
        // frame must cost its sender an error, not the daemon its life.
        ++summary_.bad_frames;
        Respond(conn,
                MakeRefusal("", ServeStatus::kBadRequest,
                            Cat("frame exceeds ", options_.max_frame_bytes,
                                " bytes")));
        conn.resync = true;
        conn.in.clear();
      }
      return;
    }
    std::string line = conn.in.substr(0, eol);
    conn.in.erase(0, eol + 1);
    if (conn.resync) {
      conn.resync = false;  // the tail of the oversized frame
      continue;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    HandleFrame(conn, std::move(line));
  }
}

void Server::HandleFrame(Connection& conn, std::string line) {
  ServeRequest request;
  if (draining_) {
    // Best-effort parse so the refusal can still carry the id.
    (void)ParseServeRequest(line, &request);
    ++summary_.draining_refusals;
    Respond(conn, MakeRefusal(request.id, ServeStatus::kDraining,
                              "daemon is draining"));
    return;
  }
  Status parsed = ParseServeRequest(line, &request);
  if (!parsed.ok()) {
    ++summary_.bad_frames;
    Respond(conn, MakeRefusal(request.id, ServeStatus::kBadRequest,
                              std::string(parsed.message())));
    return;
  }
  if (request.command == "ping") {
    ServeResponse pong;
    pong.id = request.id;
    Respond(conn, pong);
    return;
  }
  if (!IsServable(request.command)) {
    ++summary_.bad_frames;
    Respond(conn, MakeRefusal(request.id, ServeStatus::kBadRequest,
                              Cat("unknown command '", request.command,
                                  "'")));
    return;
  }
  uint64_t ruleset_key = ServeRulesetKey(request);
  if (quarantine_.IsQuarantined(ruleset_key)) {
    ++summary_.quarantined;
    Respond(conn,
            MakeRefusal(request.id, ServeStatus::kQuarantined,
                        "ruleset quarantined after repeated in-flight "
                        "failures"));
    return;
  }
  uint64_t request_key = ServeRequestKey(request);
  bool cache_eligible = CacheEligible(request);
  if (cache_eligible) {
    if (std::optional<ServeResponse> hit = cache_.Get(request_key)) {
      hit->id = request.id;
      LedgerRequest(request, conn.id, request_key, ruleset_key);
      LedgerResponse(*hit);
      ++summary_.ok;
      ++summary_.cache_hits;
      ++responded_;
      Respond(conn, *hit);
      return;
    }
  }
  uint64_t deadline_ms = request.deadline_ms != 0
                             ? request.deadline_ms
                             : options_.default_deadline_ms;
  uint64_t memory_mb =
      request.memory_mb != 0 ? request.memory_mb : options_.default_memory_mb;
  if (inflight_.size() >= max_inflight_ ||
      committed_deadline_ms_ + deadline_ms >
          options_.max_commit_deadline_ms ||
      committed_memory_mb_ + memory_mb > options_.max_commit_memory_mb) {
    // Shed, don't queue: the client knows immediately and can back off
    // or go elsewhere; an unbounded queue would just turn overload into
    // latency and then into timeouts.
    ++summary_.shed;
    ServeResponse refusal =
        MakeRefusal(request.id, ServeStatus::kOverloaded,
                    Cat("admission: ", inflight_.size(), " in flight, ",
                        committed_deadline_ms_, "ms deadline and ",
                        committed_memory_mb_, "mb memory committed"));
    refusal.retry_after_ms = 50;
    Respond(conn, refusal);
    return;
  }
  Admit(conn, std::move(request), deadline_ms, memory_mb, request_key,
        ruleset_key, cache_eligible);
}

void Server::Admit(Connection& conn, ServeRequest request,
                   uint64_t deadline_ms, uint64_t memory_mb,
                   uint64_t request_key, uint64_t ruleset_key,
                   bool cache_eligible) {
  uint64_t seq = ++request_seq_;
  Clock::time_point now = Clock::now();
  Inflight entry;
  entry.seq = seq;
  entry.id = request.id;
  entry.conn_id = conn.id;
  entry.command = request.command;
  entry.deadline_commit_ms = deadline_ms;
  entry.memory_commit_mb = memory_mb;
  entry.deadline = now + std::chrono::milliseconds(deadline_ms);
  entry.abandon_at =
      entry.deadline + std::chrono::milliseconds(options_.hard_grace_ms);
  entry.request_key = request_key;
  entry.ruleset_key = ruleset_key;
  entry.cache_eligible = cache_eligible;
  entry.touched_fs = std::make_shared<std::atomic<bool>>(false);
  committed_deadline_ms_ += deadline_ms;
  committed_memory_mb_ += memory_mb;
  ++summary_.admitted;
  LedgerRequest(request, conn.id, request_key, ruleset_key);

  auto files =
      std::make_shared<std::unordered_map<std::string, std::string>>();
  for (size_t i = 0; i < request.file_names.size(); ++i) {
    (*files)[request.file_names[i]] = request.file_contents[i];
  }
  std::vector<std::string> argv;
  argv.reserve(1 + request.args.size() + 2);
  argv.push_back(request.command);
  argv.insert(argv.end(), request.args.begin(), request.args.end());
  if (request.command == "batch" && !options_.worker_binary.empty() &&
      std::find(request.args.begin(), request.args.end(), "--worker") ==
          request.args.end()) {
    argv.push_back("--worker");
    argv.push_back(options_.worker_binary);
  }
  CancellationToken token = entry.cancel;
  std::shared_ptr<std::atomic<bool>> touched = entry.touched_fs;
  std::shared_ptr<CompletionQueue> queue = completions_;
  std::string id = request.id;
  inflight_.emplace(seq, std::move(entry));
  pool_->Post([queue, token, touched, files, argv = std::move(argv), seq,
               id = std::move(id)] {
    ApiOptions api;
    api.cancel = token;
    api.forbid_fork_workers = true;
    api.resolver = [files, touched](const std::string& path)
        -> std::optional<std::string> {
      auto it = files->find(path);
      if (it != files->end()) return it->second;
      touched->store(true, std::memory_order_relaxed);
      return std::nullopt;
    };
    ServeResponse response;
    response.id = id;
    std::ostringstream request_out, request_err;
    Clock::time_point start = Clock::now();
    response.exit_code = RunCommand(argv, request_out, request_err, api);
    response.duration_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - start)
            .count());
    response.out = request_out.str();
    response.err = request_err.str();
    queue->Push(seq, std::move(response));
  });
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_->mutex);
    batch.swap(completions_->items);
  }
  for (Completion& completion : batch) {
    auto it = inflight_.find(completion.seq);
    if (it == inflight_.end()) continue;
    Inflight& entry = it->second;
    committed_deadline_ms_ -= entry.deadline_commit_ms;
    committed_memory_mb_ -= entry.memory_commit_mb;
    int exit_code = completion.response.exit_code;
    if (exit_code == kExitInternal) {
      quarantine_.Strike(entry.ruleset_key);
    } else if (exit_code == kExitOk || exit_code == kExitVerdict) {
      quarantine_.OnSuccess(entry.ruleset_key);
    }
    if (!entry.abandoned) {
      // Strict request scoping: only a fully-validated verdict whose
      // inputs were all inline may warm the cache.
      if (entry.cache_eligible &&
          (exit_code == kExitOk || exit_code == kExitVerdict) &&
          !entry.touched_fs->load(std::memory_order_relaxed)) {
        cache_.Put(entry.request_key, completion.response);
      }
      LedgerResponse(completion.response);
      ++summary_.ok;
      ++responded_;
      RespondToConn(entry.conn_id, completion.response);
    }
    inflight_.erase(it);
  }
}

void Server::AbandonRequest(Inflight& request) {
  request.abandoned = true;
  ++summary_.timeouts;
  ++responded_;
  quarantine_.Strike(request.ruleset_key);
  ServeResponse refusal =
      MakeRefusal(request.id, ServeStatus::kTimeout,
                  "request ignored cancellation past deadline + grace; "
                  "abandoned");
  LedgerResponse(refusal);
  RespondToConn(request.conn_id, refusal);
}

void Server::Watchdog(Clock::time_point now) {
  for (auto& [seq, entry] : inflight_) {
    if (!entry.cancelled && now >= entry.deadline) {
      entry.cancel.Cancel();
      entry.cancelled = true;
    }
    if (!entry.abandoned && now >= entry.abandon_at) {
      AbandonRequest(entry);
    }
  }
}

void Server::BeginDrain(const char* reason, Clock::time_point now) {
  draining_ = true;
  drain_reason_ = reason;
  drain_cancel_at_ = now + std::chrono::milliseconds(options_.drain_ms);
  drain_abandon_at_ =
      drain_cancel_at_ + std::chrono::milliseconds(options_.hard_grace_ms);
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    if (!options_.socket_path.empty()) {
      unlink(options_.socket_path.c_str());
    }
  }
}

bool Server::ConnHasInflight(uint64_t conn_id) const {
  for (const auto& [seq, entry] : inflight_) {
    if (entry.conn_id == conn_id && !entry.abandoned) return true;
  }
  return false;
}

void Server::ReapConnections() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& conn = it->second;
    bool drained_out =
        conn.read_closed && conn.out.empty() && !ConnHasInflight(conn.id);
    if (!conn.dead && !drained_out) {
      ++it;
      continue;
    }
    if (conn.dead) {
      // Client disconnect: cancel everything it was waiting for. The
      // requests finish cooperatively and their responses are dropped
      // in DrainCompletions (the connection is gone by then).
      for (auto& [seq, entry] : inflight_) {
        if (entry.conn_id == conn.id && !entry.cancelled) {
          entry.cancel.Cancel();
          entry.cancelled = true;
        }
      }
    }
    close(conn.fd);
    it = conns_.erase(it);
  }
}

void Server::PollOnce() {
  std::vector<pollfd> fds;
  fds.push_back({wake_read_, POLLIN, 0});
  size_t listen_index = SIZE_MAX;
  if (!draining_ && listen_fd_ >= 0) {
    listen_index = fds.size();
    fds.push_back({listen_fd_, POLLIN, 0});
  }
  std::vector<uint64_t> conn_ids;
  conn_ids.reserve(conns_.size());
  for (auto& [id, conn] : conns_) {
    short events = 0;
    if (!conn.read_closed) events |= POLLIN;
    if (!conn.out.empty()) events |= POLLOUT;
    conn_ids.push_back(id);
    fds.push_back({conn.fd, events, 0});
  }
  int rc = poll(fds.data(), static_cast<nfds_t>(fds.size()),
                kPollIntervalMs);
  if (rc <= 0) return;
  if ((fds[0].revents & POLLIN) != 0) {
    char buf[256];
    while (read(wake_read_, buf, sizeof(buf)) > 0) {
    }
  }
  if (listen_index != SIZE_MAX &&
      (fds[listen_index].revents & POLLIN) != 0) {
    for (;;) {
      Result<int> accepted = AcceptConnection(listen_fd_);
      if (!accepted.ok()) break;
      (void)SetNonBlocking(*accepted, true);
      Connection conn;
      conn.fd = *accepted;
      conn.id = ++conn_seq_;
      conns_.emplace(conn.id, std::move(conn));
    }
  }
  size_t base = listen_index == SIZE_MAX ? 1 : 2;
  for (size_t k = 0; k < conn_ids.size(); ++k) {
    auto it = conns_.find(conn_ids[k]);
    if (it == conns_.end()) continue;
    Connection& conn = it->second;
    short revents = fds[base + k].revents;
    if ((revents & (POLLERR | POLLNVAL)) != 0) {
      conn.dead = true;
      continue;
    }
    if ((revents & POLLOUT) != 0) FlushConn(conn);
    if ((revents & POLLIN) != 0) {
      HandleConnRead(conn);
    } else if ((revents & POLLHUP) != 0) {
      // Hangup with nothing left to read: the peer fully closed.
      conn.dead = true;
    }
  }
}

void Server::FinalFlush() {
  // Give clients a short, bounded window to take delivery of the last
  // responses; a reader that went away must not block the drain.
  Clock::time_point give_up =
      Clock::now() + std::chrono::milliseconds(250);
  for (;;) {
    bool pending = false;
    for (auto& [id, conn] : conns_) {
      if (!conn.dead && !conn.out.empty()) {
        FlushConn(conn);
        if (!conn.dead && !conn.out.empty()) pending = true;
      }
    }
    if (!pending || Clock::now() >= give_up) return;
    struct timespec nap = {0, 5 * 1000 * 1000};
    nanosleep(&nap, nullptr);
  }
}

Result<ServeSummary> Server::Run() {
  if (!options_.socket_path.empty() && options_.tcp_port >= 0) {
    return Status::InvalidArgument(
        "serve: pass --socket or --listen, not both");
  }
  if (options_.socket_path.empty() && options_.tcp_port < 0) {
    return Status::InvalidArgument(
        "serve: a transport is required (--socket PATH or --listen PORT)");
  }
  if (options_.threads == 0) {
    return Status::InvalidArgument("serve: --serve-threads must be >= 1");
  }
  max_inflight_ =
      options_.max_inflight == 0 ? options_.threads : options_.max_inflight;
  uint16_t port = 0;
  Result<int> listener =
      options_.socket_path.empty()
          ? ListenTcpLocal(static_cast<uint16_t>(options_.tcp_port), 64,
                           &port)
          : ListenUnix(options_.socket_path, 64);
  if (!listener.ok()) return listener.status();
  listen_fd_ = *listener;
  (void)SetNonBlocking(listen_fd_, true);

  int pipe_fds[2];
  if (pipe2(pipe_fds, O_CLOEXEC | O_NONBLOCK) != 0) {
    close(listen_fd_);
    return Status::Internal(Cat("pipe2: ", strerror(errno)));
  }
  wake_read_ = pipe_fds[0];
  completions_ = std::make_shared<CompletionQueue>();
  completions_->wake_fd = pipe_fds[1];

  if (!options_.ledger_path.empty()) {
    Status healed = TruncateTornLedgerTail(options_.ledger_path);
    if (!healed.ok()) {
      close(listen_fd_);
      close(wake_read_);
      return healed;
    }
    std::string header = "{";
    AppendJsonString(&header, "type", "serve");
    AppendJsonString(&header, "transport", Endpoint(port));
    AppendJsonRaw(&header, "threads", std::to_string(options_.threads));
    header += '}';
    AppendLedgerLine(header);
  }

  // `threads` worker lanes on top of this polling thread: ThreadPool(n)
  // spawns n-1 workers and the pool's "caller lane" is never used for
  // posted tasks.
  pool_ = std::make_unique<ThreadPool>(options_.threads + 1);

  out_ << "# serve: listening on " << Endpoint(port)
       << " threads=" << options_.threads
       << " max_inflight=" << max_inflight_ << "\n";
  out_.flush();
  if (options_.on_ready) options_.on_ready(port);

  for (;;) {
    Clock::time_point now = Clock::now();
    if (!draining_ &&
        (options_.shutdown.cancelled() ||
         (options_.max_requests != 0 &&
          responded_ >= options_.max_requests))) {
      BeginDrain(options_.shutdown.cancelled() ? "shutdown" : "max-requests",
                 now);
    }
    if (draining_) {
      DrainCompletions();
      if (inflight_.empty()) break;
      if (!drain_cancelled_ && now >= drain_cancel_at_) {
        for (auto& [seq, entry] : inflight_) {
          if (!entry.cancelled) {
            entry.cancel.Cancel();
            entry.cancelled = true;
          }
        }
        drain_cancelled_ = true;
      }
      if (now >= drain_abandon_at_) {
        for (auto& [seq, entry] : inflight_) {
          if (!entry.abandoned) AbandonRequest(entry);
        }
        summary_.stuck_workers = true;
        break;
      }
    }
    Watchdog(now);
    PollOnce();
    DrainCompletions();
    ReapConnections();
  }

  FinalFlush();
  for (auto& [id, conn] : conns_) close(conn.fd);
  conns_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    if (!options_.socket_path.empty()) unlink(options_.socket_path.c_str());
  }
  close(wake_read_);
  wake_read_ = -1;

  summary_.draining_refusals += 0;  // (kept explicit for readability)
  if (!options_.ledger_path.empty()) {
    std::string record = "{";
    AppendJsonString(&record, "type", "drain");
    AppendJsonString(&record, "reason", drain_reason_);
    AppendJsonRaw(&record, "admitted", std::to_string(summary_.admitted));
    AppendJsonRaw(&record, "ok", std::to_string(summary_.ok));
    AppendJsonRaw(&record, "cache_hits",
                  std::to_string(summary_.cache_hits));
    AppendJsonRaw(&record, "shed", std::to_string(summary_.shed));
    AppendJsonRaw(&record, "quarantined",
                  std::to_string(summary_.quarantined));
    AppendJsonRaw(&record, "bad_frames",
                  std::to_string(summary_.bad_frames));
    AppendJsonRaw(&record, "timeouts", std::to_string(summary_.timeouts));
    AppendJsonRaw(&record, "abandoned",
                  summary_.stuck_workers ? "true" : "false");
    record += '}';
    AppendLedgerLine(record);
  }

  out_ << "# serve: drained reason=" << drain_reason_
       << " admitted=" << summary_.admitted << " ok=" << summary_.ok
       << " cache_hits=" << summary_.cache_hits
       << " shed=" << summary_.shed
       << " quarantined=" << summary_.quarantined
       << " bad_frames=" << summary_.bad_frames
       << " timeouts=" << summary_.timeouts << "\n";
  out_.flush();

  if (summary_.stuck_workers) {
    // Workers are wedged inside abandoned requests; joining them would
    // hang the drain forever. Leak the pool — the caller hard-exits.
    err_ << "tgdkit: serve: abandoning " << inflight_.size()
         << " wedged request(s) at drain deadline\n";
    (void)pool_.release();
  } else {
    pool_.reset();  // all lanes idle: join cleanly
  }
  return summary_;
}

}  // namespace

Result<ServeSummary> RunServer(const ServeOptions& options,
                               std::ostream& out, std::ostream& err) {
  Server server(options, out, err);
  return server.Run();
}

int RunServeCommand(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  ServeOptions options;
  options.shutdown = GlobalCancellationToken();
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto numeric = [&](uint64_t* slot) {
      if (i + 1 >= args.size()) {
        err << "tgdkit: missing value for " << arg << "\n";
        return false;
      }
      const std::string& value = args[++i];
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        err << "tgdkit: invalid value '" << value << "' for " << arg
            << "\n";
        return false;
      }
      *slot = std::strtoull(value.c_str(), nullptr, 10);
      return true;
    };
    auto pathval = [&](std::string* slot) {
      if (i + 1 >= args.size()) {
        err << "tgdkit: missing value for " << arg << "\n";
        return false;
      }
      *slot = args[++i];
      return !slot->empty();
    };
    uint64_t value = 0;
    if (arg == "--socket") {
      if (!pathval(&options.socket_path)) return kExitUsage;
    } else if (arg == "--listen") {
      if (!numeric(&value) || value > 65535) {
        err << "tgdkit: --listen needs a port in [0, 65535]\n";
        return kExitUsage;
      }
      options.tcp_port = static_cast<int>(value);
    } else if (arg == "--serve-threads") {
      if (!numeric(&value) || value == 0 || value > 256) {
        err << "tgdkit: --serve-threads must be between 1 and 256\n";
        return kExitUsage;
      }
      options.threads = static_cast<uint32_t>(value);
    } else if (arg == "--max-inflight") {
      if (!numeric(&value)) return kExitUsage;
      options.max_inflight = static_cast<uint32_t>(value);
    } else if (arg == "--max-commit-deadline-ms") {
      if (!numeric(&options.max_commit_deadline_ms)) return kExitUsage;
    } else if (arg == "--max-commit-memory-mb") {
      if (!numeric(&options.max_commit_memory_mb)) return kExitUsage;
    } else if (arg == "--default-deadline-ms") {
      if (!numeric(&options.default_deadline_ms)) return kExitUsage;
    } else if (arg == "--default-memory-mb") {
      if (!numeric(&options.default_memory_mb)) return kExitUsage;
    } else if (arg == "--hard-grace-ms") {
      if (!numeric(&options.hard_grace_ms)) return kExitUsage;
    } else if (arg == "--max-frame-kb") {
      if (!numeric(&value) || value == 0) {
        err << "tgdkit: --max-frame-kb must be positive\n";
        return kExitUsage;
      }
      options.max_frame_bytes = value * 1024;
    } else if (arg == "--cache-mb") {
      if (!numeric(&value)) return kExitUsage;
      options.cache_bytes = value * 1024 * 1024;
    } else if (arg == "--quarantine-after") {
      if (!numeric(&value)) return kExitUsage;
      options.quarantine_after = static_cast<uint32_t>(value);
    } else if (arg == "--ledger") {
      if (!pathval(&options.ledger_path)) return kExitUsage;
    } else if (arg == "--worker") {
      if (!pathval(&options.worker_binary)) return kExitUsage;
    } else if (arg == "--drain-ms") {
      if (!numeric(&options.drain_ms)) return kExitUsage;
    } else if (arg == "--max-requests") {
      if (!numeric(&options.max_requests)) return kExitUsage;
    } else {
      err << "tgdkit: serve: unknown option " << arg << "\n";
      return kExitUsage;
    }
  }
  Result<ServeSummary> summary = RunServer(options, out, err);
  if (!summary.ok()) {
    err << "tgdkit: serve: " << summary.status().ToString() << "\n";
    return ExitCodeForStatus(summary.status());
  }
  if (summary->stuck_workers) {
    // Worker threads are wedged in abandoned requests; a normal return
    // would hang in thread teardown. The ledger already has the drain
    // record (fsync'd), so a hard exit loses nothing durable.
    out.flush();
    err.flush();
    std::_Exit(kExitInternal);
  }
  return kExitOk;
}

}  // namespace tgdkit
