// A minimal blocking client for the serve protocol, shared by tests,
// the stress/chaos suites and bench_serve. One connection, buffered
// line reads, and a raw-bytes escape hatch so chaos tests can send
// malformed and truncated frames.
#pragma once

#include <cstdint>
#include <string>

#include "base/status.h"
#include "serve/protocol.h"

namespace tgdkit {

class ServeClient {
 public:
  static Result<ServeClient> ConnectUnixSocket(const std::string& path);
  static Result<ServeClient> ConnectTcp(uint16_t port);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// Sends one request frame (newline appended).
  Status Send(const ServeRequest& request);

  /// Sends arbitrary bytes verbatim — the chaos tests' malformed,
  /// truncated and oversized frames go through here.
  Status SendRaw(const std::string& bytes);

  /// Blocks for the next response frame. NotFound on a clean EOF
  /// (server closed the connection).
  Result<ServeResponse> ReadResponse();

  /// Send + ReadResponse. Responses arrive in completion order, so only
  /// use this with one request outstanding (or match ids yourself via
  /// Send/ReadResponse).
  Result<ServeResponse> Call(const ServeRequest& request);

  /// Half-closes the write side (the server sees EOF but can still
  /// flush pending responses). Shutdown of both sides = Close().
  void CloseWrite();
  void Close();

  int fd() const { return fd_; }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}

  Result<std::string> ReadFrame();

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace tgdkit
