// The serve wire protocol: line-delimited flat JSON frames.
//
// One request per line, one response per line, over a Unix or TCP
// stream socket. Frames reuse the supervise/jsonl flat-object grammar
// (strings, numbers, booleans, arrays of strings — never nested
// objects), so the same audited parser handles the wire and the
// ledgers, and `grep` works on captures. docs/SERVE.md is the contract.
//
// Request:
//   {"id":"r1","command":"classify","args":["deps.tgd"],
//    "file_names":["deps.tgd"],"file_contents":["r(X) -> s(X) ."],
//    "deadline_ms":5000,"memory_mb":256}
//
// `args` is the exact argv tail the CLI would take after the command
// word; paths listed in file_names resolve to the paired file_contents
// entry instead of the daemon's filesystem. Responses echo the id:
//
//   {"id":"r1","status":"ok","exit":0,"cached":false,
//    "duration_ms":12,"stdout":"...","stderr":""}
//
// `status` is "ok" whenever the command ran (exit carries the normal
// CLI exit code, stdout/stderr the byte-identical streams); every other
// status is a typed refusal: "bad_request" (unparseable/invalid frame),
// "overloaded" (admission shed, retry_after_ms hints when),
// "quarantined" (this ruleset hash keeps wrecking workers),
// "timeout" (the request ignored cancellation past its deadline and was
// abandoned), "draining" (the daemon is shutting down).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace tgdkit {

struct ServeRequest {
  std::string id;
  std::string command;
  std::vector<std::string> args;
  std::vector<std::string> file_names;
  std::vector<std::string> file_contents;
  /// 0 = absent; the server applies its default deadline at admission.
  uint64_t deadline_ms = 0;
  /// 0 = absent; the server assumes its default memory commitment.
  uint64_t memory_mb = 0;
};

/// Typed response statuses. Everything except kOk is a refusal that
/// carries `error` instead of exit/stdout/stderr.
enum class ServeStatus : uint8_t {
  kOk = 0,
  kBadRequest,
  kOverloaded,
  kQuarantined,
  kTimeout,
  kDraining,
};

const char* ToString(ServeStatus status);
bool ParseServeStatus(std::string_view text, ServeStatus* out);

struct ServeResponse {
  std::string id;
  ServeStatus status = ServeStatus::kOk;
  int exit_code = 0;
  bool cached = false;
  uint64_t duration_ms = 0;
  std::string out;
  std::string err;
  /// Refusal detail for non-kOk statuses.
  std::string error;
  /// Backoff hint for kOverloaded (0 = none).
  uint64_t retry_after_ms = 0;
};

/// Parses one request frame (no trailing newline). InvalidArgument on
/// malformed JSON, a missing/empty id or command, or mismatched
/// file_names/file_contents lengths. When the frame is valid JSON, the
/// id (if any) is copied into *out even on error, so refusals can still
/// be correlated by the client.
Status ParseServeRequest(std::string_view line, ServeRequest* out);

/// Renders a request as one frame (no trailing newline).
std::string RenderServeRequest(const ServeRequest& request);

/// Parses one response frame. InvalidArgument on malformed JSON or an
/// unknown status.
Status ParseServeResponse(std::string_view line, ServeResponse* out);

/// Renders a response as one frame (no trailing newline).
std::string RenderServeResponse(const ServeResponse& response);

/// Convenience constructor for typed refusals.
ServeResponse MakeRefusal(std::string id, ServeStatus status,
                          std::string error);

}  // namespace tgdkit
