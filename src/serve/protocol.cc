#include "serve/protocol.h"

#include "base/strings.h"
#include "supervise/jsonl.h"

namespace tgdkit {

const char* ToString(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kBadRequest: return "bad_request";
    case ServeStatus::kOverloaded: return "overloaded";
    case ServeStatus::kQuarantined: return "quarantined";
    case ServeStatus::kTimeout: return "timeout";
    case ServeStatus::kDraining: return "draining";
  }
  return "unknown";
}

bool ParseServeStatus(std::string_view text, ServeStatus* out) {
  static constexpr ServeStatus kAll[] = {
      ServeStatus::kOk,          ServeStatus::kBadRequest,
      ServeStatus::kOverloaded,  ServeStatus::kQuarantined,
      ServeStatus::kTimeout,     ServeStatus::kDraining,
  };
  for (ServeStatus candidate : kAll) {
    if (text == ToString(candidate)) {
      *out = candidate;
      return true;
    }
  }
  return false;
}

Status ParseServeRequest(std::string_view line, ServeRequest* out) {
  FlatJson fields;
  Status parsed = ParseFlatJson(line, &fields);
  if (!parsed.ok()) {
    return Status::InvalidArgument(
        Cat("request frame: ", parsed.message()));
  }
  out->id = GetJsonString(fields, "id");
  out->command = GetJsonString(fields, "command");
  out->args = GetJsonStringArray(fields, "args");
  out->file_names = GetJsonStringArray(fields, "file_names");
  out->file_contents = GetJsonStringArray(fields, "file_contents");
  out->deadline_ms = GetJsonU64(fields, "deadline_ms");
  out->memory_mb = GetJsonU64(fields, "memory_mb");
  if (out->id.empty()) {
    return Status::InvalidArgument("request frame: missing id");
  }
  if (out->command.empty()) {
    return Status::InvalidArgument("request frame: missing command");
  }
  if (out->file_names.size() != out->file_contents.size()) {
    return Status::InvalidArgument(
        Cat("request frame: ", out->file_names.size(),
            " file_names vs ", out->file_contents.size(),
            " file_contents"));
  }
  return Status::Ok();
}

std::string RenderServeRequest(const ServeRequest& request) {
  std::string out = "{";
  AppendJsonString(&out, "id", request.id);
  AppendJsonString(&out, "command", request.command);
  if (!request.args.empty()) {
    AppendJsonStringArray(&out, "args", request.args);
  }
  if (!request.file_names.empty()) {
    AppendJsonStringArray(&out, "file_names", request.file_names);
    AppendJsonStringArray(&out, "file_contents", request.file_contents);
  }
  if (request.deadline_ms != 0) {
    AppendJsonRaw(&out, "deadline_ms", std::to_string(request.deadline_ms));
  }
  if (request.memory_mb != 0) {
    AppendJsonRaw(&out, "memory_mb", std::to_string(request.memory_mb));
  }
  out += '}';
  return out;
}

Status ParseServeResponse(std::string_view line, ServeResponse* out) {
  FlatJson fields;
  Status parsed = ParseFlatJson(line, &fields);
  if (!parsed.ok()) {
    return Status::InvalidArgument(
        Cat("response frame: ", parsed.message()));
  }
  out->id = GetJsonString(fields, "id");
  if (!ParseServeStatus(GetJsonString(fields, "status"), &out->status)) {
    return Status::InvalidArgument("response frame: unknown status");
  }
  out->exit_code = static_cast<int>(GetJsonI64(fields, "exit", 0));
  out->cached = GetJsonBool(fields, "cached");
  out->duration_ms = GetJsonU64(fields, "duration_ms");
  out->out = GetJsonString(fields, "stdout");
  out->err = GetJsonString(fields, "stderr");
  out->error = GetJsonString(fields, "error");
  out->retry_after_ms = GetJsonU64(fields, "retry_after_ms");
  return Status::Ok();
}

std::string RenderServeResponse(const ServeResponse& response) {
  std::string out = "{";
  AppendJsonString(&out, "id", response.id);
  AppendJsonString(&out, "status", ToString(response.status));
  if (response.status == ServeStatus::kOk) {
    AppendJsonRaw(&out, "exit", std::to_string(response.exit_code));
    AppendJsonRaw(&out, "cached", response.cached ? "true" : "false");
    AppendJsonRaw(&out, "duration_ms",
                  std::to_string(response.duration_ms));
    AppendJsonString(&out, "stdout", response.out);
    AppendJsonString(&out, "stderr", response.err);
  } else {
    AppendJsonString(&out, "error", response.error);
    if (response.retry_after_ms != 0) {
      AppendJsonRaw(&out, "retry_after_ms",
                    std::to_string(response.retry_after_ms));
    }
  }
  out += '}';
  return out;
}

ServeResponse MakeRefusal(std::string id, ServeStatus status,
                          std::string error) {
  ServeResponse response;
  response.id = std::move(id);
  response.status = status;
  response.error = std::move(error);
  return response;
}

}  // namespace tgdkit
