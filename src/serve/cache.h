// Warm-result cache and ruleset quarantine for the serve daemon.
//
// ResponseCache memoizes complete responses keyed by a content hash of
// (command, args, inline files). Strict request-scoping is the safety
// rule: entries are inserted only after a request finished with a
// fully-validated verdict (exit 0 or 3) and only when every input was
// inline — a request that read the daemon's filesystem is never cached,
// because the file can change under us; a request that failed, was
// cancelled, or stopped on a budget is never cached, because its output
// is not the answer. Eviction is LRU by payload bytes.
//
// QuarantineRegistry is the watchdog's memory: repeated in-flight
// failures (internal errors, hard deadline overruns) for the same
// ruleset hash trip a breaker, and further requests for that hash are
// refused with a typed `quarantined` response instead of burning
// another worker. A clean completion resets the breaker.
//
// Both classes are internally locked; workers and the poll loop call
// them concurrently.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "serve/protocol.h"

namespace tgdkit {

/// Content hash of the parts of a request that determine its response.
uint64_t ServeRequestKey(const ServeRequest& request);

/// Content hash of a request's inline files only: the quarantine key.
/// Requests with no inline files hash their command + args instead, so
/// hostile filesystem-path requests still accumulate strikes.
uint64_t ServeRulesetKey(const ServeRequest& request);

struct ResponseCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
};

class ResponseCache {
 public:
  /// max_bytes == 0 disables the cache (Get always misses, Put drops).
  explicit ResponseCache(uint64_t max_bytes) : max_bytes_(max_bytes) {}

  /// Returns the cached response (id empty — the caller stamps the
  /// request's own id) and refreshes its LRU position.
  std::optional<ServeResponse> Get(uint64_t key);

  /// Inserts a response, evicting least-recently-used entries until the
  /// byte cap holds again. The caller has already applied the
  /// only-validated-success policy; Put only enforces the byte cap (an
  /// entry larger than the whole cache is dropped).
  void Put(uint64_t key, const ServeResponse& response);

  ResponseCacheStats stats() const;

 private:
  struct Entry {
    uint64_t key = 0;
    uint64_t bytes = 0;
    ServeResponse response;
  };

  uint64_t max_bytes_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  uint64_t used_bytes_ = 0;
  ResponseCacheStats stats_;
};

class QuarantineRegistry {
 public:
  /// threshold == 0 disables quarantining entirely.
  explicit QuarantineRegistry(uint32_t threshold)
      : threshold_(threshold) {}

  /// Records one in-flight failure for the ruleset; returns true when
  /// this strike tripped (or the hash already was at) the breaker.
  bool Strike(uint64_t ruleset_key);

  /// A request for this ruleset completed cleanly: reset the breaker.
  void OnSuccess(uint64_t ruleset_key);

  bool IsQuarantined(uint64_t ruleset_key) const;

  uint64_t quarantined_count() const;

 private:
  uint32_t threshold_;
  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, uint32_t> strikes_;
};

}  // namespace tgdkit
