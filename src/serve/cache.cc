#include "serve/cache.h"

#include <string_view>

#include "base/strings.h"

namespace tgdkit {

namespace {

void HashString(size_t* seed, std::string_view text) {
  HashCombine(seed, std::hash<std::string_view>{}(text));
  HashCombine(seed, text.size());
}

}  // namespace

uint64_t ServeRequestKey(const ServeRequest& request) {
  size_t seed = 0xA11CE5ED;
  HashString(&seed, request.command);
  for (const std::string& arg : request.args) HashString(&seed, arg);
  for (size_t i = 0; i < request.file_names.size(); ++i) {
    HashString(&seed, request.file_names[i]);
    HashString(&seed, request.file_contents[i]);
  }
  return seed;
}

uint64_t ServeRulesetKey(const ServeRequest& request) {
  size_t seed = 0x0BADC0DE;
  if (request.file_contents.empty()) {
    HashString(&seed, request.command);
    for (const std::string& arg : request.args) HashString(&seed, arg);
    return seed;
  }
  for (const std::string& content : request.file_contents) {
    HashString(&seed, content);
  }
  return seed;
}

std::optional<ServeResponse> ResponseCache::Get(uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  ServeResponse response = it->second->response;
  response.cached = true;
  return response;
}

void ResponseCache::Put(uint64_t key, const ServeResponse& response) {
  uint64_t bytes = 64 + response.out.size() + response.err.size();
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes > max_bytes_) return;  // also covers the disabled cache
  if (auto it = index_.find(key); it != index_.end()) {
    // A concurrent identical request already inserted; keep the
    // existing entry (both computed the same bytes).
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (used_bytes_ + bytes > max_bytes_ && !lru_.empty()) {
    used_bytes_ -= lru_.back().bytes;
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  Entry entry;
  entry.key = key;
  entry.bytes = bytes;
  entry.response = response;
  entry.response.id.clear();
  entry.response.cached = true;
  entry.response.duration_ms = 0;
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  used_bytes_ += bytes;
  ++stats_.insertions;
}

ResponseCacheStats ResponseCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool QuarantineRegistry::Strike(uint64_t ruleset_key) {
  if (threshold_ == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  uint32_t& strikes = strikes_[ruleset_key];
  if (strikes < threshold_) ++strikes;
  return strikes >= threshold_;
}

void QuarantineRegistry::OnSuccess(uint64_t ruleset_key) {
  if (threshold_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = strikes_.find(ruleset_key);
  // The breaker, once tripped, stays tripped: a cached-elsewhere success
  // must not silently re-arm a ruleset that kept wrecking workers.
  if (it != strikes_.end() && it->second < threshold_) strikes_.erase(it);
}

bool QuarantineRegistry::IsQuarantined(uint64_t ruleset_key) const {
  if (threshold_ == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = strikes_.find(ruleset_key);
  return it != strikes_.end() && it->second >= threshold_;
}

uint64_t QuarantineRegistry::quarantined_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t count = 0;
  for (const auto& [key, strikes] : strikes_) {
    if (strikes >= threshold_ && threshold_ != 0) ++count;
  }
  return count;
}

}  // namespace tgdkit
