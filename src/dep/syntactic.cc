#include "dep/syntactic.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace tgdkit {

namespace {

void CollectFromTerm(const TermArena& arena, TermId t, size_t part_index,
                     std::unordered_map<FunctionId,
                                        std::vector<FunctionOccurrence>>* out) {
  if (!arena.IsFunction(t)) return;
  FunctionOccurrence occ;
  occ.part_index = part_index;
  auto args = arena.args(t);
  occ.args.assign(args.begin(), args.end());
  (*out)[arena.symbol(t)].push_back(std::move(occ));
  for (TermId a : args) CollectFromTerm(arena, a, part_index, out);
}

/// Returns the set of argument variables if `args` is a list of pairwise
/// distinct variables; nullopt otherwise.
std::optional<std::set<VariableId>> DistinctVariableSet(
    const TermArena& arena, const std::vector<TermId>& args) {
  std::set<VariableId> vars;
  for (TermId t : args) {
    if (!arena.IsVariable(t)) return std::nullopt;
    if (!vars.insert(arena.symbol(t)).second) return std::nullopt;
  }
  return vars;
}

std::set<VariableId> PartBodyVariables(const TermArena& arena,
                                       const SoPart& part) {
  std::vector<VariableId> vars = CollectAtomVariables(arena, part.body);
  return {vars.begin(), vars.end()};
}

struct FunctionShape {
  bool part_local = true;          // all occurrences in one part
  bool consistent_args = true;     // identical TermId arg vectors everywhere
  bool distinct_var_args = true;   // args are pairwise distinct variables
  std::set<size_t> parts;          // parts where the function occurs
  std::vector<TermId> args;        // the canonical arg vector (if consistent)
  std::set<VariableId> arg_vars;   // its variable set (if distinct vars)
};

std::unordered_map<FunctionId, FunctionShape> ComputeShapes(
    const TermArena& arena, const SoTgd& so) {
  auto occurrences = CollectFunctionOccurrences(arena, so);
  std::unordered_map<FunctionId, FunctionShape> shapes;
  for (const auto& [f, occs] : occurrences) {
    FunctionShape shape;
    shape.args = occs.front().args;
    for (const FunctionOccurrence& occ : occs) {
      shape.parts.insert(occ.part_index);
      if (occ.args != shape.args) shape.consistent_args = false;
      auto vars = DistinctVariableSet(arena, occ.args);
      if (!vars.has_value()) {
        shape.distinct_var_args = false;
      } else if (shape.arg_vars.empty() && occ.args == shape.args) {
        shape.arg_vars = *vars;
      }
    }
    shape.part_local = shape.parts.size() == 1;
    shapes.emplace(f, std::move(shape));
  }
  return shapes;
}

}  // namespace

std::unordered_map<FunctionId, std::vector<FunctionOccurrence>>
CollectFunctionOccurrences(const TermArena& arena, const SoTgd& so) {
  std::unordered_map<FunctionId, std::vector<FunctionOccurrence>> out;
  for (size_t i = 0; i < so.parts.size(); ++i) {
    const SoPart& part = so.parts[i];
    for (const Atom& atom : part.head) {
      for (TermId t : atom.args) CollectFromTerm(arena, t, i, &out);
    }
    for (const SoEquality& eq : part.equalities) {
      CollectFromTerm(arena, eq.lhs, i, &out);
      CollectFromTerm(arena, eq.rhs, i, &out);
    }
  }
  return out;
}

bool IsPlainSo(const TermArena& arena, const SoTgd& so) {
  return so.IsPlain(arena);
}

bool IsSkolemizedTgd(const TermArena& arena, const SoTgd& so) {
  if (!IsPlainSo(arena, so)) return false;
  auto shapes = ComputeShapes(arena, so);
  for (const auto& [f, shape] : shapes) {
    if (!shape.part_local || !shape.consistent_args ||
        !shape.distinct_var_args) {
      return false;
    }
    size_t part_index = *shape.parts.begin();
    // The Skolem term of a tgd existential carries the *full* tuple of
    // universal variables of the rule.
    if (shape.arg_vars != PartBodyVariables(arena, so.parts[part_index])) {
      return false;
    }
  }
  return true;
}

bool IsSkolemizedHenkin(const TermArena& arena, const SoTgd& so) {
  if (!IsPlainSo(arena, so)) return false;
  auto shapes = ComputeShapes(arena, so);
  for (const auto& [f, shape] : shapes) {
    if (!shape.part_local || !shape.consistent_args ||
        !shape.distinct_var_args) {
      return false;
    }
    size_t part_index = *shape.parts.begin();
    std::set<VariableId> body_vars =
        PartBodyVariables(arena, so.parts[part_index]);
    // Henkin Skolem terms use any subset of the universals.
    if (!std::includes(body_vars.begin(), body_vars.end(),
                       shape.arg_vars.begin(), shape.arg_vars.end())) {
      return false;
    }
  }
  return true;
}

bool IsSkolemizedStandardHenkin(const TermArena& arena, const SoTgd& so) {
  if (!IsSkolemizedHenkin(arena, so)) return false;
  auto shapes = ComputeShapes(arena, so);
  // For each part: the argument sets of the functions it uses must be
  // pairwise equal or disjoint (one chain of universals per row).
  for (size_t i = 0; i < so.parts.size(); ++i) {
    std::vector<const std::set<VariableId>*> sets;
    for (const auto& [f, shape] : shapes) {
      if (shape.parts.count(i)) sets.push_back(&shape.arg_vars);
    }
    for (size_t a = 0; a < sets.size(); ++a) {
      for (size_t b = a + 1; b < sets.size(); ++b) {
        if (*sets[a] == *sets[b]) continue;
        std::vector<VariableId> inter;
        std::set_intersection(sets[a]->begin(), sets[a]->end(),
                              sets[b]->begin(), sets[b]->end(),
                              std::back_inserter(inter));
        if (!inter.empty()) return false;
      }
    }
  }
  return true;
}

bool IsHierarchicalSo(const TermArena& arena, const SoTgd& so) {
  if (!IsPlainSo(arena, so)) return false;
  auto shapes = ComputeShapes(arena, so);
  std::vector<const FunctionShape*> all;
  for (const auto& [f, shape] : shapes) {
    // Functions may span parts (shared quantifier scope), but every
    // occurrence must carry the same argument list of distinct variables.
    if (!shape.consistent_args || !shape.distinct_var_args) return false;
    all.push_back(&shape);
    // Arguments must be body variables of every part the function occurs in.
    for (size_t part_index : shape.parts) {
      std::set<VariableId> body_vars =
          PartBodyVariables(arena, so.parts[part_index]);
      if (!std::includes(body_vars.begin(), body_vars.end(),
                         shape.arg_vars.begin(), shape.arg_vars.end())) {
        return false;
      }
    }
  }
  // Argument VECTORS must form a prefix-forest: nested-tgd Skolem terms
  // carry the universals of their root-to-node path in order, so two arg
  // vectors share a common prefix (the common ancestors) and must use
  // disjoint variables after it (the branches diverge).
  auto common_prefix = [](const std::vector<TermId>& u,
                          const std::vector<TermId>& v) {
    size_t p = 0;
    while (p < u.size() && p < v.size() && u[p] == v[p]) ++p;
    return p;
  };
  auto prefix_forest_pair = [&](const std::vector<TermId>& u,
                                const std::vector<TermId>& v) {
    size_t p = common_prefix(u, v);
    std::set<TermId> u_rest(u.begin() + p, u.end());
    for (size_t i = p; i < v.size(); ++i) {
      if (u_rest.count(v[i])) return false;
    }
    return true;
  };
  auto is_prefix = [&](const std::vector<TermId>& u,
                       const std::vector<TermId>& v) {
    size_t p = common_prefix(u, v);
    return p == u.size() || p == v.size();
  };
  for (size_t a = 0; a < all.size(); ++a) {
    for (size_t b = a + 1; b < all.size(); ++b) {
      if (!prefix_forest_pair(all[a]->args, all[b]->args)) return false;
    }
  }
  // Within each part the used functions lie on one root-to-leaf path:
  // their arg vectors are pairwise prefix-comparable.
  for (size_t i = 0; i < so.parts.size(); ++i) {
    std::vector<const FunctionShape*> used;
    for (const FunctionShape* shape : all) {
      if (shape->parts.count(i)) used.push_back(shape);
    }
    for (size_t a = 0; a < used.size(); ++a) {
      for (size_t b = a + 1; b < used.size(); ++b) {
        if (!is_prefix(used[a]->args, used[b]->args)) return false;
      }
    }
  }
  return true;
}

Figure1Membership ClassifyFigure1(const TermArena& arena, const SoTgd& so) {
  Figure1Membership m;
  m.so_tgd = true;
  m.plain_so = IsPlainSo(arena, so);
  m.henkin = IsSkolemizedHenkin(arena, so);
  m.standard_henkin = IsSkolemizedStandardHenkin(arena, so);
  m.normalized_nested_shape = IsHierarchicalSo(arena, so);
  m.tgd = IsSkolemizedTgd(arena, so);
  return m;
}

std::string ToString(const Figure1Membership& m) {
  std::string out;
  auto add = [&](bool flag, const char* name) {
    if (!flag) return;
    if (!out.empty()) out += ",";
    out += name;
  };
  add(m.tgd, "tgd");
  add(m.standard_henkin, "std-henkin");
  add(m.henkin, "henkin");
  add(m.normalized_nested_shape, "nested");
  add(m.plain_so, "plain-so");
  add(m.so_tgd, "so");
  return out;
}

}  // namespace tgdkit
