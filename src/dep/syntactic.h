// Syntactic recognizers for Figure 1 of the paper: given a dependency in
// Skolemized form (an SO tgd), decide which classes of the syntactic
// inclusion diagram it belongs to.
//
//            SO tgds
//           /        .
//   normalized     Henkin tgds
//   nested tgds         |
//           .      standard Henkin tgds
//            .        /
//              tgds
//
// Each recognizer checks the defining restriction on how Skolem terms may
// occur:
//   * tgds: every function's argument list is the full tuple of universal
//     variables of its (single) part;
//   * Henkin tgds: per-part functions, each with one fixed argument list of
//     distinct universal variables;
//   * standard Henkin tgds: additionally the argument sets of distinct
//     functions in a part are equal or disjoint (disjoint chains);
//   * normalized nested tgds: functions may span parts, argument lists form
//     a laminar family (the tree of the nesting structure) and the
//     functions used inside one part are totally ordered by inclusion.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "dep/dependency.h"

namespace tgdkit {

/// One occurrence of a function symbol inside an SO tgd.
struct FunctionOccurrence {
  size_t part_index;
  std::vector<TermId> args;
};

/// Collects every occurrence of every function symbol in heads and
/// equalities (outermost applications; arguments of nested applications are
/// collected as their own occurrences too).
std::unordered_map<FunctionId, std::vector<FunctionOccurrence>>
CollectFunctionOccurrences(const TermArena& arena, const SoTgd& so);

/// Plain SO tgd: no equalities, no nested terms (Arenas et al. 2013).
bool IsPlainSo(const TermArena& arena, const SoTgd& so);

/// Skolemization of a set of tgds.
bool IsSkolemizedTgd(const TermArena& arena, const SoTgd& so);

/// Skolemization of a set of Henkin tgds.
bool IsSkolemizedHenkin(const TermArena& arena, const SoTgd& so);

/// Skolemization of a set of standard Henkin tgds.
bool IsSkolemizedStandardHenkin(const TermArena& arena, const SoTgd& so);

/// Structural shape of a normalized nested tgd (output of Algorithm 1):
/// hierarchical Skolem-term structure. This is the necessary structural
/// condition the paper's separation proofs rely on ("argument lists of
/// Skolem functions must form a tree").
bool IsHierarchicalSo(const TermArena& arena, const SoTgd& so);

/// Full membership row for Figure 1.
struct Figure1Membership {
  bool so_tgd = true;  // every valid SoTgd is an SO tgd
  bool plain_so = false;
  bool henkin = false;
  bool standard_henkin = false;
  bool normalized_nested_shape = false;
  bool tgd = false;
};

Figure1Membership ClassifyFigure1(const TermArena& arena, const SoTgd& so);

/// Renders a membership row, e.g. "tgd,std-henkin,henkin,nested,plain,so".
std::string ToString(const Figure1Membership& membership);

}  // namespace tgdkit
