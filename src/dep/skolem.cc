#include "dep/skolem.h"

#include <unordered_map>

#include "base/strings.h"
#include "dep/syntactic.h"

namespace tgdkit {

namespace {

/// Replaces variables by their Skolem terms in a list of atoms.
std::vector<Atom> ApplyToAtoms(TermArena* arena, const Substitution& subst,
                               std::span<const Atom> atoms) {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& atom : atoms) {
    Atom mapped;
    mapped.relation = atom.relation;
    for (TermId t : atom.args) mapped.args.push_back(subst.Apply(arena, t));
    out.push_back(std::move(mapped));
  }
  return out;
}

TermId MakeSkolemTerm(TermArena* arena, Vocabulary* vocab, VariableId for_var,
                      std::span<const VariableId> deps,
                      std::vector<FunctionId>* functions) {
  FunctionId f = vocab->FreshFunction(
      Cat("sk_", vocab->VariableName(for_var)),
      static_cast<uint32_t>(deps.size()));
  functions->push_back(f);
  std::vector<TermId> args;
  args.reserve(deps.size());
  for (VariableId v : deps) args.push_back(arena->MakeVariable(v));
  return arena->MakeFunction(f, args);
}

}  // namespace

SoTgd TgdToSo(TermArena* arena, Vocabulary* vocab, const Tgd& tgd) {
  std::vector<VariableId> universals = CollectAtomVariables(*arena, tgd.body);
  SoTgd so;
  Substitution subst;
  for (VariableId y : tgd.exist_vars) {
    subst.Bind(y, MakeSkolemTerm(arena, vocab, y, universals, &so.functions));
  }
  SoPart part;
  part.body = tgd.body;
  part.head = ApplyToAtoms(arena, subst, tgd.head);
  so.parts.push_back(std::move(part));
  return so;
}

SoTgd TgdsToSo(TermArena* arena, Vocabulary* vocab,
               std::span<const Tgd> tgds) {
  SoTgd merged;
  for (const Tgd& tgd : tgds) {
    SoTgd one = TgdToSo(arena, vocab, tgd);
    merged.functions.insert(merged.functions.end(), one.functions.begin(),
                            one.functions.end());
    merged.parts.insert(merged.parts.end(), one.parts.begin(),
                        one.parts.end());
  }
  return merged;
}

SoTgd HenkinToSo(TermArena* arena, Vocabulary* vocab,
                 const HenkinTgd& henkin) {
  SoTgd so;
  Substitution subst;
  for (const auto& [y, deps] : henkin.quantifier.EssentialOrder()) {
    subst.Bind(y, MakeSkolemTerm(arena, vocab, y, deps, &so.functions));
  }
  SoPart part;
  part.body = henkin.body;
  part.head = ApplyToAtoms(arena, subst, henkin.head);
  so.parts.push_back(std::move(part));
  return so;
}

SoTgd HenkinsToSo(TermArena* arena, Vocabulary* vocab,
                  std::span<const HenkinTgd> henkins) {
  SoTgd merged;
  for (const HenkinTgd& henkin : henkins) {
    SoTgd one = HenkinToSo(arena, vocab, henkin);
    merged.functions.insert(merged.functions.end(), one.functions.begin(),
                            one.functions.end());
    merged.parts.insert(merged.parts.end(), one.parts.begin(),
                        one.parts.end());
  }
  return merged;
}

namespace {

NestedNode SkolemizeNode(TermArena* arena, Vocabulary* vocab,
                         const NestedNode& node,
                         std::vector<VariableId> ancestor_universals,
                         Substitution* subst,
                         std::vector<FunctionId>* functions) {
  NestedNode out;
  out.univ_vars = node.univ_vars;
  out.body = node.body;
  ancestor_universals.insert(ancestor_universals.end(),
                             node.univ_vars.begin(), node.univ_vars.end());
  for (VariableId y : node.exist_vars) {
    subst->Bind(y, MakeSkolemTerm(arena, vocab, y, ancestor_universals,
                                  functions));
  }
  // exist_vars stay empty in the Skolemized tree.
  out.head_atoms = ApplyToAtoms(arena, *subst, node.head_atoms);
  for (const NestedNode& child : node.children) {
    out.children.push_back(SkolemizeNode(arena, vocab, child,
                                         ancestor_universals, subst,
                                         functions));
  }
  return out;
}

}  // namespace

NestedTgd SkolemizeNested(TermArena* arena, Vocabulary* vocab,
                          const NestedTgd& nested,
                          std::vector<FunctionId>* functions) {
  Substitution subst;
  NestedTgd out;
  out.root = SkolemizeNode(arena, vocab, nested.root, {}, &subst, functions);
  return out;
}

namespace {

/// Rewrites the head of one part, replacing each distinct Skolem function
/// by a fresh variable. Returns the rewritten atoms; `fresh_vars` maps
/// function -> variable, `order` records first-use order.
std::vector<Atom> StripSkolemTerms(
    TermArena* arena, Vocabulary* vocab, const SoPart& part,
    std::unordered_map<FunctionId, VariableId>* fresh_vars,
    std::vector<FunctionId>* order) {
  auto strip = [&](TermId t, auto&& self) -> TermId {
    if (!arena->IsFunction(t)) return t;
    FunctionId f = arena->symbol(t);
    auto it = fresh_vars->find(f);
    if (it == fresh_vars->end()) {
      VariableId y = vocab->FreshVariable(Cat("e_", vocab->FunctionName(f)));
      it = fresh_vars->emplace(f, y).first;
      order->push_back(f);
    }
    (void)self;
    return arena->MakeVariable(it->second);
  };
  std::vector<Atom> out;
  for (const Atom& atom : part.head) {
    Atom mapped;
    mapped.relation = atom.relation;
    for (TermId t : atom.args) mapped.args.push_back(strip(t, strip));
    out.push_back(std::move(mapped));
  }
  return out;
}

}  // namespace

Result<std::vector<Tgd>> SoToTgds(TermArena* arena, Vocabulary* vocab,
                                  const SoTgd& so) {
  if (!IsSkolemizedTgd(*arena, so)) {
    return Status::InvalidArgument(
        "SO tgd is not the Skolemization of a set of tgds");
  }
  std::vector<Tgd> out;
  for (const SoPart& part : so.parts) {
    Tgd tgd;
    tgd.body = part.body;
    std::unordered_map<FunctionId, VariableId> fresh_vars;
    std::vector<FunctionId> order;
    tgd.head = StripSkolemTerms(arena, vocab, part, &fresh_vars, &order);
    for (FunctionId f : order) tgd.exist_vars.push_back(fresh_vars.at(f));
    out.push_back(std::move(tgd));
  }
  return out;
}

Result<std::vector<HenkinTgd>> SoToHenkins(TermArena* arena,
                                           Vocabulary* vocab,
                                           const SoTgd& so) {
  if (!IsSkolemizedHenkin(*arena, so)) {
    return Status::InvalidArgument(
        "SO tgd is not the Skolemization of a set of Henkin tgds");
  }
  auto occurrences = CollectFunctionOccurrences(*arena, so);
  std::vector<HenkinTgd> out;
  for (const SoPart& part : so.parts) {
    HenkinTgd henkin;
    henkin.body = part.body;
    for (VariableId v : CollectAtomVariables(*arena, part.body)) {
      henkin.quantifier.AddUniversal(v);
    }
    std::unordered_map<FunctionId, VariableId> fresh_vars;
    std::vector<FunctionId> order;
    henkin.head = StripSkolemTerms(arena, vocab, part, &fresh_vars, &order);
    for (FunctionId f : order) {
      VariableId y = fresh_vars.at(f);
      henkin.quantifier.AddExistential(y);
      // The essential order mirrors the Skolem argument list (all
      // occurrences share one list by the IsSkolemizedHenkin premise).
      const FunctionOccurrence& occ = occurrences.at(f).front();
      for (TermId arg : occ.args) {
        henkin.quantifier.AddOrder(arena->symbol(arg), y);
      }
    }
    out.push_back(std::move(henkin));
  }
  return out;
}

SoTgd MergeSo(std::span<const SoTgd> sos) {
  SoTgd merged;
  for (const SoTgd& so : sos) {
    merged.functions.insert(merged.functions.end(), so.functions.begin(),
                            so.functions.end());
    merged.parts.insert(merged.parts.end(), so.parts.begin(), so.parts.end());
  }
  return merged;
}

}  // namespace tgdkit
