// The four dependency families of Gottlob, Pichler & Sallinger (PODS'15):
//
//   * tgds                       ∀x̄ (ϕ(x̄) → ∃ȳ ψ(x̄, ȳ))
//   * SO tgds (Fagin et al.'05)  ∃f̄ ⋀ᵢ ∀x̄ᵢ (ϕᵢ → ψᵢ), function terms and
//                                equalities allowed in ϕᵢ, terms in ψᵢ
//   * nested tgds (Clio)         recursively nested implications
//   * Henkin tgds (this paper)   Q (ϕ(x̄) → ψ(x̄, ȳ)) for a Henkin
//                                quantifier Q (strict partial order)
//
// The Skolemized, executable common form of all of them is the SO tgd
// (Figure 1 of the paper); conversions live in dep/skolem.h and
// transform/.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "base/vocabulary.h"
#include "homo/matcher.h"
#include "term/term.h"

namespace tgdkit {

// ---------------------------------------------------------------------------
// Tgds

/// A tuple-generating dependency ∀x̄ (body → ∃ exist_vars. head).
/// Universal variables are exactly the variables occurring in the body;
/// `exist_vars` lists the existentially quantified head variables.
struct Tgd {
  std::vector<Atom> body;
  std::vector<Atom> head;
  std::vector<VariableId> exist_vars;

  /// A tgd is full when it has no existential variables.
  bool IsFull() const { return exist_vars.empty(); }
};

/// The distinct variables occurring in `atoms`, in first-occurrence order.
std::vector<VariableId> CollectAtomVariables(const TermArena& arena,
                                             std::span<const Atom> atoms);

/// Checks well-formedness: body/head non-empty, body atoms function-free,
/// every head variable is either a body variable or listed in exist_vars,
/// exist_vars do not occur in the body.
Status ValidateTgd(const TermArena& arena, const Tgd& tgd);

// ---------------------------------------------------------------------------
// SO tgds

/// An equality t = t' between terms (over part variables and functions).
struct SoEquality {
  TermId lhs;
  TermId rhs;
};

/// One implication ∀x̄ᵢ (ϕᵢ → ψᵢ) of an SO tgd. Universal variables are the
/// variables of the body atoms.
struct SoPart {
  std::vector<Atom> body;               // function-free relational atoms
  std::vector<SoEquality> equalities;   // extra conjuncts of ϕᵢ
  std::vector<Atom> head;               // atoms over terms
};

/// A second-order tgd ∃f̄ ⋀ parts. Also the library's executable rule-set
/// form: every other class converts into this one (paper Figure 1).
struct SoTgd {
  std::vector<FunctionId> functions;
  std::vector<SoPart> parts;

  /// Plain SO tgds (Arenas et al. 2013): no nested terms, no equalities.
  bool IsPlain(const TermArena& arena) const;
};

/// Checks well-formedness: parts non-empty with non-empty bodies and heads,
/// body atoms function-free, every head/equality function symbol is
/// declared in `functions`, every variable of a part occurs in its body.
Status ValidateSoTgd(const TermArena& arena, const SoTgd& so);

// ---------------------------------------------------------------------------
// Nested tgds

/// One part of a nested tgd:
///   ∀ univ_vars (body → ∃ exist_vars (head_atoms ∧ children...)).
/// In Skolemized form `exist_vars` is empty and head atoms carry function
/// terms instead.
struct NestedNode {
  std::vector<VariableId> univ_vars;
  std::vector<Atom> body;
  std::vector<VariableId> exist_vars;
  std::vector<Atom> head_atoms;
  std::vector<NestedNode> children;
};

/// A nested tgd: the root implication of the recursive grammar
///   χ ::= α | ∀x̄ (β₁ ∧ … ∧ βₖ → ∃ȳ (χ₁ ∧ … ∧ χₗ)).
struct NestedTgd {
  NestedNode root;

  /// Number of parts (implications) in the tree.
  size_t NumParts() const;
  /// Maximum nesting depth (a non-nested tgd has depth 1).
  size_t Depth() const;
  /// A nested tgd is "simple" when its normalization has one part, i.e.
  /// the tree is a single node (paper Section 3.2).
  bool IsSimple() const { return root.children.empty(); }
};

/// Checks well-formedness: each part's universal variables all occur in its
/// own body atoms; bodies function-free and non-empty; variable scopes
/// (ancestor universals + existentials) cover all head-atom variables;
/// existential variables are renamed apart across parts.
Status ValidateNestedTgd(const TermArena& arena, const NestedTgd& nested);

// ---------------------------------------------------------------------------
// Henkin quantifiers and Henkin tgds

/// A Henkin quantifier: first-order quantifiers (split into universals and
/// existentials) plus a strict partial order between them, given by
/// generator pairs "a before b". Semantics are via Skolemization: the
/// Skolem term of an existential y collects all universals preceding y in
/// the transitive closure (the "essential order", Walkoe 1970).
class HenkinQuantifier {
 public:
  HenkinQuantifier() = default;

  void AddUniversal(VariableId v) { universals_.push_back(v); }
  void AddExistential(VariableId v) { existentials_.push_back(v); }
  /// Declares `before` ≺ `after` in the partial order.
  void AddOrder(VariableId before, VariableId after) {
    order_.emplace_back(before, after);
  }

  /// Builds a standard Henkin quantifier from rows ∀x̄ᵢ ∃ȳᵢ (the classic
  /// matrix notation); each row becomes one chain.
  struct Row {
    std::vector<VariableId> universals;
    std::vector<VariableId> existentials;
  };
  static HenkinQuantifier FromRows(const std::vector<Row>& rows);

  const std::vector<VariableId>& universals() const { return universals_; }
  const std::vector<VariableId>& existentials() const { return existentials_; }
  const std::vector<std::pair<VariableId, VariableId>>& order() const {
    return order_;
  }

  /// The essential order: for each existential variable, the universals
  /// preceding it (in `universals()` order). Entries exist for all
  /// existentials, possibly with empty vectors.
  std::vector<std::pair<VariableId, std::vector<VariableId>>> EssentialOrder()
      const;

  /// True iff the partial order is irreflexive after transitive closure
  /// (i.e. a valid strict order) and mentions only declared variables.
  Status Validate() const;

  /// Standard (paper Section 3.1): expressible as a disjoint union of
  /// chains, each consisting of universals followed by existentials.
  /// Judged on the essential order (the only semantically relevant part):
  /// dependency sets must be pairwise equal or disjoint.
  bool IsStandard() const;

  /// Tree (paper Definition 3.1 discussion): every connected component of
  /// the undirected Hasse graph of the given order is a tree. Chains
  /// (standard rows) are trees; Algorithm 2 (nested-to-henkin) produces
  /// tree quantifiers. Representation-sensitive by design — supply
  /// overlapping dependency lists in consistent chain order.
  bool IsTree() const;

 private:
  std::vector<VariableId> universals_;
  std::vector<VariableId> existentials_;
  std::vector<std::pair<VariableId, VariableId>> order_;
};

/// A Henkin tgd Q (ϕ(x̄) → ψ(x̄, ȳ)): body/head are conjunctions of atoms;
/// x̄ = the quantifier's universals, ȳ = its existentials.
struct HenkinTgd {
  HenkinQuantifier quantifier;
  std::vector<Atom> body;
  std::vector<Atom> head;

  bool IsStandard() const { return quantifier.IsStandard(); }
  bool IsTree() const { return quantifier.IsTree(); }
};

/// Checks well-formedness: every universal occurs in the body, body is
/// function-free and only uses universals, head uses only declared
/// variables, existentials do not occur in the body.
Status ValidateHenkinTgd(const TermArena& arena, const HenkinTgd& henkin);

// ---------------------------------------------------------------------------
// Printing

std::string ToString(const TermArena& arena, const Vocabulary& vocab,
                     const Atom& atom);
std::string ToString(const TermArena& arena, const Vocabulary& vocab,
                     const Tgd& tgd);
std::string ToString(const TermArena& arena, const Vocabulary& vocab,
                     const SoTgd& so);
std::string ToString(const TermArena& arena, const Vocabulary& vocab,
                     const NestedTgd& nested);
std::string ToString(const TermArena& arena, const Vocabulary& vocab,
                     const HenkinTgd& henkin);

}  // namespace tgdkit
