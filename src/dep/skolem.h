// Skolemization: embedding tgds and Henkin tgds into SO tgds (the library's
// executable rule form), per Figure 1 of the paper. Nested tgds are handled
// by transform/nested.h (Algorithms 1 and 2).
#pragma once

#include <span>

#include "dep/dependency.h"

namespace tgdkit {

/// Skolemizes a tgd: every existential variable y becomes f_y(x̄) where x̄
/// is the full list of universal (body) variables — the restrictive form
/// that motivates the paper. Fresh function symbols are interned in `vocab`.
SoTgd TgdToSo(TermArena* arena, Vocabulary* vocab, const Tgd& tgd);

/// Skolemizes a set of tgds into one SO tgd (one part per tgd, functions
/// renamed apart).
SoTgd TgdsToSo(TermArena* arena, Vocabulary* vocab, std::span<const Tgd> tgds);

/// Skolemizes a Henkin tgd: every existential y becomes f_y(deps(y)) where
/// deps(y) is the essential order of the quantifier (paper Section 3.1).
SoTgd HenkinToSo(TermArena* arena, Vocabulary* vocab, const HenkinTgd& henkin);

/// Skolemizes a set of Henkin tgds into one SO tgd. Note the difference to
/// a genuinely shared quantifier: each Henkin tgd's functions are
/// quantified per-dependency, so they are renamed apart here (paper
/// Section 4 discusses exactly this distinction).
SoTgd HenkinsToSo(TermArena* arena, Vocabulary* vocab,
                  std::span<const HenkinTgd> henkins);

/// Skolemizes a nested tgd in place: existential variables are replaced by
/// Skolem terms over the universal variables of their part and all ancestor
/// parts. Returns the Skolemized tree; `functions` receives the fresh
/// symbols.
NestedTgd SkolemizeNested(TermArena* arena, Vocabulary* vocab,
                          const NestedTgd& nested,
                          std::vector<FunctionId>* functions);

/// Merges several SO tgds into one (functions are assumed distinct).
SoTgd MergeSo(std::span<const SoTgd> sos);

/// De-Skolemization, the inverse direction of Figure 1's embeddings.
///
/// SoToTgds succeeds iff `so` is the Skolemization of a set of tgds
/// (IsSkolemizedTgd); each part becomes one tgd with fresh existential
/// variables replacing its Skolem terms.
Result<std::vector<Tgd>> SoToTgds(TermArena* arena, Vocabulary* vocab,
                                  const SoTgd& so);

/// SoToHenkins succeeds iff `so` is the Skolemization of a set of Henkin
/// tgds (IsSkolemizedHenkin); each part becomes one Henkin tgd whose
/// essential order mirrors the Skolem argument lists.
Result<std::vector<HenkinTgd>> SoToHenkins(TermArena* arena,
                                           Vocabulary* vocab,
                                           const SoTgd& so);

}  // namespace tgdkit
