#include "dep/dependency.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "base/strings.h"

namespace tgdkit {

std::vector<VariableId> CollectAtomVariables(const TermArena& arena,
                                             std::span<const Atom> atoms) {
  std::vector<VariableId> out;
  for (const Atom& atom : atoms) {
    for (TermId t : atom.args) arena.CollectVariables(t, &out);
  }
  return out;
}

namespace {

bool AtomsFunctionFree(const TermArena& arena, std::span<const Atom> atoms) {
  for (const Atom& atom : atoms) {
    for (TermId t : atom.args) {
      if (!arena.IsVariable(t) && !arena.IsConstant(t)) return false;
    }
  }
  return true;
}

std::unordered_set<VariableId> VarSet(const TermArena& arena,
                                      std::span<const Atom> atoms) {
  std::vector<VariableId> vars = CollectAtomVariables(arena, atoms);
  return {vars.begin(), vars.end()};
}

}  // namespace

Status ValidateTgd(const TermArena& arena, const Tgd& tgd) {
  if (tgd.body.empty()) return Status::InvalidArgument("tgd has empty body");
  if (tgd.head.empty()) return Status::InvalidArgument("tgd has empty head");
  if (!AtomsFunctionFree(arena, tgd.body)) {
    return Status::InvalidArgument("tgd body contains function terms");
  }
  if (!AtomsFunctionFree(arena, tgd.head)) {
    return Status::InvalidArgument(
        "tgd head contains function terms (use SoTgd for Skolemized rules)");
  }
  std::unordered_set<VariableId> body_vars = VarSet(arena, tgd.body);
  std::unordered_set<VariableId> exist(tgd.exist_vars.begin(),
                                       tgd.exist_vars.end());
  for (VariableId v : tgd.exist_vars) {
    if (body_vars.count(v)) {
      return Status::InvalidArgument(
          "existential variable occurs in tgd body");
    }
  }
  for (VariableId v : CollectAtomVariables(arena, tgd.head)) {
    if (!body_vars.count(v) && !exist.count(v)) {
      return Status::InvalidArgument(
          "head variable neither universal nor existential");
    }
  }
  return Status::Ok();
}

bool SoTgd::IsPlain(const TermArena& arena) const {
  for (const SoPart& part : parts) {
    if (!part.equalities.empty()) return false;
    for (const Atom& atom : part.head) {
      for (TermId t : atom.args) {
        if (arena.HasNestedFunction(t)) return false;
      }
    }
  }
  return true;
}

Status ValidateSoTgd(const TermArena& arena, const SoTgd& so) {
  if (so.parts.empty()) return Status::InvalidArgument("SO tgd has no parts");
  std::unordered_set<FunctionId> declared(so.functions.begin(),
                                          so.functions.end());
  for (const SoPart& part : so.parts) {
    if (part.body.empty()) {
      return Status::InvalidArgument("SO tgd part has empty body");
    }
    if (part.head.empty()) {
      return Status::InvalidArgument("SO tgd part has empty head");
    }
    if (!AtomsFunctionFree(arena, part.body)) {
      return Status::InvalidArgument(
          "SO tgd part body atoms contain function terms");
    }
    std::unordered_set<VariableId> body_vars = VarSet(arena, part.body);
    auto check_term_functions = [&](TermId t, auto&& self) -> Status {
      if (arena.IsFunction(t)) {
        if (!declared.count(arena.symbol(t))) {
          return Status::InvalidArgument(
              "SO tgd uses undeclared function symbol");
        }
        for (TermId a : arena.args(t)) {
          TGDKIT_RETURN_IF_ERROR(self(a, self));
        }
      }
      return Status::Ok();
    };
    auto check_vars_in_body = [&](TermId t) -> Status {
      std::vector<VariableId> vars;
      arena.CollectVariables(t, &vars);
      for (VariableId v : vars) {
        if (!body_vars.count(v)) {
          return Status::InvalidArgument(
              "SO tgd variable does not occur in its part's body");
        }
      }
      return Status::Ok();
    };
    for (const Atom& atom : part.head) {
      for (TermId t : atom.args) {
        TGDKIT_RETURN_IF_ERROR(check_term_functions(t, check_term_functions));
        TGDKIT_RETURN_IF_ERROR(check_vars_in_body(t));
      }
    }
    for (const SoEquality& eq : part.equalities) {
      for (TermId t : {eq.lhs, eq.rhs}) {
        TGDKIT_RETURN_IF_ERROR(check_term_functions(t, check_term_functions));
        TGDKIT_RETURN_IF_ERROR(check_vars_in_body(t));
      }
    }
  }
  return Status::Ok();
}

size_t NestedTgd::NumParts() const {
  size_t count = 0;
  auto visit = [&](const NestedNode& node, auto&& self) -> void {
    ++count;
    for (const NestedNode& child : node.children) self(child, self);
  };
  visit(root, visit);
  return count;
}

size_t NestedTgd::Depth() const {
  auto visit = [&](const NestedNode& node, auto&& self) -> size_t {
    size_t best = 0;
    for (const NestedNode& child : node.children) {
      best = std::max(best, self(child, self));
    }
    return 1 + best;
  };
  return visit(root, visit);
}

namespace {

Status ValidateNestedNode(const TermArena& arena, const NestedNode& node,
                          std::unordered_set<VariableId> universal_scope,
                          std::unordered_set<VariableId> full_scope,
                          std::unordered_set<VariableId>* seen_exist) {
  if (node.body.empty()) {
    return Status::InvalidArgument("nested tgd part has empty body");
  }
  if (!AtomsFunctionFree(arena, node.body)) {
    return Status::InvalidArgument("nested tgd body contains function terms");
  }
  std::unordered_set<VariableId> body_vars = VarSet(arena, node.body);
  for (VariableId v : node.univ_vars) {
    if (!body_vars.count(v)) {
      return Status::InvalidArgument(
          "nested tgd universal variable missing from its part's body");
    }
    universal_scope.insert(v);
    full_scope.insert(v);
  }
  for (VariableId v : body_vars) {
    // Grammar: each β_j contains only variables from X (universals of this
    // part or an ancestor part) — never existentials.
    if (!universal_scope.count(v)) {
      return Status::InvalidArgument(
          "nested tgd body variable is not a universal in scope");
    }
  }
  for (VariableId v : node.exist_vars) {
    if (!seen_exist->insert(v).second) {
      return Status::InvalidArgument(
          "nested tgd existential variables must be renamed apart");
    }
    if (full_scope.count(v)) {
      return Status::InvalidArgument(
          "nested tgd existential shadows an outer variable");
    }
    full_scope.insert(v);
  }
  for (VariableId v : CollectAtomVariables(arena, node.head_atoms)) {
    if (!full_scope.count(v)) {
      return Status::InvalidArgument(
          "nested tgd head variable not in scope");
    }
  }
  if (node.head_atoms.empty() && node.children.empty()) {
    return Status::InvalidArgument("nested tgd part has empty conclusion");
  }
  for (const NestedNode& child : node.children) {
    TGDKIT_RETURN_IF_ERROR(ValidateNestedNode(arena, child, universal_scope,
                                              full_scope, seen_exist));
  }
  return Status::Ok();
}

}  // namespace

Status ValidateNestedTgd(const TermArena& arena, const NestedTgd& nested) {
  std::unordered_set<VariableId> seen_exist;
  return ValidateNestedNode(arena, nested.root, {}, {}, &seen_exist);
}

HenkinQuantifier HenkinQuantifier::FromRows(const std::vector<Row>& rows) {
  HenkinQuantifier q;
  for (const Row& row : rows) {
    // Each row is one chain: x1 ≺ x2 ≺ … ≺ y1 ≺ y2 ≺ …
    std::vector<VariableId> chain;
    for (VariableId v : row.universals) {
      q.AddUniversal(v);
      chain.push_back(v);
    }
    for (VariableId v : row.existentials) {
      q.AddExistential(v);
      chain.push_back(v);
    }
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      q.AddOrder(chain[i], chain[i + 1]);
    }
  }
  return q;
}

namespace {

/// Transitive closure of the order as a map var -> set of strictly
/// preceding vars.
std::unordered_map<VariableId, std::set<VariableId>> ClosurePredecessors(
    const HenkinQuantifier& q) {
  std::unordered_map<VariableId, std::set<VariableId>> pred;
  for (VariableId v : q.universals()) pred[v];
  for (VariableId v : q.existentials()) pred[v];
  for (const auto& [a, b] : q.order()) pred[b].insert(a);
  // Floyd–Warshall style saturation (quantifier prefixes are small).
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [v, ps] : pred) {
      std::set<VariableId> add;
      for (VariableId p : ps) {
        for (VariableId pp : pred[p]) {
          if (!ps.count(pp)) add.insert(pp);
        }
      }
      if (!add.empty()) {
        ps.insert(add.begin(), add.end());
        changed = true;
      }
    }
  }
  return pred;
}

}  // namespace

std::vector<std::pair<VariableId, std::vector<VariableId>>>
HenkinQuantifier::EssentialOrder() const {
  auto pred = ClosurePredecessors(*this);
  std::unordered_set<VariableId> universal_set(universals_.begin(),
                                               universals_.end());
  std::vector<std::pair<VariableId, std::vector<VariableId>>> out;
  for (VariableId y : existentials_) {
    std::vector<VariableId> deps;
    for (VariableId x : universals_) {  // keep declaration order
      if (pred[y].count(x)) deps.push_back(x);
    }
    out.emplace_back(y, std::move(deps));
  }
  return out;
}

Status HenkinQuantifier::Validate() const {
  std::unordered_set<VariableId> declared(universals_.begin(),
                                          universals_.end());
  declared.insert(existentials_.begin(), existentials_.end());
  if (declared.size() != universals_.size() + existentials_.size()) {
    return Status::InvalidArgument("Henkin quantifier variables not distinct");
  }
  for (const auto& [a, b] : order_) {
    if (!declared.count(a) || !declared.count(b)) {
      return Status::InvalidArgument(
          "Henkin order mentions undeclared variable");
    }
  }
  auto pred = ClosurePredecessors(*this);
  for (const auto& [v, ps] : pred) {
    if (ps.count(v)) {
      return Status::InvalidArgument("Henkin order is cyclic (not strict)");
    }
  }
  return Status::Ok();
}

namespace {

/// Dependency sets of the essential order, as sets.
std::vector<std::set<VariableId>> EssentialSets(const HenkinQuantifier& q) {
  std::vector<std::set<VariableId>> sets;
  for (const auto& [y, deps] : q.EssentialOrder()) {
    sets.emplace_back(deps.begin(), deps.end());
  }
  return sets;
}

bool SetsDisjoint(const std::set<VariableId>& a,
                  const std::set<VariableId>& b) {
  for (VariableId v : a) {
    if (b.count(v)) return false;
  }
  return true;
}

}  // namespace

bool HenkinQuantifier::IsStandard() const {
  // Only the essential order is semantically relevant (Walkoe 1970): a
  // quantifier is expressible as a standard one (disjoint chains of
  // universals followed by existentials) iff the dependency sets of its
  // existentials are pairwise equal or disjoint.
  std::vector<std::set<VariableId>> sets = EssentialSets(*this);
  for (size_t i = 0; i < sets.size(); ++i) {
    for (size_t j = i + 1; j < sets.size(); ++j) {
      if (sets[i] != sets[j] && !SetsDisjoint(sets[i], sets[j])) return false;
    }
  }
  return true;
}

bool HenkinQuantifier::IsTree() const {
  // Tree Henkin quantifiers: every connected component of the (undirected)
  // Hasse graph of the given order is a tree. This is representation-
  // sensitive by design — the paper defines the class on the quantifier's
  // partial order. Chains (standard rows) and the output of Algorithm 2
  // are trees; overlapping dependency lists given in consistent chain
  // order are too.
  auto pred = ClosurePredecessors(*this);
  std::vector<VariableId> all = universals_;
  all.insert(all.end(), existentials_.begin(), existentials_.end());
  std::map<VariableId, size_t> index;
  for (size_t i = 0; i < all.size(); ++i) index[all[i]] = i;

  // Hasse (covering) edges of the closure: a ≺ b with no c between.
  std::vector<std::pair<size_t, size_t>> edges;
  for (VariableId b : all) {
    for (VariableId a : pred[b]) {
      bool covering = true;
      for (VariableId c : pred[b]) {
        if (c != a && pred[c].count(a)) {
          covering = false;
          break;
        }
      }
      if (covering) edges.emplace_back(index[a], index[b]);
    }
  }

  // Union-find acyclicity check on the undirected Hasse graph.
  std::vector<size_t> parent(all.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const auto& [a, b] : edges) {
    size_t ra = find(a), rb = find(b);
    if (ra == rb) return false;
    parent[ra] = rb;
  }
  return true;
}

Status ValidateHenkinTgd(const TermArena& arena, const HenkinTgd& henkin) {
  TGDKIT_RETURN_IF_ERROR(henkin.quantifier.Validate());
  if (henkin.body.empty()) {
    return Status::InvalidArgument("Henkin tgd has empty body");
  }
  if (henkin.head.empty()) {
    return Status::InvalidArgument("Henkin tgd has empty head");
  }
  if (!AtomsFunctionFree(arena, henkin.body) ||
      !AtomsFunctionFree(arena, henkin.head)) {
    return Status::InvalidArgument("Henkin tgd contains function terms");
  }
  std::unordered_set<VariableId> universals(
      henkin.quantifier.universals().begin(),
      henkin.quantifier.universals().end());
  std::unordered_set<VariableId> existentials(
      henkin.quantifier.existentials().begin(),
      henkin.quantifier.existentials().end());
  std::unordered_set<VariableId> body_vars = VarSet(arena, henkin.body);
  for (VariableId v : body_vars) {
    if (!universals.count(v)) {
      return Status::InvalidArgument(
          "Henkin tgd body variable is not a universal of the quantifier");
    }
  }
  for (VariableId v : universals) {
    if (!body_vars.count(v)) {
      return Status::InvalidArgument(
          "Henkin universal variable missing from body");
    }
  }
  for (VariableId v : CollectAtomVariables(arena, henkin.head)) {
    if (!universals.count(v) && !existentials.count(v)) {
      return Status::InvalidArgument("Henkin head variable not quantified");
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Printing

std::string ToString(const TermArena& arena, const Vocabulary& vocab,
                     const Atom& atom) {
  return Cat(vocab.RelationName(atom.relation), "(",
             JoinMapped(atom.args, ", ",
                        [&](TermId t) { return arena.ToString(t, vocab); }),
             ")");
}

namespace {

std::string AtomsToString(const TermArena& arena, const Vocabulary& vocab,
                          std::span<const Atom> atoms) {
  return JoinMapped(atoms, " & ", [&](const Atom& a) {
    return ToString(arena, vocab, a);
  });
}

std::string VarsToString(const Vocabulary& vocab,
                         std::span<const VariableId> vars) {
  return JoinMapped(vars, ", ",
                    [&](VariableId v) { return vocab.VariableName(v); });
}

}  // namespace

std::string ToString(const TermArena& arena, const Vocabulary& vocab,
                     const Tgd& tgd) {
  std::string out = AtomsToString(arena, vocab, tgd.body);
  out += " -> ";
  if (!tgd.exist_vars.empty()) {
    out += Cat("exists ", VarsToString(vocab, tgd.exist_vars), " . ");
  }
  out += AtomsToString(arena, vocab, tgd.head);
  return out;
}

std::string ToString(const TermArena& arena, const Vocabulary& vocab,
                     const SoTgd& so) {
  std::string out = "so";
  if (!so.functions.empty()) {
    out += " exists ";
    out += JoinMapped(so.functions, ", ", [&](FunctionId f) {
      return vocab.FunctionName(f);
    });
  }
  out += " { ";
  out += JoinMapped(so.parts, " ; ", [&](const SoPart& part) {
    std::string p = AtomsToString(arena, vocab, part.body);
    for (const SoEquality& eq : part.equalities) {
      p += Cat(" & ", arena.ToString(eq.lhs, vocab), " = ",
               arena.ToString(eq.rhs, vocab));
    }
    p += " -> ";
    p += AtomsToString(arena, vocab, part.head);
    return p;
  });
  out += " }";
  return out;
}

namespace {

std::string NestedNodeToString(const TermArena& arena,
                               const Vocabulary& vocab,
                               const NestedNode& node) {
  std::string out;
  if (!node.univ_vars.empty()) {
    out += Cat("forall ", VarsToString(vocab, node.univ_vars), " ");
  }
  out += AtomsToString(arena, vocab, node.body);
  out += " -> ";
  if (!node.exist_vars.empty()) {
    out += Cat("exists ", VarsToString(vocab, node.exist_vars), " . ");
  }
  std::vector<std::string> items;
  for (const Atom& atom : node.head_atoms) {
    items.push_back(ToString(arena, vocab, atom));
  }
  for (const NestedNode& child : node.children) {
    items.push_back(Cat("[ ", NestedNodeToString(arena, vocab, child), " ]"));
  }
  out += Join(items, " & ");
  return out;
}

}  // namespace

std::string ToString(const TermArena& arena, const Vocabulary& vocab,
                     const NestedTgd& nested) {
  return Cat("nested ", NestedNodeToString(arena, vocab, nested.root));
}

std::string ToString(const TermArena& arena, const Vocabulary& vocab,
                     const HenkinTgd& henkin) {
  std::string out = "henkin { forall ";
  out += VarsToString(vocab, henkin.quantifier.universals());
  auto essential = henkin.quantifier.EssentialOrder();
  for (const auto& [y, deps] : essential) {
    out += Cat(" ; exists ", vocab.VariableName(y), "(",
               VarsToString(vocab, deps), ")");
  }
  out += " } ";
  out += AtomsToString(arena, vocab, henkin.body);
  out += " -> ";
  out += AtomsToString(arena, vocab, henkin.head);
  return out;
}

}  // namespace tgdkit
