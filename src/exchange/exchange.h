// Data exchange (Fagin, Kolaitis, Miller & Popa 2005) — the setting the
// paper's dependencies come from: a schema mapping M = (S, T, Σ) with
// source-to-target dependencies, a source instance I, and the tasks of
// materializing a (universal / core) solution and answering target
// queries certainly.
#pragma once

#include <set>
#include <vector>

#include "chase/chase.h"
#include "data/instance.h"
#include "dep/dependency.h"
#include "query/query.h"

namespace tgdkit {

/// A schema mapping: source and target relation symbols plus s-t rules in
/// Skolemized form (any of the paper's classes, converted via dep/skolem.h
/// or transform/).
struct SchemaMapping {
  std::set<RelationId> source_relations;
  std::set<RelationId> target_relations;
  SoTgd rules;
};

/// Checks that `rules` is source-to-target w.r.t. the declared schemas:
/// bodies over source relations, heads over target relations.
Status ValidateSourceToTarget(const SchemaMapping& mapping);

struct ExchangeResult {
  /// The materialized target instance (a universal solution when the
  /// chase terminated).
  Instance solution;
  ChaseStop chase_stop;

  bool IsUniversal() const { return chase_stop == ChaseStop::kFixpoint; }
};

/// Materializes a solution for `source` under `mapping`: chases and keeps
/// target-schema facts only. For s-t rules the chase always terminates in
/// one meaningful round.
ExchangeResult Solve(TermArena* arena, Vocabulary* vocab,
                     const SchemaMapping& mapping, const Instance& source,
                     ChaseLimits limits = {});

/// The core solution: the core of the universal solution — the smallest
/// universal solution, unique up to isomorphism.
Instance CoreSolution(TermArena* arena, Vocabulary* vocab,
                      const SchemaMapping& mapping, const Instance& source,
                      ChaseLimits limits = {});

/// Certain answers to a target query under the mapping (null-free answers
/// over the materialized solution).
CertainAnswers TargetCertainAnswers(TermArena* arena, Vocabulary* vocab,
                                    const SchemaMapping& mapping,
                                    const Instance& source,
                                    const ConjunctiveQuery& query,
                                    ChaseLimits limits = {});

}  // namespace tgdkit
