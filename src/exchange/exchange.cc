#include "exchange/exchange.h"

#include "homo/core.h"

namespace tgdkit {

Status ValidateSourceToTarget(const SchemaMapping& mapping) {
  for (RelationId r : mapping.source_relations) {
    if (mapping.target_relations.count(r)) {
      return Status::InvalidArgument(
          "source and target schemas must be disjoint");
    }
  }
  for (const SoPart& part : mapping.rules.parts) {
    for (const Atom& atom : part.body) {
      if (!mapping.source_relations.count(atom.relation)) {
        return Status::InvalidArgument(
            "s-t rule body contains a non-source atom");
      }
    }
    for (const Atom& atom : part.head) {
      if (!mapping.target_relations.count(atom.relation)) {
        return Status::InvalidArgument(
            "s-t rule head contains a non-target atom");
      }
    }
  }
  return Status::Ok();
}

ExchangeResult Solve(TermArena* arena, Vocabulary* vocab,
                     const SchemaMapping& mapping, const Instance& source,
                     ChaseLimits limits) {
  ChaseResult chased = Chase(arena, vocab, mapping.rules, source, limits);
  ExchangeResult out{Instance(&source.vocab()), chased.stop_reason};
  out.solution.EnsureNulls(chased.instance.num_nulls());
  for (const Fact& fact : chased.instance.AllFacts()) {
    if (mapping.target_relations.count(fact.relation)) {
      out.solution.AddFact(fact);
    }
  }
  return out;
}

Instance CoreSolution(TermArena* arena, Vocabulary* vocab,
                      const SchemaMapping& mapping, const Instance& source,
                      ChaseLimits limits) {
  ExchangeResult result = Solve(arena, vocab, mapping, source, limits);
  // Core minimization shares the caller's budget: on exhaustion it
  // returns the best (possibly non-minimal) fold found so far.
  ResourceGovernor governor(limits.budget);
  return ComputeCore(arena, vocab, result.solution, &governor);
}

CertainAnswers TargetCertainAnswers(TermArena* arena, Vocabulary* vocab,
                                    const SchemaMapping& mapping,
                                    const Instance& source,
                                    const ConjunctiveQuery& query,
                                    ChaseLimits limits) {
  return ComputeCertainAnswers(arena, vocab, mapping.rules, source, query,
                               limits);
}

}  // namespace tgdkit
