// Crash-consistent file I/O for the checkpoint/resume layer.
//
// AtomicWriteFile provides the durability contract snapshots rely on: the
// destination path either keeps its previous contents or holds the complete
// new contents — never a torn mixture — even if the process is SIGKILLed at
// any point during the write. The implementation is the classic
// write-to-temp + fsync + rename(2) + fsync-directory sequence.
//
// For the fault-injection harness, the writer honours two environment
// variables:
//
//   TGDKIT_CRASH_AT=<n>        raise(SIGKILL) during the n-th (1-based)
//                              AtomicWriteFile call of this process
//   TGDKIT_CRASH_PHASE=<p>     where in that call to die (default "mid"):
//                                begin  — after creating the temp file,
//                                         before writing any byte
//                                mid    — after writing roughly half the
//                                         payload (a torn temp file)
//                                commit — after the temp file is complete
//                                         and fsynced, before the rename
//
// The crash counter only advances while TGDKIT_CRASH_AT is set, so forked
// test children that arm the variable count from zero while the parent
// process is unaffected.
//
// A second hook simulates the disk filling up instead of the process
// dying:
//
//   TGDKIT_FAIL_WRITE_AT=<n>   the n-th (1-based) armed AtomicWriteFile /
//                              AppendLineDurable call fails mid-payload as
//                              ENOSPC would: the temp file is removed (the
//                              destination keeps its previous contents)
//                              and Status::ResourceExhausted comes back.
//
// Real ENOSPC/EDQUOT errors from the kernel are classified the same way:
// every write path in this file maps disk-full to ResourceExhausted (the
// CLI surfaces it as exit 4) rather than a generic Internal error, and no
// partial file is ever visible under its final name.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "base/status.h"

namespace tgdkit {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`. Used to detect
/// truncated or bit-flipped snapshot payloads.
uint32_t Crc32(std::string_view data);

/// Atomically replaces `path` with `contents` (write temp + fsync + rename
/// + fsync directory). On any error the destination is untouched; the temp
/// file `path + ".tmp"` may be left behind and is overwritten by the next
/// attempt. Honours the TGDKIT_CRASH_AT fault-injection hook (see above).
Status AtomicWriteFile(const std::string& path, std::string_view contents);

/// Durably appends `line` plus a trailing '\n' to `path` (O_APPEND +
/// fsync), creating the file if needed. `line` must not itself contain a
/// newline. A crash mid-append can leave at most one torn trailing line
/// without its newline; readers of append-only logs must ignore a final
/// unterminated line (see LoadLedger in src/supervise/ledger.h). Shares
/// the TGDKIT_CRASH_AT counter with AtomicWriteFile, with the same three
/// phases: begin (nothing appended), mid (half the line, torn), commit
/// (line complete, fsync skipped).
Status AppendLineDurable(const std::string& path, std::string_view line);

/// mkdir -p: creates `path` and any missing ancestors. Ok if it already
/// exists as a directory.
Status MakeDirectories(const std::string& path);

/// Reads a whole file. NotFound if it cannot be opened.
Result<std::string> ReadFileBytes(const std::string& path);

}  // namespace tgdkit
