// Small string helpers used by printers and error messages.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace tgdkit {

/// Joins the elements of `items` with `sep`, applying `render` to each.
template <typename Container, typename Render>
std::string JoinMapped(const Container& items, std::string_view sep,
                       Render render) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += sep;
    first = false;
    out += render(item);
  }
  return out;
}

/// Joins string-like elements with `sep`.
template <typename Container>
std::string Join(const Container& items, std::string_view sep) {
  return JoinMapped(items, sep, [](const auto& s) { return std::string(s); });
}

/// Concatenates streamable arguments into a string (mini StrCat).
template <typename... Args>
std::string Cat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

/// 64-bit hash combiner (boost-style with a 64-bit golden-ratio constant).
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Hashes a range of integral values.
template <typename It>
size_t HashRange(It begin, It end) {
  size_t seed = 0xcbf29ce484222325ULL;
  for (It it = begin; it != end; ++it) {
    HashCombine(&seed, static_cast<size_t>(*it));
  }
  return seed;
}

}  // namespace tgdkit
