// Deterministic pseudo-random number generation for generators, property
// tests and benchmarks. splitmix64-based: tiny, fast, reproducible across
// platforms (unlike std::mt19937 distributions).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tgdkit {

/// Deterministic PRNG (splitmix64). Same seed => same sequence everywhere.
/// The full generator state is the single 64-bit word exposed by state()/
/// set_state(), so randomized runs can be checkpointed and resumed with a
/// bit-identical continuation of the stream.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// The current generator state (serializable).
  uint64_t state() const { return state_; }
  /// Restores a state captured with state(); the next Next() continues the
  /// original sequence exactly.
  void set_state(uint64_t state) { state_ = state; }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). Precondition: bound > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform value in [lo, hi] inclusive. Precondition: lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  /// True with probability `percent`/100.
  bool Chance(uint32_t percent) { return Below(100) < percent; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Below(items.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      std::swap((*items)[i - 1], (*items)[Below(i)]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace tgdkit
