#include "base/thread_pool.h"

namespace tgdkit {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned spawn = threads > 1 ? threads - 1 : 0;
  workers_.reserve(spawn);
  for (unsigned i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::DrainIndexes(const std::function<void(size_t)>& body,
                              size_t n) {
  for (;;) {
    size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    body(i);
    completed_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* body = nullptr;
    size_t n = 0;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || !tasks_.empty() ||
               (generation_ != seen && job_body_ != nullptr);
      });
      if (shutdown_) return;
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      } else {
        seen = generation_;
        body = job_body_;
        n = job_size_;
        // Claims only happen inside this active bracket, so the caller's
        // completion wait (completed == n AND no active workers)
        // guarantees no stale claim can race a later job's counter
        // reset.
        ++active_workers_;
      }
    }
    if (task) {
      task();
      continue;
    }
    DrainIndexes(*body, n);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_workers_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::Post(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_body_ = &body;
    job_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  // The calling thread is a lane too.
  DrainIndexes(body, n);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return completed_.load(std::memory_order_acquire) == job_size_ &&
           active_workers_ == 0;
  });
  job_body_ = nullptr;
}

}  // namespace tgdkit
