#include "base/budget.h"

#include "base/strings.h"

namespace tgdkit {

const char* ToString(StopReason stop) {
  switch (stop) {
    case StopReason::kFixpoint:
      return "fixpoint";
    case StopReason::kRoundLimit:
      return "round-limit";
    case StopReason::kFactLimit:
      return "fact-limit";
    case StopReason::kDepthLimit:
      return "depth-limit";
    case StopReason::kStepLimit:
      return "step-limit";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kMemoryLimit:
      return "memory-limit";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool IsResourceStop(StopReason stop) {
  return stop != StopReason::kFixpoint;
}

Status StopReasonToStatus(StopReason stop, const std::string& what) {
  if (!IsResourceStop(stop)) return Status::Ok();
  return Status::ResourceExhausted(Cat(what, " stopped by ", ToString(stop)));
}

ResourceGovernor::ResourceGovernor(const ExecutionBudget& budget)
    : budget_(budget), start_(std::chrono::steady_clock::now()) {
  // Step limits are exact (a deterministic stop at step max_steps), so the
  // first slow-path check must not overshoot them.
  if (budget_.max_steps != 0 && budget_.max_steps < next_check_) {
    next_check_ = budget_.max_steps;
  }
}

void ResourceGovernor::AddMemorySource(std::function<uint64_t()> bytes) {
  memory_sources_.push_back(std::move(bytes));
}

void ResourceGovernor::MarkExhausted(StopReason reason) {
  if (exhausted_ || !IsResourceStop(reason)) return;
  exhausted_ = true;
  reason_ = reason;
}

void ResourceGovernor::SetCheckpointHook(uint64_t every_steps,
                                         uint64_t every_ms,
                                         std::function<void()> hook) {
  checkpoint_every_steps_ = every_steps;
  checkpoint_every_ms_ = every_ms;
  checkpoint_hook_ = std::move(hook);
  last_checkpoint_steps_ = steps_;
  last_checkpoint_ms_ = elapsed_ms();
}

double ResourceGovernor::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

bool ResourceGovernor::SlowPathCheck() {
  next_check_ = steps_ + kCheckInterval;
  if (budget_.max_steps != 0 && budget_.max_steps < next_check_) {
    next_check_ = budget_.max_steps;
  }

  if (budget_.cancel.cancelled()) {
    MarkExhausted(StopReason::kCancelled);
    return false;
  }
  if (budget_.max_steps != 0 && steps_ >= budget_.max_steps) {
    MarkExhausted(StopReason::kStepLimit);
    return false;
  }
  if (budget_.deadline_ms != 0 &&
      elapsed_ms() >= static_cast<double>(budget_.deadline_ms)) {
    MarkExhausted(StopReason::kDeadline);
    return false;
  }
  uint64_t bytes = charged_bytes_;
  for (const auto& source : memory_sources_) bytes += source();
  observed_bytes_ = bytes;
  if (budget_.max_memory_bytes != 0 && bytes >= budget_.max_memory_bytes) {
    if (pressure_handler_) {
      // Give the handler a chance to shed bytes (spill-and-evict), then
      // resample; only a handler that could not relieve the pressure
      // (nothing left to evict, or its writes failed) ends the run.
      pressure_handler_(budget_.max_memory_bytes);
      bytes = charged_bytes_;
      for (const auto& source : memory_sources_) bytes += source();
      observed_bytes_ = bytes;
    }
    if (bytes >= budget_.max_memory_bytes) {
      MarkExhausted(StopReason::kMemoryLimit);
      return false;
    }
  }
  if (checkpoint_hook_) {
    // Whichever cadence fires first wins; with both zero, every slow-path
    // check is due (the most aggressive setting, used by stress tests).
    double now_ms = elapsed_ms();
    bool due =
        (checkpoint_every_steps_ != 0 &&
         steps_ - last_checkpoint_steps_ >= checkpoint_every_steps_) ||
        (checkpoint_every_ms_ != 0 &&
         now_ms - last_checkpoint_ms_ >=
             static_cast<double>(checkpoint_every_ms_)) ||
        (checkpoint_every_steps_ == 0 && checkpoint_every_ms_ == 0);
    if (due) {
      last_checkpoint_steps_ = steps_;
      last_checkpoint_ms_ = now_ms;
      checkpoint_hook_();
    }
  }
  return true;
}

}  // namespace tgdkit
