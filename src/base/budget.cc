#include "base/budget.h"

#include "base/strings.h"

namespace tgdkit {

const char* ToString(StopReason stop) {
  switch (stop) {
    case StopReason::kFixpoint:
      return "fixpoint";
    case StopReason::kRoundLimit:
      return "round-limit";
    case StopReason::kFactLimit:
      return "fact-limit";
    case StopReason::kDepthLimit:
      return "depth-limit";
    case StopReason::kStepLimit:
      return "step-limit";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kMemoryLimit:
      return "memory-limit";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool IsResourceStop(StopReason stop) {
  return stop != StopReason::kFixpoint;
}

Status StopReasonToStatus(StopReason stop, const std::string& what) {
  if (!IsResourceStop(stop)) return Status::Ok();
  return Status::ResourceExhausted(Cat(what, " stopped by ", ToString(stop)));
}

ResourceGovernor::ResourceGovernor(const ExecutionBudget& budget)
    : budget_(budget), start_(std::chrono::steady_clock::now()) {
  // Step limits are exact (a deterministic stop at step max_steps), so the
  // first slow-path check must not overshoot them.
  if (budget_.max_steps != 0 && budget_.max_steps < next_check_) {
    next_check_ = budget_.max_steps;
  }
}

void ResourceGovernor::AddMemorySource(std::function<uint64_t()> bytes) {
  memory_sources_.push_back(std::move(bytes));
}

void ResourceGovernor::MarkExhausted(StopReason reason) {
  if (exhausted_ || !IsResourceStop(reason)) return;
  exhausted_ = true;
  reason_ = reason;
}

double ResourceGovernor::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

bool ResourceGovernor::SlowPathCheck() {
  next_check_ = steps_ + kCheckInterval;
  if (budget_.max_steps != 0 && budget_.max_steps < next_check_) {
    next_check_ = budget_.max_steps;
  }

  if (budget_.cancel.cancelled()) {
    MarkExhausted(StopReason::kCancelled);
    return false;
  }
  if (budget_.max_steps != 0 && steps_ >= budget_.max_steps) {
    MarkExhausted(StopReason::kStepLimit);
    return false;
  }
  if (budget_.deadline_ms != 0 &&
      elapsed_ms() >= static_cast<double>(budget_.deadline_ms)) {
    MarkExhausted(StopReason::kDeadline);
    return false;
  }
  uint64_t bytes = charged_bytes_;
  for (const auto& source : memory_sources_) bytes += source();
  observed_bytes_ = bytes;
  if (budget_.max_memory_bytes != 0 && bytes >= budget_.max_memory_bytes) {
    MarkExhausted(StopReason::kMemoryLimit);
    return false;
  }
  return true;
}

}  // namespace tgdkit
