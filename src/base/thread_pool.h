// Fixed-size thread pool for data-parallel engine phases and posted
// tasks.
//
// The chase engines stage each round's trigger matching as a list of
// independent slices and fan them out with ParallelFor. The pool is
// deliberately minimal: one job at a time, dynamic index claiming for
// load balance, and a hard completion barrier — determinism is the
// *caller's* contract (write results into per-index slots, merge in index
// order), which keeps the pool itself free of ordering policy.
//
// Post() is the second mode: fire-and-forget tasks drained by the same
// workers, used by the serve daemon to execute requests concurrently.
// Completion tracking is the caller's job (serve counts in-flight
// requests itself); the destructor drops tasks that never started.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tgdkit {

/// A fixed-size pool of `threads` execution lanes: threads-1 worker
/// threads plus the calling thread. With threads == 1 no workers are
/// spawned and ParallelFor degenerates to an inline loop, so single- and
/// multi-threaded callers share one code path.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread).
  unsigned threads() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs body(i) exactly once for every i in [0, n), distributing
  /// indexes dynamically over all lanes, and returns only after every
  /// call has finished. `body` must not throw; it runs concurrently with
  /// itself, so everything it touches must be read-only, per-index, or
  /// synchronized. Not reentrant: one job at a time per pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Enqueues one task for any free worker; returns immediately. With no
  /// workers (threads == 1) the task runs inline before returning, so
  /// single-threaded configurations stay a single code path. Tasks must
  /// not throw. The pool provides no completion signal — callers that
  /// need one (the serve daemon's in-flight accounting) build their own.
  /// Destroying the pool drops tasks that have not started; the caller
  /// must drain first if that matters.
  void Post(std::function<void()> task);

 private:
  void WorkerLoop();
  /// Claims and runs indexes of the current job until none remain.
  void DrainIndexes(const std::function<void(size_t)>& body, size_t n);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  // wakes workers for a new generation
  std::condition_variable done_cv_;  // wakes the caller at job completion
  uint64_t generation_ = 0;          // guarded by mutex_
  bool shutdown_ = false;            // guarded by mutex_
  size_t job_size_ = 0;              // guarded by mutex_ at handoff
  const std::function<void(size_t)>* job_body_ = nullptr;  // likewise
  size_t active_workers_ = 0;        // workers inside DrainIndexes
  std::deque<std::function<void()>> tasks_;  // guarded by mutex_
  std::atomic<size_t> next_index_{0};
  std::atomic<size_t> completed_{0};
};

}  // namespace tgdkit
