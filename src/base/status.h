// Status and Result types for fallible operations, in the style of
// Arrow/RocksDB. The library does not use exceptions; parser and other
// user-facing fallible entry points return Status or Result<T>.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace tgdkit {

/// Outcome of a fallible operation: OK or an error with a message.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kParseError,
    kNotFound,
    kResourceExhausted,
    kUnsupported,
    kInternal,
    /// Stored data is unreadable: truncated, bit-flipped or otherwise
    /// corrupt (snapshot checksum/structure failures).
    kDataLoss,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(Code::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected token".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (checked by assert).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK status out of the enclosing function.
#define TGDKIT_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::tgdkit::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace tgdkit
