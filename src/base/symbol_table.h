// String interning: maps strings to dense 32-bit ids and back.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tgdkit {

/// Dense id of an interned string. Ids are assigned sequentially from 0 in
/// insertion order, so they can index side tables (e.g. arities).
using SymbolId = uint32_t;

inline constexpr SymbolId kInvalidSymbol = static_cast<SymbolId>(-1);

/// Bidirectional map between strings and dense SymbolIds.
///
/// Not thread-safe; each Vocabulary owns its own tables.
class SymbolTable {
 public:
  /// Returns the id of `name`, interning it if new.
  SymbolId Intern(std::string_view name);

  /// Returns the id of `name`, or kInvalidSymbol when not interned.
  SymbolId Find(std::string_view name) const;

  /// Returns the string for an id. Precondition: id < size().
  const std::string& Name(SymbolId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }
  bool Contains(std::string_view name) const {
    return Find(name) != kInvalidSymbol;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> ids_;
};

}  // namespace tgdkit
