#include "base/vocabulary.h"

#include <string>

namespace tgdkit {

RelationId Vocabulary::InternRelation(std::string_view name, uint32_t arity) {
  RelationId id = relations_.Intern(name);
  if (id == relation_arity_.size()) {
    relation_arity_.push_back(arity);
  } else {
    assert(relation_arity_[id] == arity && "relation re-interned with a different arity");
  }
  return id;
}

FunctionId Vocabulary::InternFunction(std::string_view name, uint32_t arity) {
  FunctionId id = functions_.Intern(name);
  if (id == function_arity_.size()) {
    function_arity_.push_back(arity);
  } else {
    assert(function_arity_[id] == arity && "function re-interned with a different arity");
  }
  return id;
}

ConstantId Vocabulary::InternConstant(std::string_view name) {
  return constants_.Intern(name);
}

VariableId Vocabulary::InternVariable(std::string_view name) {
  return variables_.Intern(name);
}

VariableId Vocabulary::FreshVariable(std::string_view prefix) {
  for (;;) {
    std::string candidate =
        std::string(prefix) + "$" + std::to_string(fresh_counter_++);
    if (!variables_.Contains(candidate)) {
      return variables_.Intern(candidate);
    }
  }
}

FunctionId Vocabulary::FreshFunction(std::string_view prefix, uint32_t arity) {
  for (;;) {
    std::string candidate =
        std::string(prefix) + "$" + std::to_string(fresh_counter_++);
    if (!functions_.Contains(candidate)) {
      return InternFunction(candidate, arity);
    }
  }
}

}  // namespace tgdkit
