#include "base/net.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/strings.h"

namespace tgdkit {

namespace {

Status Errno(const char* what) {
  return Status::Internal(Cat(what, ": ", strerror(errno)));
}

Result<int> NewSocket(int domain) {
  int fd = socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  return fd;
}

}  // namespace

Result<int> ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        Cat("socket path too long (", path.size(), " bytes): ", path));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Result<int> fd = NewSocket(AF_UNIX);
  if (!fd.ok()) return fd;
  unlink(path.c_str());
  if (bind(*fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    close(*fd);
    errno = saved;
    return Errno("bind");
  }
  if (listen(*fd, backlog) != 0) {
    int saved = errno;
    close(*fd);
    errno = saved;
    return Errno("listen");
  }
  return fd;
}

Result<int> ListenTcpLocal(uint16_t port, int backlog,
                           uint16_t* bound_port) {
  Result<int> fd = NewSocket(AF_INET);
  if (!fd.ok()) return fd;
  int one = 1;
  setsockopt(*fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(*fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    close(*fd);
    errno = saved;
    return Errno("bind");
  }
  if (listen(*fd, backlog) != 0) {
    int saved = errno;
    close(*fd);
    errno = saved;
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(*fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    int saved = errno;
    close(*fd);
    errno = saved;
    return Errno("getsockname");
  }
  if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
  return fd;
}

Result<int> AcceptConnection(int listen_fd) {
  for (;;) {
    int fd = accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return Status::ResourceExhausted("accept would block");
    }
    return Errno("accept");
  }
}

Result<int> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        Cat("socket path too long (", path.size(), " bytes): ", path));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Result<int> fd = NewSocket(AF_UNIX);
  if (!fd.ok()) return fd;
  if (connect(*fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    close(*fd);
    errno = saved;
    return Errno("connect");
  }
  return fd;
}

Result<int> ConnectTcpLocal(uint16_t port) {
  Result<int> fd = NewSocket(AF_INET);
  if (!fd.ok()) return fd;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(*fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    close(*fd);
    errno = saved;
    return Errno("connect");
  }
  return fd;
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  int updated = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd, F_SETFL, updated) < 0) return Errno("fcntl(F_SETFL)");
  return Status::Ok();
}

Status WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    // MSG_NOSIGNAL: a peer that went away must surface as EPIPE, never
    // as a process-killing SIGPIPE — callers (tests, in-process
    // servers) cannot be assumed to ignore the signal globally.
    ssize_t n = send(fd, data.data() + written, data.size() - written,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status ReadLine(int fd, std::string* line, size_t max_bytes) {
  char c = 0;
  for (;;) {
    ssize_t n = read(fd, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      if (line->empty()) return Status::NotFound("eof");
      return Status::Ok();  // unterminated final line
    }
    if (c == '\n') return Status::Ok();
    line->push_back(c);
    if (line->size() > max_bytes) {
      return Status::ResourceExhausted(
          Cat("line exceeds ", max_bytes, " bytes"));
    }
  }
}

}  // namespace tgdkit
