// Minimal stream-socket helpers for the serve daemon and its clients.
//
// Everything returns a Result<int> owning file descriptor (CLOEXEC set)
// or a Status carrying errno text; no buffering, no framing — the serve
// protocol layer owns that. Only local transports are offered: a Unix
// domain socket path or a TCP port bound to 127.0.0.1 (the daemon is an
// admission-controlled service, not an internet-facing one).
#pragma once

#include <cstdint>
#include <string>

#include "base/status.h"

namespace tgdkit {

/// Creates, binds and listens on a Unix domain socket. An existing
/// socket file at `path` is unlinked first (a daemon restarting over a
/// stale socket must not need manual cleanup); a live daemon on the
/// same path will lose its listener, so callers own path hygiene.
Result<int> ListenUnix(const std::string& path, int backlog);

/// Creates, binds and listens on 127.0.0.1:`port`. port == 0 picks an
/// ephemeral port; *bound_port receives the actual port either way.
Result<int> ListenTcpLocal(uint16_t port, int backlog,
                           uint16_t* bound_port);

/// Accepts one pending connection (the listener must be readable).
/// Returns the connected fd, or kUnavailable-style ResourceExhausted
/// when the accept would block (EAGAIN — poll raced a reset).
Result<int> AcceptConnection(int listen_fd);

Result<int> ConnectUnix(const std::string& path);
Result<int> ConnectTcpLocal(uint16_t port);

/// O_NONBLOCK on/off.
Status SetNonBlocking(int fd, bool nonblocking);

/// Writes all of `data`, retrying short writes and EINTR. For blocking
/// sockets (clients). EPIPE and other errors surface as Internal.
Status WriteAll(int fd, const std::string& data);

/// Reads until `\n` or EOF, appending to *line (the newline is not
/// included). Returns NotFound at clean EOF with nothing read.
/// For blocking sockets (clients); `max_bytes` guards runaway frames.
Status ReadLine(int fd, std::string* line, size_t max_bytes);

}  // namespace tgdkit
