// The Vocabulary holds the symbol spaces shared by terms, atoms,
// dependencies and instances: relation symbols (with arity), function
// symbols (with arity), constants and variables.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/symbol_table.h"

namespace tgdkit {

using RelationId = SymbolId;
using FunctionId = SymbolId;
using ConstantId = SymbolId;
using VariableId = SymbolId;

/// Shared symbol spaces for one logical "universe" (schema + dependencies +
/// instances). All structures referencing symbol ids must use the same
/// Vocabulary.
class Vocabulary {
 public:
  /// Interns a relation symbol with the given arity. Re-interning with a
  /// different arity is a programming error (checked by assert).
  RelationId InternRelation(std::string_view name, uint32_t arity);
  /// Interns a function symbol with the given arity.
  FunctionId InternFunction(std::string_view name, uint32_t arity);
  ConstantId InternConstant(std::string_view name);
  VariableId InternVariable(std::string_view name);

  /// Interns a fresh variable with a name based on `prefix` that does not
  /// collide with any existing variable.
  VariableId FreshVariable(std::string_view prefix);
  /// Interns a fresh function symbol based on `prefix` with given arity.
  FunctionId FreshFunction(std::string_view prefix, uint32_t arity);

  RelationId FindRelation(std::string_view name) const {
    return relations_.Find(name);
  }
  FunctionId FindFunction(std::string_view name) const {
    return functions_.Find(name);
  }
  ConstantId FindConstant(std::string_view name) const {
    return constants_.Find(name);
  }
  VariableId FindVariable(std::string_view name) const {
    return variables_.Find(name);
  }

  const std::string& RelationName(RelationId id) const {
    return relations_.Name(id);
  }
  const std::string& FunctionName(FunctionId id) const {
    return functions_.Name(id);
  }
  const std::string& ConstantName(ConstantId id) const {
    return constants_.Name(id);
  }
  const std::string& VariableName(VariableId id) const {
    return variables_.Name(id);
  }

  uint32_t RelationArity(RelationId id) const { return relation_arity_[id]; }
  uint32_t FunctionArity(FunctionId id) const { return function_arity_[id]; }

  size_t num_relations() const { return relations_.size(); }
  size_t num_functions() const { return functions_.size(); }
  size_t num_constants() const { return constants_.size(); }
  size_t num_variables() const { return variables_.size(); }

  /// Snapshot support: the fresh-name counter behind FreshVariable /
  /// FreshFunction. Restoring it keeps post-resume fresh names identical
  /// to the uninterrupted run's.
  uint64_t fresh_counter() const { return fresh_counter_; }
  void RestoreFreshCounter(uint64_t value) { fresh_counter_ = value; }

 private:
  SymbolTable relations_;
  SymbolTable functions_;
  SymbolTable constants_;
  SymbolTable variables_;
  std::vector<uint32_t> relation_arity_;
  std::vector<uint32_t> function_arity_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace tgdkit
