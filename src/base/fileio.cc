#include "base/fileio.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "base/strings.h"

namespace tgdkit {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

enum class CrashPhase { kBegin, kMid, kCommit };

/// Parses the fault-injection environment. Returns false when unarmed.
bool CrashHookArmed(uint64_t* crash_at, CrashPhase* phase) {
  const char* at = std::getenv("TGDKIT_CRASH_AT");
  if (at == nullptr || *at == '\0') return false;
  char* end = nullptr;
  uint64_t n = std::strtoull(at, &end, 10);
  if (end == at || n == 0) return false;
  *crash_at = n;
  *phase = CrashPhase::kMid;
  const char* p = std::getenv("TGDKIT_CRASH_PHASE");
  if (p != nullptr) {
    if (std::strcmp(p, "begin") == 0) *phase = CrashPhase::kBegin;
    if (std::strcmp(p, "commit") == 0) *phase = CrashPhase::kCommit;
  }
  return true;
}

/// The n-th armed AtomicWriteFile call dies with SIGKILL at `at_phase`.
/// SIGKILL (not exit) so no destructor, stream flush or atexit handler can
/// soften the crash — this is the process-death model the snapshot layer
/// must survive.
class CrashPoint {
 public:
  CrashPoint() {
    armed_ = CrashHookArmed(&crash_at_, &phase_);
    if (armed_) {
      static std::atomic<uint64_t> write_counter{0};
      ordinal_ = ++write_counter;
    }
  }

  void Maybe(CrashPhase here) const {
    if (armed_ && ordinal_ == crash_at_ && here == phase_) {
      raise(SIGKILL);
    }
  }

 private:
  bool armed_ = false;
  uint64_t crash_at_ = 0;
  CrashPhase phase_ = CrashPhase::kMid;
  uint64_t ordinal_ = 0;
};

/// The n-th armed write call fails as if the disk filled up. Shares the
/// counting discipline of CrashPoint: the counter only advances while
/// TGDKIT_FAIL_WRITE_AT is set, so forked test children count from zero.
class FailWritePoint {
 public:
  FailWritePoint() {
    const char* at = std::getenv("TGDKIT_FAIL_WRITE_AT");
    if (at == nullptr || *at == '\0') return;
    char* end = nullptr;
    uint64_t n = std::strtoull(at, &end, 10);
    if (end == at || n == 0) return;
    fail_at_ = n;
    static std::atomic<uint64_t> write_counter{0};
    ordinal_ = ++write_counter;
  }

  bool ShouldFail() const { return fail_at_ != 0 && ordinal_ == fail_at_; }

 private:
  uint64_t fail_at_ = 0;
  uint64_t ordinal_ = 0;
};

Status IoError(const std::string& what, const std::string& path) {
  const int err = errno;
  std::string msg = Cat(what, " '", path, "': ", std::strerror(err));
  // Disk-full is an environmental resource stop, not a program bug: the
  // CLI maps ResourceExhausted to exit 4 and the last-good checkpoint on
  // disk stays intact (the failed write never reached its final name).
  if (err == ENOSPC || err == EDQUOT) {
    return Status::ResourceExhausted(std::move(msg));
  }
  return Status::Internal(std::move(msg));
}

Status InjectedDiskFull(const std::string& path) {
  return Status::ResourceExhausted(
      Cat("cannot write '", path, "': injected disk full "
          "(TGDKIT_FAIL_WRITE_AT)"));
}

/// Writes all of `data` to `fd`, retrying short writes and EINTR.
bool WriteAll(int fd, std::string_view data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  CrashPoint crash;
  FailWritePoint fail;
  const std::string tmp = path + ".tmp";
  int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("cannot create", tmp);
  crash.Maybe(CrashPhase::kBegin);
  // Mid-write crash point: half the payload reaches the temp file, the
  // rest never does — the torn-write case the loader must reject.
  std::string_view first = contents.substr(0, contents.size() / 2);
  std::string_view second = contents.substr(contents.size() / 2);
  if (!WriteAll(fd, first)) {
    close(fd);
    return IoError("cannot write", tmp);
  }
  crash.Maybe(CrashPhase::kMid);
  if (fail.ShouldFail()) {
    // Injected ENOSPC mid-payload: remove the half-written temp file and
    // report cleanly; the destination is untouched.
    close(fd);
    unlink(tmp.c_str());
    return InjectedDiskFull(tmp);
  }
  if (!WriteAll(fd, second)) {
    close(fd);
    return IoError("cannot write", tmp);
  }
  if (fsync(fd) != 0) {
    close(fd);
    return IoError("cannot fsync", tmp);
  }
  if (close(fd) != 0) return IoError("cannot close", tmp);
  crash.Maybe(CrashPhase::kCommit);
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    return IoError("cannot rename into", path);
  }
  // Durably record the rename itself: fsync the containing directory.
  std::string dir = path;
  size_t slash = dir.find_last_of('/');
  dir = (slash == std::string::npos) ? "." : dir.substr(0, slash);
  int dfd = open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    // Directory fsync failures (e.g. on exotic filesystems) degrade
    // durability but not atomicity; do not fail the write over them.
    fsync(dfd);
    close(dfd);
  }
  return Status::Ok();
}

Status AppendLineDurable(const std::string& path, std::string_view line) {
  CrashPoint crash;
  FailWritePoint fail;
  int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                0644);
  if (fd < 0) return IoError("cannot open for append", path);
  crash.Maybe(CrashPhase::kBegin);
  if (fail.ShouldFail()) {
    // Injected ENOSPC before any byte is appended: the log stays intact.
    close(fd);
    return InjectedDiskFull(path);
  }
  // One buffer, two writes: the mid-phase crash leaves a torn trailing
  // line with no newline — exactly the artifact ledger readers must skip.
  std::string record(line);
  record += '\n';
  std::string_view all = record;
  std::string_view first = all.substr(0, all.size() / 2);
  std::string_view second = all.substr(all.size() / 2);
  if (!WriteAll(fd, first)) {
    close(fd);
    return IoError("cannot append to", path);
  }
  crash.Maybe(CrashPhase::kMid);
  if (!WriteAll(fd, second)) {
    close(fd);
    return IoError("cannot append to", path);
  }
  crash.Maybe(CrashPhase::kCommit);
  if (fsync(fd) != 0) {
    close(fd);
    return IoError("cannot fsync", path);
  }
  if (close(fd) != 0) return IoError("cannot close", path);
  return Status::Ok();
}

Status MakeDirectories(const std::string& path) {
  if (path.empty()) return Status::Ok();
  std::string prefix;
  size_t start = 0;
  if (path[0] == '/') prefix = "/";
  while (start < path.size()) {
    size_t slash = path.find('/', start);
    if (slash == std::string::npos) slash = path.size();
    if (slash > start) {
      prefix.append(path, start, slash - start);
      if (mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        return IoError("cannot create directory", prefix);
      }
      prefix += '/';
    }
    start = slash + 1;
  }
  return Status::Ok();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(Cat("cannot open '", path, "'"));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace tgdkit
