// Unified resource governance for the semi-decision engines.
//
// Every engine in this library — the chase (Theorems 5.1/5.2: a
// semi-decision procedure that may legitimately run forever), the
// second-order model-checking search (NP/NEXPTIME/PSPACE, Section 6),
// the homomorphism/core machinery (NP-hard) and the brute-force oracles —
// can exhaust time or memory on perfectly valid input. This header
// provides the one shared mechanism they all poll:
//
//  * ExecutionBudget — a declarative budget: wall-clock deadline, byte
//    budget, step/branch cap, and a cooperative CancellationToken.
//  * ResourceGovernor — the cheap poll-based guard an engine drives. The
//    fast path is a counter increment; deadline/memory/cancellation are
//    re-checked every kCheckInterval steps.
//  * StopReason — the structured verdict. It subsumes the chase's old
//    ChaseStop enum and the model checker's budget_exceeded flag, so a
//    partial result is always tagged with *why* it is partial.
//
// Engines never throw or abort on exhaustion: they stop cleanly, keep the
// partial result computed so far, and report the StopReason (surfaced as
// Status::ResourceExhausted at API boundaries).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"

namespace tgdkit {

/// Why an engine run ended. `kFixpoint` is the natural completion of the
/// engine's work (chase fixpoint, exhaustive search finished); everything
/// else is a resource stop and the produced result is partial.
enum class StopReason : uint8_t {
  kFixpoint = 0,  // natural completion; the result is total
  kRoundLimit,    // chase round cap
  kFactLimit,     // chase fact cap
  kDepthLimit,    // Skolem-term nesting cap
  kStepLimit,     // generic step/branch/trigger cap
  kDeadline,      // wall-clock deadline passed
  kMemoryLimit,   // byte budget exceeded
  kCancelled,     // cooperative cancellation requested
};

/// Legacy name: the chase historically had its own stop enum; it is now
/// the shared StopReason (`ChaseStop::kFixpoint` etc. keep compiling).
using ChaseStop = StopReason;

/// Renders a stop reason for logs and experiment output, e.g. "deadline".
const char* ToString(StopReason stop);

/// True for every reason except kFixpoint.
bool IsResourceStop(StopReason stop);

/// Machine-readable Status for an engine outcome: Ok for kFixpoint,
/// Status::ResourceExhausted("<what> stopped by <reason>") otherwise.
Status StopReasonToStatus(StopReason stop, const std::string& what);

/// Cooperative cancellation flag, shared by copy. Cancel() is a relaxed
/// atomic store: safe to call from another thread or from a signal
/// handler (no allocation, no locks).
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  void Reset() { flag_->store(false, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Declarative resource budget. Zero means "unlimited" for every numeric
/// field; the cancellation token is always live.
struct ExecutionBudget {
  /// Steps are engine-defined units of work: chase triggers, matcher row
  /// probes, search branches, oracle configurations.
  uint64_t max_steps = 0;
  /// Wall-clock deadline in milliseconds, measured from governor start.
  uint64_t deadline_ms = 0;
  /// Byte budget over the governor's registered memory sources plus any
  /// directly charged bytes.
  uint64_t max_memory_bytes = 0;
  CancellationToken cancel;

  bool IsUnlimited() const {
    return max_steps == 0 && deadline_ms == 0 && max_memory_bytes == 0;
  }
};

/// Poll-based guard enforcing an ExecutionBudget.
///
/// Usage: construct from a budget, register the memory-bearing structures
/// (TermArena, Instance, search tables) as byte sources, then call Poll()
/// once per unit of work. Poll() returns false exactly once the budget is
/// exhausted; after that the governor stays exhausted and the engine
/// should unwind, keeping its partial result.
///
/// Engines may also record their own domain-specific stops (round/fact/
/// depth caps) via MarkExhausted so one StopReason covers both worlds.
class ResourceGovernor {
 public:
  /// An unlimited governor: Poll() only ever counts steps.
  ResourceGovernor() : ResourceGovernor(ExecutionBudget{}) {}

  explicit ResourceGovernor(const ExecutionBudget& budget);

  /// Registers a byte source, sampled on the slow path. The callable must
  /// outlive the governor.
  void AddMemorySource(std::function<uint64_t()> bytes);

  /// Direct byte accounting for allocations with no samplable owner.
  void ChargeBytes(uint64_t bytes) { charged_bytes_ += bytes; }

  /// Counts one step. Returns true while the budget holds. O(1) except
  /// every kCheckInterval-th call, which samples the clock and memory.
  bool Poll() {
    if (exhausted_) return false;
    ++steps_;
    if (steps_ < next_check_) return true;
    return SlowPathCheck();
  }

  /// Counts `n` steps at once (batch work such as a flushed trigger).
  bool PollN(uint64_t n) {
    if (exhausted_) return false;
    steps_ += n;
    if (steps_ < next_check_) return true;
    return SlowPathCheck();
  }

  /// Forces an immediate deadline/memory/cancellation check.
  bool CheckNow() { return !exhausted_ && SlowPathCheck(); }

  /// Records an engine-specific stop (round/fact/depth limit). The first
  /// recorded reason wins; later calls are ignored.
  void MarkExhausted(StopReason reason);

  /// Checkpoint/resume support: seeds the governor with the consumption a
  /// restored snapshot already paid for. Prior steps/bytes appear in
  /// total_steps()/total_charged_bytes() (telemetry) but are NOT charged
  /// against this governor's max_steps/max_memory budget — a resumed run
  /// gets the full budget it was launched with, not the remainder of a
  /// budget from a previous process.
  void RestorePriorConsumption(uint64_t steps, uint64_t charged_bytes) {
    prior_steps_ = steps;
    prior_charged_bytes_ = charged_bytes;
  }

  /// Registers a periodic checkpoint hook, invoked from the slow path
  /// (every kCheckInterval steps) once at least `every_steps` steps or
  /// `every_ms` milliseconds have passed since the previous invocation.
  /// Zero means "no constraint" for either field; with both zero the hook
  /// fires on every slow-path check. The hook must not re-enter Poll().
  void SetCheckpointHook(uint64_t every_steps, uint64_t every_ms,
                         std::function<void()> hook);

  /// Registers a memory-pressure hook: when a slow-path sample finds the
  /// byte budget exceeded, the handler runs first (an out-of-core store
  /// spills and evicts segments here), the sources are resampled, and the
  /// run only stops with kMemoryLimit if it is STILL over budget — graceful
  /// degradation before ResourceExhausted. The handler is called from the
  /// polling thread at a serial point and must not re-enter Poll().
  void SetPressureHandler(std::function<void(uint64_t target_bytes)> handler) {
    pressure_handler_ = std::move(handler);
  }

  bool exhausted() const { return exhausted_; }

  /// kFixpoint while running / completed; the stop reason once exhausted.
  StopReason reason() const { return reason_; }

  /// Steps consumed by THIS governor (excludes restored prior steps —
  /// budget limits apply to this count).
  uint64_t steps() const { return steps_; }
  /// Lifetime steps across resumes: restored prior consumption plus this
  /// governor's own. This is the number engines should report.
  uint64_t total_steps() const { return prior_steps_ + steps_; }
  uint64_t prior_steps() const { return prior_steps_; }
  /// Bytes at the last slow-path sample (sources + charged).
  uint64_t memory_bytes() const { return observed_bytes_; }
  /// Directly charged bytes (ChargeBytes), excluding prior consumption.
  uint64_t charged_bytes() const { return charged_bytes_; }
  /// Lifetime charged bytes across resumes.
  uint64_t total_charged_bytes() const {
    return prior_charged_bytes_ + charged_bytes_;
  }
  /// Milliseconds since the governor was constructed.
  double elapsed_ms() const;

  /// Status form of the current verdict: Ok unless exhausted.
  Status ToStatus(const std::string& what) const {
    return StopReasonToStatus(reason_, what);
  }

  /// How many Poll() calls run on the fast path between full checks.
  /// Small enough that a 200 ms deadline stops within a few ms on the
  /// workloads in this repo; large enough to keep Poll() out of profiles.
  static constexpr uint64_t kCheckInterval = 1024;

 private:
  bool SlowPathCheck();

  ExecutionBudget budget_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::function<uint64_t()>> memory_sources_;
  uint64_t charged_bytes_ = 0;
  uint64_t observed_bytes_ = 0;
  uint64_t steps_ = 0;
  uint64_t next_check_ = kCheckInterval;
  bool exhausted_ = false;
  StopReason reason_ = StopReason::kFixpoint;
  // Consumption restored from a snapshot: reported, never re-charged.
  uint64_t prior_steps_ = 0;
  uint64_t prior_charged_bytes_ = 0;
  // Memory-pressure relief hook (slow-path driven; see SetPressureHandler).
  std::function<void(uint64_t)> pressure_handler_;
  // Periodic checkpoint hook (slow-path driven).
  std::function<void()> checkpoint_hook_;
  uint64_t checkpoint_every_steps_ = 0;
  uint64_t checkpoint_every_ms_ = 0;
  uint64_t last_checkpoint_steps_ = 0;
  double last_checkpoint_ms_ = 0;
};

}  // namespace tgdkit
