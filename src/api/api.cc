#include "api/api.h"

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "analyze/lint.h"
#include "base/rng.h"
#include "base/strings.h"
#include "chase/chase.h"
#include "snapshot/snapshot.h"
#include "classify/criteria.h"
#include "classify/dot.h"
#include "dep/skolem.h"
#include "dep/syntactic.h"
#include "mc/model_check.h"
#include "exchange/exchange.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzz.h"
#include "fuzz/shrink.h"
#include "parse/parser.h"
#include "query/query.h"
#include "supervise/manifest.h"
#include "supervise/supervisor.h"
#include "transform/composition.h"
#include "transform/nested.h"

namespace tgdkit {

namespace {

constexpr const char* kUsage =
    "usage: tgdkit COMMAND ARGS...\n"
    "  classify  DEPS                 Figure 1 + Figure 2 membership\n"
    "                                 (+ one '# witness:' line per\n"
    "                                 failed Figure 2 criterion, + a\n"
    "                                 '# complexity:' chase tier line)\n"
    "  lint      DEPS                 static analysis diagnostics\n"
    "                                 (--format=text|json|sarif,\n"
    "                                 --fail-on=note|warning|error)\n"
    "  chase     DEPS INSTANCE        chase to fixpoint/budget\n"
    "  check     DEPS INSTANCE        model-check each dependency\n"
    "  certain   DEPS INSTANCE QUERY  certain answers to a query\n"
    "  normalize DEPS                 nested-to-so / nested-to-henkin\n"
    "  dot       DEPS                 GraphViz position/quantifier/Hasse\n"
    "                                 graphs\n"
    "  explain   DEPS INSTANCE        chase + provenance of every null\n"
    "  compose   DEPS12 DEPS23 [...]  compose s-t tgd mappings -> SO tgd\n"
    "  solve     DEPS INSTANCE        data exchange: universal + core\n"
    "                                 solution (target = head relations)\n"
    "  batch     MANIFEST             supervise a task manifest with\n"
    "                                 fault-isolated workers, retries and\n"
    "                                 a durable run ledger (docs/BATCH.md)\n"
    "  serve     [--socket PATH]      resident reasoning service: line-\n"
    "                                 JSON requests over a Unix/TCP\n"
    "                                 socket, warm caches, admission\n"
    "                                 control and graceful drain\n"
    "                                 (docs/SERVE.md)\n"
    "  fuzz      [--seeds N]          adversarial chaos fuzzing: per-seed\n"
    "                                 scenario + fault schedule, invariant\n"
    "                                 cross-checks, delta-debugging\n"
    "                                 shrinking, reproducer corpus;\n"
    "                                 --replay FILE|DIR re-runs\n"
    "                                 reproducers as a regression gate\n"
    "                                 (docs/FUZZING.md)\n"
    "exit codes (docs/FORMAT.md): 0 ok, 1 usage, 2 input, 3 negative\n"
    "verdict, 4 resource-stopped (partial result), 5 internal\n"
    "options: --max-rounds N  --max-facts N  --max-depth N\n"
    "         --max-steps N  --deadline-ms N  --max-memory-mb N\n"
    "         --seed N\n"
    "         --auto-budget  fill unset --max-steps/--deadline-ms from\n"
    "                        the structural chase-complexity tier\n"
    "                        (docs/BUDGETS.md); the choice is echoed on\n"
    "                        the '# status:' line\n"
    "         --threads N   chase staging lanes (0 = all hardware\n"
    "                       threads); output is byte-identical for every\n"
    "                       N (see docs/PARALLELISM.md)\n"
    "chase checkpointing (see docs/CHECKPOINTS.md):\n"
    "         --checkpoint PATH            write crash-safe snapshots\n"
    "         --checkpoint-every-steps N   snapshot cadence (steps)\n"
    "         --checkpoint-every-ms N      snapshot cadence (wall clock)\n"
    "         --resume PATH                continue from a snapshot\n"
    "                                      (no DEPS/INSTANCE arguments)\n"
    "out-of-core storage (see docs/STORAGE.md):\n"
    "         --spill-dir DIR        spill sealed fact segments to DIR\n"
    "                                under memory pressure instead of\n"
    "                                stopping with exit 4; output stays\n"
    "                                byte-identical to the in-core run\n"
    "         --spill-segment-kb N   segment payload size (default 256)\n"
    "batch supervision (see docs/BATCH.md):\n"
    "         --run-dir DIR      artifacts + checkpoints (MANIFEST.runs)\n"
    "         --ledger PATH      run ledger (RUN_DIR/ledger.jsonl)\n"
    "         --worker PATH      fork+exec this binary per task instead\n"
    "                            of in-process forks\n"
    "         --max-parallel N  --retries N  --backoff-ms N\n"
    "         --backoff-cap-ms N  --grace-ms N  --task-deadline-ms N\n"
    "         --escalate-factor N  --accept-resource\n"
    "fuzzing (see docs/FUZZING.md):\n"
    "         --seeds N  --seed-start N   campaign size and first seed\n"
    "         --shape NAME       one family only: skolem-tower,\n"
    "                            pcp-near-divergent, high-fanout-join,\n"
    "                            wide-guard, triangular-frontier\n"
    "                            (default: rotate over all)\n"
    "         --no-faults        skip fork-based crash/ENOSPC injection\n"
    "         --corpus-dir DIR   write shrunk reproducers here\n"
    "         --scratch-dir DIR  workspace (default: a temp dir)\n"
    "         --shrink-rounds N  shrinker re-execution cap\n"
    "         --inject-bug NAME  seed a known defect (tamper-witness,\n"
    "                            torn-checkpoint) to exercise the\n"
    "                            catch -> shrink -> reproduce loop\n"
    "         --replay FILE|DIR  re-run reproducers; exit 3 when any\n"
    "                            still fails\n";

struct CliContext {
  /// The request's execution context (cancellation, virtual files).
  const ApiOptions* api = nullptr;
  Vocabulary vocab;
  TermArena arena;
  ChaseLimits limits;
  uint64_t seed = 0;
  std::string checkpoint_path;
  uint64_t checkpoint_every_steps = 0;
  uint64_t checkpoint_every_ms = 0;
  std::string resume_path;
  std::string lint_format = "text";
  LintSeverity fail_on = LintSeverity::kError;
  bool auto_budget = false;
  /// Extra tokens for '# status:' lines (e.g. the --auto-budget echo).
  std::string status_suffix;
  std::vector<std::string> positional;
};

std::optional<std::string> ReadFile(const CliContext& ctx,
                                    const std::string& path,
                                    std::ostream& err) {
  if (ctx.api != nullptr && ctx.api->resolver) {
    std::optional<std::string> virtual_file = ctx.api->resolver(path);
    if (virtual_file.has_value()) return virtual_file;
  }
  std::ifstream in(path);
  if (!in) {
    err << "tgdkit: cannot open '" << path << "'\n";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parses options into `ctx`; returns false on a malformed option.
bool ParseOptions(const std::vector<std::string>& args, CliContext* ctx,
                  std::ostream& err) {
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto numeric = [&](uint64_t* slot) {
      if (i + 1 >= args.size()) {
        err << "tgdkit: missing value for " << arg << "\n";
        return false;
      }
      const std::string& value = args[++i];
      // Validate by hand: std::stoull throws on garbage and silently
      // accepts trailing junk; option values must be pure digits.
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        err << "tgdkit: invalid value '" << value << "' for " << arg
            << "\n";
        return false;
      }
      errno = 0;
      char* end = nullptr;
      uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
      if (errno == ERANGE) {
        err << "tgdkit: value '" << value << "' for " << arg
            << " is out of range\n";
        return false;
      }
      *slot = parsed;
      return true;
    };
    auto pathval = [&](std::string* slot) {
      if (i + 1 >= args.size()) {
        err << "tgdkit: missing value for " << arg << "\n";
        return false;
      }
      *slot = args[++i];
      if (slot->empty()) {
        err << "tgdkit: empty value for " << arg << "\n";
        return false;
      }
      return true;
    };
    if (arg == "--max-rounds") {
      if (!numeric(&ctx->limits.max_rounds)) return false;
    } else if (arg == "--max-facts") {
      if (!numeric(&ctx->limits.max_facts)) return false;
    } else if (arg == "--max-depth") {
      uint64_t depth = 0;
      if (!numeric(&depth)) return false;
      ctx->limits.max_term_depth = static_cast<uint32_t>(depth);
    } else if (arg == "--max-steps") {
      if (!numeric(&ctx->limits.budget.max_steps)) return false;
    } else if (arg == "--deadline-ms") {
      if (!numeric(&ctx->limits.budget.deadline_ms)) return false;
    } else if (arg == "--max-memory-mb") {
      uint64_t mb = 0;
      if (!numeric(&mb)) return false;
      ctx->limits.budget.max_memory_bytes = mb * 1024 * 1024;
    } else if (arg == "--seed") {
      if (!numeric(&ctx->seed)) return false;
    } else if (arg == "--auto-budget") {
      ctx->auto_budget = true;
    } else if (arg == "--threads") {
      uint64_t threads = 0;
      if (!numeric(&threads)) return false;
      if (threads > 256) {
        err << "tgdkit: --threads must be between 0 and 256\n";
        return false;
      }
      ctx->limits.threads = static_cast<uint32_t>(threads);
    } else if (arg == "--checkpoint") {
      if (!pathval(&ctx->checkpoint_path)) return false;
    } else if (arg == "--checkpoint-every-steps") {
      if (!numeric(&ctx->checkpoint_every_steps)) return false;
    } else if (arg == "--checkpoint-every-ms") {
      if (!numeric(&ctx->checkpoint_every_ms)) return false;
    } else if (arg == "--resume") {
      if (!pathval(&ctx->resume_path)) return false;
    } else if (arg == "--spill-dir") {
      if (!pathval(&ctx->limits.spill_dir)) return false;
    } else if (arg == "--spill-segment-kb") {
      if (!numeric(&ctx->limits.spill_segment_kb)) return false;
      if (ctx->limits.spill_segment_kb == 0) {
        err << "tgdkit: --spill-segment-kb must be positive\n";
        return false;
      }
    } else if (arg == "--format" || arg.rfind("--format=", 0) == 0 ||
               arg == "--fail-on" || arg.rfind("--fail-on=", 0) == 0) {
      // Lint options take "--opt value" or "--opt=value".
      std::string name = arg, value;
      if (auto eq = arg.find('='); eq != std::string::npos) {
        name = arg.substr(0, eq);
        value = arg.substr(eq + 1);
      } else if (i + 1 < args.size()) {
        value = args[++i];
      } else {
        err << "tgdkit: missing value for " << name << "\n";
        return false;
      }
      if (name == "--format") {
        if (value != "text" && value != "json" && value != "sarif") {
          err << "tgdkit: --format must be text, json or sarif\n";
          return false;
        }
        ctx->lint_format = value;
      } else if (!ParseLintSeverity(value, &ctx->fail_on)) {
        err << "tgdkit: --fail-on must be note, warning or error\n";
        return false;
      }
    } else if (arg.rfind("--", 0) == 0) {
      err << "tgdkit: unknown option " << arg << "\n";
      return false;
    } else {
      ctx->positional.push_back(arg);
    }
  }
  return true;
}

/// Loads and parses a dependency program.
std::optional<DependencyProgram> LoadDependencies(CliContext* ctx,
                                                  const std::string& path,
                                                  std::ostream& err) {
  std::optional<std::string> text = ReadFile(*ctx, path, err);
  if (!text.has_value()) return std::nullopt;
  Parser parser(&ctx->arena, &ctx->vocab);
  Result<DependencyProgram> program = parser.ParseDependencies(*text);
  if (!program.ok()) {
    err << "tgdkit: " << path << ": " << program.status().ToString() << "\n";
    return std::nullopt;
  }
  return std::move(*program);
}

std::optional<Instance> LoadInstance(CliContext* ctx,
                                     const std::string& path,
                                     std::ostream& err) {
  std::optional<std::string> text = ReadFile(*ctx, path, err);
  if (!text.has_value()) return std::nullopt;
  Parser parser(&ctx->arena, &ctx->vocab);
  Instance instance(&ctx->vocab);
  Status status = parser.ParseInstanceInto(*text, &instance);
  if (!status.ok()) {
    err << "tgdkit: " << path << ": " << status.ToString() << "\n";
    return std::nullopt;
  }
  return instance;
}

/// Skolemizes all dependencies of a program into one rule set.
SoTgd ProgramRules(CliContext* ctx, const DependencyProgram& program) {
  std::vector<SoTgd> pieces;
  std::vector<Tgd> tgds = program.Tgds();
  if (!tgds.empty()) {
    pieces.push_back(TgdsToSo(&ctx->arena, &ctx->vocab, tgds));
  }
  std::vector<HenkinTgd> henkins = program.Henkins();
  if (!henkins.empty()) {
    pieces.push_back(HenkinsToSo(&ctx->arena, &ctx->vocab, henkins));
  }
  for (const NestedTgd& nested : program.Nesteds()) {
    pieces.push_back(NestedToSo(&ctx->arena, &ctx->vocab, nested));
  }
  for (const SoTgd& so : program.Sos()) {
    pieces.push_back(so);
  }
  return MergeSo(pieces);
}

/// --auto-budget: fills the still-unset step/deadline budgets from the
/// structural chase-complexity tier (docs/BUDGETS.md) and records the
/// '# status:' echo token. Explicit flags always win — only zero-valued
/// budget fields are filled — and without the flag this is a no-op, so
/// default output stays byte-identical.
void ApplyAutoBudget(CliContext* ctx, const SoTgd& rules) {
  if (!ctx->auto_budget) return;
  ComplexityTier tier = ChaseComplexityTier(ctx->arena, rules);
  uint64_t steps = 0, deadline_ms = 0;
  switch (tier) {
    case ComplexityTier::kPolynomial: {
      // Terminating by construction: scale the step budget with the
      // proven null-nesting rank and allow a generous deadline.
      uint64_t rank = AnalyzeSo(ctx->arena, rules).complexity.rank;
      steps = (rank + 1) * 2000000;
      deadline_ms = 120000;
      break;
    }
    case ComplexityTier::kExponential:
      steps = 1000000;
      deadline_ms = 30000;
      break;
    case ComplexityTier::kNonElementary:
      steps = 250000;
      deadline_ms = 10000;
      break;
  }
  if (ctx->limits.budget.max_steps == 0) {
    ctx->limits.budget.max_steps = steps;
  }
  if (ctx->limits.budget.deadline_ms == 0) {
    ctx->limits.budget.deadline_ms = deadline_ms;
  }
  ctx->status_suffix = Cat(" auto_budget=", ComplexityTierName(tier),
                           ":max-steps=", ctx->limits.budget.max_steps,
                           ":deadline-ms=", ctx->limits.budget.deadline_ms);
}

std::string LabelOf(const ParsedDependency& dep, size_t index) {
  return dep.label.empty() ? Cat("#", index + 1) : dep.label;
}

const char* KindName(ParsedDependency::Kind kind) {
  switch (kind) {
    case ParsedDependency::Kind::kTgd:
      return "tgd";
    case ParsedDependency::Kind::kSo:
      return "so-tgd";
    case ParsedDependency::Kind::kNested:
      return "nested-tgd";
    case ParsedDependency::Kind::kHenkin:
      return "henkin-tgd";
  }
  return "?";
}

/// One dependency's Skolemized form (for classify/check).
SoTgd SkolemizeOne(CliContext* ctx, const ParsedDependency& dep) {
  switch (dep.kind) {
    case ParsedDependency::Kind::kTgd:
      return TgdToSo(&ctx->arena, &ctx->vocab, dep.tgd);
    case ParsedDependency::Kind::kSo:
      return dep.so;
    case ParsedDependency::Kind::kNested:
      return NestedToSo(&ctx->arena, &ctx->vocab, dep.nested);
    case ParsedDependency::Kind::kHenkin:
      return HenkinToSo(&ctx->arena, &ctx->vocab, dep.henkin);
  }
  return {};
}

int CmdClassify(CliContext* ctx, std::ostream& out, std::ostream& err) {
  if (ctx->positional.size() != 1) {
    err << kUsage;
    return kExitUsage;
  }
  auto program = LoadDependencies(ctx, ctx->positional[0], err);
  if (!program.has_value()) return kExitInput;
  for (size_t i = 0; i < program->dependencies.size(); ++i) {
    const ParsedDependency& dep = program->dependencies[i];
    SoTgd so = SkolemizeOne(ctx, dep);
    out << LabelOf(dep, i) << " (" << KindName(dep.kind) << ")\n";
    out << "  figure-1: " << ToString(ClassifyFigure1(ctx->arena, so))
        << "\n";
    // Per-statement analysis, labeled so witnesses read naturally. The
    // membership row itself stays byte-identical to the pre-analyzer
    // output; witnesses ride along as '#'-prefixed extra lines.
    std::vector<AnalyzedRule> rules;
    for (uint32_t j = 0; j < so.parts.size(); ++j) {
      AnalyzedRule rule;
      rule.part = so.parts[j];
      rule.dep_index = static_cast<uint32_t>(i);
      rule.part_index = j;
      rule.label = LabelOf(dep, i);
      rule.line = dep.line;
      rule.column = dep.column;
      rules.push_back(std::move(rule));
    }
    ProgramAnalysis analysis = AnalyzeRules(ctx->arena, std::move(rules));
    out << "  figure-2: " << ToString(analysis.Membership()) << "\n";
    for (const CriterionVerdict& verdict : analysis.verdicts) {
      if (verdict.holds) continue;
      out << "  # witness: not " << CriterionName(verdict.criterion) << ": "
          << WitnessToString(ctx->arena, ctx->vocab, analysis, verdict)
          << "\n";
    }
    out << "  # complexity: " << ComplexityToString(ctx->vocab, analysis)
        << "\n";
  }
  // Whole-program termination check via the critical instance.
  SoTgd rules = ProgramRules(ctx, *program);
  std::set<RelationId> schema;
  for (const SoPart& part : rules.parts) {
    for (const Atom& atom : part.body) schema.insert(atom.relation);
    for (const Atom& atom : part.head) schema.insert(atom.relation);
  }
  std::vector<RelationId> relations(schema.begin(), schema.end());
  ChaseLimits limits = ctx->limits;
  limits.max_term_depth = std::min<uint32_t>(limits.max_term_depth, 32);
  limits.max_facts = std::min<uint64_t>(limits.max_facts, 200000);
  CriticalInstanceReport report = TerminatesOnCriticalInstance(
      &ctx->arena, &ctx->vocab, rules, relations, limits);
  out << "chase termination (critical instance): "
      << (report.terminated ? "PROVEN for all inputs"
                            : "no fixpoint within budget")
      << " (" << report.rounds << " rounds, " << report.facts
      << " facts)\n";
  // Structural bound on the chase cost for the merged program
  // (Hanisch–Krötzsch-style tiering over generating components).
  out << "chase complexity (structural): "
      << ComplexityToString(ctx->vocab, AnalyzeSo(ctx->arena, rules)) << "\n";
  // The termination probe is expected to hit its budget on
  // non-terminating programs; its verdict is in-band, not an exit code.
  return kExitOk;
}

/// Runs a (fresh or resumed) chase engine to completion, writing periodic
/// and final snapshots when --checkpoint is set, and prints the result.
/// The final snapshot is written for ANY stop reason — fixpoint included —
/// so an interrupted pipeline can always pick up from the last state.
int RunChaseEngine(CliContext* ctx, ChaseEngine* engine,
                   const Vocabulary& vocab, const TermArena& arena,
                   const SoTgd& rules, uint64_t seed, Rng* rng,
                   std::ostream& out, std::ostream& err) {
  Status checkpoint_status;  // first failure, sticky
  auto save = [&](const ChaseEngine& e) {
    Status status =
        SaveChaseSnapshot(ctx->checkpoint_path, vocab, arena, rules,
                          e.CaptureState(), seed, rng->state());
    if (!status.ok()) {
      // Report once; the run itself continues (a full disk should not
      // kill an hour-long chase, it just stops being checkpointed).
      if (checkpoint_status.ok()) {
        err << "tgdkit: checkpoint: " << status.ToString() << "\n";
        checkpoint_status = std::move(status);
      }
    }
  };
  if (!ctx->checkpoint_path.empty()) {
    engine->SetCheckpointHook(ctx->checkpoint_every_steps,
                              ctx->checkpoint_every_ms, save);
  }
  engine->Run();
  if (!ctx->checkpoint_path.empty()) save(*engine);
  out << "# chase " << ToString(engine->stop_reason()) << " after "
      << engine->rounds() << " rounds, " << engine->facts_created()
      << " facts created\n";
  out << "# status: "
      << StopReasonToStatus(engine->stop_reason(), "chase").ToString()
      << " seed=" << seed << " threads=" << engine->threads()
      << ctx->status_suffix;
  if (engine->instance().spill_enabled()) {
    // Only the content-derived fields go to stdout: they are identical
    // after a kill-and-resume, so stdout stays byte-reproducible. The
    // process-local I/O counters are diagnostics and go to stderr.
    SpillStats spill = engine->instance().spill_stats();
    out << " spill_segments=" << spill.sealed_segments
        << " spill_bytes=" << spill.spilled_bytes;
    err << "# spill: faults=" << spill.faults
        << " evictions=" << spill.evictions
        << " segment_writes=" << spill.segment_writes << "\n";
  }
  out << "\n";
  out << engine->instance().ToString();
  // A failed checkpoint outranks the engine verdict: the caller asked for
  // durability and did not get it. Disk exhaustion maps to the resource
  // exit so the batch supervisor can retry/escalate instead of
  // quarantining the task as broken.
  if (!checkpoint_status.ok()) {
    return ExitCodeForStatus(checkpoint_status) == kExitResource
               ? kExitResource
               : kExitInternal;
  }
  return ExitCodeForStop(engine->stop_reason());
}

int CmdChaseResume(CliContext* ctx, std::ostream& out, std::ostream& err) {
  if (!ctx->positional.empty()) {
    err << "tgdkit: --resume is self-contained; no DEPS/INSTANCE "
           "arguments expected\n";
    return kExitUsage;
  }
  Result<ChaseSnapshot> loaded =
      LoadChaseSnapshot(ctx->resume_path, ctx->limits.spill_dir);
  if (!loaded.ok()) {
    err << "tgdkit: " << ctx->resume_path << ": "
        << loaded.status().ToString() << "\n";
    return kExitInput;
  }
  ChaseSnapshot snap = std::move(*loaded);
  ApplyAutoBudget(ctx, snap.rules);
  ChaseEngine engine(snap.arena.get(), snap.vocab.get(), snap.rules,
                     std::move(*snap.state), ctx->limits);
  Rng rng(snap.seed);
  rng.set_state(snap.rng_state);
  return RunChaseEngine(ctx, &engine, *snap.vocab, *snap.arena, snap.rules,
                        snap.seed, &rng, out, err);
}

int CmdChase(CliContext* ctx, std::ostream& out, std::ostream& err) {
  if (!ctx->resume_path.empty()) return CmdChaseResume(ctx, out, err);
  if (ctx->positional.size() != 2) {
    err << kUsage;
    return kExitUsage;
  }
  auto program = LoadDependencies(ctx, ctx->positional[0], err);
  if (!program.has_value()) return kExitInput;
  auto instance = LoadInstance(ctx, ctx->positional[1], err);
  if (!instance.has_value()) return kExitInput;
  SoTgd rules = ProgramRules(ctx, *program);
  ApplyAutoBudget(ctx, rules);
  ChaseEngine engine(&ctx->arena, &ctx->vocab, rules, *instance,
                     ctx->limits);
  Rng rng(ctx->seed);
  return RunChaseEngine(ctx, &engine, ctx->vocab, ctx->arena, rules,
                        ctx->seed, &rng, out, err);
}

int CmdCheck(CliContext* ctx, std::ostream& out, std::ostream& err) {
  if (ctx->positional.size() != 2) {
    err << kUsage;
    return kExitUsage;
  }
  auto program = LoadDependencies(ctx, ctx->positional[0], err);
  if (!program.has_value()) return kExitInput;
  auto instance = LoadInstance(ctx, ctx->positional[1], err);
  if (!instance.has_value()) return kExitInput;
  bool violated = false;
  std::optional<StopReason> unknown;
  McOptions mc_options;
  mc_options.budget = ctx->limits.budget;
  for (size_t i = 0; i < program->dependencies.size(); ++i) {
    const ParsedDependency& dep = program->dependencies[i];
    std::string verdict;
    switch (dep.kind) {
      case ParsedDependency::Kind::kTgd: {
        ResourceGovernor governor(ctx->limits.budget);
        auto violation =
            FindTgdViolation(ctx->arena, *instance, dep.tgd, &governor);
        if (governor.exhausted()) {
          unknown = governor.reason();
          verdict = Cat("UNKNOWN (", ToString(governor.reason()), ")");
        } else if (violation.has_value()) {
          verdict = Cat("VIOLATED at ",
                        violation->ToString(ctx->vocab, *instance));
        } else {
          verdict = "satisfied";
        }
        break;
      }
      case ParsedDependency::Kind::kNested: {
        ResourceGovernor governor(ctx->limits.budget);
        auto violation =
            FindNestedViolation(ctx->arena, *instance, dep.nested,
                                &governor);
        if (governor.exhausted()) {
          unknown = governor.reason();
          verdict = Cat("UNKNOWN (", ToString(governor.reason()), ")");
        } else if (violation.has_value()) {
          verdict = Cat("VIOLATED at ",
                        violation->ToString(ctx->vocab, *instance));
        } else {
          verdict = "satisfied";
        }
        break;
      }
      case ParsedDependency::Kind::kHenkin: {
        McResult result = CheckHenkin(&ctx->arena, &ctx->vocab, *instance,
                                      dep.henkin, mc_options);
        if (result.budget_exceeded) unknown = result.stop;
        verdict = result.budget_exceeded
                      ? Cat("UNKNOWN (", ToString(result.stop), ")")
                  : result.satisfied ? "satisfied"
                                     : "VIOLATED";
        break;
      }
      case ParsedDependency::Kind::kSo: {
        McResult result = CheckSo(ctx->arena, *instance, dep.so, mc_options);
        if (result.budget_exceeded) unknown = result.stop;
        verdict = result.budget_exceeded
                      ? Cat("UNKNOWN (", ToString(result.stop), ")")
                  : result.satisfied ? "satisfied"
                                     : "VIOLATED";
        break;
      }
    }
    violated |= verdict.rfind("VIOLATED", 0) == 0;
    out << LabelOf(dep, i) << " (" << KindName(dep.kind)
        << "): " << verdict << "\n";
  }
  // A definite violation outranks an UNKNOWN: the negative verdict stands
  // no matter how much budget a bigger run would get.
  if (violated) {
    out << "# status: OK\n";
    return kExitVerdict;
  }
  if (unknown.has_value()) {
    out << "# status: " << StopReasonToStatus(*unknown, "check").ToString()
        << "\n";
    return kExitResource;
  }
  out << "# status: OK\n";
  return kExitOk;
}

int CmdCertain(CliContext* ctx, std::ostream& out, std::ostream& err) {
  if (ctx->positional.size() != 3) {
    err << kUsage;
    return kExitUsage;
  }
  auto program = LoadDependencies(ctx, ctx->positional[0], err);
  if (!program.has_value()) return kExitInput;
  auto instance = LoadInstance(ctx, ctx->positional[1], err);
  if (!instance.has_value()) return kExitInput;
  Parser parser(&ctx->arena, &ctx->vocab);
  Result<ConjunctiveQuery> query = parser.ParseQuery(ctx->positional[2]);
  if (!query.ok()) {
    err << "tgdkit: query: " << query.status().ToString() << "\n";
    return kExitInput;
  }
  SoTgd rules = ProgramRules(ctx, *program);
  ApplyAutoBudget(ctx, rules);
  CertainAnswers answers = ComputeCertainAnswers(
      &ctx->arena, &ctx->vocab, rules, *instance, *query, ctx->limits);
  out << "# " << (answers.Complete() ? "complete" : "TRUNCATED")
      << " (chase " << answers.chase_rounds << " rounds)\n";
  out << "# status: "
      << StopReasonToStatus(answers.chase_stop, "certain").ToString()
      << ctx->status_suffix << "\n";
  if (query->IsBoolean()) {
    out << (answers.answers.empty() ? "false" : "true") << "\n";
  } else {
    for (const auto& row : answers.answers) {
      out << JoinMapped(row, ", ",
                        [&](Value v) { return instance->ValueToString(v); })
          << "\n";
    }
  }
  // Truncated answers are sound but incomplete: a resource exit so
  // pipelines (and the batch supervisor) can escalate budgets.
  return ExitCodeForStop(answers.chase_stop);
}

int CmdNormalize(CliContext* ctx, std::ostream& out, std::ostream& err) {
  if (ctx->positional.size() != 1) {
    err << kUsage;
    return kExitUsage;
  }
  auto program = LoadDependencies(ctx, ctx->positional[0], err);
  if (!program.has_value()) return kExitInput;
  for (size_t i = 0; i < program->dependencies.size(); ++i) {
    const ParsedDependency& dep = program->dependencies[i];
    if (dep.kind != ParsedDependency::Kind::kNested) continue;
    out << LabelOf(dep, i) << ":\n";
    SoTgd so = NestedToSo(&ctx->arena, &ctx->vocab, dep.nested);
    out << "  nested-to-so: " << ToString(ctx->arena, ctx->vocab, so)
        << "\n";
    bool overflow = false;
    std::vector<HenkinTgd> henkins = NestedToHenkin(
        &ctx->arena, &ctx->vocab, dep.nested, 1u << 12, &overflow);
    if (overflow) {
      out << "  nested-to-henkin: overflow ("
          << NestedToHenkinRuleCount(dep.nested) << " rules)\n";
      continue;
    }
    out << "  nested-to-henkin (" << henkins.size() << " rules):\n";
    for (const HenkinTgd& henkin : henkins) {
      out << "    " << ToString(ctx->arena, ctx->vocab, henkin) << "\n";
    }
  }
  return kExitOk;
}

int CmdExplain(CliContext* ctx, std::ostream& out, std::ostream& err) {
  if (ctx->positional.size() != 2) {
    err << kUsage;
    return kExitUsage;
  }
  auto program = LoadDependencies(ctx, ctx->positional[0], err);
  if (!program.has_value()) return kExitInput;
  auto instance = LoadInstance(ctx, ctx->positional[1], err);
  if (!instance.has_value()) return kExitInput;
  SoTgd rules = ProgramRules(ctx, *program);
  ApplyAutoBudget(ctx, rules);
  ChaseResult result =
      Chase(&ctx->arena, &ctx->vocab, rules, *instance, ctx->limits);
  out << "# chase " << ToString(result.stop_reason) << "; "
      << result.instance.num_nulls() << " nulls\n";
  out << "# status: "
      << StopReasonToStatus(result.stop_reason, "explain").ToString()
      << ctx->status_suffix << "\n";
  for (uint32_t i = 0; i < result.instance.num_nulls(); ++i) {
    Value null = Value::Null(i);
    out << result.instance.ValueToString(null) << " = "
        << result.ExplainValue(ctx->arena, ctx->vocab, null) << "\n";
  }
  return ExitCodeForStop(result.stop_reason);
}

int CmdCompose(CliContext* ctx, std::ostream& out, std::ostream& err) {
  if (ctx->positional.size() < 2) {
    err << kUsage;
    return kExitUsage;
  }
  std::vector<std::vector<Tgd>> chain;
  for (const std::string& path : ctx->positional) {
    auto program = LoadDependencies(ctx, path, err);
    if (!program.has_value()) return kExitInput;
    std::vector<Tgd> tgds = program->Tgds();
    if (tgds.empty()) {
      err << "tgdkit: " << path << ": composition needs plain tgds\n";
      return kExitInput;
    }
    chain.push_back(std::move(tgds));
  }
  Result<SoTgd> composed =
      chain.size() == 2
          ? ComposeMappings(&ctx->arena, &ctx->vocab, chain[0], chain[1])
          : ComposeChain(&ctx->arena, &ctx->vocab, chain);
  if (!composed.ok()) {
    err << "tgdkit: " << composed.status().ToString() << "\n";
    return kExitInput;
  }
  if (composed->parts.empty()) {
    out << "// empty composition: the second mapping never fires\n";
    return kExitOk;
  }
  out << ToString(ctx->arena, ctx->vocab, *composed) << " .\n";
  return kExitOk;
}

int CmdSolve(CliContext* ctx, std::ostream& out, std::ostream& err) {
  if (ctx->positional.size() != 2) {
    err << kUsage;
    return kExitUsage;
  }
  auto program = LoadDependencies(ctx, ctx->positional[0], err);
  if (!program.has_value()) return kExitInput;
  auto instance = LoadInstance(ctx, ctx->positional[1], err);
  if (!instance.has_value()) return kExitInput;
  SchemaMapping mapping;
  mapping.rules = ProgramRules(ctx, *program);
  // Infer the split: body relations are source, head relations target.
  for (const SoPart& part : mapping.rules.parts) {
    for (const Atom& atom : part.body) {
      mapping.source_relations.insert(atom.relation);
    }
    for (const Atom& atom : part.head) {
      mapping.target_relations.insert(atom.relation);
    }
  }
  Status status = ValidateSourceToTarget(mapping);
  if (!status.ok()) {
    err << "tgdkit: mapping is not source-to-target: "
        << status.ToString() << "\n";
    return kExitInput;
  }
  ExchangeResult result = Solve(&ctx->arena, &ctx->vocab, mapping,
                                *instance, ctx->limits);
  out << "# " << (result.IsUniversal() ? "universal" : "TRUNCATED")
      << " solution (" << result.solution.NumFacts() << " facts)\n";
  out << result.solution.ToString();
  Instance core = CoreSolution(&ctx->arena, &ctx->vocab, mapping, *instance,
                               ctx->limits);
  out << "# core solution (" << core.NumFacts() << " facts)\n";
  out << core.ToString();
  out << "# status: "
      << StopReasonToStatus(result.chase_stop, "solve").ToString() << "\n";
  return ExitCodeForStop(result.chase_stop);
}

int CmdLint(CliContext* ctx, std::ostream& out, std::ostream& err) {
  if (ctx->positional.size() != 1) {
    err << kUsage;
    return kExitUsage;
  }
  const std::string& path = ctx->positional[0];
  std::optional<std::string> text = ReadFile(*ctx, path, err);
  if (!text.has_value()) return kExitInput;
  Parser parser(&ctx->arena, &ctx->vocab);
  // Lenient parse: semantic validation failures become located lint
  // errors instead of aborting; only grammar errors stop the run.
  Result<DependencyProgram> program = parser.ParseDependenciesLenient(*text);
  if (!program.ok()) {
    err << "tgdkit: " << path << ": " << program.status().ToString() << "\n";
    return kExitInput;
  }
  LintReport report = LintProgram(&ctx->arena, &ctx->vocab, *program);
  if (ctx->lint_format == "json") {
    out << RenderLintJson(path, report);
  } else if (ctx->lint_format == "sarif") {
    out << RenderLintSarif(path, report);
  } else {
    out << RenderLintText(path, report);
  }
  // Findings are a negative verdict, not a usage error: exit 3 so the
  // batch supervisor records them as completed-with-verdict instead of
  // quarantining the task as misconfigured.
  return report.HasAtLeast(ctx->fail_on) ? kExitVerdict : kExitOk;
}

int CmdDot(CliContext* ctx, std::ostream& out, std::ostream& err) {
  if (ctx->positional.size() != 1) {
    err << kUsage;
    return kExitUsage;
  }
  auto program = LoadDependencies(ctx, ctx->positional[0], err);
  if (!program.has_value()) return kExitInput;
  SoTgd rules = ProgramRules(ctx, *program);
  out << "// position dependency graph (dashed = special edges)\n";
  out << PositionGraphDot(ctx->arena, ctx->vocab, rules);
  ProgramAnalysis analysis =
      AnalyzeProgram(&ctx->arena, &ctx->vocab, *program);
  out << "// analysis graph (edges labeled rule/variable; affected "
         "shaded, marked bold; witness cycle and unguarded triangle "
         "red)\n";
  out << AnalysisDot(ctx->vocab, analysis);
  out << "// Figure 2 Hasse diagram (members filled)\n";
  out << Figure2HasseDot(analysis.Membership());
  for (size_t i = 0; i < program->dependencies.size(); ++i) {
    const ParsedDependency& dep = program->dependencies[i];
    if (dep.kind == ParsedDependency::Kind::kHenkin) {
      out << "// quantifier order of " << LabelOf(dep, i) << "\n";
      out << QuantifierDot(ctx->vocab, dep.henkin.quantifier);
    } else if (dep.kind == ParsedDependency::Kind::kNested) {
      out << "// nesting tree of " << LabelOf(dep, i) << "\n";
      out << NestingTreeDot(ctx->arena, ctx->vocab, dep.nested);
    }
  }
  return kExitOk;
}

/// Hidden test command: a worker with scriptable misbehaviour, so the
/// batch supervisor's crash/timeout/escalation paths are testable
/// deterministically and without a real engine. Not in kUsage on purpose.
///
///   tgdkit selftest [--stdout-lines N] [--stderr-lines N] [--spin-ms N]
///                   [--ignore-term] [--die-signal N] [--die-exit N]
///
/// Order: print, optionally ignore SIGTERM, spin (checking cooperative
/// cancellation unless --ignore-term), then die as instructed.
int CmdSelftest(const std::vector<std::string>& args,
                const ApiOptions& api, std::ostream& out,
                std::ostream& err) {
  uint64_t stdout_lines = 0, stderr_lines = 0, spin_ms = 0;
  uint64_t die_signal = 0, die_exit = 0;
  bool has_die_exit = false, ignore_term = false;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto numeric = [&](uint64_t* slot) {
      if (i + 1 >= args.size()) {
        err << "tgdkit: missing value for " << arg << "\n";
        return false;
      }
      *slot = std::strtoull(args[++i].c_str(), nullptr, 10);
      return true;
    };
    if (arg == "--stdout-lines") {
      if (!numeric(&stdout_lines)) return kExitUsage;
    } else if (arg == "--stderr-lines") {
      if (!numeric(&stderr_lines)) return kExitUsage;
    } else if (arg == "--spin-ms") {
      if (!numeric(&spin_ms)) return kExitUsage;
    } else if (arg == "--die-signal") {
      if (!numeric(&die_signal)) return kExitUsage;
    } else if (arg == "--die-exit") {
      if (!numeric(&die_exit)) return kExitUsage;
      has_die_exit = true;
    } else if (arg == "--ignore-term") {
      ignore_term = true;
    } else {
      err << "tgdkit: selftest: unknown option " << arg << "\n";
      return kExitUsage;
    }
  }
  for (uint64_t i = 0; i < stdout_lines; ++i) {
    out << "selftest stdout line " << i << "\n";
  }
  for (uint64_t i = 0; i < stderr_lines; ++i) {
    err << "selftest stderr line " << i << "\n";
  }
  out.flush();
  err.flush();
  // Process-level dispositions are only touched when this process is
  // ours alone (a forked worker / the one-shot CLI). In a shared
  // process (the serve daemon) --ignore-term still means "do not poll
  // the cancellation token", which is the part hard-overrun tests need.
  if (ignore_term && !api.forbid_fork_workers) {
    std::signal(SIGTERM, SIG_IGN);
  }
  if (die_signal != 0 && api.forbid_fork_workers) {
    err << "tgdkit: selftest: --die-signal is unavailable in a shared "
           "process\n";
    return kExitUsage;
  }
  if (spin_ms > 0) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(spin_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (!ignore_term && api.cancel.cancelled()) {
        out << "# status: "
            << StopReasonToStatus(StopReason::kCancelled, "selftest")
                   .ToString()
            << "\n";
        return kExitResource;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  if (die_signal != 0) {
    out.flush();
    err.flush();
    std::raise(static_cast<int>(die_signal));
  }
  if (has_die_exit) return static_cast<int>(die_exit);
  out << "# status: OK\n";
  return kExitOk;
}

/// `tgdkit batch MANIFEST`: parses its own flag set (task argvs already
/// carry the engine options), merges CLI > manifest `batch` directives >
/// built-in defaults, and hands off to the supervisor.
int CmdBatch(const std::vector<std::string>& args, const ApiOptions& api,
             std::ostream& out, std::ostream& err) {
  SupervisorOptions options;
  SupervisorCliOverrides set;
  std::vector<std::string> positional;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto numeric = [&](uint64_t* slot, bool* explicit_flag) {
      if (i + 1 >= args.size()) {
        err << "tgdkit: missing value for " << arg << "\n";
        return false;
      }
      const std::string& value = args[++i];
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        err << "tgdkit: invalid value '" << value << "' for " << arg
            << "\n";
        return false;
      }
      *slot = std::strtoull(value.c_str(), nullptr, 10);
      if (explicit_flag != nullptr) *explicit_flag = true;
      return true;
    };
    auto pathval = [&](std::string* slot) {
      if (i + 1 >= args.size()) {
        err << "tgdkit: missing value for " << arg << "\n";
        return false;
      }
      *slot = args[++i];
      return !slot->empty();
    };
    if (arg == "--run-dir") {
      if (!pathval(&options.run_dir)) return kExitUsage;
    } else if (arg == "--ledger") {
      if (!pathval(&options.ledger_path)) return kExitUsage;
    } else if (arg == "--worker") {
      if (!pathval(&options.worker_binary)) return kExitUsage;
    } else if (arg == "--max-parallel") {
      if (!numeric(&options.max_parallel, &set.max_parallel)) {
        return kExitUsage;
      }
    } else if (arg == "--retries") {
      if (!numeric(&options.retries, &set.retries)) return kExitUsage;
    } else if (arg == "--backoff-ms") {
      if (!numeric(&options.backoff_ms, &set.backoff_ms)) return kExitUsage;
    } else if (arg == "--backoff-cap-ms") {
      if (!numeric(&options.backoff_cap_ms, &set.backoff_cap_ms)) {
        return kExitUsage;
      }
    } else if (arg == "--grace-ms") {
      if (!numeric(&options.grace_ms, &set.grace_ms)) return kExitUsage;
    } else if (arg == "--task-deadline-ms") {
      if (!numeric(&options.task_deadline_ms, &set.task_deadline_ms)) {
        return kExitUsage;
      }
    } else if (arg == "--escalate-factor") {
      if (!numeric(&options.escalate_factor, &set.escalate_factor)) {
        return kExitUsage;
      }
    } else if (arg == "--checkpoint-every-steps") {
      if (!numeric(&options.checkpoint_every_steps,
                   &set.checkpoint_every_steps)) {
        return kExitUsage;
      }
    } else if (arg == "--checkpoint-every-ms") {
      if (!numeric(&options.checkpoint_every_ms,
                   &set.checkpoint_every_ms)) {
        return kExitUsage;
      }
    } else if (arg == "--accept-resource") {
      options.accept_resource = true;
      set.accept_resource = true;
    } else if (arg.rfind("--", 0) == 0) {
      err << "tgdkit: batch: unknown option " << arg << "\n";
      return kExitUsage;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 1) {
    err << kUsage;
    return kExitUsage;
  }
  options.manifest_path = positional[0];
  Result<Manifest> manifest = LoadManifest(options.manifest_path);
  if (!manifest.ok()) {
    err << "tgdkit: " << options.manifest_path << ": "
        << manifest.status().ToString() << "\n";
    return ExitCodeForStatus(manifest.status());
  }
  ApplyManifestDefaults(manifest->defaults, set, &options);
  if (options.run_dir.empty()) {
    options.run_dir = options.manifest_path + ".runs";
  }
  if (options.ledger_path.empty()) {
    options.ledger_path = options.run_dir + "/ledger.jsonl";
  }
  if (options.max_parallel == 0) options.max_parallel = 1;
  if (api.forbid_fork_workers && options.worker_binary.empty()) {
    // fork() without exec from a multithreaded process (the serve
    // daemon) can deadlock in the child; only fork+exec workers are
    // safe there.
    err << "tgdkit: batch: in-process fork workers are unavailable in "
           "this context; pass --worker BIN\n";
    return kExitUsage;
  }
  options.cancel = api.cancel;
  Result<SupervisorReport> report = RunBatch(*manifest, options, out, err);
  if (!report.ok()) {
    err << "tgdkit: batch: " << report.status().ToString() << "\n";
    return ExitCodeForStatus(report.status());
  }
  return report->ExitCode();
}

uint64_t CountStatements(const std::string& text) {
  uint64_t count = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++count;
  }
  return count;
}

std::string OneLine(std::string text) {
  std::replace(text.begin(), text.end(), '\n', ' ');
  return text;
}

/// `tgdkit fuzz --replay FILE|DIR`: re-runs reproducers as a regression
/// gate. A missing or empty corpus directory passes (nothing regressed);
/// a named file that does not exist or does not parse is an input error.
int FuzzReplay(const std::string& path, const FuzzOptions& options,
               std::ostream& out, std::ostream& err) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    files = ListReproducers(path);
  } else if (fs::exists(path, ec)) {
    files.push_back(path);
  } else if (fs::path(path).extension() == ".repro") {
    err << "tgdkit: fuzz: cannot open reproducer '" << path << "'\n";
    return kExitInput;
  }
  if (files.empty()) {
    out << "# fuzz replay: no reproducers under " << path << "\n";
    out << "# status: OK\n";
    return kExitOk;
  }
  uint64_t failing = 0;
  for (const std::string& file : files) {
    std::ifstream in(file);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string invariant;
    Result<FuzzScenario> scenario = ParseReproducer(buffer.str(), &invariant);
    if (!scenario.ok()) {
      err << "tgdkit: fuzz: " << file << ": "
          << scenario.status().ToString() << "\n";
      return kExitInput;
    }
    ScenarioVerdict verdict = RunScenario(*scenario, options, invariant);
    out << "# fuzz replay " << file;
    if (verdict.violation) {
      ++failing;
      out << " verdict=FAIL invariant=" << verdict.violation->invariant
          << " detail=\"" << OneLine(verdict.violation->detail) << "\"\n";
    } else {
      out << " verdict=ok\n";
    }
  }
  out << "# fuzz replay summary files=" << files.size()
      << " failing=" << failing << "\n";
  out << "# status: OK\n";
  return failing != 0 ? kExitVerdict : kExitOk;
}

/// `tgdkit fuzz`: the chaos-fuzzing campaign driver (docs/FUZZING.md).
/// Parses its own flag set — the engine options of the runs it launches
/// are fixed by the campaign so the verdict log is deterministic per
/// seed.
int CmdFuzz(const std::vector<std::string>& args, const ApiOptions& api,
            std::ostream& out, std::ostream& err) {
  namespace fs = std::filesystem;
  FuzzOptions options;
  std::string replay_path;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto numeric = [&](uint64_t* slot) {
      if (i + 1 >= args.size()) {
        err << "tgdkit: missing value for " << arg << "\n";
        return false;
      }
      const std::string& value = args[++i];
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        err << "tgdkit: invalid value '" << value << "' for " << arg
            << "\n";
        return false;
      }
      *slot = std::strtoull(value.c_str(), nullptr, 10);
      return true;
    };
    auto pathval = [&](std::string* slot) {
      if (i + 1 >= args.size()) {
        err << "tgdkit: missing value for " << arg << "\n";
        return false;
      }
      *slot = args[++i];
      return !slot->empty();
    };
    if (arg == "--seeds") {
      if (!numeric(&options.seeds)) return kExitUsage;
    } else if (arg == "--seed-start") {
      if (!numeric(&options.seed_start)) return kExitUsage;
    } else if (arg == "--shape") {
      std::string name;
      if (!pathval(&name)) return kExitUsage;
      AdversarialShape shape;
      if (!ParseAdversarialShapeName(name, &shape)) {
        err << "tgdkit: fuzz: unknown shape '" << name << "'\n";
        return kExitUsage;
      }
      options.shape = shape;
    } else if (arg == "--no-faults") {
      options.fork_faults = false;
    } else if (arg == "--corpus-dir") {
      if (!pathval(&options.corpus_dir)) return kExitUsage;
    } else if (arg == "--scratch-dir") {
      if (!pathval(&options.scratch_dir)) return kExitUsage;
    } else if (arg == "--shrink-rounds") {
      uint64_t rounds = 0;
      if (!numeric(&rounds)) return kExitUsage;
      options.shrink_attempts = static_cast<uint32_t>(rounds);
    } else if (arg == "--inject-bug") {
      if (!pathval(&options.inject_bug)) return kExitUsage;
      if (options.inject_bug != "tamper-witness" &&
          options.inject_bug != "torn-checkpoint") {
        err << "tgdkit: fuzz: --inject-bug must be tamper-witness or "
               "torn-checkpoint\n";
        return kExitUsage;
      }
    } else if (arg == "--replay") {
      if (!pathval(&replay_path)) return kExitUsage;
    } else {
      err << "tgdkit: fuzz: unknown argument " << arg << "\n";
      return kExitUsage;
    }
  }
  if (api.forbid_fork_workers && options.fork_faults) {
    // fork() from a multithreaded daemon can deadlock in the child;
    // crash/ENOSPC injection is only available from the one-shot CLI.
    options.fork_faults = false;
    err << "tgdkit: fuzz: fault forks are unavailable in this context; "
           "running without crash injection\n";
  }
  options.run_cli = [&api](const std::vector<std::string>& cli_args,
                           std::ostream& cli_out, std::ostream& cli_err) {
    return RunCommand(cli_args, cli_out, cli_err, api);
  };
  bool scratch_is_temp = false;
  if (options.scratch_dir.empty()) {
    std::error_code ec;
    fs::path base = fs::temp_directory_path(ec);
    if (!ec) {
      options.scratch_dir =
          (base / Cat("tgdkit-fuzz-", static_cast<uint64_t>(getpid())))
              .string();
      scratch_is_temp = true;
    }
  }
  if (!options.scratch_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options.scratch_dir, ec);
    if (ec) options.scratch_dir.clear();  // CLI invariants degrade away
  }
  int code;
  if (!replay_path.empty()) {
    code = FuzzReplay(replay_path, options, out, err);
  } else {
    uint64_t violations = 0;
    for (uint64_t i = 0; i < options.seeds; ++i) {
      uint64_t seed = options.seed_start + i;
      FuzzScenario scenario = MakeScenario(seed, options);
      ScenarioVerdict verdict = RunScenario(scenario, options);
      out << "# fuzz seed=" << seed
          << " shape=" << AdversarialShapeName(scenario.shape)
          << " fault=\"" << ToString(scenario.fault) << "\"";
      if (!verdict.violation) {
        out << " verdict=ok\n";
        continue;
      }
      ++violations;
      out << " verdict=FAIL invariant=" << verdict.violation->invariant
          << " detail=\"" << OneLine(verdict.violation->detail) << "\"\n";
      ShrinkOutcome shrunk =
          ShrinkScenario(scenario, verdict.violation->invariant, options);
      out << "# fuzz shrunk seed=" << seed
          << " statements=" << CountStatements(shrunk.scenario.program)
          << " facts=" << CountStatements(shrunk.scenario.instance)
          << " attempts=" << shrunk.attempts << "\n";
      if (!options.corpus_dir.empty()) {
        std::string path;
        Status written = WriteReproducer(options.corpus_dir, shrunk.scenario,
                                         *verdict.violation, &path);
        if (written.ok()) {
          out << "# fuzz reproducer: " << path << "\n";
        } else {
          err << "tgdkit: fuzz: " << written.ToString() << "\n";
        }
      }
    }
    out << "# fuzz summary seeds=" << options.seeds
        << " violations=" << violations << "\n";
    out << "# status: OK\n";
    code = violations != 0 ? kExitVerdict : kExitOk;
  }
  if (scratch_is_temp) {
    std::error_code ec;
    fs::remove_all(options.scratch_dir, ec);
  }
  return code;
}

}  // namespace

int ExitCodeForStop(StopReason stop) {
  return IsResourceStop(stop) ? kExitResource : kExitOk;
}

int ExitCodeForStatus(const Status& status) {
  switch (status.code()) {
    case Status::Code::kOk:
      return kExitOk;
    case Status::Code::kInvalidArgument:
    case Status::Code::kParseError:
    case Status::Code::kNotFound:
    case Status::Code::kUnsupported:
    case Status::Code::kDataLoss:
      return kExitInput;
    case Status::Code::kResourceExhausted:
      return kExitResource;
    case Status::Code::kInternal:
      return kExitInternal;
  }
  return kExitInternal;
}


int RunCommand(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err, const ApiOptions& options) {
  if (args.empty()) {
    err << kUsage;
    return kExitUsage;
  }
  // batch and selftest parse their own flag sets (a manifest task's argv
  // must pass through to the worker untouched).
  if (args[0] == "batch") return CmdBatch(args, options, out, err);
  if (args[0] == "selftest") return CmdSelftest(args, options, out, err);
  if (args[0] == "fuzz") return CmdFuzz(args, options, out, err);
  CliContext ctx;
  ctx.api = &options;
  ctx.limits.budget.cancel = options.cancel;
  if (!ParseOptions(args, &ctx, err)) return kExitUsage;
  const std::string& command = args[0];
  bool wants_checkpointing =
      !ctx.checkpoint_path.empty() || !ctx.resume_path.empty() ||
      ctx.checkpoint_every_steps != 0 || ctx.checkpoint_every_ms != 0;
  if (wants_checkpointing && command != "chase") {
    err << "tgdkit: --checkpoint/--resume are only supported by 'chase'\n";
    return kExitUsage;
  }
  // Spill is limited to commands that run exactly one chase engine at a
  // time: segment file names are engine-relative, so two live engines
  // sharing a spill directory would clobber each other's segments
  // (solve runs the universal and the core chase back to back with both
  // instances alive).
  if (!ctx.limits.spill_dir.empty() && command != "chase" &&
      command != "certain" && command != "explain") {
    err << "tgdkit: --spill-dir is only supported by 'chase', 'certain' "
           "and 'explain'\n";
    return kExitUsage;
  }
  // The command itself landed in positional[0]; drop it.
  if (!ctx.positional.empty() && ctx.positional[0] == command) {
    ctx.positional.erase(ctx.positional.begin());
  }
  if (command == "classify") return CmdClassify(&ctx, out, err);
  if (command == "lint") return CmdLint(&ctx, out, err);
  if (command == "chase") return CmdChase(&ctx, out, err);
  if (command == "check") return CmdCheck(&ctx, out, err);
  if (command == "certain") return CmdCertain(&ctx, out, err);
  if (command == "normalize") return CmdNormalize(&ctx, out, err);
  if (command == "dot") return CmdDot(&ctx, out, err);
  if (command == "explain") return CmdExplain(&ctx, out, err);
  if (command == "compose") return CmdCompose(&ctx, out, err);
  if (command == "solve") return CmdSolve(&ctx, out, err);
  err << kUsage;
  return kExitUsage;
}

}  // namespace tgdkit
