// The tgdkit command layer as a reusable, request-scoped library.
//
// RunCommand executes one subcommand invocation (classify, lint, chase,
// check, certain, normalize, dot, explain, compose, solve, batch,
// selftest) exactly like the `tgdkit` binary would, but with everything
// a resident server needs scoped to the request instead of the process:
//
//   * cancellation — ApiOptions::cancel is threaded into every engine
//     budget, so a client disconnect or server watchdog can stop this
//     request without touching its neighbours;
//   * input resolution — ApiOptions::resolver lets the caller serve
//     file contents from memory (the serve protocol ships rulesets
//     inline), falling back to the filesystem when it declines;
//   * process safety — ApiOptions::forbid_fork_workers rejects batch
//     configurations that would fork() in-process workers, which is
//     undefined behaviour from a multithreaded daemon.
//
// The CLI driver (src/cli) is a thin wrapper binding this API to the
// process-global signal-driven cancellation token; byte-identical
// output between a one-shot CLI run and a served request falls out of
// both going through RunCommand.
#pragma once

#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "base/budget.h"
#include "base/status.h"

namespace tgdkit {

/// Process exit codes of every tgdkit subcommand. The mapping is part of
/// the CLI contract (docs/FORMAT.md, "Exit codes"): the batch
/// supervisor's run ledger and retry policy key off these values, and
/// the serve protocol echoes them verbatim in its `exit` field, so
/// every subcommand must conform (asserted by tests/cli_exit_code_test).
enum ExitCode : int {
  /// Command completed and every verdict it computed is positive.
  kExitOk = 0,
  /// Malformed command line: unknown command/option, wrong arity,
  /// invalid option value. Deterministic; retrying is pointless.
  kExitUsage = 1,
  /// An input could not be loaded: missing file, parse error, corrupt or
  /// version-mismatched snapshot. Deterministic; retrying is pointless.
  kExitInput = 2,
  /// The command ran to completion and the answer is negative: `check`
  /// found a violation, `lint` found findings at/above --fail-on,
  /// `batch` ended with quarantined or negative-verdict tasks.
  kExitVerdict = 3,
  /// A resource budget stopped the engine (StopReason other than
  /// fixpoint, including cooperative SIGINT/SIGTERM cancellation). The
  /// partial result and a `# status:` line are on stdout.
  kExitResource = 4,
  /// Environment/internal failure: a checkpoint or ledger write failed,
  /// worker subprocess machinery broke. Possibly transient.
  kExitInternal = 5,
  /// The result could not be delivered: stdout was closed under the
  /// command (EPIPE from a dead downstream reader). The computation may
  /// have finished, but an unknown prefix of the output was dropped, so
  /// the run must not be treated as complete.
  kExitPipe = 6,
};

/// Maps a Status to the exit-code contract above.
int ExitCodeForStatus(const Status& status);

/// Maps an engine stop reason: kExitOk for fixpoint, kExitResource
/// otherwise.
int ExitCodeForStop(StopReason stop);

/// Resolves an input path to file contents without touching the
/// filesystem. Returning nullopt means "not mine" and the path is read
/// from disk as usual; returning a value serves that content (the serve
/// daemon maps protocol-supplied virtual files this way). Error
/// messages still print the path the caller used, so output stays
/// byte-identical whether the bytes came from memory or disk.
using FileResolver =
    std::function<std::optional<std::string>(const std::string& path)>;

/// Per-request execution context for RunCommand.
struct ApiOptions {
  /// Polled by every engine this request starts. Each request gets its
  /// own token; Cancel() stops this request and nothing else.
  CancellationToken cancel;
  /// Consulted before the filesystem for every input path (may be
  /// empty). Only single-shot commands honour it: batch workers are
  /// separate processes and cannot see the caller's memory.
  FileResolver resolver;
  /// Reject `batch` invocations that would fork in-process workers
  /// (i.e. without --worker BIN). Set by the serve daemon: fork() from
  /// a multithreaded process can deadlock in the child.
  bool forbid_fork_workers = false;
};

/// Runs one subcommand invocation. `args` excludes the program name.
/// Returns a process exit code from the ExitCode table. Thread-safe:
/// concurrent calls share nothing but the streams they are given.
int RunCommand(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err, const ApiOptions& options = {});

}  // namespace tgdkit
