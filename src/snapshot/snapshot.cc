#include "snapshot/snapshot.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <utility>

#include "base/fileio.h"
#include "base/strings.h"
#include "data/instance.h"
#include "data/segment.h"

namespace tgdkit {

namespace {

// ---------------------------------------------------------------------------
// Payload writer: whitespace-separated tokens; strings are length-prefixed
// (`<len>:<bytes>`) so symbol names may contain anything.

class Writer {
 public:
  void Word(std::string_view w) {
    out_ += w;
    out_ += ' ';
  }
  void U64(uint64_t v) { Word(std::to_string(v)); }
  void Str(std::string_view s) {
    out_ += std::to_string(s.size());
    out_ += ':';
    out_ += s;
    out_ += ' ';
  }
  void EndLine() {
    if (!out_.empty() && out_.back() == ' ') out_.back() = '\n';
  }

  std::string Take() && { return std::move(out_); }

 private:
  std::string out_;
};

// ---------------------------------------------------------------------------
// Payload reader. Every method returns false once anything went wrong and
// records a DataLoss status; callers chain reads and check once.

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ok() const { return error_.ok(); }
  Status TakeError() && {
    if (error_.ok()) return Status::DataLoss("snapshot payload: malformed");
    return std::move(error_);
  }

  bool Fail(std::string msg) {
    if (error_.ok()) {
      error_ = Status::DataLoss("snapshot payload: " + std::move(msg));
    }
    return false;
  }

  /// Records a non-DataLoss error (e.g. InvalidArgument for a segmented
  /// snapshot loaded without a spill directory, or a segment file's own
  /// load status) verbatim.
  bool FailStatus(Status status) {
    if (error_.ok()) error_ = std::move(status);
    return false;
  }

  bool Word(std::string_view* out) {
    if (!ok()) return false;
    SkipSpace();
    if (pos_ >= data_.size()) return Fail("unexpected end of payload");
    size_t start = pos_;
    while (pos_ < data_.size() && !IsSpace(data_[pos_])) ++pos_;
    *out = data_.substr(start, pos_ - start);
    return true;
  }

  bool Expect(std::string_view want) {
    std::string_view got;
    if (!Word(&got)) return false;
    if (got != want) {
      return Fail("expected '" + std::string(want) + "', found '" +
                  std::string(got) + "'");
    }
    return true;
  }

  bool U64(uint64_t* out) {
    std::string_view w;
    if (!Word(&w)) return false;
    auto [ptr, ec] = std::from_chars(w.data(), w.data() + w.size(), *out);
    if (ec != std::errc() || ptr != w.data() + w.size()) {
      return Fail("expected a number, found '" + std::string(w) + "'");
    }
    return true;
  }

  bool U32(uint32_t* out) {
    uint64_t v;
    if (!U64(&v)) return false;
    if (v > 0xffffffffull) return Fail("32-bit value out of range");
    *out = static_cast<uint32_t>(v);
    return true;
  }

  /// Reads a `<len>:<bytes>` string.
  bool Str(std::string* out) {
    if (!ok()) return false;
    SkipSpace();
    uint64_t len = 0;
    size_t start = pos_;
    while (pos_ < data_.size() && data_[pos_] >= '0' && data_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start || pos_ >= data_.size() || data_[pos_] != ':') {
      return Fail("expected a length-prefixed string");
    }
    std::string_view digits = data_.substr(start, pos_ - start);
    auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), len);
    if (ec != std::errc()) return Fail("bad string length");
    ++pos_;  // ':'
    if (data_.size() - pos_ < len) return Fail("string runs past the payload");
    out->assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  /// Sanity bound for element counts: a count larger than the remaining
  /// payload (one byte per element minimum) is corrupt, and rejecting it
  /// here keeps corrupt files from driving huge allocations.
  bool Count(uint64_t* out) {
    if (!U64(out)) return false;
    if (*out > data_.size() - pos_) return Fail("element count exceeds payload size");
    return true;
  }

  bool AtEnd() {
    SkipSpace();
    return ok() && pos_ >= data_.size();
  }

 private:
  static bool IsSpace(char c) {
    return c == ' ' || c == '\n' || c == '\t' || c == '\r';
  }
  void SkipSpace() {
    while (pos_ < data_.size() && IsSpace(data_[pos_])) ++pos_;
  }

  std::string_view data_;
  size_t pos_ = 0;
  Status error_;
};

// ---------------------------------------------------------------------------
// Envelope

std::string HexU32(uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

std::string WrapEnvelope(std::string_view kind, std::string_view payload) {
  std::string out;
  out += kSnapshotMagic;
  out += " v";
  out += std::to_string(kSnapshotVersion);
  out += ' ';
  out += kind;
  out += "\npayload ";
  out += std::to_string(payload.size());
  out += " crc32 ";
  out += HexU32(Crc32(payload));
  out += '\n';
  out += payload;
  return out;
}

/// Validates magic, version, kind, length and checksum; returns the
/// payload bytes on success.
Result<std::string_view> UnwrapEnvelope(std::string_view bytes,
                                        std::string_view want_kind) {
  size_t eol = bytes.find('\n');
  if (eol == std::string_view::npos) {
    return Status::DataLoss("snapshot: missing header line");
  }
  std::string_view header = bytes.substr(0, eol);
  if (header.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    return Status::DataLoss("snapshot: not a tgdkit snapshot file");
  }
  Reader head(header.substr(kSnapshotMagic.size()));
  std::string_view version;
  std::string_view kind;
  if (!head.Word(&version) || !head.Word(&kind) || !head.AtEnd()) {
    return Status::DataLoss("snapshot: malformed header line");
  }
  uint32_t version_num = 0;
  if (version.size() < 2 || version[0] != 'v') {
    return Status::DataLoss("snapshot: malformed version token");
  }
  auto [ptr, ec] = std::from_chars(version.data() + 1,
                                   version.data() + version.size(),
                                   version_num);
  if (ec != std::errc() || ptr != version.data() + version.size()) {
    return Status::DataLoss("snapshot: malformed version token");
  }
  if (version_num != kSnapshotVersion) {
    return Status::Unsupported(
        "snapshot format version v" + std::to_string(version_num) +
        "; this build reads v" + std::to_string(kSnapshotVersion));
  }
  if (kind != want_kind) {
    return Status::InvalidArgument("snapshot kind '" + std::string(kind) +
                                   "', expected '" + std::string(want_kind) +
                                   "'");
  }

  std::string_view rest = bytes.substr(eol + 1);
  size_t eol2 = rest.find('\n');
  if (eol2 == std::string_view::npos) {
    return Status::DataLoss("snapshot: missing payload-descriptor line");
  }
  Reader desc(rest.substr(0, eol2));
  uint64_t payload_len = 0;
  std::string_view crc_hex;
  if (!desc.Expect("payload") || !desc.U64(&payload_len) ||
      !desc.Expect("crc32") || !desc.Word(&crc_hex) || !desc.AtEnd()) {
    return Status::DataLoss("snapshot: malformed payload-descriptor line");
  }
  uint32_t want_crc = 0;
  auto [cptr, cec] = std::from_chars(crc_hex.data(),
                                     crc_hex.data() + crc_hex.size(),
                                     want_crc, 16);
  if (cec != std::errc() || cptr != crc_hex.data() + crc_hex.size()) {
    return Status::DataLoss("snapshot: malformed checksum");
  }
  std::string_view payload = rest.substr(eol2 + 1);
  if (payload.size() < payload_len) {
    return Status::DataLoss(
        "snapshot: truncated (payload has " + std::to_string(payload.size()) +
        " of " + std::to_string(payload_len) + " bytes)");
  }
  if (payload.size() > payload_len) {
    return Status::DataLoss("snapshot: trailing bytes after payload");
  }
  if (Crc32(payload) != want_crc) {
    return Status::DataLoss("snapshot: checksum mismatch (corrupt payload)");
  }
  return payload;
}

// ---------------------------------------------------------------------------
// Shared sections: vocabulary, arena, atoms

void WriteVocab(const Vocabulary& vocab, Writer* w) {
  w->Word("relations");
  w->U64(vocab.num_relations());
  for (size_t i = 0; i < vocab.num_relations(); ++i) {
    w->U64(vocab.RelationArity(static_cast<RelationId>(i)));
    w->Str(vocab.RelationName(static_cast<RelationId>(i)));
  }
  w->EndLine();
  w->Word("functions");
  w->U64(vocab.num_functions());
  for (size_t i = 0; i < vocab.num_functions(); ++i) {
    w->U64(vocab.FunctionArity(static_cast<FunctionId>(i)));
    w->Str(vocab.FunctionName(static_cast<FunctionId>(i)));
  }
  w->EndLine();
  w->Word("constants");
  w->U64(vocab.num_constants());
  for (size_t i = 0; i < vocab.num_constants(); ++i) {
    w->Str(vocab.ConstantName(static_cast<ConstantId>(i)));
  }
  w->EndLine();
  w->Word("variables");
  w->U64(vocab.num_variables());
  for (size_t i = 0; i < vocab.num_variables(); ++i) {
    w->Str(vocab.VariableName(static_cast<VariableId>(i)));
  }
  w->EndLine();
  w->Word("fresh");
  w->U64(vocab.fresh_counter());
  w->EndLine();
}

/// Rebuilds a Vocabulary by re-interning every symbol in id order, so the
/// dense ids in the rest of the payload stay meaningful.
bool ReadVocab(Reader* r, Vocabulary* vocab) {
  uint64_t n = 0;
  if (!r->Expect("relations") || !r->Count(&n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t arity = 0;
    std::string name;
    if (!r->U32(&arity) || !r->Str(&name)) return false;
    if (name.empty()) return r->Fail("empty relation name");
    if (vocab->FindRelation(name) != kInvalidSymbol) {
      return r->Fail("duplicate relation name '" + name + "'");
    }
    vocab->InternRelation(name, arity);
  }
  if (!r->Expect("functions") || !r->Count(&n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t arity = 0;
    std::string name;
    if (!r->U32(&arity) || !r->Str(&name)) return false;
    if (name.empty()) return r->Fail("empty function name");
    if (vocab->FindFunction(name) != kInvalidSymbol) {
      return r->Fail("duplicate function name '" + name + "'");
    }
    vocab->InternFunction(name, arity);
  }
  if (!r->Expect("constants") || !r->Count(&n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    if (!r->Str(&name)) return false;
    if (name.empty()) return r->Fail("empty constant name");
    if (vocab->FindConstant(name) != kInvalidSymbol) {
      return r->Fail("duplicate constant name '" + name + "'");
    }
    vocab->InternConstant(name);
  }
  if (!r->Expect("variables") || !r->Count(&n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    if (!r->Str(&name)) return false;
    if (name.empty()) return r->Fail("empty variable name");
    if (vocab->FindVariable(name) != kInvalidSymbol) {
      return r->Fail("duplicate variable name '" + name + "'");
    }
    vocab->InternVariable(name);
  }
  uint64_t fresh = 0;
  if (!r->Expect("fresh") || !r->U64(&fresh)) return false;
  vocab->RestoreFreshCounter(fresh);
  return true;
}

void WriteArena(const TermArena& arena, Writer* w) {
  w->Word("arena");
  w->U64(arena.size());
  w->EndLine();
  for (TermId t = 0; t < arena.size(); ++t) {
    switch (arena.kind(t)) {
      case TermKind::kVariable:
        w->Word("V");
        w->U64(arena.symbol(t));
        break;
      case TermKind::kConstant:
        w->Word("C");
        w->U64(arena.symbol(t));
        break;
      case TermKind::kFunction:
        w->Word("F");
        w->U64(arena.symbol(t));
        w->U64(arena.args(t).size());
        for (TermId a : arena.args(t)) w->U64(a);
        break;
    }
    w->EndLine();
  }
}

/// Rebuilds a TermArena by replaying Make* calls in node order. The arena
/// hash-conses in append order, so the rebuilt ids equal the serialized
/// ones; a node that dedups to an earlier id means the payload was not
/// produced by a canonical arena (corrupt).
bool ReadArena(Reader* r, const Vocabulary& vocab, TermArena* arena) {
  uint64_t n = 0;
  if (!r->Expect("arena") || !r->Count(&n)) return false;
  std::vector<TermId> args;
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view tag;
    uint32_t sym = 0;
    if (!r->Word(&tag) || !r->U32(&sym)) return false;
    TermId id = kInvalidTerm;
    if (tag == "V") {
      if (sym >= vocab.num_variables()) return r->Fail("bad variable symbol");
      id = arena->MakeVariable(sym);
    } else if (tag == "C") {
      if (sym >= vocab.num_constants()) return r->Fail("bad constant symbol");
      id = arena->MakeConstant(sym);
    } else if (tag == "F") {
      if (sym >= vocab.num_functions()) return r->Fail("bad function symbol");
      uint64_t k = 0;
      if (!r->Count(&k)) return false;
      if (k != vocab.FunctionArity(sym)) {
        return r->Fail("function arity mismatch in arena node");
      }
      args.clear();
      for (uint64_t j = 0; j < k; ++j) {
        uint32_t a = 0;
        if (!r->U32(&a)) return false;
        if (a >= i) return r->Fail("arena node references a later node");
        args.push_back(a);
      }
      id = arena->MakeFunction(sym, args);
    } else {
      return r->Fail("unknown arena node tag '" + std::string(tag) + "'");
    }
    if (id != i) return r->Fail("arena is not canonical (duplicate node)");
  }
  return true;
}

void WriteAtoms(std::span<const Atom> atoms, Writer* w) {
  w->U64(atoms.size());
  for (const Atom& atom : atoms) {
    w->U64(atom.relation);
    w->U64(atom.args.size());
    for (TermId t : atom.args) w->U64(t);
    w->EndLine();
  }
}

bool ReadAtoms(Reader* r, const Vocabulary& vocab, const TermArena& arena,
               std::vector<Atom>* out) {
  uint64_t n = 0;
  if (!r->Count(&n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    Atom atom;
    uint64_t k = 0;
    if (!r->U32(&atom.relation) || !r->Count(&k)) return false;
    if (atom.relation >= vocab.num_relations()) {
      return r->Fail("atom over unknown relation");
    }
    if (k != vocab.RelationArity(atom.relation)) {
      return r->Fail("atom arity mismatch");
    }
    for (uint64_t j = 0; j < k; ++j) {
      uint32_t t = 0;
      if (!r->U32(&t)) return false;
      if (t >= arena.size()) return r->Fail("atom references unknown term");
      atom.args.push_back(t);
    }
    out->push_back(std::move(atom));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Engine-state sections

void WriteCounters(std::string_view done_tag, bool done, StopReason stop,
                   uint64_t rounds, uint64_t facts, uint64_t gsteps,
                   uint64_t gbytes, Writer* w) {
  w->Word(done_tag);
  w->U64(done ? 1 : 0);
  w->U64(static_cast<uint64_t>(stop));
  w->U64(rounds);
  w->U64(facts);
  w->U64(gsteps);
  w->U64(gbytes);
  w->EndLine();
}

bool ReadCounters(Reader* r, std::string_view done_tag, bool* done,
                  StopReason* stop, uint64_t* rounds, uint64_t* facts,
                  uint64_t* gsteps, uint64_t* gbytes) {
  uint64_t done_v = 0;
  uint64_t stop_v = 0;
  if (!r->Expect(done_tag) || !r->U64(&done_v) || !r->U64(&stop_v) ||
      !r->U64(rounds) || !r->U64(facts) || !r->U64(gsteps) ||
      !r->U64(gbytes)) {
    return false;
  }
  if (done_v > 1) return r->Fail("bad done flag");
  if (stop_v > static_cast<uint64_t>(StopReason::kCancelled)) {
    return r->Fail("unknown stop reason");
  }
  *done = done_v == 1;
  *stop = static_cast<StopReason>(stop_v);
  return true;
}

void WriteNullHeader(const Instance& instance, Writer* w) {
  w->Word("nulls");
  w->U64(instance.num_nulls());
  uint64_t labeled = 0;
  for (uint32_t i = 0; i < instance.num_nulls(); ++i) {
    if (!instance.NullLabel(i).empty()) ++labeled;
  }
  w->Word("labels");
  w->U64(labeled);
  w->EndLine();
  for (uint32_t i = 0; i < instance.num_nulls(); ++i) {
    if (instance.NullLabel(i).empty()) continue;
    w->U64(i);
    w->Str(instance.NullLabel(i));
    w->EndLine();
  }
}

void WriteInstance(const Instance& instance, Writer* w) {
  WriteNullHeader(instance, w);
  w->Word("facts");
  w->Str(instance.ToExactText());
  w->EndLine();
}

/// Segmented instance section (spill mode): sealed segment files are
/// immutable, so the snapshot references the fully-kept ones by name,
/// row count and payload CRC, and renders only the remainder — the
/// mutable tail plus any partially-kept sealed segment prefix — as exact
/// text. `keep_rows` carries the torn-round rollback counts (empty:
/// keep everything). Dirty segments must have been flushed already.
void WriteSpilledInstance(
    const Instance& instance,
    const std::vector<std::pair<RelationId, uint64_t>>& keep_rows,
    Writer* w) {
  WriteNullHeader(instance, w);
  w->Word("spill");
  w->Word("segbytes");
  w->U64(instance.SpillSegmentBytes());
  w->Word("rels");
  w->U64(instance.ActiveRelations().size());
  w->EndLine();
  for (RelationId rel : instance.ActiveRelations()) {
    uint64_t keep = instance.NumTuples(rel);
    for (const auto& [krel, kcount] : keep_rows) {
      if (krel == rel) {
        keep = kcount;
        break;
      }
    }
    uint64_t segrows = instance.SpillRowsPerSegment(rel);
    uint64_t full_segments =
        std::min(keep / segrows, instance.SpillSealedSegments(rel));
    w->Word("rel");
    w->Str(instance.vocab().RelationName(rel));
    w->Word("segrows");
    w->U64(segrows);
    w->Word("keep");
    w->U64(keep);
    w->Word("segs");
    w->U64(full_segments);
    w->EndLine();
    for (uint64_t s = 0; s < full_segments; ++s) {
      Instance::SealedSegmentInfo info = instance.SpillSegmentInfo(rel, s);
      w->Word("seg");
      w->Str(info.filename);
      w->Word("rows");
      w->U64(info.rows);
      w->Word("crc32");
      w->U64(info.crc32);
      w->EndLine();
    }
    std::string tail;
    for (uint64_t row = full_segments * segrows; row < keep; ++row) {
      std::span<const Value> tuple =
          instance.Tuple(rel, static_cast<uint32_t>(row));
      tail += instance.vocab().RelationName(rel);
      tail += "(";
      tail += JoinMapped(tuple, ", ", [&](Value v) {
        if (v.is_null()) return Cat("_N", v.index());
        return instance.ValueToString(v);
      });
      tail += ")\n";
    }
    w->Word("tail");
    w->Str(tail);
    w->EndLine();
  }
}

/// Restores a segmented instance section: enables spill with the recorded
/// geometry, streams every referenced segment file back through AddFact
/// (which re-seals byte-identical segments, since the insertion order and
/// the rows-per-segment geometry are the recorded ones), then parses the
/// text remainder. The leading "spill" word was already consumed.
bool ReadSpilledFacts(Reader* r, Vocabulary* vocab,
                      const std::string& spill_dir, uint64_t declared_nulls,
                      Instance* out) {
  if (spill_dir.empty()) {
    return r->FailStatus(Status::InvalidArgument(
        "snapshot holds a spilled instance; a spill directory is required "
        "to resume it (--spill-dir)"));
  }
  uint64_t segbytes = 0;
  uint64_t nrels = 0;
  if (!r->Expect("segbytes") || !r->U64(&segbytes) || !r->Expect("rels") ||
      !r->Count(&nrels)) {
    return false;
  }
  if (segbytes == 0) return r->Fail("bad spill segment size");
  SpillConfig config;
  config.dir = spill_dir;
  config.segment_bytes = segbytes;
  Status enabled = out->EnableSpill(config);
  if (!enabled.ok()) return r->FailStatus(std::move(enabled));
  // Nulls first: segment rows reference null indexes by value.
  out->EnsureNulls(static_cast<uint32_t>(declared_nulls));
  std::vector<Value> args;
  for (uint64_t i = 0; i < nrels; ++i) {
    std::string name;
    uint64_t segrows = 0;
    uint64_t keep = 0;
    uint64_t nsegs = 0;
    if (!r->Expect("rel") || !r->Str(&name) || !r->Expect("segrows") ||
        !r->U64(&segrows) || !r->Expect("keep") || !r->U64(&keep) ||
        !r->Expect("segs") || !r->Count(&nsegs)) {
      return false;
    }
    RelationId rel = vocab->FindRelation(name);
    if (rel == kInvalidSymbol) {
      return r->Fail("spill section references unknown relation '" + name +
                     "'");
    }
    uint32_t arity = vocab->RelationArity(rel);
    if (arity == 0 || segrows != out->SpillRowsPerSegment(rel)) {
      return r->Fail("spill relation '" + name +
                     "': segment geometry mismatch");
    }
    for (uint64_t s = 0; s < nsegs; ++s) {
      std::string filename;
      uint64_t rows = 0;
      uint64_t crc = 0;
      if (!r->Expect("seg") || !r->Str(&filename) || !r->Expect("rows") ||
          !r->U64(&rows) || !r->Expect("crc32") || !r->U64(&crc)) {
        return false;
      }
      if (filename != SegmentFileName(rel, static_cast<uint32_t>(s))) {
        return r->Fail("unexpected segment file name '" + filename + "'");
      }
      if (rows != segrows || crc > 0xffffffffull) {
        return r->Fail("segment '" + filename + "': malformed record");
      }
      Result<SegmentData> seg = LoadSegment(spill_dir + "/" + filename);
      if (!seg.ok()) return r->FailStatus(seg.status());
      if (seg->relation_index != rel || seg->arity != arity ||
          seg->rows() != rows) {
        return r->FailStatus(Status::DataLoss(
            "segment '" + filename + "' does not match the snapshot record"));
      }
      if (SegmentPayloadCrc(seg->values.data(), seg->values.size()) != crc) {
        return r->FailStatus(Status::DataLoss(
            "segment '" + filename +
            "': checksum differs from the snapshot record"));
      }
      for (uint64_t row = 0; row < rows; ++row) {
        args.clear();
        for (uint32_t p = 0; p < arity; ++p) {
          Value v = Value::FromRaw(seg->values[row * arity + p]);
          if (!v.valid() || (v.is_null() && v.index() >= out->num_nulls()) ||
              (v.is_constant() && v.index() >= vocab->num_constants())) {
            return r->FailStatus(Status::DataLoss(
                "segment '" + filename + "': invalid value"));
          }
          args.push_back(v);
        }
        if (!out->AddFact(rel, args)) {
          return r->FailStatus(Status::DataLoss(
              "segment '" + filename + "': duplicate fact"));
        }
      }
    }
    std::string tail;
    if (!r->Expect("tail") || !r->Str(&tail)) return false;
    Status parsed = ParseInstanceText(tail, vocab, out);
    if (!parsed.ok()) return r->Fail("spill tail: " + parsed.ToString());
    if (out->NumTuples(rel) != keep) {
      return r->Fail("spill relation '" + name + "': row count mismatch");
    }
  }
  // The just-streamed segments ARE the on-disk files — nothing is dirty.
  out->MarkAllSealedClean();
  return true;
}

bool ReadInstance(Reader* r, Vocabulary* vocab, Instance* out,
                  const std::string& spill_dir) {
  uint64_t nulls = 0;
  uint64_t labeled = 0;
  if (!r->Expect("nulls") || !r->U64(&nulls) || !r->Expect("labels") ||
      !r->Count(&labeled)) {
    return false;
  }
  if (nulls > 0x7fffffffull) return r->Fail("null count out of range");
  std::vector<std::pair<uint32_t, std::string>> labels;
  for (uint64_t i = 0; i < labeled; ++i) {
    uint32_t index = 0;
    std::string label;
    if (!r->U32(&index) || !r->Str(&label)) return false;
    if (index >= nulls) return r->Fail("null label index out of range");
    labels.emplace_back(index, std::move(label));
  }
  std::string_view section;
  if (!r->Word(&section)) return false;
  if (section == "spill") {
    if (!ReadSpilledFacts(r, vocab, spill_dir, nulls, out)) return false;
  } else if (section == "facts") {
    std::string text;
    if (!r->Str(&text)) return false;
    Status parsed = ParseInstanceText(text, vocab, out);
    if (!parsed.ok()) {
      return r->Fail("instance section: " + parsed.ToString());
    }
  } else {
    return r->Fail("expected 'facts' or 'spill', found '" +
                   std::string(section) + "'");
  }
  if (out->num_nulls() > nulls) {
    return r->Fail("instance uses more nulls than declared");
  }
  out->EnsureNulls(static_cast<uint32_t>(nulls));
  for (auto& [index, label] : labels) {
    out->SetNullLabel(index, std::move(label));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Chase snapshot payload

void WriteSoTgd(const SoTgd& rules, Writer* w) {
  w->Word("rulefns");
  w->U64(rules.functions.size());
  for (FunctionId f : rules.functions) w->U64(f);
  w->EndLine();
  w->Word("parts");
  w->U64(rules.parts.size());
  w->EndLine();
  for (const SoPart& part : rules.parts) {
    w->Word("body");
    WriteAtoms(part.body, w);
    w->Word("eq");
    w->U64(part.equalities.size());
    for (const SoEquality& eq : part.equalities) {
      w->U64(eq.lhs);
      w->U64(eq.rhs);
    }
    w->EndLine();
    w->Word("head");
    WriteAtoms(part.head, w);
  }
}

bool ReadSoTgd(Reader* r, const Vocabulary& vocab, const TermArena& arena,
               SoTgd* rules) {
  uint64_t n = 0;
  if (!r->Expect("rulefns") || !r->Count(&n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t f = 0;
    if (!r->U32(&f)) return false;
    if (f >= vocab.num_functions()) return r->Fail("bad rule function id");
    rules->functions.push_back(f);
  }
  uint64_t parts = 0;
  if (!r->Expect("parts") || !r->Count(&parts)) return false;
  for (uint64_t p = 0; p < parts; ++p) {
    SoPart part;
    uint64_t eqs = 0;
    if (!r->Expect("body") || !ReadAtoms(r, vocab, arena, &part.body) ||
        !r->Expect("eq") || !r->Count(&eqs)) {
      return false;
    }
    for (uint64_t e = 0; e < eqs; ++e) {
      SoEquality eq;
      if (!r->U32(&eq.lhs) || !r->U32(&eq.rhs)) return false;
      if (eq.lhs >= arena.size() || eq.rhs >= arena.size()) {
        return r->Fail("equality references unknown term");
      }
      part.equalities.push_back(eq);
    }
    if (!r->Expect("head") || !ReadAtoms(r, vocab, arena, &part.head)) {
      return false;
    }
    rules->parts.push_back(std::move(part));
  }
  return true;
}

bool ReadValue(Reader* r, const Vocabulary& vocab, uint64_t num_nulls,
               Value* out) {
  uint32_t raw = 0;
  if (!r->U32(&raw)) return false;
  Value v = Value::FromRaw(raw);
  if (!v.valid()) return r->Fail("invalid value");
  if (v.is_null() && v.index() >= num_nulls) {
    return r->Fail("value references unknown null");
  }
  if (v.is_constant() && v.index() >= vocab.num_constants()) {
    return r->Fail("value references unknown constant");
  }
  *out = v;
  return true;
}

}  // namespace

std::string SerializeChaseSnapshot(const Vocabulary& vocab,
                                   const TermArena& arena, const SoTgd& rules,
                                   const ChaseEngineState& state,
                                   uint64_t seed, uint64_t rng_state) {
  Writer w;
  w.Word("seed");
  w.U64(seed);
  w.Word("rng");
  w.U64(rng_state);
  w.EndLine();
  WriteVocab(vocab, &w);
  WriteArena(arena, &w);
  WriteSoTgd(rules, &w);
  WriteCounters("engine", state.done, state.stop_reason, state.rounds,
                state.facts_created, state.governor_steps,
                state.governor_charged_bytes, &w);
  w.Word("t2v");
  w.U64(state.term_to_value.size());
  for (const auto& [term, value] : state.term_to_value) {
    w.U64(term);
    w.U64(value.raw());
  }
  w.EndLine();
  w.Word("prov");
  w.U64(state.null_provenance.size());
  for (TermId t : state.null_provenance) w.U64(t);
  w.EndLine();
  w.Word("wprev");
  w.U64(state.rows_before_prev_round.size());
  for (const auto& [rel, count] : state.rows_before_prev_round) {
    w.U64(rel);
    w.U64(count);
  }
  w.EndLine();
  w.Word("wcur");
  w.U64(state.rows_before_current_round.size());
  for (const auto& [rel, count] : state.rows_before_current_round) {
    w.U64(rel);
    w.U64(count);
  }
  w.EndLine();
  if (state.spill_instance != nullptr) {
    // Segment references are only meaningful once the files exist; flush
    // here too so direct serialization (tests, round-trips) stays
    // self-consistent. SaveChaseSnapshot checks the flush status first
    // and propagates failures before anything is serialized.
    (void)state.spill_instance->FlushDirtySegments();
    WriteSpilledInstance(*state.spill_instance, state.spill_keep_rows, &w);
  } else {
    WriteInstance(state.instance, &w);
  }
  w.Word("end");
  w.EndLine();
  return WrapEnvelope("chase", std::move(w).Take());
}

Status SaveChaseSnapshot(const std::string& path, const Vocabulary& vocab,
                         const TermArena& arena, const SoTgd& rules,
                         const ChaseEngineState& state, uint64_t seed,
                         uint64_t rng_state) {
  if (state.spill_instance != nullptr) {
    // The manifest references segment files by name: every sealed segment
    // must be durably on disk before the snapshot that points at it. A
    // write failure (disk full) fails the checkpoint here, leaving the
    // previous complete snapshot at `path`.
    TGDKIT_RETURN_IF_ERROR(state.spill_instance->FlushDirtySegments());
  }
  return AtomicWriteFile(
      path, SerializeChaseSnapshot(vocab, arena, rules, state, seed,
                                   rng_state));
}

Result<ChaseSnapshot> ParseChaseSnapshot(std::string_view bytes) {
  return ParseChaseSnapshot(bytes, "");
}

Result<ChaseSnapshot> ParseChaseSnapshot(std::string_view bytes,
                                         const std::string& spill_dir) {
  Result<std::string_view> payload = UnwrapEnvelope(bytes, "chase");
  if (!payload.ok()) return payload.status();
  Reader r(*payload);

  ChaseSnapshot snap;
  snap.vocab = std::make_unique<Vocabulary>();
  snap.arena = std::make_unique<TermArena>();
  if (!r.Expect("seed") || !r.U64(&snap.seed) || !r.Expect("rng") ||
      !r.U64(&snap.rng_state) || !ReadVocab(&r, snap.vocab.get()) ||
      !ReadArena(&r, *snap.vocab, snap.arena.get()) ||
      !ReadSoTgd(&r, *snap.vocab, *snap.arena, &snap.rules)) {
    return std::move(r).TakeError();
  }

  snap.state = std::make_unique<ChaseEngineState>(snap.vocab.get());
  ChaseEngineState& state = *snap.state;
  if (!ReadCounters(&r, "engine", &state.done, &state.stop_reason,
                    &state.rounds, &state.facts_created,
                    &state.governor_steps, &state.governor_charged_bytes)) {
    return std::move(r).TakeError();
  }

  uint64_t n = 0;
  if (!r.Expect("t2v") || !r.Count(&n)) return std::move(r).TakeError();
  // The null count is only known after the instance section; remember the
  // largest null index seen here and validate afterwards.
  uint64_t max_null_seen = 0;
  bool any_null_seen = false;
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t term = 0;
    uint32_t raw = 0;
    if (!r.U32(&term) || !r.U32(&raw)) return std::move(r).TakeError();
    if (term >= snap.arena->size()) {
      r.Fail("term-to-value references unknown term");
      return std::move(r).TakeError();
    }
    Value v = Value::FromRaw(raw);
    if (!v.valid()) {
      r.Fail("invalid value in term-to-value map");
      return std::move(r).TakeError();
    }
    if (v.is_constant() && v.index() >= snap.vocab->num_constants()) {
      r.Fail("term-to-value references unknown constant");
      return std::move(r).TakeError();
    }
    if (v.is_null()) {
      any_null_seen = true;
      if (v.index() > max_null_seen) max_null_seen = v.index();
    }
    state.term_to_value.emplace_back(term, v);
  }
  if (!r.Expect("prov") || !r.Count(&n)) return std::move(r).TakeError();
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t t = 0;
    if (!r.U32(&t)) return std::move(r).TakeError();
    if (t != kInvalidTerm && t >= snap.arena->size()) {
      r.Fail("null provenance references unknown term");
      return std::move(r).TakeError();
    }
    state.null_provenance.push_back(t);
  }
  if (!r.Expect("wprev") || !r.Count(&n)) return std::move(r).TakeError();
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t rel = 0;
    uint64_t count = 0;
    if (!r.U32(&rel) || !r.U64(&count)) return std::move(r).TakeError();
    if (rel >= snap.vocab->num_relations()) {
      r.Fail("window references unknown relation");
      return std::move(r).TakeError();
    }
    state.rows_before_prev_round.emplace_back(rel, count);
  }
  if (!r.Expect("wcur") || !r.Count(&n)) return std::move(r).TakeError();
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t rel = 0;
    uint64_t count = 0;
    if (!r.U32(&rel) || !r.U64(&count)) return std::move(r).TakeError();
    if (rel >= snap.vocab->num_relations()) {
      r.Fail("window references unknown relation");
      return std::move(r).TakeError();
    }
    state.rows_before_current_round.emplace_back(rel, count);
  }
  if (!ReadInstance(&r, snap.vocab.get(), &state.instance, spill_dir)) {
    return std::move(r).TakeError();
  }
  if (any_null_seen && max_null_seen >= state.instance.num_nulls()) {
    r.Fail("term-to-value references unknown null");
    return std::move(r).TakeError();
  }
  if (state.null_provenance.size() != state.instance.num_nulls()) {
    r.Fail("null provenance count does not match the null count");
    return std::move(r).TakeError();
  }
  if (!r.Expect("end") || !r.AtEnd()) {
    r.Fail("trailing bytes after the end marker");
    return std::move(r).TakeError();
  }
  return snap;
}

Result<ChaseSnapshot> LoadChaseSnapshot(const std::string& path) {
  return LoadChaseSnapshot(path, "");
}

Result<ChaseSnapshot> LoadChaseSnapshot(const std::string& path,
                                        const std::string& spill_dir) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return ParseChaseSnapshot(*bytes, spill_dir);
}

// ---------------------------------------------------------------------------
// Restricted chase

std::string SerializeRestrictedSnapshot(const Vocabulary& vocab,
                                        const TermArena& arena,
                                        std::span<const Tgd> tgds,
                                        const RestrictedChaseState& state,
                                        uint64_t seed, uint64_t rng_state) {
  Writer w;
  w.Word("seed");
  w.U64(seed);
  w.Word("rng");
  w.U64(rng_state);
  w.EndLine();
  WriteVocab(vocab, &w);
  WriteArena(arena, &w);
  w.Word("tgds");
  w.U64(tgds.size());
  w.EndLine();
  for (const Tgd& tgd : tgds) {
    w.Word("body");
    WriteAtoms(tgd.body, &w);
    w.Word("head");
    WriteAtoms(tgd.head, &w);
    w.Word("exist");
    w.U64(tgd.exist_vars.size());
    for (VariableId v : tgd.exist_vars) w.U64(v);
    w.EndLine();
  }
  WriteCounters("engine", state.done, state.stop_reason, state.rounds,
                state.facts_created, state.governor_steps,
                state.governor_charged_bytes, &w);
  WriteInstance(state.instance, &w);
  w.Word("end");
  w.EndLine();
  return WrapEnvelope("restricted", std::move(w).Take());
}

Status SaveRestrictedSnapshot(const std::string& path,
                              const Vocabulary& vocab, const TermArena& arena,
                              std::span<const Tgd> tgds,
                              const RestrictedChaseState& state,
                              uint64_t seed, uint64_t rng_state) {
  return AtomicWriteFile(
      path, SerializeRestrictedSnapshot(vocab, arena, tgds, state, seed,
                                        rng_state));
}

Result<RestrictedSnapshot> ParseRestrictedSnapshot(std::string_view bytes) {
  Result<std::string_view> payload = UnwrapEnvelope(bytes, "restricted");
  if (!payload.ok()) return payload.status();
  Reader r(*payload);

  RestrictedSnapshot snap;
  snap.vocab = std::make_unique<Vocabulary>();
  snap.arena = std::make_unique<TermArena>();
  if (!r.Expect("seed") || !r.U64(&snap.seed) || !r.Expect("rng") ||
      !r.U64(&snap.rng_state) || !ReadVocab(&r, snap.vocab.get()) ||
      !ReadArena(&r, *snap.vocab, snap.arena.get())) {
    return std::move(r).TakeError();
  }
  uint64_t n = 0;
  if (!r.Expect("tgds") || !r.Count(&n)) return std::move(r).TakeError();
  for (uint64_t i = 0; i < n; ++i) {
    Tgd tgd;
    uint64_t exist = 0;
    if (!r.Expect("body") || !ReadAtoms(&r, *snap.vocab, *snap.arena,
                                        &tgd.body) ||
        !r.Expect("head") || !ReadAtoms(&r, *snap.vocab, *snap.arena,
                                        &tgd.head) ||
        !r.Expect("exist") || !r.Count(&exist)) {
      return std::move(r).TakeError();
    }
    for (uint64_t j = 0; j < exist; ++j) {
      uint32_t v = 0;
      if (!r.U32(&v)) return std::move(r).TakeError();
      if (v >= snap.vocab->num_variables()) {
        r.Fail("existential variable not in the vocabulary");
        return std::move(r).TakeError();
      }
      tgd.exist_vars.push_back(v);
    }
    snap.tgds.push_back(std::move(tgd));
  }

  snap.state = std::make_unique<RestrictedChaseState>(snap.vocab.get());
  RestrictedChaseState& state = *snap.state;
  if (!ReadCounters(&r, "engine", &state.done, &state.stop_reason,
                    &state.rounds, &state.facts_created,
                    &state.governor_steps, &state.governor_charged_bytes) ||
      !ReadInstance(&r, snap.vocab.get(), &state.instance,
                    /*spill_dir=*/"")) {
    return std::move(r).TakeError();
  }
  if (!r.Expect("end") || !r.AtEnd()) {
    r.Fail("trailing bytes after the end marker");
    return std::move(r).TakeError();
  }
  return snap;
}

Result<RestrictedSnapshot> LoadRestrictedSnapshot(const std::string& path) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return ParseRestrictedSnapshot(*bytes);
}

// ---------------------------------------------------------------------------
// PCP oracle search

std::string SerializePcpCheckpoint(const PcpSearchCheckpoint& checkpoint) {
  Writer w;
  w.Word("seeded");
  w.U64(checkpoint.seeded ? 1 : 0);
  w.Word("configs");
  w.U64(checkpoint.configs);
  w.EndLine();
  w.Word("frontier");
  w.U64(checkpoint.frontier.size());
  w.EndLine();
  for (const PcpSearchCheckpoint::Entry& e : checkpoint.frontier) {
    w.U64(e.first_longer ? 1 : 0);
    w.U64(e.overhang.size());
    for (uint32_t s : e.overhang) w.U64(s);
    w.U64(e.sequence.size());
    for (uint32_t s : e.sequence) w.U64(s);
    w.EndLine();
  }
  w.Word("seen");
  w.U64(checkpoint.seen.size());
  w.EndLine();
  for (const auto& [first_longer, overhang] : checkpoint.seen) {
    w.U64(first_longer ? 1 : 0);
    w.U64(overhang.size());
    for (uint32_t s : overhang) w.U64(s);
    w.EndLine();
  }
  w.Word("end");
  w.EndLine();
  return WrapEnvelope("pcp", std::move(w).Take());
}

Status SavePcpCheckpoint(const std::string& path,
                         const PcpSearchCheckpoint& checkpoint) {
  return AtomicWriteFile(path, SerializePcpCheckpoint(checkpoint));
}

Result<PcpSearchCheckpoint> ParsePcpCheckpoint(std::string_view bytes) {
  Result<std::string_view> payload = UnwrapEnvelope(bytes, "pcp");
  if (!payload.ok()) return payload.status();
  Reader r(*payload);

  PcpSearchCheckpoint cp;
  uint64_t seeded = 0;
  uint64_t n = 0;
  if (!r.Expect("seeded") || !r.U64(&seeded) || !r.Expect("configs") ||
      !r.U64(&cp.configs) || !r.Expect("frontier") || !r.Count(&n)) {
    return std::move(r).TakeError();
  }
  if (seeded > 1) {
    r.Fail("bad seeded flag");
    return std::move(r).TakeError();
  }
  cp.seeded = seeded == 1;
  for (uint64_t i = 0; i < n; ++i) {
    PcpSearchCheckpoint::Entry e;
    uint64_t first_longer = 0;
    uint64_t len = 0;
    if (!r.U64(&first_longer) || !r.Count(&len)) {
      return std::move(r).TakeError();
    }
    if (first_longer > 1) {
      r.Fail("bad first-longer flag");
      return std::move(r).TakeError();
    }
    e.first_longer = first_longer == 1;
    for (uint64_t j = 0; j < len; ++j) {
      uint32_t s = 0;
      if (!r.U32(&s)) return std::move(r).TakeError();
      e.overhang.push_back(s);
    }
    if (!r.Count(&len)) return std::move(r).TakeError();
    for (uint64_t j = 0; j < len; ++j) {
      uint32_t s = 0;
      if (!r.U32(&s)) return std::move(r).TakeError();
      e.sequence.push_back(s);
    }
    cp.frontier.push_back(std::move(e));
  }
  if (!r.Expect("seen") || !r.Count(&n)) return std::move(r).TakeError();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t first_longer = 0;
    uint64_t len = 0;
    if (!r.U64(&first_longer) || !r.Count(&len)) {
      return std::move(r).TakeError();
    }
    if (first_longer > 1) {
      r.Fail("bad first-longer flag");
      return std::move(r).TakeError();
    }
    std::vector<uint32_t> overhang;
    for (uint64_t j = 0; j < len; ++j) {
      uint32_t s = 0;
      if (!r.U32(&s)) return std::move(r).TakeError();
      overhang.push_back(s);
    }
    cp.seen.emplace_back(first_longer == 1, std::move(overhang));
  }
  if (!r.Expect("end") || !r.AtEnd()) {
    r.Fail("trailing bytes after the end marker");
    return std::move(r).TakeError();
  }
  return cp;
}

Result<PcpSearchCheckpoint> LoadPcpCheckpoint(const std::string& path) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return ParsePcpCheckpoint(*bytes);
}

std::string TaskCheckpointPath(const std::string& dir,
                               std::string_view task_id) {
  std::string name;
  name.reserve(task_id.size());
  for (char c : task_id) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    name += ok ? c : '_';
  }
  if (name.empty() || name[0] == '.') name.insert(name.begin(), '_');
  return Cat(dir, "/", name, ".snap");
}

}  // namespace tgdkit
