// Crash-consistent checkpoint/resume for the semi-decision engines.
//
// A snapshot is a single self-contained file: it carries the vocabulary,
// the term arena, the rules and the engine's resumable state, so a
// resumed process needs nothing but the snapshot (plus fresh limits).
// See docs/CHECKPOINTS.md for the format specification and the
// consistency model.
//
// Durability: SaveX writes through AtomicWriteFile (temp + fsync +
// rename), so a crash at any instant leaves either the previous complete
// snapshot or the new complete snapshot — never a torn file — at `path`.
// Integrity: the envelope carries the payload length and a CRC-32;
// truncated or bit-flipped files are rejected with Status::DataLoss and a
// snapshot written by a different format version with
// Status::Unsupported. Loading never crashes on corrupt input.
//
// Derived state is never serialized: the instance's per-position hash
// indexes are rebuilt fact-by-fact when the instance text is parsed back
// (ParseInstanceText routes through AddFact), and the thread pool is
// reconstructed from the resuming process's own ChaseLimits::threads —
// a snapshot written with --threads 4 resumes bit-identically under
// --threads 1 and vice versa (see docs/PARALLELISM.md).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "base/vocabulary.h"
#include "chase/chase.h"
#include "dep/dependency.h"
#include "oracle/oracle.h"
#include "term/term.h"

namespace tgdkit {

/// First line of every snapshot file: "tgdkit-snapshot v<N> <kind>".
inline constexpr std::string_view kSnapshotMagic = "tgdkit-snapshot";
inline constexpr uint32_t kSnapshotVersion = 1;

/// A loaded Skolem-chase snapshot. `state->instance` references `*vocab`;
/// the unique_ptrs keep those references stable under moves.
struct ChaseSnapshot {
  uint64_t seed = 0;
  uint64_t rng_state = 0;
  std::unique_ptr<Vocabulary> vocab;
  std::unique_ptr<TermArena> arena;
  SoTgd rules;
  std::unique_ptr<ChaseEngineState> state;
};

/// A loaded restricted-chase snapshot (round-granular; see
/// RestrictedChaseState).
struct RestrictedSnapshot {
  uint64_t seed = 0;
  uint64_t rng_state = 0;
  std::unique_ptr<Vocabulary> vocab;
  std::unique_ptr<TermArena> arena;
  std::vector<Tgd> tgds;
  std::unique_ptr<RestrictedChaseState> state;
};

// ---------------------------------------------------------------------------
// Skolem chase

/// Renders a complete snapshot file (envelope + payload) for a chase
/// engine state captured with ChaseEngine::CaptureState(). `vocab` and
/// `arena` must be the ones the engine ran over.
///
/// Spill-mode states (state.spill_instance set) serialize a SEGMENTED
/// instance section: sealed segments are referenced by file name + row
/// count + payload CRC (the files are immutable, so a checkpoint is a
/// cheap dirty-segment flush plus this small manifest), and only the
/// mutable remainder is rendered as text. Callers must flush dirty
/// segments first — SaveChaseSnapshot does.
std::string SerializeChaseSnapshot(const Vocabulary& vocab,
                                   const TermArena& arena, const SoTgd& rules,
                                   const ChaseEngineState& state,
                                   uint64_t seed, uint64_t rng_state);

/// Serializes and atomically writes a chase snapshot to `path`. For a
/// spill-mode state this first persists every dirty segment
/// (Instance::FlushDirtySegments); a segment write failure (e.g. disk
/// full) fails the checkpoint without touching `path` — the previous
/// complete snapshot survives.
Status SaveChaseSnapshot(const std::string& path, const Vocabulary& vocab,
                         const TermArena& arena, const SoTgd& rules,
                         const ChaseEngineState& state, uint64_t seed,
                         uint64_t rng_state);

/// Parses snapshot bytes. DataLoss on truncation/corruption/garbage,
/// Unsupported on a format version mismatch, InvalidArgument when the
/// file is a valid snapshot of a different kind — or when it holds a
/// segmented instance section and `spill_dir` is empty (the two-argument
/// overload). A segmented snapshot streams its segment files from
/// `spill_dir` back through AddFact, re-sealing identical segments, and
/// rejects a file that is missing, corrupt (DataLoss) or does not match
/// the recorded row count / CRC.
Result<ChaseSnapshot> ParseChaseSnapshot(std::string_view bytes);
Result<ChaseSnapshot> ParseChaseSnapshot(std::string_view bytes,
                                         const std::string& spill_dir);

/// Reads and parses a chase snapshot file.
Result<ChaseSnapshot> LoadChaseSnapshot(const std::string& path);
Result<ChaseSnapshot> LoadChaseSnapshot(const std::string& path,
                                        const std::string& spill_dir);

// ---------------------------------------------------------------------------
// Restricted chase

std::string SerializeRestrictedSnapshot(const Vocabulary& vocab,
                                        const TermArena& arena,
                                        std::span<const Tgd> tgds,
                                        const RestrictedChaseState& state,
                                        uint64_t seed, uint64_t rng_state);

Status SaveRestrictedSnapshot(const std::string& path,
                              const Vocabulary& vocab, const TermArena& arena,
                              std::span<const Tgd> tgds,
                              const RestrictedChaseState& state,
                              uint64_t seed, uint64_t rng_state);

Result<RestrictedSnapshot> ParseRestrictedSnapshot(std::string_view bytes);

Result<RestrictedSnapshot> LoadRestrictedSnapshot(const std::string& path);

// ---------------------------------------------------------------------------
// PCP oracle search

// ---------------------------------------------------------------------------
// Task-derived checkpoint paths (batch supervisor)

/// The canonical checkpoint path for a supervised task:
/// `<dir>/<task_id>.snap`, with any byte outside [A-Za-z0-9._-] in the id
/// replaced by '_' so a task id can never escape `dir`. Stable across
/// runs — the batch supervisor's resume-from-checkpoint depends on a
/// rerun deriving the same path for the same task id.
std::string TaskCheckpointPath(const std::string& dir,
                               std::string_view task_id);

// ---------------------------------------------------------------------------
// PCP oracle search

std::string SerializePcpCheckpoint(const PcpSearchCheckpoint& checkpoint);

Status SavePcpCheckpoint(const std::string& path,
                         const PcpSearchCheckpoint& checkpoint);

Result<PcpSearchCheckpoint> ParsePcpCheckpoint(std::string_view bytes);

Result<PcpSearchCheckpoint> LoadPcpCheckpoint(const std::string& path);

}  // namespace tgdkit
