// Deterministic random generators for dependencies, instances, graphs,
// QBFs and PCP instances — shared by the property tests and the benchmark
// harness. All generators take an explicit Rng so corpora are reproducible
// across platforms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"
#include "data/instance.h"
#include "dep/dependency.h"
#include "oracle/oracle.h"

namespace tgdkit {

/// Shape parameters for a generated relational schema.
struct SchemaConfig {
  uint32_t num_relations = 6;
  uint32_t min_arity = 1;
  uint32_t max_arity = 3;
};

/// A generated schema: relation ids with their arities interned in the
/// vocabulary, named G_R0, G_R1, ….
std::vector<RelationId> GenerateSchema(Vocabulary* vocab, Rng* rng,
                                       const SchemaConfig& config);

/// Shape parameters for generated tgds.
struct TgdConfig {
  uint32_t max_body_atoms = 3;
  uint32_t max_head_atoms = 2;
  uint32_t max_variables = 5;
  uint32_t max_exist_vars = 2;
  /// Percent chance that a tgd is full (no existentials).
  uint32_t full_percent = 30;
};

/// Generates a valid tgd over `relations`.
Tgd GenerateTgd(TermArena* arena, Vocabulary* vocab, Rng* rng,
                const std::vector<RelationId>& relations,
                const TgdConfig& config);

/// Generates a valid Henkin tgd over `relations`; the quantifier assigns
/// each existential a random subset of the universals, so standard, tree
/// and general quantifiers all occur.
HenkinTgd GenerateHenkinTgd(TermArena* arena, Vocabulary* vocab, Rng* rng,
                            const std::vector<RelationId>& relations,
                            const TgdConfig& config);

/// Shape parameters for generated nested tgds.
struct NestedConfig {
  uint32_t depth = 3;
  uint32_t max_children = 2;
  uint32_t max_exist_vars = 1;
};

/// Generates a valid nested tgd over `relations` with exact nesting depth
/// `config.depth` (along at least one branch).
NestedTgd GenerateNestedTgd(TermArena* arena, Vocabulary* vocab, Rng* rng,
                            const std::vector<RelationId>& relations,
                            const NestedConfig& config);

/// Generates a valid plain SO tgd with `num_parts` parts that SHARE the
/// declared function symbols across parts (the feature separating SO tgds
/// from sets of Henkin tgds). Functions are unary over body variables.
SoTgd GenerateSoTgd(TermArena* arena, Vocabulary* vocab, Rng* rng,
                    const std::vector<RelationId>& relations,
                    uint32_t num_parts, uint32_t num_functions);

/// Populates `instance` with `num_facts` random facts over `relations`
/// drawing arguments from `domain_size` constants (named G_c0, G_c1, …)
/// plus `num_nulls` fresh nulls.
void GenerateInstance(Vocabulary* vocab, Rng* rng,
                      const std::vector<RelationId>& relations,
                      uint32_t num_facts, uint32_t domain_size,
                      uint32_t num_nulls, Instance* instance);

/// Erdős–Rényi random graph.
Graph GenerateGraph(Rng* rng, uint32_t num_vertices, uint32_t edge_percent);

/// Random QBF in the Theorem 6.3 shape.
Qbf GenerateQbf(Rng* rng, uint32_t num_pairs, uint32_t num_clauses);

/// Random PCP instance with `num_pairs` pairs of words of length
/// ≤ max_word_length over an alphabet of `alphabet_size` symbols.
PcpInstance GeneratePcp(Rng* rng, uint32_t alphabet_size, uint32_t num_pairs,
                        uint32_t max_word_length);

// ---------------------------------------------------------------------------
// Adversarial scenario generators (the fuzz corpus; see docs/FUZZING.md).

/// Shape families designed to stress a different part of the pipeline
/// each: Skolem-term depth, near-divergent recursion, join fanout, guard
/// width, and the triangular-guardedness frontier.
enum class AdversarialShape : uint8_t {
  kSkolemTower = 0,      // chain of existential rules stacking Skolem terms
  kPcpNearDivergent,     // PCP-style word builder driven by a finite counter
  kHighFanoutJoin,       // transitive closure + 3-way joins over a dense graph
  kWideGuard,            // wide guard atom covering many join variables
  kTriangularFrontier,   // randomized variants of the triangular frontier
};

inline constexpr uint32_t kNumAdversarialShapes = 5;

/// Stable kebab-case name, e.g. "skolem-tower".
const char* AdversarialShapeName(AdversarialShape shape);

/// Inverse of AdversarialShapeName. False on an unknown name.
bool ParseAdversarialShapeName(const std::string& name, AdversarialShape* out);

/// Size knobs for generated scenarios. Defaults keep a single scenario's
/// chase small enough to run the whole invariant battery per seed.
struct AdversarialConfig {
  uint32_t max_tower_depth = 6;    // kSkolemTower
  uint32_t max_chain_length = 6;   // kPcpNearDivergent counter chain
  uint32_t max_guard_arity = 6;    // kWideGuard
  uint32_t domain_size = 6;        // constants d0..d<n-1>
  uint32_t instance_facts = 18;
  /// Percent chance a scenario is mutated into a (possibly) divergent
  /// variant: feedback edge, cyclic counter, broken frontier guard.
  uint32_t divergent_percent = 30;
};

/// A self-contained generated workload in the text grammar the CLI
/// parses. One statement (or fact) per line, so a line-oriented shrinker
/// can minimize it; symbol names are derived from the shape alone (no
/// process-global counters), so the same Rng state always yields the
/// same bytes.
struct AdversarialScenario {
  AdversarialShape shape = AdversarialShape::kSkolemTower;
  std::string program;   // dependency statements, one per line
  std::string instance;  // facts, one per line
  std::string query;     // conjunctive query, single line
  /// True when the Skolem chase may not reach a fixpoint; run under caps.
  bool may_diverge = false;
};

/// Generates one scenario of the given shape.
AdversarialScenario GenerateAdversarialScenario(Rng* rng,
                                                AdversarialShape shape,
                                                const AdversarialConfig& config);

/// Generates one scenario of a shape drawn uniformly from the families.
AdversarialScenario GenerateAdversarialScenario(Rng* rng,
                                                const AdversarialConfig& config);

/// Appends `num_facts` facts over `relation` (arity `arity`, constants
/// d0..d<domain_size-1>), one per line, to `*out`. Text-only (~20 bytes a
/// fact), so load-test instances scale to millions of facts without
/// building an Instance first.
void AppendScaledFactsText(Rng* rng, const std::string& relation,
                           uint32_t arity, uint64_t num_facts,
                           uint32_t domain_size, std::string* out);

}  // namespace tgdkit
