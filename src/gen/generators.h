// Deterministic random generators for dependencies, instances, graphs,
// QBFs and PCP instances — shared by the property tests and the benchmark
// harness. All generators take an explicit Rng so corpora are reproducible
// across platforms.
#pragma once

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "data/instance.h"
#include "dep/dependency.h"
#include "oracle/oracle.h"

namespace tgdkit {

/// Shape parameters for a generated relational schema.
struct SchemaConfig {
  uint32_t num_relations = 6;
  uint32_t min_arity = 1;
  uint32_t max_arity = 3;
};

/// A generated schema: relation ids with their arities interned in the
/// vocabulary, named G_R0, G_R1, ….
std::vector<RelationId> GenerateSchema(Vocabulary* vocab, Rng* rng,
                                       const SchemaConfig& config);

/// Shape parameters for generated tgds.
struct TgdConfig {
  uint32_t max_body_atoms = 3;
  uint32_t max_head_atoms = 2;
  uint32_t max_variables = 5;
  uint32_t max_exist_vars = 2;
  /// Percent chance that a tgd is full (no existentials).
  uint32_t full_percent = 30;
};

/// Generates a valid tgd over `relations`.
Tgd GenerateTgd(TermArena* arena, Vocabulary* vocab, Rng* rng,
                const std::vector<RelationId>& relations,
                const TgdConfig& config);

/// Generates a valid Henkin tgd over `relations`; the quantifier assigns
/// each existential a random subset of the universals, so standard, tree
/// and general quantifiers all occur.
HenkinTgd GenerateHenkinTgd(TermArena* arena, Vocabulary* vocab, Rng* rng,
                            const std::vector<RelationId>& relations,
                            const TgdConfig& config);

/// Shape parameters for generated nested tgds.
struct NestedConfig {
  uint32_t depth = 3;
  uint32_t max_children = 2;
  uint32_t max_exist_vars = 1;
};

/// Generates a valid nested tgd over `relations` with exact nesting depth
/// `config.depth` (along at least one branch).
NestedTgd GenerateNestedTgd(TermArena* arena, Vocabulary* vocab, Rng* rng,
                            const std::vector<RelationId>& relations,
                            const NestedConfig& config);

/// Generates a valid plain SO tgd with `num_parts` parts that SHARE the
/// declared function symbols across parts (the feature separating SO tgds
/// from sets of Henkin tgds). Functions are unary over body variables.
SoTgd GenerateSoTgd(TermArena* arena, Vocabulary* vocab, Rng* rng,
                    const std::vector<RelationId>& relations,
                    uint32_t num_parts, uint32_t num_functions);

/// Populates `instance` with `num_facts` random facts over `relations`
/// drawing arguments from `domain_size` constants (named G_c0, G_c1, …)
/// plus `num_nulls` fresh nulls.
void GenerateInstance(Vocabulary* vocab, Rng* rng,
                      const std::vector<RelationId>& relations,
                      uint32_t num_facts, uint32_t domain_size,
                      uint32_t num_nulls, Instance* instance);

/// Erdős–Rényi random graph.
Graph GenerateGraph(Rng* rng, uint32_t num_vertices, uint32_t edge_percent);

/// Random QBF in the Theorem 6.3 shape.
Qbf GenerateQbf(Rng* rng, uint32_t num_pairs, uint32_t num_clauses);

/// Random PCP instance with `num_pairs` pairs of words of length
/// ≤ max_word_length over an alphabet of `alphabet_size` symbols.
PcpInstance GeneratePcp(Rng* rng, uint32_t alphabet_size, uint32_t num_pairs,
                        uint32_t max_word_length);

}  // namespace tgdkit
