#include "gen/generators.h"

#include <algorithm>
#include <set>

#include "base/strings.h"

namespace tgdkit {

std::vector<RelationId> GenerateSchema(Vocabulary* vocab, Rng* rng,
                                       const SchemaConfig& config) {
  std::vector<RelationId> relations;
  for (uint32_t i = 0; i < config.num_relations; ++i) {
    uint32_t arity = static_cast<uint32_t>(
        rng->Range(config.min_arity, config.max_arity));
    relations.push_back(vocab->InternRelation(Cat("G_R", i), arity));
  }
  return relations;
}

namespace {

/// Builds an atom over `relation` drawing argument terms via `pick`.
template <typename Pick>
Atom MakeAtom(const Vocabulary& vocab, RelationId relation, Pick pick) {
  Atom atom;
  atom.relation = relation;
  uint32_t arity = vocab.RelationArity(relation);
  for (uint32_t i = 0; i < arity; ++i) atom.args.push_back(pick());
  return atom;
}

std::vector<VariableId> MakeVariables(Vocabulary* vocab, uint32_t count,
                                      const char* prefix) {
  std::vector<VariableId> vars;
  for (uint32_t i = 0; i < count; ++i) {
    vars.push_back(vocab->InternVariable(Cat(prefix, i)));
  }
  return vars;
}

}  // namespace

Tgd GenerateTgd(TermArena* arena, Vocabulary* vocab, Rng* rng,
                const std::vector<RelationId>& relations,
                const TgdConfig& config) {
  std::vector<VariableId> universals =
      MakeVariables(vocab, config.max_variables, "gu");
  std::vector<VariableId> existentials =
      MakeVariables(vocab, config.max_exist_vars, "ge");

  Tgd tgd;
  uint32_t body_atoms = 1 + static_cast<uint32_t>(
                                rng->Below(config.max_body_atoms));
  for (uint32_t i = 0; i < body_atoms; ++i) {
    tgd.body.push_back(MakeAtom(*vocab, rng->Pick(relations), [&] {
      return arena->MakeVariable(rng->Pick(universals));
    }));
  }
  // Universals actually used.
  std::vector<VariableId> used = CollectAtomVariables(*arena, tgd.body);

  bool full = rng->Chance(config.full_percent);
  std::set<VariableId> used_exist;
  uint32_t head_atoms = 1 + static_cast<uint32_t>(
                                rng->Below(config.max_head_atoms));
  for (uint32_t i = 0; i < head_atoms; ++i) {
    tgd.head.push_back(MakeAtom(*vocab, rng->Pick(relations), [&] {
      if (!full && rng->Chance(35)) {
        VariableId y = rng->Pick(existentials);
        used_exist.insert(y);
        return arena->MakeVariable(y);
      }
      return arena->MakeVariable(rng->Pick(used));
    }));
  }
  tgd.exist_vars.assign(used_exist.begin(), used_exist.end());
  return tgd;
}

HenkinTgd GenerateHenkinTgd(TermArena* arena, Vocabulary* vocab, Rng* rng,
                            const std::vector<RelationId>& relations,
                            const TgdConfig& config) {
  std::vector<VariableId> universals =
      MakeVariables(vocab, config.max_variables, "hu");
  std::vector<VariableId> existentials =
      MakeVariables(vocab, config.max_exist_vars, "he");

  HenkinTgd henkin;
  uint32_t body_atoms = 1 + static_cast<uint32_t>(
                                rng->Below(config.max_body_atoms));
  std::vector<Atom> body;
  for (uint32_t i = 0; i < body_atoms; ++i) {
    body.push_back(MakeAtom(*vocab, rng->Pick(relations), [&] {
      return arena->MakeVariable(rng->Pick(universals));
    }));
  }
  std::vector<VariableId> used = CollectAtomVariables(*arena, body);
  henkin.body = std::move(body);
  for (VariableId v : used) henkin.quantifier.AddUniversal(v);

  std::set<VariableId> used_exist;
  uint32_t head_atoms = 1 + static_cast<uint32_t>(
                                rng->Below(config.max_head_atoms));
  for (uint32_t i = 0; i < head_atoms; ++i) {
    henkin.head.push_back(MakeAtom(*vocab, rng->Pick(relations), [&] {
      if (rng->Chance(40)) {
        VariableId y = rng->Pick(existentials);
        used_exist.insert(y);
        return arena->MakeVariable(y);
      }
      return arena->MakeVariable(rng->Pick(used));
    }));
  }
  for (VariableId y : used_exist) {
    henkin.quantifier.AddExistential(y);
    // Random dependency set: each universal precedes y with 50% chance.
    for (VariableId x : used) {
      if (rng->Chance(50)) henkin.quantifier.AddOrder(x, y);
    }
  }
  return henkin;
}

namespace {

NestedNode GenerateNestedNode(TermArena* arena, Vocabulary* vocab, Rng* rng,
                              const std::vector<RelationId>& relations,
                              const NestedConfig& config, uint32_t depth,
                              uint32_t* counter,
                              std::vector<VariableId> scope,
                              std::vector<VariableId> head_scope) {
  NestedNode node;
  // One or two fresh universals with a body atom binding them.
  uint32_t num_univ = 1 + static_cast<uint32_t>(rng->Below(2));
  for (uint32_t i = 0; i < num_univ; ++i) {
    node.univ_vars.push_back(vocab->InternVariable(Cat("nu", (*counter)++)));
  }
  // Body: one atom using all new universals (ensuring validity), possibly
  // mixing in outer variables.
  std::vector<VariableId> pool = scope;
  pool.insert(pool.end(), node.univ_vars.begin(), node.univ_vars.end());
  uint32_t next_univ = 0;
  node.body.push_back(MakeAtom(*vocab, rng->Pick(relations), [&] {
    if (next_univ < node.univ_vars.size()) {
      return arena->MakeVariable(node.univ_vars[next_univ++]);
    }
    return arena->MakeVariable(rng->Pick(pool));
  }));
  // The chosen relation's arity might be smaller than num_univ; trim the
  // unbound universals.
  while (next_univ < node.univ_vars.size()) node.univ_vars.pop_back();
  pool = scope;
  pool.insert(pool.end(), node.univ_vars.begin(), node.univ_vars.end());

  uint32_t num_exist = static_cast<uint32_t>(
      rng->Below(config.max_exist_vars + 1));
  if (depth == 1 && num_exist == 0) num_exist = 1;  // leaves conclude atoms
  for (uint32_t i = 0; i < num_exist; ++i) {
    node.exist_vars.push_back(vocab->InternVariable(Cat("ne", (*counter)++)));
  }
  // Heads may additionally use outer existentials and this part's own.
  std::vector<VariableId> head_pool = head_scope;
  head_pool.insert(head_pool.end(), node.univ_vars.begin(),
                   node.univ_vars.end());
  head_pool.insert(head_pool.end(), node.exist_vars.begin(),
                   node.exist_vars.end());
  node.head_atoms.push_back(MakeAtom(*vocab, rng->Pick(relations), [&] {
    return arena->MakeVariable(rng->Pick(head_pool));
  }));

  if (depth > 1) {
    uint32_t children = 1 + static_cast<uint32_t>(
                                rng->Below(config.max_children));
    for (uint32_t i = 0; i < children; ++i) {
      // The first child continues to full depth; others get random depth.
      uint32_t child_depth =
          i == 0 ? depth - 1
                 : 1 + static_cast<uint32_t>(rng->Below(depth - 1));
      // Child bodies may use universals only (the grammar's X variables).
      node.children.push_back(GenerateNestedNode(arena, vocab, rng,
                                                 relations, config,
                                                 child_depth, counter, pool,
                                                 head_pool));
    }
  }
  return node;
}

}  // namespace

NestedTgd GenerateNestedTgd(TermArena* arena, Vocabulary* vocab, Rng* rng,
                            const std::vector<RelationId>& relations,
                            const NestedConfig& config) {
  uint32_t counter = 0;
  NestedTgd nested;
  nested.root = GenerateNestedNode(arena, vocab, rng, relations, config,
                                   std::max<uint32_t>(config.depth, 1),
                                   &counter, {}, {});
  return nested;
}

SoTgd GenerateSoTgd(TermArena* arena, Vocabulary* vocab, Rng* rng,
                    const std::vector<RelationId>& relations,
                    uint32_t num_parts, uint32_t num_functions) {
  SoTgd so;
  static uint32_t generation = 0;
  ++generation;
  for (uint32_t i = 0; i < num_functions; ++i) {
    so.functions.push_back(
        vocab->InternFunction(Cat("sg", generation, "_", i), 1));
  }
  for (uint32_t part_index = 0; part_index < num_parts; ++part_index) {
    SoPart part;
    std::vector<VariableId> vars =
        MakeVariables(vocab, 3, Cat("sv", part_index, "_").c_str());
    uint32_t body_atoms = 1 + static_cast<uint32_t>(rng->Below(2));
    for (uint32_t i = 0; i < body_atoms; ++i) {
      part.body.push_back(MakeAtom(*vocab, rng->Pick(relations), [&] {
        return arena->MakeVariable(rng->Pick(vars));
      }));
    }
    std::vector<VariableId> used = CollectAtomVariables(*arena, part.body);
    part.head.push_back(MakeAtom(*vocab, rng->Pick(relations), [&] {
      TermId base = arena->MakeVariable(rng->Pick(used));
      if (rng->Chance(55)) {
        return arena->MakeFunction(rng->Pick(so.functions),
                                   std::vector<TermId>{base});
      }
      return base;
    }));
    so.parts.push_back(std::move(part));
  }
  return so;
}

void GenerateInstance(Vocabulary* vocab, Rng* rng,
                      const std::vector<RelationId>& relations,
                      uint32_t num_facts, uint32_t domain_size,
                      uint32_t num_nulls, Instance* instance) {
  std::vector<Value> domain;
  for (uint32_t i = 0; i < domain_size; ++i) {
    domain.push_back(Value::Constant(vocab->InternConstant(Cat("G_c", i))));
  }
  for (uint32_t i = 0; i < num_nulls; ++i) {
    domain.push_back(instance->FreshNull());
  }
  for (uint32_t i = 0; i < num_facts; ++i) {
    RelationId relation = rng->Pick(relations);
    std::vector<Value> args;
    for (uint32_t j = 0; j < vocab->RelationArity(relation); ++j) {
      args.push_back(rng->Pick(domain));
    }
    instance->AddFact(relation, args);
  }
}

Graph GenerateGraph(Rng* rng, uint32_t num_vertices, uint32_t edge_percent) {
  Graph graph;
  graph.num_vertices = num_vertices;
  for (uint32_t a = 0; a < num_vertices; ++a) {
    for (uint32_t b = a + 1; b < num_vertices; ++b) {
      if (rng->Chance(edge_percent)) graph.edges.push_back({a, b});
    }
  }
  return graph;
}

Qbf GenerateQbf(Rng* rng, uint32_t num_pairs, uint32_t num_clauses) {
  Qbf qbf;
  qbf.num_pairs = num_pairs;
  for (uint32_t c = 0; c < num_clauses; ++c) {
    std::array<QbfLiteral, 3> clause;
    for (int l = 0; l < 3; ++l) {
      clause[l].kind = rng->Chance(50) ? QbfLiteral::Kind::kUniversal
                                       : QbfLiteral::Kind::kExistential;
      clause[l].index = static_cast<uint32_t>(rng->Below(num_pairs));
      clause[l].negated = rng->Chance(50);
    }
    qbf.clauses.push_back(clause);
  }
  return qbf;
}

// ---------------------------------------------------------------------------
// Adversarial scenario generators (docs/FUZZING.md)

const char* AdversarialShapeName(AdversarialShape shape) {
  switch (shape) {
    case AdversarialShape::kSkolemTower:
      return "skolem-tower";
    case AdversarialShape::kPcpNearDivergent:
      return "pcp-near-divergent";
    case AdversarialShape::kHighFanoutJoin:
      return "high-fanout-join";
    case AdversarialShape::kWideGuard:
      return "wide-guard";
    case AdversarialShape::kTriangularFrontier:
      return "triangular-frontier";
  }
  return "?";
}

bool ParseAdversarialShapeName(const std::string& name,
                               AdversarialShape* out) {
  for (uint32_t i = 0; i < kNumAdversarialShapes; ++i) {
    AdversarialShape shape = static_cast<AdversarialShape>(i);
    if (name == AdversarialShapeName(shape)) {
      *out = shape;
      return true;
    }
  }
  return false;
}

namespace {

/// One random constant name from the scenario domain d0..d<n-1>.
std::string Dom(Rng* rng, uint32_t domain_size) {
  return Cat("d", rng->Below(std::max<uint32_t>(domain_size, 1)));
}

/// Deep Skolem towers: a chain t_i: T_i(x, y) -> exists u . T_{i+1}(y, u)
/// stacks one Skolem level per relation. The divergent mutation feeds the
/// top back into the bottom, closing a cycle through the special edges.
AdversarialScenario TowerScenario(Rng* rng, const AdversarialConfig& c) {
  AdversarialScenario s;
  s.shape = AdversarialShape::kSkolemTower;
  uint32_t depth = static_cast<uint32_t>(
      rng->Range(2, std::max<uint32_t>(c.max_tower_depth, 2)));
  s.program += "t0: T0(x) -> exists u . T1(x, u) .\n";
  for (uint32_t i = 1; i < depth; ++i) {
    s.program += Cat("t", i, ": T", i, "(x, y) -> exists u . T", i + 1,
                     "(y, u) .\n");
  }
  s.program += Cat("collect: T", depth, "(x, y) -> Top(x) .\n");
  if (rng->Chance(c.divergent_percent)) {
    s.program += Cat("back: T", depth, "(x, y) -> T1(y, x) .\n");
    s.may_diverge = true;
  }
  uint32_t facts = std::max<uint32_t>(c.instance_facts, 2);
  for (uint32_t i = 0; i < facts; ++i) {
    if (rng->Chance(70)) {
      s.instance += Cat("T0(", Dom(rng, c.domain_size), ") .\n");
    } else {
      s.instance += Cat("T1(", Dom(rng, c.domain_size), ", ",
                        Dom(rng, c.domain_size), ") .\n");
    }
  }
  s.query = "ans(x) :- Top(x).";
  return s;
}

/// PCP-style near-divergence: word-building rules whose Skolem terms grow
/// one letter per counter step; the finite Cnt chain makes the chase
/// terminate even though the position graph has a special self-loop (the
/// analyzer tier is exponential, not polynomial). The divergent mutation
/// makes the counter cyclic.
AdversarialScenario PcpScenario(Rng* rng, const AdversarialConfig& c) {
  AdversarialScenario s;
  s.shape = AdversarialShape::kPcpNearDivergent;
  uint32_t chain = static_cast<uint32_t>(
      rng->Range(3, std::max<uint32_t>(c.max_chain_length, 3)));
  s.program +=
      "build: so exists fa, fb {"
      " Cnt(x, y) & A(x) & Str(x, s) -> Str(y, fa(s)) ;"
      " Cnt(x, y) & B(x) & Str(x, s) -> Str(y, fb(s)) } .\n";
  s.program += "seen: Str(x, s) -> Seen(x) .\n";
  if (rng->Chance(c.divergent_percent)) {
    s.program += "loop: Cnt(x, y) -> Cnt(y, x) .\n";
    s.may_diverge = true;
  }
  for (uint32_t i = 0; i < chain; ++i) {
    s.instance += Cat("Cnt(k", i, ", k", i + 1, ") .\n");
    s.instance += Cat(rng->Chance(50) ? "A" : "B", "(k", i, ") .\n");
  }
  s.instance += "Str(k0, word0) .\n";
  if (rng->Chance(40)) s.instance += "Str(k1, word1) .\n";
  s.query = "ans(x) :- Seen(x).";
  return s;
}

/// High-fanout joins: transitive closure plus a 3-way chain join over a
/// dense edge relation; an existential rule mints one null per (J, E)
/// match. The divergent mutation feeds the nulls back into the edge
/// relation.
AdversarialScenario FanoutScenario(Rng* rng, const AdversarialConfig& c) {
  AdversarialScenario s;
  s.shape = AdversarialShape::kHighFanoutJoin;
  s.program += "tc: E(x, y) & E(y, z) -> E(x, z) .\n";
  s.program += "j3: E(x0, x1) & E(x1, x2) & E(x2, x3) -> J(x0, x3) .\n";
  s.program += "mk: J(x, y) & E(y, z) -> exists w . P(x, w) .\n";
  if (rng->Chance(c.divergent_percent)) {
    s.program += "fb: P(x, w) -> exists v . E(w, v) .\n";
    s.may_diverge = true;
  }
  uint32_t dom = std::max<uint32_t>(c.domain_size, 4);
  // A guaranteed 4-node chain so J (and mk's nulls) are non-empty ...
  for (uint32_t i = 0; i + 1 < 4; ++i) {
    s.instance += Cat("E(d", i, ", d", i + 1, ") .\n");
  }
  // ... plus random fanout edges.
  uint32_t facts = std::max<uint32_t>(c.instance_facts, 3);
  for (uint32_t i = 0; i < facts; ++i) {
    s.instance += Cat("E(", Dom(rng, dom), ", ", Dom(rng, dom), ") .\n");
  }
  s.query = "ans(x, y) :- J(x, y).";
  return s;
}

/// Wide guards: every rule's join variables are covered by one wide G
/// atom. The divergent mutation recycles the minted null into the guard's
/// first position, closing a special cycle G.0 -> H.1 -> G.0.
AdversarialScenario WideGuardScenario(Rng* rng, const AdversarialConfig& c) {
  AdversarialScenario s;
  s.shape = AdversarialShape::kWideGuard;
  uint32_t arity = static_cast<uint32_t>(
      rng->Range(3, std::max<uint32_t>(c.max_guard_arity, 3)));
  std::string g_vars;  // "x0, x1, ..."
  for (uint32_t i = 0; i < arity; ++i) {
    if (i) g_vars += ", ";
    g_vars += Cat("x", i);
  }
  s.program += Cat("w1: G(", g_vars, ") -> exists u . H(x0, u) .\n");
  s.program += Cat("w2: G(", g_vars, ") & H(x0, u) -> D(u, x1) .\n");
  s.program += "w3: D(u, x) -> K(x) .\n";
  if (rng->Chance(c.divergent_percent)) {
    std::string tail;  // "x1, ..., x<arity-1>"
    for (uint32_t i = 1; i < arity; ++i) {
      tail += ", ";
      tail += Cat("x", i);
    }
    s.program += Cat("w4: G(", g_vars, ") & H(x0, u) -> G(u", tail, ") .\n");
    s.may_diverge = true;
  }
  uint32_t facts = std::max<uint32_t>(c.instance_facts / 2, 2);
  for (uint32_t i = 0; i < facts; ++i) {
    std::string args;
    for (uint32_t j = 0; j < arity; ++j) {
      if (j) args += ", ";
      args += Dom(rng, c.domain_size);
    }
    s.instance += Cat("G(", args, ") .\n");
  }
  s.instance += Cat("H(", Dom(rng, c.domain_size), ", ",
                    Dom(rng, c.domain_size), ") .\n");
  s.query = "ans(x) :- K(x).";
  return s;
}

/// The triangular-guardedness frontier (corpus/triangular_frontier.tgd):
/// the base variant is a member of ONLY the triangularly-guarded class;
/// the mutation joins two marked component positions in the generating
/// rule, so neither per-component discipline holds and TG fails too.
AdversarialScenario FrontierScenario(Rng* rng, const AdversarialConfig& c) {
  AdversarialScenario s;
  s.shape = AdversarialShape::kTriangularFrontier;
  bool broken = rng->Chance(c.divergent_percent);
  s.program += Cat(
      "frontier: so exists fv, fp, fq { ",
      broken ? "ga(x, y) & ga(y, z) -> ga(z, fv(x, y))"
             : "ga(x, y) -> ga(y, fv(x, y))",
      " ; hub(x) -> link(fp(x), fq(x))"
      " ; link(x, u) & link(u, y) -> out(x, y) } .\n");
  if (rng->Chance(50)) s.program += "echo: out(x, y) -> Seen(x) .\n";
  uint32_t hubs = 1 + static_cast<uint32_t>(rng->Below(4));
  for (uint32_t i = 0; i < hubs; ++i) {
    s.instance += Cat("hub(", Dom(rng, c.domain_size), ") .\n");
  }
  for (uint32_t i = 0; i < 3; ++i) {
    s.instance += Cat("link(", Dom(rng, c.domain_size), ", ",
                      Dom(rng, c.domain_size), ") .\n");
  }
  if (rng->Chance(50)) {
    // Any ga fact makes the generating loop run away: divergent.
    s.instance += Cat("ga(", Dom(rng, c.domain_size), ", ",
                      Dom(rng, c.domain_size), ") .\n");
    if (broken) {
      s.instance += Cat("ga(", Dom(rng, c.domain_size), ", ",
                        Dom(rng, c.domain_size), ") .\n");
    }
    s.may_diverge = true;
  }
  s.query = "ans(x, y) :- out(x, y).";
  return s;
}

}  // namespace

AdversarialScenario GenerateAdversarialScenario(
    Rng* rng, AdversarialShape shape, const AdversarialConfig& config) {
  switch (shape) {
    case AdversarialShape::kSkolemTower:
      return TowerScenario(rng, config);
    case AdversarialShape::kPcpNearDivergent:
      return PcpScenario(rng, config);
    case AdversarialShape::kHighFanoutJoin:
      return FanoutScenario(rng, config);
    case AdversarialShape::kWideGuard:
      return WideGuardScenario(rng, config);
    case AdversarialShape::kTriangularFrontier:
      return FrontierScenario(rng, config);
  }
  return TowerScenario(rng, config);
}

AdversarialScenario GenerateAdversarialScenario(
    Rng* rng, const AdversarialConfig& config) {
  AdversarialShape shape = static_cast<AdversarialShape>(
      rng->Below(kNumAdversarialShapes));
  return GenerateAdversarialScenario(rng, shape, config);
}

void AppendScaledFactsText(Rng* rng, const std::string& relation,
                           uint32_t arity, uint64_t num_facts,
                           uint32_t domain_size, std::string* out) {
  uint32_t dom = std::max<uint32_t>(domain_size, 1);
  out->reserve(out->size() + num_facts * (relation.size() + 8ull * arity + 4));
  for (uint64_t i = 0; i < num_facts; ++i) {
    *out += relation;
    *out += '(';
    for (uint32_t j = 0; j < arity; ++j) {
      if (j) *out += ", ";
      *out += Cat("d", rng->Below(dom));
    }
    *out += ") .\n";
  }
}

PcpInstance GeneratePcp(Rng* rng, uint32_t alphabet_size, uint32_t num_pairs,
                        uint32_t max_word_length) {
  PcpInstance pcp;
  pcp.alphabet_size = alphabet_size;
  for (uint32_t i = 0; i < num_pairs; ++i) {
    std::vector<uint32_t> w1, w2;
    uint32_t len1 = static_cast<uint32_t>(rng->Range(0, max_word_length));
    uint32_t len2 = static_cast<uint32_t>(rng->Range(0, max_word_length));
    if (len1 == 0 && len2 == 0) len1 = 1;
    for (uint32_t j = 0; j < len1; ++j) {
      w1.push_back(1 + static_cast<uint32_t>(rng->Below(alphabet_size)));
    }
    for (uint32_t j = 0; j < len2; ++j) {
      w2.push_back(1 + static_cast<uint32_t>(rng->Below(alphabet_size)));
    }
    pcp.pairs.push_back({std::move(w1), std::move(w2)});
  }
  return pcp;
}

}  // namespace tgdkit
