#include "data/instance.h"

#include <algorithm>
#include <cassert>
#include <cctype>

#include "base/strings.h"

namespace tgdkit {

Instance::Instance(const Vocabulary* vocab) : vocab_(vocab) {}

Instance::RelationData& Instance::GetOrCreate(RelationId relation) {
  auto it = relations_.find(relation);
  if (it != relations_.end()) return it->second;
  RelationData& data = relations_[relation];
  data.arity = vocab_->RelationArity(relation);
  assert(data.arity >= 1 && "0-ary relations are not supported");
  data.position_index.resize(data.arity);
  active_relations_.push_back(relation);
  return data;
}

size_t Instance::TupleHash(std::span<const Value> args) {
  size_t seed = 0x9e3779b9u;
  for (Value v : args) HashCombine(&seed, v.raw());
  return seed;
}

bool Instance::AddFact(RelationId relation, std::span<const Value> args) {
  RelationData& data = GetOrCreate(relation);
  assert(args.size() == data.arity && "fact arity mismatch");
  size_t h = TupleHash(args);
  auto bucket_it = data.dedup.find(h);
  if (bucket_it != data.dedup.end()) {
    for (uint32_t row : bucket_it->second) {
      const Value* tuple = data.flat.data() + size_t(row) * data.arity;
      if (std::equal(args.begin(), args.end(), tuple)) return false;
    }
  }
  uint32_t row = static_cast<uint32_t>(data.NumTuples());
  data.flat.insert(data.flat.end(), args.begin(), args.end());
  std::vector<uint32_t>& bucket = data.dedup[h];
  if (bucket.empty()) index_bytes_ += kIndexNodeBytes;
  bucket.push_back(row);
  index_bytes_ += sizeof(uint32_t);
  for (uint32_t pos = 0; pos < data.arity; ++pos) {
    std::vector<uint32_t>& posting = data.position_index[pos][args[pos]];
    if (posting.empty()) index_bytes_ += kIndexNodeBytes;
    posting.push_back(row);
    index_bytes_ += sizeof(uint32_t);
  }
  row_bytes_ += args.size() * sizeof(Value) + kRowOverheadBytes;
  return true;
}

bool Instance::Contains(RelationId relation,
                        std::span<const Value> args) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return false;
  const RelationData& data = it->second;
  if (args.size() != data.arity) return false;
  auto bucket_it = data.dedup.find(TupleHash(args));
  if (bucket_it == data.dedup.end()) return false;
  for (uint32_t row : bucket_it->second) {
    const Value* tuple = data.flat.data() + size_t(row) * data.arity;
    if (std::equal(args.begin(), args.end(), tuple)) return true;
  }
  return false;
}

Value Instance::FreshNull(std::string label) {
  uint32_t index = static_cast<uint32_t>(null_labels_.size());
  null_labels_.push_back(std::move(label));
  return Value::Null(index);
}

void Instance::EnsureNulls(uint32_t count) {
  while (null_labels_.size() < count) null_labels_.emplace_back();
}

size_t Instance::NumTuples(RelationId relation) const {
  auto it = relations_.find(relation);
  return it == relations_.end() ? 0 : it->second.NumTuples();
}

size_t Instance::NumFacts() const {
  size_t total = 0;
  for (const auto& [rel, data] : relations_) total += data.NumTuples();
  return total;
}

std::span<const Value> Instance::Tuple(RelationId relation,
                                       uint32_t row) const {
  const RelationData& data = relations_.at(relation);
  return {data.flat.data() + size_t(row) * data.arity, data.arity};
}

const std::vector<uint32_t>& Instance::RowsWithValue(RelationId relation,
                                                     uint32_t position,
                                                     Value value) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return empty_rows_;
  const RelationData& data = it->second;
  assert(position < data.arity);
  auto vit = data.position_index[position].find(value);
  if (vit == data.position_index[position].end()) return empty_rows_;
  return vit->second;
}

std::vector<Value> Instance::ActiveDomain() const {
  std::unordered_set<uint32_t> seen;
  std::vector<Value> out;
  for (const auto& [rel, data] : relations_) {
    for (Value v : data.flat) {
      if (seen.insert(v.raw()).second) out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Fact> Instance::AllFacts() const {
  std::vector<Fact> out;
  out.reserve(NumFacts());
  for (RelationId rel : active_relations_) {
    const RelationData& data = relations_.at(rel);
    size_t n = data.NumTuples();
    for (size_t row = 0; row < n; ++row) {
      Fact f;
      f.relation = rel;
      const Value* tuple = data.flat.data() + row * data.arity;
      f.args.assign(tuple, tuple + data.arity);
      out.push_back(std::move(f));
    }
  }
  return out;
}

namespace {

/// Plain constants render bare; anything else is quoted so the canonical
/// text parses back. Plain = identifier ([A-Za-z][A-Za-z0-9_$]*) or
/// integer; a leading '_' would collide with null syntax.
bool IsPlainConstantName(const std::string& name) {
  if (name.empty()) return false;
  unsigned char first = static_cast<unsigned char>(name[0]);
  if (std::isdigit(first)) {
    return std::all_of(name.begin(), name.end(), [](unsigned char c) {
      return std::isdigit(c);
    });
  }
  if (!std::isalpha(first)) return false;
  return std::all_of(name.begin() + 1, name.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '_' || c == '$';
  });
}

std::string QuoteConstantName(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += "\"";
  return out;
}

}  // namespace

std::string Instance::ValueToString(Value v) const {
  if (!v.valid()) return "<invalid>";
  if (v.is_constant()) {
    const std::string& name = vocab_->ConstantName(v.index());
    return IsPlainConstantName(name) ? name : QuoteConstantName(name);
  }
  const std::string& label = null_labels_[v.index()];
  if (!label.empty()) return Cat("_", label);
  return Cat("_N", v.index());
}

std::string Instance::ToString() const {
  std::vector<std::string> lines;
  for (const Fact& f : AllFacts()) {
    std::string line = vocab_->RelationName(f.relation);
    line += "(";
    line += JoinMapped(f.args, ", ",
                       [&](Value v) { return ValueToString(v); });
    line += ")";
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

std::string Instance::ToExactText() const {
  std::string out;
  for (const Fact& f : AllFacts()) {
    out += vocab_->RelationName(f.relation);
    out += "(";
    out += JoinMapped(f.args, ", ", [&](Value v) {
      if (v.is_null()) return Cat("_N", v.index());
      return ValueToString(v);
    });
    out += ")\n";
  }
  return out;
}

void CopyFacts(const Instance& src, Instance* dst) {
  dst->EnsureNulls(src.num_nulls());
  for (const Fact& f : src.AllFacts()) dst->AddFact(f);
}

namespace {

/// Minimal scanner for the canonical instance text. Kept separate from
/// parse/lexer.h: the canonical form has no statement dots, supports
/// string escapes, and must stay available to the snapshot loader without
/// pulling the full dependency parser into the data layer.
class CanonicalScanner {
 public:
  explicit CanonicalScanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool TryConsume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(
        Cat("instance text line ", line_, ": ", what));
  }

  /// Identifier or integer token ([A-Za-z0-9_$]+ starting appropriately).
  bool ReadWord(std::string* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (std::isalnum(c) || c == '_' || c == '$') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return false;
    out->assign(text_.substr(start, pos_ - start));
    return true;
  }

  /// Quoted constant with \" \\ \n escapes. Call after peeking '"'.
  Status ReadQuoted(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        if (e == 'n') {
          out->push_back('\n');
        } else {
          out->push_back(e);  // \" and \\ (and identity for others)
        }
        continue;
      }
      if (c == '\n') ++line_;
      out->push_back(c);
    }
    return Error("unterminated quoted constant");
  }

  bool PeekIs(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
};

/// True iff `label` has the reserved indexed-null spelling N<digits>.
bool ParseIndexedNull(const std::string& label, uint32_t* index) {
  if (label.size() < 2 || label[0] != 'N') return false;
  uint64_t value = 0;
  for (size_t i = 1; i < label.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(label[i]);
    if (!std::isdigit(c)) return false;
    value = value * 10 + (c - '0');
    if (value > 0x7fffffffu) return false;
  }
  *index = static_cast<uint32_t>(value);
  return true;
}

}  // namespace

Status ParseInstanceText(std::string_view text, Vocabulary* vocab,
                         Instance* out) {
  CanonicalScanner scan(text);
  // Labeled nulls resolve to the first existing null with that label.
  std::unordered_map<std::string, Value> labels;
  for (uint32_t i = 0; i < out->num_nulls(); ++i) {
    const std::string& label = out->NullLabel(i);
    if (!label.empty()) labels.emplace(label, Value::Null(i));
  }

  while (!scan.AtEnd()) {
    std::string relation_name;
    if (!scan.ReadWord(&relation_name) || relation_name.empty() ||
        std::isdigit(static_cast<unsigned char>(relation_name[0])) ||
        relation_name[0] == '_') {
      return scan.Error("expected relation name");
    }
    if (!scan.TryConsume('(')) return scan.Error("expected '('");
    std::vector<Value> args;
    if (!scan.PeekIs(')')) {
      for (;;) {
        if (scan.PeekIs('"')) {
          std::string name;
          TGDKIT_RETURN_IF_ERROR(scan.ReadQuoted(&name));
          args.push_back(Value::Constant(vocab->InternConstant(name)));
        } else {
          std::string word;
          if (!scan.ReadWord(&word)) {
            return scan.Error("expected constant or null argument");
          }
          if (word[0] == '_') {
            std::string label = word.substr(1);
            uint32_t index = 0;
            if (ParseIndexedNull(label, &index)) {
              out->EnsureNulls(index + 1);
              args.push_back(Value::Null(index));
            } else {
              auto it = labels.find(label);
              if (it == labels.end()) {
                it = labels.emplace(label, out->FreshNull(label)).first;
              }
              args.push_back(it->second);
            }
          } else {
            args.push_back(Value::Constant(vocab->InternConstant(word)));
          }
        }
        if (scan.TryConsume(',')) continue;
        break;
      }
    }
    if (!scan.TryConsume(')')) return scan.Error("expected ')'");
    if (args.empty()) return scan.Error("0-ary facts are not supported");
    uint32_t arity = static_cast<uint32_t>(args.size());
    RelationId existing = vocab->FindRelation(relation_name);
    if (existing != kInvalidSymbol &&
        vocab->RelationArity(existing) != arity) {
      return scan.Error(Cat("relation '", relation_name,
                            "' used with arity ", arity, " but declared ",
                            vocab->RelationArity(existing)));
    }
    out->AddFact(vocab->InternRelation(relation_name, arity), args);
  }
  return Status::Ok();
}

}  // namespace tgdkit
