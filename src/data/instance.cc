#include "data/instance.h"

#include <algorithm>
#include <cassert>

#include "base/strings.h"

namespace tgdkit {

Instance::Instance(const Vocabulary* vocab) : vocab_(vocab) {}

Instance::RelationData& Instance::GetOrCreate(RelationId relation) {
  auto it = relations_.find(relation);
  if (it != relations_.end()) return it->second;
  RelationData& data = relations_[relation];
  data.arity = vocab_->RelationArity(relation);
  assert(data.arity >= 1 && "0-ary relations are not supported");
  data.position_index.resize(data.arity);
  active_relations_.push_back(relation);
  return data;
}

size_t Instance::TupleHash(std::span<const Value> args) {
  size_t seed = 0x9e3779b9u;
  for (Value v : args) HashCombine(&seed, v.raw());
  return seed;
}

bool Instance::AddFact(RelationId relation, std::span<const Value> args) {
  RelationData& data = GetOrCreate(relation);
  assert(args.size() == data.arity && "fact arity mismatch");
  size_t h = TupleHash(args);
  auto bucket_it = data.dedup.find(h);
  if (bucket_it != data.dedup.end()) {
    for (uint32_t row : bucket_it->second) {
      const Value* tuple = data.flat.data() + size_t(row) * data.arity;
      if (std::equal(args.begin(), args.end(), tuple)) return false;
    }
  }
  uint32_t row = static_cast<uint32_t>(data.NumTuples());
  data.flat.insert(data.flat.end(), args.begin(), args.end());
  data.dedup[h].push_back(row);
  for (uint32_t pos = 0; pos < data.arity; ++pos) {
    data.position_index[pos][args[pos]].push_back(row);
  }
  // Tuple storage + one dedup row id + one index row id per position,
  // with amortized node overhead for the hash maps involved.
  approx_bytes_ += args.size() * sizeof(Value) +
                   (args.size() + 1) * sizeof(uint32_t) + kRowOverheadBytes;
  return true;
}

bool Instance::Contains(RelationId relation,
                        std::span<const Value> args) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return false;
  const RelationData& data = it->second;
  if (args.size() != data.arity) return false;
  auto bucket_it = data.dedup.find(TupleHash(args));
  if (bucket_it == data.dedup.end()) return false;
  for (uint32_t row : bucket_it->second) {
    const Value* tuple = data.flat.data() + size_t(row) * data.arity;
    if (std::equal(args.begin(), args.end(), tuple)) return true;
  }
  return false;
}

Value Instance::FreshNull(std::string label) {
  uint32_t index = static_cast<uint32_t>(null_labels_.size());
  null_labels_.push_back(std::move(label));
  return Value::Null(index);
}

void Instance::EnsureNulls(uint32_t count) {
  while (null_labels_.size() < count) null_labels_.emplace_back();
}

size_t Instance::NumTuples(RelationId relation) const {
  auto it = relations_.find(relation);
  return it == relations_.end() ? 0 : it->second.NumTuples();
}

size_t Instance::NumFacts() const {
  size_t total = 0;
  for (const auto& [rel, data] : relations_) total += data.NumTuples();
  return total;
}

std::span<const Value> Instance::Tuple(RelationId relation,
                                       uint32_t row) const {
  const RelationData& data = relations_.at(relation);
  return {data.flat.data() + size_t(row) * data.arity, data.arity};
}

const std::vector<uint32_t>& Instance::RowsWithValue(RelationId relation,
                                                     uint32_t position,
                                                     Value value) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return empty_rows_;
  const RelationData& data = it->second;
  assert(position < data.arity);
  auto vit = data.position_index[position].find(value);
  if (vit == data.position_index[position].end()) return empty_rows_;
  return vit->second;
}

std::vector<Value> Instance::ActiveDomain() const {
  std::unordered_set<uint32_t> seen;
  std::vector<Value> out;
  for (const auto& [rel, data] : relations_) {
    for (Value v : data.flat) {
      if (seen.insert(v.raw()).second) out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Fact> Instance::AllFacts() const {
  std::vector<Fact> out;
  out.reserve(NumFacts());
  for (RelationId rel : active_relations_) {
    const RelationData& data = relations_.at(rel);
    size_t n = data.NumTuples();
    for (size_t row = 0; row < n; ++row) {
      Fact f;
      f.relation = rel;
      const Value* tuple = data.flat.data() + row * data.arity;
      f.args.assign(tuple, tuple + data.arity);
      out.push_back(std::move(f));
    }
  }
  return out;
}

std::string Instance::ValueToString(Value v) const {
  if (!v.valid()) return "<invalid>";
  if (v.is_constant()) return vocab_->ConstantName(v.index());
  const std::string& label = null_labels_[v.index()];
  if (!label.empty()) return Cat("_", label);
  return Cat("_N", v.index());
}

std::string Instance::ToString() const {
  std::vector<std::string> lines;
  for (const Fact& f : AllFacts()) {
    std::string line = vocab_->RelationName(f.relation);
    line += "(";
    line += JoinMapped(f.args, ", ",
                       [&](Value v) { return ValueToString(v); });
    line += ")";
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

void CopyFacts(const Instance& src, Instance* dst) {
  dst->EnsureNulls(src.num_nulls());
  for (const Fact& f : src.AllFacts()) dst->AddFact(f);
}

}  // namespace tgdkit
