#include "data/instance.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <utility>

#include "base/fileio.h"
#include "base/strings.h"
#include "data/segment.h"

namespace tgdkit {

namespace {

/// Folds a 64-bit tuple hash to the 32 bits stored in digest entries.
uint32_t Hash32(size_t hash) {
  return static_cast<uint32_t>(hash ^ (hash >> 32));
}

/// LSM-style run maintenance: merge the trailing runs while the previous
/// run is no more than twice the size of the new one, so lookups touch
/// O(log n) runs and total merge work stays O(n log n).
void MergeDigestRuns(std::vector<std::vector<uint64_t>>* runs) {
  while (runs->size() >= 2) {
    std::vector<uint64_t>& prev = (*runs)[runs->size() - 2];
    std::vector<uint64_t>& last = runs->back();
    if (prev.size() > 2 * last.size()) break;
    std::vector<uint64_t> merged;
    merged.reserve(prev.size() + last.size());
    std::merge(prev.begin(), prev.end(), last.begin(), last.end(),
               std::back_inserter(merged));
    runs->pop_back();
    runs->back() = std::move(merged);
  }
}

using CountRun = std::vector<std::pair<uint32_t, uint32_t>>;

/// Same policy for the per-position frequency runs; entries with equal
/// value sum their counts, so a value occurs at most once per run.
void MergeCountRuns(std::vector<CountRun>* runs) {
  while (runs->size() >= 2) {
    CountRun& prev = (*runs)[runs->size() - 2];
    CountRun& last = runs->back();
    if (prev.size() > 2 * last.size()) break;
    CountRun merged;
    merged.reserve(prev.size() + last.size());
    size_t i = 0, j = 0;
    while (i < prev.size() || j < last.size()) {
      if (j >= last.size() ||
          (i < prev.size() && prev[i].first < last[j].first)) {
        merged.push_back(prev[i++]);
      } else if (i >= prev.size() || last[j].first < prev[i].first) {
        merged.push_back(last[j++]);
      } else {
        merged.emplace_back(prev[i].first, prev[i].second + last[j].second);
        ++i;
        ++j;
      }
    }
    runs->pop_back();
    runs->back() = std::move(merged);
  }
}

}  // namespace

/// Out-of-core backend state. Sealed segments are immutable runs of
/// rows_per_segment consecutive rows; the resident summaries (digest runs
/// for dedup, frequency runs for exact per-value counts, per-position
/// min/max for scan skipping) answer every query that does not need the
/// actual tuples, and EnsureHot faults a segment's payload back from its
/// file when one does.
struct Instance::SpillState {
  struct Segment {
    std::vector<Value> flat;        // hot payload; empty when cold
    std::vector<uint32_t> min_raw;  // per position, over the segment
    std::vector<uint32_t> max_raw;
    uint32_t crc32 = 0;             // payload CRC, set on flush
    bool crc_valid = false;
    bool dirty = true;              // content not yet on disk
    std::atomic<bool> hot{true};
    std::atomic<bool> accessed{true};  // second-chance bit
  };

  struct Rel {
    uint32_t arity = 0;
    uint64_t rows_per_segment = 0;
    uint64_t sealed_rows = 0;
    std::deque<Segment> segments;  // deque: stable refs across seals
    // Sorted runs of (hash32(tuple) << 32) | global_row over all sealed
    // rows: probe by hash, verify candidates through EnsureHot.
    std::vector<std::vector<uint64_t>> digest_runs;
    // Per position, sorted runs of (value raw, count). Exact: the sum
    // over runs plus the tail posting equals the in-core posting size.
    std::vector<std::vector<CountRun>> count_runs;
  };

  /// Estimated fixed overhead per sealed segment (deque slot, flags,
  /// vector headers) charged to the resident footprint.
  static constexpr uint64_t kSegmentMetaBytes = 96;

  void RecomputeMetaBytes() {
    uint64_t total = 0;
    for (const auto& [rel, sr] : relations) {
      for (const auto& run : sr.digest_runs) {
        total += run.size() * sizeof(uint64_t);
      }
      for (const auto& pos_runs : sr.count_runs) {
        for (const auto& run : pos_runs) {
          total += run.size() * sizeof(uint64_t);
        }
      }
      total += sr.segments.size() *
               (kSegmentMetaBytes + uint64_t(sr.arity) * 2 * sizeof(uint32_t));
    }
    meta_bytes = total;
  }

  SpillConfig config;
  std::unordered_map<RelationId, Rel> relations;
  // Fault path synchronization: parallel matcher workers may fault the
  // same cold segment concurrently. Eviction runs in serial phases only,
  // so a payload observed hot stays valid for the phase.
  std::mutex fault_mutex;
  std::atomic<uint64_t> hot_bytes{0};
  uint64_t meta_bytes = 0;
  size_t clock_hand = 0;
  Status io_error = Status::Ok();  // first flush failure, sticky
  std::atomic<uint64_t> faults{0};
  uint64_t evictions = 0;
  uint64_t segment_writes = 0;
  uint64_t sealed_segments = 0;
  uint64_t spilled_bytes = 0;
};

Instance::Instance(const Vocabulary* vocab) : vocab_(vocab) {}

Instance::~Instance() = default;
Instance::Instance(Instance&& other) noexcept = default;
Instance& Instance::operator=(Instance&& other) noexcept = default;

Instance::Instance(const Instance& other) : vocab_(other.vocab_) {
  *this = other;
}

Instance& Instance::operator=(const Instance& other) {
  if (this == &other) return *this;
  vocab_ = other.vocab_;
  relations_.clear();
  active_relations_.clear();
  null_labels_ = other.null_labels_;
  row_bytes_ = 0;
  index_bytes_ = 0;
  spill_.reset();
  if (!other.spill_) {
    relations_ = other.relations_;
    active_relations_ = other.active_relations_;
    row_bytes_ = other.row_bytes_;
    index_bytes_ = other.index_bytes_;
    return *this;
  }
  // Copying a spilled store materializes it in-core: re-adding the rows
  // in relation activation order and row order reproduces row ids, null
  // indexes and the activation order (there are no duplicates to skip).
  for (RelationId rel : other.active_relations_) {
    size_t n = other.NumTuples(rel);
    for (size_t row = 0; row < n; ++row) {
      AddFact(rel, other.Tuple(rel, static_cast<uint32_t>(row)));
    }
  }
  return *this;
}

Instance::RelationData& Instance::GetOrCreate(RelationId relation) {
  auto it = relations_.find(relation);
  if (it != relations_.end()) return it->second;
  RelationData& data = relations_[relation];
  data.arity = vocab_->RelationArity(relation);
  assert(data.arity >= 1 && "0-ary relations are not supported");
  data.position_index.resize(data.arity);
  active_relations_.push_back(relation);
  if (spill_) {
    SpillState::Rel& sr = spill_->relations[relation];
    sr.arity = data.arity;
    sr.rows_per_segment = std::max<uint64_t>(
        1, spill_->config.segment_bytes / (uint64_t(data.arity) *
                                           sizeof(Value)));
    sr.count_runs.resize(data.arity);
  }
  return data;
}

size_t Instance::TupleHash(std::span<const Value> args) {
  size_t seed = 0x9e3779b9u;
  for (Value v : args) HashCombine(&seed, v.raw());
  return seed;
}

bool Instance::AddFact(RelationId relation, std::span<const Value> args) {
  RelationData& data = GetOrCreate(relation);
  assert(args.size() == data.arity && "fact arity mismatch");
  size_t h = TupleHash(args);
  if (spill_ && SealedContains(relation, data, h, args)) return false;
  auto bucket_it = data.dedup.find(h);
  if (bucket_it != data.dedup.end()) {
    for (uint32_t row : bucket_it->second) {
      const Value* tuple = data.flat.data() + size_t(row) * data.arity;
      if (std::equal(args.begin(), args.end(), tuple)) return false;
    }
  }
  uint32_t row = static_cast<uint32_t>(data.NumTuples());
  data.flat.insert(data.flat.end(), args.begin(), args.end());
  std::vector<uint32_t>& bucket = data.dedup[h];
  if (bucket.empty()) index_bytes_ += kIndexNodeBytes;
  bucket.push_back(row);
  index_bytes_ += sizeof(uint32_t);
  for (uint32_t pos = 0; pos < data.arity; ++pos) {
    std::vector<uint32_t>& posting = data.position_index[pos][args[pos]];
    if (posting.empty()) index_bytes_ += kIndexNodeBytes;
    posting.push_back(row);
    index_bytes_ += sizeof(uint32_t);
  }
  row_bytes_ += args.size() * sizeof(Value) + kRowOverheadBytes;
  if (spill_) MaybeSeal(relation, data);
  return true;
}

bool Instance::Contains(RelationId relation,
                        std::span<const Value> args) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return false;
  const RelationData& data = it->second;
  if (args.size() != data.arity) return false;
  size_t h = TupleHash(args);
  auto bucket_it = data.dedup.find(h);
  if (bucket_it != data.dedup.end()) {
    for (uint32_t row : bucket_it->second) {
      const Value* tuple = data.flat.data() + size_t(row) * data.arity;
      if (std::equal(args.begin(), args.end(), tuple)) return true;
    }
  }
  return spill_ && SealedContains(relation, data, h, args);
}

Value Instance::FreshNull(std::string label) {
  uint32_t index = static_cast<uint32_t>(null_labels_.size());
  null_labels_.push_back(std::move(label));
  return Value::Null(index);
}

void Instance::EnsureNulls(uint32_t count) {
  while (null_labels_.size() < count) null_labels_.emplace_back();
}

size_t Instance::NumTuples(RelationId relation) const {
  auto it = relations_.find(relation);
  size_t n = it == relations_.end() ? 0 : it->second.NumTuples();
  if (spill_) {
    auto sit = spill_->relations.find(relation);
    if (sit != spill_->relations.end()) n += sit->second.sealed_rows;
  }
  return n;
}

size_t Instance::NumFacts() const {
  size_t total = 0;
  for (const auto& [rel, data] : relations_) total += data.NumTuples();
  if (spill_) {
    for (const auto& [rel, sr] : spill_->relations) total += sr.sealed_rows;
  }
  return total;
}

std::span<const Value> Instance::Tuple(RelationId relation,
                                       uint32_t row) const {
  const RelationData& data = relations_.at(relation);
  if (spill_) {
    auto sit = spill_->relations.find(relation);
    if (sit != spill_->relations.end() && row < sit->second.sealed_rows) {
      const SpillState::Rel& sr = sit->second;
      uint64_t segment = row / sr.rows_per_segment;
      const std::vector<Value>& flat = EnsureHot(relation, segment);
      uint64_t local = row % sr.rows_per_segment;
      return {flat.data() + local * data.arity, data.arity};
    }
    if (sit != spill_->relations.end()) {
      row -= static_cast<uint32_t>(sit->second.sealed_rows);
    }
  }
  return {data.flat.data() + size_t(row) * data.arity, data.arity};
}

const std::vector<uint32_t>& Instance::RowsWithValue(RelationId relation,
                                                     uint32_t position,
                                                     Value value) const {
  assert(!spill_ &&
         "RowsWithValue is in-core only; use CountRowsWithValue / "
         "CandidateRows on a spilled store");
  auto it = relations_.find(relation);
  if (it == relations_.end()) return empty_rows_;
  const RelationData& data = it->second;
  assert(position < data.arity);
  auto vit = data.position_index[position].find(value);
  if (vit == data.position_index[position].end()) return empty_rows_;
  return vit->second;
}

size_t Instance::CountRowsWithValue(RelationId relation, uint32_t position,
                                    Value value) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return 0;
  const RelationData& data = it->second;
  assert(position < data.arity);
  size_t count = 0;
  auto vit = data.position_index[position].find(value);
  if (vit != data.position_index[position].end()) {
    count += vit->second.size();
  }
  if (spill_) {
    auto sit = spill_->relations.find(relation);
    if (sit != spill_->relations.end()) {
      for (const CountRun& run : sit->second.count_runs[position]) {
        auto p = std::lower_bound(run.begin(), run.end(),
                                  std::make_pair(value.raw(), 0u));
        if (p != run.end() && p->first == value.raw()) count += p->second;
      }
    }
  }
  return count;
}

void Instance::CandidateRows(RelationId relation, uint32_t position,
                             Value value, std::vector<uint32_t>* out) const {
  if (!spill_) {
    const std::vector<uint32_t>& rows =
        RowsWithValue(relation, position, value);
    out->insert(out->end(), rows.begin(), rows.end());
    return;
  }
  uint64_t sealed = 0;
  auto sit = spill_->relations.find(relation);
  if (sit != spill_->relations.end()) {
    const SpillState::Rel& sr = sit->second;
    sealed = sr.sealed_rows;
    const uint32_t raw = value.raw();
    for (uint64_t s = 0; s < sr.segments.size(); ++s) {
      const SpillState::Segment& seg = sr.segments[s];
      // Range skip without faulting: the segment cannot match when the
      // value falls outside its per-position range.
      if (raw < seg.min_raw[position] || raw > seg.max_raw[position]) {
        continue;
      }
      const std::vector<Value>& flat = EnsureHot(relation, s);
      const uint64_t base = s * sr.rows_per_segment;
      for (uint64_t r = 0; r < sr.rows_per_segment; ++r) {
        if (flat[r * sr.arity + position].raw() == raw) {
          out->push_back(static_cast<uint32_t>(base + r));
        }
      }
    }
  }
  auto it = relations_.find(relation);
  if (it == relations_.end()) return;
  const RelationData& data = it->second;
  auto vit = data.position_index[position].find(value);
  if (vit == data.position_index[position].end()) return;
  for (uint32_t r : vit->second) {
    out->push_back(static_cast<uint32_t>(sealed + r));
  }
}

std::vector<Value> Instance::ActiveDomain() const {
  std::unordered_set<uint32_t> seen;
  std::vector<Value> out;
  for (const auto& [rel, data] : relations_) {
    for (Value v : data.flat) {
      if (seen.insert(v.raw()).second) out.push_back(v);
    }
  }
  if (spill_) {
    // Sealed values are exactly the keys of the frequency runs — no
    // faulting needed to enumerate the active domain.
    for (const auto& [rel, sr] : spill_->relations) {
      for (const auto& pos_runs : sr.count_runs) {
        for (const CountRun& run : pos_runs) {
          for (const auto& [raw, count] : run) {
            if (seen.insert(raw).second) out.push_back(Value::FromRaw(raw));
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Fact> Instance::AllFacts() const {
  std::vector<Fact> out;
  out.reserve(NumFacts());
  for (RelationId rel : active_relations_) {
    size_t n = NumTuples(rel);
    for (size_t row = 0; row < n; ++row) {
      std::span<const Value> tuple = Tuple(rel, static_cast<uint32_t>(row));
      Fact f;
      f.relation = rel;
      f.args.assign(tuple.begin(), tuple.end());
      out.push_back(std::move(f));
    }
  }
  return out;
}

namespace {

/// Plain constants render bare; anything else is quoted so the canonical
/// text parses back. Plain = identifier ([A-Za-z][A-Za-z0-9_$]*) or
/// integer; a leading '_' would collide with null syntax.
bool IsPlainConstantName(const std::string& name) {
  if (name.empty()) return false;
  unsigned char first = static_cast<unsigned char>(name[0]);
  if (std::isdigit(first)) {
    return std::all_of(name.begin(), name.end(), [](unsigned char c) {
      return std::isdigit(c);
    });
  }
  if (!std::isalpha(first)) return false;
  return std::all_of(name.begin() + 1, name.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '_' || c == '$';
  });
}

std::string QuoteConstantName(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += "\"";
  return out;
}

}  // namespace

std::string Instance::ValueToString(Value v) const {
  if (!v.valid()) return "<invalid>";
  if (v.is_constant()) {
    const std::string& name = vocab_->ConstantName(v.index());
    return IsPlainConstantName(name) ? name : QuoteConstantName(name);
  }
  const std::string& label = null_labels_[v.index()];
  if (!label.empty()) return Cat("_", label);
  return Cat("_N", v.index());
}

std::string Instance::ToString() const {
  std::vector<std::string> lines;
  for (const Fact& f : AllFacts()) {
    std::string line = vocab_->RelationName(f.relation);
    line += "(";
    line += JoinMapped(f.args, ", ",
                       [&](Value v) { return ValueToString(v); });
    line += ")";
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

std::string Instance::ToExactText() const {
  std::string out;
  for (const Fact& f : AllFacts()) {
    out += vocab_->RelationName(f.relation);
    out += "(";
    out += JoinMapped(f.args, ", ", [&](Value v) {
      if (v.is_null()) return Cat("_N", v.index());
      return ValueToString(v);
    });
    out += ")\n";
  }
  return out;
}

void CopyFacts(const Instance& src, Instance* dst) {
  dst->EnsureNulls(src.num_nulls());
  for (const Fact& f : src.AllFacts()) dst->AddFact(f);
}

// ---------------------------------------------------------------------------
// Out-of-core backend

Status Instance::EnableSpill(const SpillConfig& config) {
  if (spill_) {
    return Status::InvalidArgument("spill is already enabled");
  }
  if (NumFacts() != 0) {
    return Status::InvalidArgument(
        "EnableSpill requires an empty instance (facts already added)");
  }
  if (config.dir.empty()) {
    return Status::InvalidArgument("spill directory must not be empty");
  }
  if (config.segment_bytes == 0) {
    return Status::InvalidArgument("spill segment size must be positive");
  }
  spill_ = std::make_unique<SpillState>();
  spill_->config = config;
  return Status::Ok();
}

uint64_t Instance::SpillResidentBytes() const {
  return spill_->hot_bytes.load(std::memory_order_relaxed) +
         spill_->meta_bytes;
}

bool Instance::SealedContains(RelationId relation, const RelationData& data,
                              size_t hash,
                              std::span<const Value> args) const {
  auto sit = spill_->relations.find(relation);
  if (sit == spill_->relations.end() || sit->second.sealed_rows == 0) {
    return false;
  }
  const SpillState::Rel& sr = sit->second;
  const uint32_t hash32 = Hash32(hash);
  const uint64_t probe = uint64_t(hash32) << 32;
  for (const std::vector<uint64_t>& run : sr.digest_runs) {
    for (auto p = std::lower_bound(run.begin(), run.end(), probe);
         p != run.end() && (*p >> 32) == hash32; ++p) {
      const uint64_t row = *p & 0xffffffffull;
      const std::vector<Value>& flat =
          EnsureHot(relation, row / sr.rows_per_segment);
      const Value* tuple =
          flat.data() + (row % sr.rows_per_segment) * data.arity;
      if (std::equal(args.begin(), args.end(), tuple)) return true;
    }
  }
  return false;
}

void Instance::MaybeSeal(RelationId relation, RelationData& data) {
  SpillState::Rel& sr = spill_->relations.at(relation);
  if (data.NumTuples() < sr.rows_per_segment) return;
  const uint32_t arity = data.arity;
  const uint64_t rows = sr.rows_per_segment;

  // The sealed rows leave the tail: uncharge exactly what AddFact charged
  // for them and their dedup/posting entries.
  row_bytes_ -= rows * (uint64_t(arity) * sizeof(Value) + kRowOverheadBytes);
  uint64_t index_sub =
      data.dedup.size() * kIndexNodeBytes + rows * sizeof(uint32_t);
  for (const auto& m : data.position_index) {
    index_sub += m.size() * kIndexNodeBytes + rows * sizeof(uint32_t);
  }
  index_bytes_ -= index_sub;

  // Digest run over the sealed rows, with global row ids.
  std::vector<uint64_t> digest;
  digest.reserve(rows);
  for (uint64_t r = 0; r < rows; ++r) {
    const Value* tuple = data.flat.data() + r * arity;
    size_t h = TupleHash({tuple, arity});
    digest.push_back((uint64_t(Hash32(h)) << 32) | (sr.sealed_rows + r));
  }
  std::sort(digest.begin(), digest.end());
  sr.digest_runs.push_back(std::move(digest));
  MergeDigestRuns(&sr.digest_runs);

  // Frequency run per position, read off the tail posting lists before
  // they are cleared.
  for (uint32_t pos = 0; pos < arity; ++pos) {
    CountRun run;
    run.reserve(data.position_index[pos].size());
    for (const auto& [value, posting] : data.position_index[pos]) {
      run.emplace_back(value.raw(), static_cast<uint32_t>(posting.size()));
    }
    std::sort(run.begin(), run.end());
    sr.count_runs[pos].push_back(std::move(run));
    MergeCountRuns(&sr.count_runs[pos]);
  }

  // Seal: the tail's flat becomes the segment's hot payload.
  sr.segments.emplace_back();
  SpillState::Segment& seg = sr.segments.back();
  seg.flat = std::move(data.flat);
  seg.min_raw.assign(arity, 0xffffffffu);
  seg.max_raw.assign(arity, 0);
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint32_t pos = 0; pos < arity; ++pos) {
      uint32_t raw = seg.flat[r * arity + pos].raw();
      seg.min_raw[pos] = std::min(seg.min_raw[pos], raw);
      seg.max_raw[pos] = std::max(seg.max_raw[pos], raw);
    }
  }
  data.flat.clear();
  data.dedup.clear();
  for (auto& m : data.position_index) m.clear();
  sr.sealed_rows += rows;
  spill_->hot_bytes.fetch_add(rows * uint64_t(arity) * sizeof(Value),
                              std::memory_order_relaxed);
  ++spill_->sealed_segments;
  spill_->spilled_bytes += SegmentPayloadBytes(rows, arity);
  spill_->RecomputeMetaBytes();

  // Soft cap: sealing is a serial safe point, so relieve pressure here
  // (the governor's pressure hook covers the polling path).
  if (spill_->config.max_resident_bytes != 0 &&
      ApproxBytes() > spill_->config.max_resident_bytes) {
    EvictToBudget(spill_->config.max_resident_bytes);
  }
}

const std::vector<Value>& Instance::EnsureHot(RelationId relation,
                                              uint64_t segment) const {
  SpillState::Rel& sr = spill_->relations.at(relation);
  SpillState::Segment& seg = sr.segments[segment];
  if (seg.hot.load(std::memory_order_acquire)) {
    seg.accessed.store(true, std::memory_order_relaxed);
    return seg.flat;
  }
  std::lock_guard<std::mutex> lock(spill_->fault_mutex);
  if (seg.hot.load(std::memory_order_acquire)) {
    seg.accessed.store(true, std::memory_order_relaxed);
    return seg.flat;
  }
  std::string path =
      Cat(spill_->config.dir, "/",
          SegmentFileName(relation, static_cast<uint32_t>(segment)));
  auto loaded = LoadSegment(path);
  if (!loaded.ok() || loaded->relation_index != relation ||
      loaded->arity != sr.arity || loaded->rows() != sr.rows_per_segment) {
    // A segment file this store wrote (and fsynced) is unreadable or
    // swapped. The tuple read path has no Status channel and continuing
    // would silently drop facts, so fail loudly and definitely — defined
    // behavior, never UB. Reachable only through external corruption of
    // the spill directory mid-run; corruption at load time is a typed
    // error (see snapshot resume and segment_corrupt_test).
    std::fprintf(stderr, "tgdkit: fatal: spilled segment '%s' unreadable: %s\n",
                 path.c_str(),
                 loaded.ok() ? "header does not match the store"
                             : loaded.status().ToString().c_str());
    std::abort();
  }
  std::vector<Value> flat;
  flat.reserve(loaded->values.size());
  for (uint32_t raw : loaded->values) flat.push_back(Value::FromRaw(raw));
  seg.flat = std::move(flat);
  spill_->hot_bytes.fetch_add(seg.flat.size() * sizeof(Value),
                              std::memory_order_relaxed);
  spill_->faults.fetch_add(1, std::memory_order_relaxed);
  seg.accessed.store(true, std::memory_order_relaxed);
  seg.hot.store(true, std::memory_order_release);
  return seg.flat;
}

bool Instance::FlushSegment(RelationId relation, uint64_t segment) const {
  SpillState::Rel& sr = spill_->relations.at(relation);
  SpillState::Segment& seg = sr.segments[segment];
  if (!seg.dirty) return true;
  assert(seg.hot.load(std::memory_order_acquire) &&
         "a dirty segment always has its payload resident");
  std::vector<uint32_t> words;
  words.reserve(seg.flat.size());
  for (Value v : seg.flat) words.push_back(v.raw());
  std::string bytes =
      SerializeSegment(relation, sr.arity, words.data(), words.size());
  std::string path =
      Cat(spill_->config.dir, "/",
          SegmentFileName(relation, static_cast<uint32_t>(segment)));
  Status st = AtomicWriteFile(path, bytes);
  if (!st.ok()) {
    if (spill_->io_error.ok()) spill_->io_error = st;
    return false;
  }
  seg.crc32 = SegmentPayloadCrc(words.data(), words.size());
  seg.crc_valid = true;
  seg.dirty = false;
  ++spill_->segment_writes;
  return true;
}

Status Instance::FlushDirtySegments() const {
  if (!spill_) return Status::Ok();
  for (RelationId rel : active_relations_) {
    auto sit = spill_->relations.find(rel);
    if (sit == spill_->relations.end()) continue;
    for (uint64_t s = 0; s < sit->second.segments.size(); ++s) {
      if (!FlushSegment(rel, s)) return spill_->io_error;
    }
  }
  return spill_->io_error;
}

uint64_t Instance::EvictToBudget(uint64_t target_bytes) {
  if (!spill_) return 0;
  // Deterministic second-chance clock over (relation activation order,
  // segment index), with a persistent hand. The first pass over a
  // recently-used segment clears its accessed bit; the second evicts it.
  std::vector<std::pair<RelationId, uint64_t>> order;
  for (RelationId rel : active_relations_) {
    auto sit = spill_->relations.find(rel);
    if (sit == spill_->relations.end()) continue;
    for (uint64_t s = 0; s < sit->second.segments.size(); ++s) {
      order.emplace_back(rel, s);
    }
  }
  if (order.empty()) return 0;
  uint64_t freed = 0;
  size_t hand = spill_->clock_hand % order.size();
  for (size_t step = 0;
       step < 2 * order.size() && ApproxBytes() > target_bytes; ++step) {
    auto [rel, seg_index] = order[hand];
    hand = (hand + 1) % order.size();
    SpillState::Segment& seg = spill_->relations.at(rel).segments[seg_index];
    if (!seg.hot.load(std::memory_order_acquire)) continue;
    if (seg.accessed.exchange(false, std::memory_order_relaxed)) continue;
    // Persist before dropping; a failed write (e.g. ENOSPC) keeps the
    // payload resident and the error sticky, so memory pressure then
    // surfaces as the governor's ResourceExhausted stop.
    if (!FlushSegment(rel, seg_index)) continue;
    uint64_t bytes = seg.flat.size() * sizeof(Value);
    seg.hot.store(false, std::memory_order_release);
    std::vector<Value>().swap(seg.flat);
    spill_->hot_bytes.fetch_sub(bytes, std::memory_order_relaxed);
    freed += bytes;
    ++spill_->evictions;
  }
  spill_->clock_hand = hand;
  return freed;
}

void Instance::MarkAllSealedClean() {
  if (!spill_) return;
  for (auto& [rel, sr] : spill_->relations) {
    for (SpillState::Segment& seg : sr.segments) {
      if (!seg.dirty) continue;
      assert(seg.hot.load(std::memory_order_acquire));
      if (!seg.crc_valid) {
        std::vector<uint32_t> words;
        words.reserve(seg.flat.size());
        for (Value v : seg.flat) words.push_back(v.raw());
        seg.crc32 = SegmentPayloadCrc(words.data(), words.size());
        seg.crc_valid = true;
      }
      seg.dirty = false;
    }
  }
}

void Instance::SetSpillResidentCap(uint64_t max_resident_bytes) {
  if (!spill_) return;
  spill_->config.max_resident_bytes = max_resident_bytes;
}

SpillStats Instance::spill_stats() const {
  SpillStats stats;
  if (!spill_) return stats;
  stats.sealed_segments = spill_->sealed_segments;
  stats.spilled_bytes = spill_->spilled_bytes;
  stats.faults = spill_->faults.load(std::memory_order_relaxed);
  stats.evictions = spill_->evictions;
  stats.segment_writes = spill_->segment_writes;
  return stats;
}

uint64_t Instance::SpillSegmentBytes() const {
  return spill_->config.segment_bytes;
}

uint64_t Instance::SpillRowsPerSegment(RelationId relation) const {
  auto sit = spill_->relations.find(relation);
  if (sit != spill_->relations.end()) return sit->second.rows_per_segment;
  uint32_t arity = vocab_->RelationArity(relation);
  return std::max<uint64_t>(
      1, spill_->config.segment_bytes / (uint64_t(arity) * sizeof(Value)));
}

uint64_t Instance::SpillSealedRows(RelationId relation) const {
  auto sit = spill_->relations.find(relation);
  return sit == spill_->relations.end() ? 0 : sit->second.sealed_rows;
}

uint64_t Instance::SpillSealedSegments(RelationId relation) const {
  auto sit = spill_->relations.find(relation);
  return sit == spill_->relations.end() ? 0 : sit->second.segments.size();
}

Instance::SealedSegmentInfo Instance::SpillSegmentInfo(
    RelationId relation, uint64_t segment) const {
  const SpillState::Rel& sr = spill_->relations.at(relation);
  const SpillState::Segment& seg = sr.segments[segment];
  SealedSegmentInfo info;
  info.filename = SegmentFileName(relation, static_cast<uint32_t>(segment));
  info.rows = sr.rows_per_segment;
  assert(seg.crc_valid && "SpillSegmentInfo requires a flushed segment");
  info.crc32 = seg.crc32;
  return info;
}

const std::string& Instance::spill_dir() const {
  return spill_->config.dir;
}

namespace {

/// Minimal scanner for the canonical instance text. Kept separate from
/// parse/lexer.h: the canonical form has no statement dots, supports
/// string escapes, and must stay available to the snapshot loader without
/// pulling the full dependency parser into the data layer.
class CanonicalScanner {
 public:
  explicit CanonicalScanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool TryConsume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(
        Cat("instance text line ", line_, ": ", what));
  }

  /// Identifier or integer token ([A-Za-z0-9_$]+ starting appropriately).
  bool ReadWord(std::string* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (std::isalnum(c) || c == '_' || c == '$') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return false;
    out->assign(text_.substr(start, pos_ - start));
    return true;
  }

  /// Quoted constant with \" \\ \n escapes. Call after peeking '"'.
  Status ReadQuoted(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        if (e == 'n') {
          out->push_back('\n');
        } else {
          out->push_back(e);  // \" and \\ (and identity for others)
        }
        continue;
      }
      if (c == '\n') ++line_;
      out->push_back(c);
    }
    return Error("unterminated quoted constant");
  }

  bool PeekIs(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
};

/// True iff `label` has the reserved indexed-null spelling N<digits>.
bool ParseIndexedNull(const std::string& label, uint32_t* index) {
  if (label.size() < 2 || label[0] != 'N') return false;
  uint64_t value = 0;
  for (size_t i = 1; i < label.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(label[i]);
    if (!std::isdigit(c)) return false;
    value = value * 10 + (c - '0');
    if (value > 0x7fffffffu) return false;
  }
  *index = static_cast<uint32_t>(value);
  return true;
}

}  // namespace

Status ParseInstanceText(std::string_view text, Vocabulary* vocab,
                         Instance* out) {
  CanonicalScanner scan(text);
  // Labeled nulls resolve to the first existing null with that label.
  std::unordered_map<std::string, Value> labels;
  for (uint32_t i = 0; i < out->num_nulls(); ++i) {
    const std::string& label = out->NullLabel(i);
    if (!label.empty()) labels.emplace(label, Value::Null(i));
  }

  while (!scan.AtEnd()) {
    std::string relation_name;
    if (!scan.ReadWord(&relation_name) || relation_name.empty() ||
        std::isdigit(static_cast<unsigned char>(relation_name[0])) ||
        relation_name[0] == '_') {
      return scan.Error("expected relation name");
    }
    if (!scan.TryConsume('(')) return scan.Error("expected '('");
    std::vector<Value> args;
    if (!scan.PeekIs(')')) {
      for (;;) {
        if (scan.PeekIs('"')) {
          std::string name;
          TGDKIT_RETURN_IF_ERROR(scan.ReadQuoted(&name));
          args.push_back(Value::Constant(vocab->InternConstant(name)));
        } else {
          std::string word;
          if (!scan.ReadWord(&word)) {
            return scan.Error("expected constant or null argument");
          }
          if (word[0] == '_') {
            std::string label = word.substr(1);
            uint32_t index = 0;
            if (ParseIndexedNull(label, &index)) {
              out->EnsureNulls(index + 1);
              args.push_back(Value::Null(index));
            } else {
              auto it = labels.find(label);
              if (it == labels.end()) {
                it = labels.emplace(label, out->FreshNull(label)).first;
              }
              args.push_back(it->second);
            }
          } else {
            args.push_back(Value::Constant(vocab->InternConstant(word)));
          }
        }
        if (scan.TryConsume(',')) continue;
        break;
      }
    }
    if (!scan.TryConsume(')')) return scan.Error("expected ')'");
    if (args.empty()) return scan.Error("0-ary facts are not supported");
    uint32_t arity = static_cast<uint32_t>(args.size());
    RelationId existing = vocab->FindRelation(relation_name);
    if (existing != kInvalidSymbol &&
        vocab->RelationArity(existing) != arity) {
      return scan.Error(Cat("relation '", relation_name,
                            "' used with arity ", arity, " but declared ",
                            vocab->RelationArity(existing)));
    }
    out->AddFact(vocab->InternRelation(relation_name, arity), args);
  }
  return Status::Ok();
}

}  // namespace tgdkit
