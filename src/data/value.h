// Ground values appearing in database instances: constants and labeled
// nulls. A Value is a tagged 32-bit id; constants index into the
// Vocabulary's constant table, nulls index into the owning Instance's null
// space.
#pragma once

#include <cstdint>
#include <functional>

#include "base/vocabulary.h"

namespace tgdkit {

/// A constant or a labeled null. Cheap to copy; compares by identity.
class Value {
 public:
  Value() : raw_(kInvalidRaw) {}

  static Value Constant(ConstantId c) { return Value(c); }
  static Value Null(uint32_t null_index) { return Value(null_index | kNullBit); }

  bool valid() const { return raw_ != kInvalidRaw; }
  bool is_null() const { return (raw_ & kNullBit) != 0 && valid(); }
  bool is_constant() const { return valid() && !is_null(); }

  /// ConstantId for constants, null index for nulls.
  uint32_t index() const { return raw_ & ~kNullBit; }

  uint32_t raw() const { return raw_; }
  static Value FromRaw(uint32_t raw) {
    Value v;
    v.raw_ = raw;
    return v;
  }

  friend bool operator==(Value a, Value b) { return a.raw_ == b.raw_; }
  friend bool operator!=(Value a, Value b) { return a.raw_ != b.raw_; }
  friend bool operator<(Value a, Value b) { return a.raw_ < b.raw_; }

 private:
  static constexpr uint32_t kNullBit = 0x80000000u;
  static constexpr uint32_t kInvalidRaw = 0xffffffffu;

  explicit Value(uint32_t raw) : raw_(raw) {}

  uint32_t raw_;
};

struct ValueHash {
  size_t operator()(Value v) const {
    return std::hash<uint32_t>()(v.raw());
  }
};

}  // namespace tgdkit
