#include "data/segment.h"

#include <cstdio>

#include "base/fileio.h"
#include "base/strings.h"

namespace tgdkit {

namespace {

void AppendU32Le(std::string* out, uint32_t word) {
  out->push_back(static_cast<char>(word & 0xFFu));
  out->push_back(static_cast<char>((word >> 8) & 0xFFu));
  out->push_back(static_cast<char>((word >> 16) & 0xFFu));
  out->push_back(static_cast<char>((word >> 24) & 0xFFu));
}

uint32_t ReadU32Le(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

Status Torn(std::string_view what) {
  return Status::DataLoss(Cat("segment: ", what));
}

/// Pulls one space-delimited token off the front of `rest`. Empty when
/// the header line is exhausted.
std::string_view NextToken(std::string_view* rest) {
  while (!rest->empty() && rest->front() == ' ') rest->remove_prefix(1);
  size_t end = rest->find(' ');
  std::string_view token = rest->substr(0, end);
  rest->remove_prefix(end == std::string_view::npos ? rest->size() : end);
  return token;
}

bool ParseU64(std::string_view token, uint64_t* out) {
  if (token.empty()) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - (c - '0')) / 10) return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseHexU32(std::string_view token, uint32_t* out) {
  if (token.empty() || token.size() > 8) return false;
  uint32_t value = 0;
  for (char c : token) {
    uint32_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<uint32_t>(c - 'a' + 10);
    else return false;
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

}  // namespace

uint32_t SegmentPayloadCrc(const uint32_t* values, size_t num_values) {
  std::string payload;
  payload.reserve(num_values * sizeof(uint32_t));
  for (size_t i = 0; i < num_values; ++i) AppendU32Le(&payload, values[i]);
  return Crc32(payload);
}

std::string SerializeSegment(uint32_t relation_index, uint32_t arity,
                             const uint32_t* values, size_t num_values) {
  std::string payload;
  payload.reserve(num_values * sizeof(uint32_t));
  for (size_t i = 0; i < num_values; ++i) AppendU32Le(&payload, values[i]);

  char crc_hex[9];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", Crc32(payload));
  std::string out = Cat(kSegmentMagic, " v", kSegmentVersion, " rel ",
                        relation_index, " arity ", arity, " rows ",
                        arity == 0 ? 0 : num_values / arity, " crc32 ",
                        crc_hex, "\n");
  out += payload;
  return out;
}

Result<SegmentData> ParseSegment(std::string_view bytes) {
  size_t newline = bytes.find('\n');
  if (newline == std::string_view::npos) {
    return Torn("missing header line");
  }
  std::string_view header = bytes.substr(0, newline);
  std::string_view payload = bytes.substr(newline + 1);

  std::string_view rest = header;
  if (NextToken(&rest) != kSegmentMagic) {
    return Torn("bad magic");
  }
  std::string_view version = NextToken(&rest);
  if (version.size() < 2 || version.front() != 'v') {
    return Torn("bad version token");
  }
  uint64_t version_number = 0;
  if (!ParseU64(version.substr(1), &version_number)) {
    return Torn("bad version token");
  }
  if (version_number != kSegmentVersion) {
    return Status::Unsupported(
        Cat("segment: format version v", version_number,
            " is newer than this build (v", kSegmentVersion, ")"));
  }

  uint64_t relation_index = 0, arity = 0, rows = 0;
  uint32_t declared_crc = 0;
  if (NextToken(&rest) != "rel" ||
      !ParseU64(NextToken(&rest), &relation_index) ||
      NextToken(&rest) != "arity" || !ParseU64(NextToken(&rest), &arity) ||
      NextToken(&rest) != "rows" || !ParseU64(NextToken(&rest), &rows) ||
      NextToken(&rest) != "crc32" ||
      !ParseHexU32(NextToken(&rest), &declared_crc)) {
    return Torn("malformed header fields");
  }
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  if (!rest.empty()) return Torn("trailing junk in header");
  if (arity == 0 || arity > 0xFFFF) return Torn("implausible arity");

  uint64_t expected_bytes = rows * arity * sizeof(uint32_t);
  if (payload.size() != expected_bytes) {
    return Torn(Cat("payload is ", payload.size(), " bytes, header declares ",
                    expected_bytes));
  }
  if (Crc32(payload) != declared_crc) {
    return Torn("payload CRC mismatch");
  }

  SegmentData data;
  data.relation_index = static_cast<uint32_t>(relation_index);
  data.arity = static_cast<uint32_t>(arity);
  data.values.reserve(rows * arity);
  const unsigned char* p = reinterpret_cast<const unsigned char*>(
      payload.data());
  for (uint64_t i = 0; i < rows * arity; ++i) {
    data.values.push_back(ReadU32Le(p + i * sizeof(uint32_t)));
  }
  return data;
}

Result<SegmentData> LoadSegment(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  auto parsed = ParseSegment(*bytes);
  if (!parsed.ok()) {
    const Status& st = parsed.status();
    std::string msg = Cat(st.message(), " in '", path, "'");
    if (st.code() == Status::Code::kUnsupported) {
      return Status::Unsupported(std::move(msg));
    }
    return Status::DataLoss(std::move(msg));
  }
  return parsed;
}

std::string SegmentFileName(uint32_t relation_index, uint32_t segment_index) {
  return Cat("r", relation_index, "_s", segment_index, ".seg");
}

}  // namespace tgdkit
