// Database instances: finite relations over constants and labeled nulls,
// with per-position value indexes to support homomorphism search and the
// chase. Facts are deduplicated on insertion.
//
// Two storage modes share this interface:
//
//  * In-core (default): all tuples in flat row-major vectors with full
//    dedup and per-position posting lists. Unchanged semantics.
//  * Out-of-core (EnableSpill): each relation's rows are split into
//    sealed fixed-size immutable segments plus an in-core mutable tail.
//    Sealed segments live in an LRU-style pool of hot in-memory payloads
//    and are persisted to individually CRC-protected, atomically renamed
//    files under the spill directory, so the store survives SIGKILL at
//    any point and `--max-memory-mb` pressure is relieved by evicting
//    cold segments instead of stopping the run. Resident per sealed row
//    is only a hash digest plus a value-frequency summary (~9 bytes/row),
//    which is what makes instances ~10x the byte budget chaseable. See
//    docs/STORAGE.md for the full design and the crash-safety argument.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "base/vocabulary.h"
#include "data/value.h"

namespace tgdkit {

/// Configuration of the out-of-core backend (Instance::EnableSpill).
struct SpillConfig {
  /// Directory for segment files. Must exist; files are named
  /// r<relation>_s<index>.seg (see SegmentFileName).
  std::string dir;
  /// Payload budget per segment; rows per segment is
  /// max(1, segment_bytes / (arity * sizeof(Value))).
  uint64_t segment_bytes = 256 * 1024;
  /// Soft cap on ApproxBytes honoured at seal points: when sealing pushes
  /// the footprint past this, cold segments are flushed and evicted until
  /// it fits (or nothing evictable remains). 0 disables proactive
  /// eviction (the memory-pressure hook may still call EvictToBudget).
  uint64_t max_resident_bytes = 0;
};

/// Counters for spill telemetry. `sealed_segments` and `spilled_bytes`
/// are content-derived (functions of the stored facts, identical after a
/// kill-and-resume); the I/O counters are process-local.
struct SpillStats {
  uint64_t sealed_segments = 0;
  uint64_t spilled_bytes = 0;  // total payload bytes of sealed segments
  uint64_t faults = 0;         // cold segment loads
  uint64_t evictions = 0;      // hot payloads dropped
  uint64_t segment_writes = 0; // segment files written
};

/// A ground atom, used for convenient construction and iteration.
struct Fact {
  RelationId relation;
  std::vector<Value> args;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation == b.relation && a.args == b.args;
  }
};

/// A finite database instance over a Vocabulary's relations.
///
/// Tuples are stored row-major per relation; row ids are stable (facts are
/// never removed in place — RemoveFacts rebuilds). Per-position indexes are
/// maintained incrementally on insertion.
class Instance {
 public:
  explicit Instance(const Vocabulary* vocab);
  ~Instance();

  /// Copying a spill-enabled instance materializes a plain in-core copy
  /// (same rows, row ids, null indexes and relation activation order);
  /// copying an in-core instance is a memberwise deep copy as before.
  Instance(const Instance& other);
  Instance& operator=(const Instance& other);
  Instance(Instance&& other) noexcept;
  Instance& operator=(Instance&& other) noexcept;

  const Vocabulary& vocab() const { return *vocab_; }

  // -------------------------------------------------------------------
  // Out-of-core backend (see file comment and docs/STORAGE.md)

  /// Switches this (still empty) instance to the out-of-core backend.
  /// InvalidArgument if facts were already added, spill is already
  /// enabled, or `config.dir` is empty. The directory must exist.
  Status EnableSpill(const SpillConfig& config);
  bool spill_enabled() const { return spill_ != nullptr; }

  /// Exact number of rows of `relation` whose `position`-th entry equals
  /// `value`, in either mode. In spill mode this is answered from the
  /// resident frequency summary without touching cold segments, and
  /// matches what RowsWithValue().size() would report in-core — join
  /// orders chosen from these counts are mode-independent.
  size_t CountRowsWithValue(RelationId relation, uint32_t position,
                            Value value) const;

  /// Appends to `out` the ascending row ids of tuples of `relation`
  /// whose `position`-th entry equals `value` (both modes; spill mode
  /// scans sealed segments, skipping those whose per-position value
  /// range excludes `value`, then appends the tail's posting list).
  void CandidateRows(RelationId relation, uint32_t position, Value value,
                     std::vector<uint32_t>* out) const;

  /// Persists every sealed segment that has not reached disk yet
  /// (AtomicWriteFile per segment). Called before a snapshot is
  /// serialized so the snapshot's segment references are all durable.
  /// Const: only the spill bookkeeping mutates. Returns the first write
  /// error (sticky: a previously failed eviction write resurfaces here).
  Status FlushDirtySegments() const;

  /// Flushes and drops hot segment payloads (second-chance clock order)
  /// until ApproxBytes() <= target_bytes or nothing evictable remains.
  /// Returns the number of bytes freed. Serial phases only.
  uint64_t EvictToBudget(uint64_t target_bytes);

  /// Marks every sealed segment as already on disk (snapshot resume: the
  /// loader just streamed the rows out of the very files the segments
  /// would be written to). Segments not yet flushed get their checksum
  /// computed from the in-memory payload.
  void MarkAllSealedClean();

  /// Adjusts the seal-time soft cap after EnableSpill (snapshot resume:
  /// the loader enables spill with the recorded segment geometry, then the
  /// resumed engine installs its own budget's cap).
  void SetSpillResidentCap(uint64_t max_resident_bytes);

  SpillStats spill_stats() const;

  /// Introspection for the snapshot serializer (spill mode only).
  struct SealedSegmentInfo {
    std::string filename;  // relative to the spill directory
    uint64_t rows = 0;
    uint32_t crc32 = 0;    // payload CRC; valid after FlushDirtySegments
  };
  uint64_t SpillSegmentBytes() const;
  uint64_t SpillRowsPerSegment(RelationId relation) const;
  uint64_t SpillSealedRows(RelationId relation) const;
  uint64_t SpillSealedSegments(RelationId relation) const;
  SealedSegmentInfo SpillSegmentInfo(RelationId relation,
                                     uint64_t segment) const;
  const std::string& spill_dir() const;

  /// Adds a fact; returns true iff it was not already present.
  /// Precondition: args.size() == arity of `relation`.
  bool AddFact(RelationId relation, std::span<const Value> args);
  bool AddFact(const Fact& fact) { return AddFact(fact.relation, fact.args); }

  bool Contains(RelationId relation, std::span<const Value> args) const;

  /// Allocates a fresh labeled null (optionally with a debug label).
  Value FreshNull(std::string label = "");
  /// Ensures null indexes [0, count) exist (used by parsers).
  void EnsureNulls(uint32_t count);
  /// Sets the label of an existing null (snapshot restore).
  void SetNullLabel(uint32_t null_index, std::string label) {
    null_labels_[null_index] = std::move(label);
  }

  uint32_t num_nulls() const { return static_cast<uint32_t>(null_labels_.size()); }
  const std::string& NullLabel(uint32_t null_index) const {
    return null_labels_[null_index];
  }

  /// Number of tuples in `relation` (0 for relations never touched).
  size_t NumTuples(RelationId relation) const;
  /// Total number of facts in the instance.
  size_t NumFacts() const;

  /// The `row`-th tuple of `relation`.
  std::span<const Value> Tuple(RelationId relation, uint32_t row) const;

  /// Row ids of tuples in `relation` whose `position`-th entry equals
  /// `value` (empty if none). In-core mode only: a spilled store keeps no
  /// global posting lists — use CountRowsWithValue / CandidateRows, which
  /// work in both modes (checked by assert).
  const std::vector<uint32_t>& RowsWithValue(RelationId relation,
                                             uint32_t position,
                                             Value value) const;

  /// Relations with at least one tuple, in first-insertion order.
  const std::vector<RelationId>& ActiveRelations() const {
    return active_relations_;
  }

  /// All distinct values appearing anywhere in the instance.
  std::vector<Value> ActiveDomain() const;

  /// All facts, materialized (for tests and small instances).
  std::vector<Fact> AllFacts() const;

  /// Rebuilds this instance keeping only facts for which `keep` is true.
  /// In-core mode only (no caller rebuilds a spilled store in place).
  template <typename Pred>
  void RemoveFacts(Pred keep) {
    assert(!spill_enabled() && "RemoveFacts is unsupported on a spilled store");
    std::vector<Fact> kept;
    for (const Fact& f : AllFacts()) {
      if (keep(f)) kept.push_back(f);
    }
    relations_.clear();
    active_relations_.clear();
    row_bytes_ = 0;
    index_bytes_ = 0;
    for (const Fact& f : kept) AddFact(f);
  }

  /// Approximate heap footprint in bytes, for memory-budget accounting
  /// (ResourceGovernor memory source). Maintained incrementally: tuple
  /// storage, the dedup + per-position index structures (see IndexBytes),
  /// and null bookkeeping. In spill mode this counts only the RESIDENT
  /// footprint — the mutable tail, hot segment payloads and the sealed
  /// digest/frequency summaries — not cold bytes on disk, so evicting
  /// segments genuinely relieves the governor's byte budget.
  uint64_t ApproxBytes() const {
    return row_bytes_ + index_bytes_ +
           null_labels_.size() * kNullOverheadBytes +
           (spill_ ? SpillResidentBytes() : 0);
  }

  /// The index share of ApproxBytes: dedup buckets and per-position
  /// posting lists (amortized hash-node overhead for fresh keys plus one
  /// row id per entry). Split out so `--max-memory-mb` observably charges
  /// the accelerating structures, not just raw rows.
  uint64_t IndexBytes() const { return index_bytes_; }

  /// Renders all facts sorted lexicographically, one per line, in the
  /// canonical text format ParseInstanceText reads back (parse ∘ print is
  /// the identity on the canonical form).
  std::string ToString() const;

  /// Renders all facts in insertion order (per relation, rows in row-id
  /// order) with every null spelled by index (_N<i>), so parsing the text
  /// back reproduces row ids and null indexes exactly. This is the
  /// instance section of the snapshot format.
  std::string ToExactText() const;

  /// Renders a single value ("name" for constants, label or _N<i> for
  /// nulls). Constant names that are not plain identifiers or integers are
  /// quoted with \" and \\ escapes so the rendering stays parseable.
  std::string ValueToString(Value v) const;

 private:
  struct RelationData {
    uint32_t arity = 0;
    std::vector<Value> flat;  // row-major tuples
    // tuple hash -> row ids with that hash (dedup)
    std::unordered_map<size_t, std::vector<uint32_t>> dedup;
    // per position: value -> row ids
    std::vector<std::unordered_map<Value, std::vector<uint32_t>, ValueHash>>
        position_index;

    size_t NumTuples() const { return flat.size() / arity; }
  };

  struct SpillState;

  RelationData& GetOrCreate(RelationId relation);
  static size_t TupleHash(std::span<const Value> args);

  /// Spill-mode internals (defined with SpillState in instance.cc).
  uint64_t SpillResidentBytes() const;
  bool SealedContains(RelationId relation, const RelationData& data,
                      size_t hash, std::span<const Value> args) const;
  void MaybeSeal(RelationId relation, RelationData& data);
  const std::vector<Value>& EnsureHot(RelationId relation,
                                      uint64_t segment) const;
  bool FlushSegment(RelationId relation, uint64_t segment) const;

  /// Estimated per-null and per-row overheads, and the amortized cost of a
  /// fresh hash-map key (node + bucket share) in the dedup/position maps.
  static constexpr uint64_t kNullOverheadBytes = 48;
  static constexpr uint64_t kRowOverheadBytes = 24;
  static constexpr uint64_t kIndexNodeBytes = 48;

  const Vocabulary* vocab_;
  std::unordered_map<RelationId, RelationData> relations_;
  std::vector<RelationId> active_relations_;
  std::vector<std::string> null_labels_;
  std::vector<uint32_t> empty_rows_;
  uint64_t row_bytes_ = 0;
  uint64_t index_bytes_ = 0;
  // Out-of-core backend state; null in the (default) in-core mode.
  // Mutable: faulting a cold segment back in from a const read path
  // (Tuple, CandidateRows) changes caching state, never logical content.
  mutable std::unique_ptr<SpillState> spill_;
};

/// Copies all facts of `src` into `dst` (vocabularies must match).
void CopyFacts(const Instance& src, Instance* dst);

/// Parses the canonical instance text format produced by Instance::ToString
/// / ToExactText: one fact per line, `Rel(arg, arg, ...)`, where an arg is
/// a plain identifier or integer constant, a "quoted constant" (with
/// backslash escapes), a labeled null `_label`, or an indexed null `_N<i>`.
///
/// `_N<i>` binds to null index i exactly (allocating up to it if needed);
/// other labels reuse the first existing null with that label, else
/// allocate a fresh one. Labels of the form N<digits> are therefore
/// reserved for indexed nulls. Relations and constants are interned into
/// `vocab`; a relation seen with two different arities is a parse error.
/// Facts are added in text order, so row ids follow the text.
Status ParseInstanceText(std::string_view text, Vocabulary* vocab,
                         Instance* out);

}  // namespace tgdkit
