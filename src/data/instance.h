// Database instances: finite relations over constants and labeled nulls,
// with per-position value indexes to support homomorphism search and the
// chase. Facts are deduplicated on insertion.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "base/vocabulary.h"
#include "data/value.h"

namespace tgdkit {

/// A ground atom, used for convenient construction and iteration.
struct Fact {
  RelationId relation;
  std::vector<Value> args;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation == b.relation && a.args == b.args;
  }
};

/// A finite database instance over a Vocabulary's relations.
///
/// Tuples are stored row-major per relation; row ids are stable (facts are
/// never removed in place — RemoveFacts rebuilds). Per-position indexes are
/// maintained incrementally on insertion.
class Instance {
 public:
  explicit Instance(const Vocabulary* vocab);

  const Vocabulary& vocab() const { return *vocab_; }

  /// Adds a fact; returns true iff it was not already present.
  /// Precondition: args.size() == arity of `relation`.
  bool AddFact(RelationId relation, std::span<const Value> args);
  bool AddFact(const Fact& fact) { return AddFact(fact.relation, fact.args); }

  bool Contains(RelationId relation, std::span<const Value> args) const;

  /// Allocates a fresh labeled null (optionally with a debug label).
  Value FreshNull(std::string label = "");
  /// Ensures null indexes [0, count) exist (used by parsers).
  void EnsureNulls(uint32_t count);
  /// Sets the label of an existing null (snapshot restore).
  void SetNullLabel(uint32_t null_index, std::string label) {
    null_labels_[null_index] = std::move(label);
  }

  uint32_t num_nulls() const { return static_cast<uint32_t>(null_labels_.size()); }
  const std::string& NullLabel(uint32_t null_index) const {
    return null_labels_[null_index];
  }

  /// Number of tuples in `relation` (0 for relations never touched).
  size_t NumTuples(RelationId relation) const;
  /// Total number of facts in the instance.
  size_t NumFacts() const;

  /// The `row`-th tuple of `relation`.
  std::span<const Value> Tuple(RelationId relation, uint32_t row) const;

  /// Row ids of tuples in `relation` whose `position`-th entry equals
  /// `value` (empty if none).
  const std::vector<uint32_t>& RowsWithValue(RelationId relation,
                                             uint32_t position,
                                             Value value) const;

  /// Relations with at least one tuple, in first-insertion order.
  const std::vector<RelationId>& ActiveRelations() const {
    return active_relations_;
  }

  /// All distinct values appearing anywhere in the instance.
  std::vector<Value> ActiveDomain() const;

  /// All facts, materialized (for tests and small instances).
  std::vector<Fact> AllFacts() const;

  /// Rebuilds this instance keeping only facts for which `keep` is true.
  template <typename Pred>
  void RemoveFacts(Pred keep) {
    std::vector<Fact> kept;
    for (const Fact& f : AllFacts()) {
      if (keep(f)) kept.push_back(f);
    }
    relations_.clear();
    active_relations_.clear();
    row_bytes_ = 0;
    index_bytes_ = 0;
    for (const Fact& f : kept) AddFact(f);
  }

  /// Approximate heap footprint in bytes, for memory-budget accounting
  /// (ResourceGovernor memory source). Maintained incrementally: tuple
  /// storage, the dedup + per-position index structures (see IndexBytes),
  /// and null bookkeeping.
  uint64_t ApproxBytes() const {
    return row_bytes_ + index_bytes_ +
           null_labels_.size() * kNullOverheadBytes;
  }

  /// The index share of ApproxBytes: dedup buckets and per-position
  /// posting lists (amortized hash-node overhead for fresh keys plus one
  /// row id per entry). Split out so `--max-memory-mb` observably charges
  /// the accelerating structures, not just raw rows.
  uint64_t IndexBytes() const { return index_bytes_; }

  /// Renders all facts sorted lexicographically, one per line, in the
  /// canonical text format ParseInstanceText reads back (parse ∘ print is
  /// the identity on the canonical form).
  std::string ToString() const;

  /// Renders all facts in insertion order (per relation, rows in row-id
  /// order) with every null spelled by index (_N<i>), so parsing the text
  /// back reproduces row ids and null indexes exactly. This is the
  /// instance section of the snapshot format.
  std::string ToExactText() const;

  /// Renders a single value ("name" for constants, label or _N<i> for
  /// nulls). Constant names that are not plain identifiers or integers are
  /// quoted with \" and \\ escapes so the rendering stays parseable.
  std::string ValueToString(Value v) const;

 private:
  struct RelationData {
    uint32_t arity = 0;
    std::vector<Value> flat;  // row-major tuples
    // tuple hash -> row ids with that hash (dedup)
    std::unordered_map<size_t, std::vector<uint32_t>> dedup;
    // per position: value -> row ids
    std::vector<std::unordered_map<Value, std::vector<uint32_t>, ValueHash>>
        position_index;

    size_t NumTuples() const { return flat.size() / arity; }
  };

  RelationData& GetOrCreate(RelationId relation);
  static size_t TupleHash(std::span<const Value> args);

  /// Estimated per-null and per-row overheads, and the amortized cost of a
  /// fresh hash-map key (node + bucket share) in the dedup/position maps.
  static constexpr uint64_t kNullOverheadBytes = 48;
  static constexpr uint64_t kRowOverheadBytes = 24;
  static constexpr uint64_t kIndexNodeBytes = 48;

  const Vocabulary* vocab_;
  std::unordered_map<RelationId, RelationData> relations_;
  std::vector<RelationId> active_relations_;
  std::vector<std::string> null_labels_;
  std::vector<uint32_t> empty_rows_;
  uint64_t row_bytes_ = 0;
  uint64_t index_bytes_ = 0;
};

/// Copies all facts of `src` into `dst` (vocabularies must match).
void CopyFacts(const Instance& src, Instance* dst);

/// Parses the canonical instance text format produced by Instance::ToString
/// / ToExactText: one fact per line, `Rel(arg, arg, ...)`, where an arg is
/// a plain identifier or integer constant, a "quoted constant" (with \" \\
/// \n escapes), a labeled null `_label`, or an indexed null `_N<i>`.
///
/// `_N<i>` binds to null index i exactly (allocating up to it if needed);
/// other labels reuse the first existing null with that label, else
/// allocate a fresh one. Labels of the form N<digits> are therefore
/// reserved for indexed nulls. Relations and constants are interned into
/// `vocab`; a relation seen with two different arities is a parse error.
/// Facts are added in text order, so row ids follow the text.
Status ParseInstanceText(std::string_view text, Vocabulary* vocab,
                         Instance* out);

}  // namespace tgdkit
