// On-disk format for one spilled instance segment.
//
// A segment is the unit of the out-of-core fact store (see
// docs/STORAGE.md): a fixed-size run of consecutive rows of one relation,
// stored as raw little-endian u32 Value words behind a one-line text
// header:
//
//   tgdkit-segment v1 rel <relation-index> arity <a> rows <n> crc32 <hex>\n
//   <n * a little-endian u32 words>
//
// The CRC-32 covers the payload words, so truncation and bit flips are
// rejected with Status::DataLoss; a file written by a future format
// version is rejected with Status::Unsupported. Segment files are written
// with AtomicWriteFile, so a SIGKILL mid-write leaves at most a torn
// ".tmp" that is never loaded — a file visible under its final name is
// always complete. Sealed segments are immutable: a file, once written,
// never changes content, which is what lets snapshots reference segment
// files by name instead of re-serializing their rows.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace tgdkit {

inline constexpr std::string_view kSegmentMagic = "tgdkit-segment";
inline constexpr uint32_t kSegmentVersion = 1;

/// Parsed contents of a segment file.
struct SegmentData {
  uint32_t relation_index = 0;  // position in the store's relation order
  uint32_t arity = 0;
  std::vector<uint32_t> values;  // rows * arity raw Value words
  size_t rows() const { return arity == 0 ? 0 : values.size() / arity; }
};

/// Renders a complete segment file (header + payload) for `num_values`
/// raw Value words laid out row-major. `num_values` must be a multiple of
/// `arity`.
std::string SerializeSegment(uint32_t relation_index, uint32_t arity,
                             const uint32_t* values, size_t num_values);

/// Parses segment bytes. DataLoss on truncation/corruption/garbage,
/// Unsupported on a format version mismatch.
Result<SegmentData> ParseSegment(std::string_view bytes);

/// Reads and parses a segment file. NotFound when it cannot be opened.
Result<SegmentData> LoadSegment(const std::string& path);

/// CRC-32 of the little-endian payload rendering of `num_values` words —
/// the checksum a segment file with these values carries in its header.
uint32_t SegmentPayloadCrc(const uint32_t* values, size_t num_values);

/// Deterministic file name for a segment: "r<relation>_s<segment>.seg".
/// Stable across resume — a re-derived segment lands on the same name
/// with the same bytes.
std::string SegmentFileName(uint32_t relation_index, uint32_t segment_index);

/// Size in bytes of the payload (excluding header) for a row count.
inline uint64_t SegmentPayloadBytes(uint64_t rows, uint32_t arity) {
  return rows * arity * sizeof(uint32_t);
}

}  // namespace tgdkit
