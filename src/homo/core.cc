#include "homo/core.h"

#include <string>

#include "base/strings.h"

namespace tgdkit {

namespace {

/// Builds the canonical conjunctive query of `from`: every null becomes a
/// variable, constants stay themselves.
std::vector<Atom> CanonicalQuery(TermArena* arena, Vocabulary* vocab,
                                 const Instance& from) {
  std::vector<Atom> atoms;
  for (const Fact& fact : from.AllFacts()) {
    Atom atom;
    atom.relation = fact.relation;
    for (Value v : fact.args) {
      if (v.is_null()) {
        VariableId var =
            vocab->InternVariable(Cat("@null$", v.index()));
        atom.args.push_back(arena->MakeVariable(var));
      } else {
        atom.args.push_back(arena->MakeConstant(v.index()));
      }
    }
    atoms.push_back(std::move(atom));
  }
  return atoms;
}

}  // namespace

std::optional<NullMap> FindHomomorphism(TermArena* arena, Vocabulary* vocab,
                                        const Instance& from,
                                        const Instance& to,
                                        ResourceGovernor* governor) {
  std::vector<Atom> atoms = CanonicalQuery(arena, vocab, from);
  Matcher matcher(arena, &to, atoms);
  matcher.set_governor(governor);
  Assignment assignment;
  if (!matcher.FindOne(&assignment)) return std::nullopt;
  NullMap map;
  for (const auto& [var, value] : assignment) {
    const std::string& name = vocab->VariableName(var);
    // Variables created by CanonicalQuery are named "@null$<index>".
    uint32_t null_index =
        static_cast<uint32_t>(std::stoul(name.substr(6)));
    map[null_index] = value;
  }
  return map;
}

bool HomomorphismExists(TermArena* arena, Vocabulary* vocab,
                        const Instance& from, const Instance& to,
                        ResourceGovernor* governor) {
  return FindHomomorphism(arena, vocab, from, to, governor).has_value();
}

bool HomomorphicallyEquivalent(TermArena* arena, Vocabulary* vocab,
                               const Instance& a, const Instance& b) {
  return HomomorphismExists(arena, vocab, a, b) &&
         HomomorphismExists(arena, vocab, b, a);
}

Instance ApplyNullMap(const Instance& source, const NullMap& map) {
  Instance image(&source.vocab());
  image.EnsureNulls(source.num_nulls());
  std::vector<Value> mapped;
  for (const Fact& fact : source.AllFacts()) {
    mapped.clear();
    for (Value v : fact.args) {
      if (v.is_null()) {
        auto it = map.find(v.index());
        mapped.push_back(it == map.end() ? v : it->second);
      } else {
        mapped.push_back(v);
      }
    }
    image.AddFact(fact.relation, mapped);
  }
  return image;
}

Instance ComputeCore(TermArena* arena, Vocabulary* vocab, const Instance& j,
                     ResourceGovernor* governor) {
  Instance current(&j.vocab());
  CopyFacts(j, &current);

  bool reduced = true;
  while (reduced) {
    reduced = false;
    std::vector<Fact> facts = current.AllFacts();
    for (const Fact& fact : facts) {
      // Each retraction attempt costs at least one step; a budget stop
      // leaves `current` as the best fold found so far.
      if (governor != nullptr && !governor->Poll()) return current;
      bool has_null = false;
      for (Value v : fact.args) has_null |= v.is_null();
      if (!has_null) continue;  // constant facts are in every core

      // Try to retract `current` into itself minus this fact.
      Instance target(&current.vocab());
      target.EnsureNulls(current.num_nulls());
      for (const Fact& f : facts) {
        if (!(f == fact)) target.AddFact(f);
      }
      std::optional<NullMap> hom =
          FindHomomorphism(arena, vocab, current, target, governor);
      if (governor != nullptr && governor->exhausted()) return current;
      if (hom.has_value()) {
        current = ApplyNullMap(current, *hom);
        reduced = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace tgdkit
