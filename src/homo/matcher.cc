#include "homo/matcher.h"

#include <cassert>
#include <limits>

namespace tgdkit {

namespace {
// Below this candidate count a second index lookup costs more than the
// TryBindTuple probes it would save.
constexpr size_t kIntersectThreshold = 16;

// Two-pointer intersection of two ascending posting lists; the result is
// ascending, so candidate enumeration order is unchanged (rows dropped
// here would have failed TryBindTuple anyway).
void IntersectAscending(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b,
                        std::vector<uint32_t>* out) {
  out->clear();
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}
}  // namespace

Matcher::Matcher(const TermArena* arena, const Instance* instance,
                 std::span<const Atom> atoms)
    : arena_(arena), instance_(instance) {
  for (const Atom& atom : atoms) {
    AtomPlan plan;
    plan.relation = atom.relation;
    for (TermId t : atom.args) {
      ArgSlot slot;
      if (arena_->IsVariable(t)) {
        VariableId v = arena_->symbol(t);
        auto [it, inserted] =
            var_index_.emplace(v, static_cast<uint32_t>(variables_.size()));
        if (inserted) variables_.push_back(v);
        slot.is_variable = true;
        slot.local_var = it->second;
        slot.constant = Value();
      } else {
        assert(arena_->IsConstant(t) &&
               "matcher atoms must be function-free");
        slot.is_variable = false;
        slot.local_var = 0;
        slot.constant = Value::Constant(arena_->symbol(t));
      }
      plan.slots.push_back(slot);
    }
    plans_.push_back(std::move(plan));
  }
}

int Matcher::PickNextAtom(const std::vector<Value>& binding,
                          const std::vector<bool>& done) const {
  int best = -1;
  size_t best_cost = std::numeric_limits<size_t>::max();
  for (size_t i = 0; i < plans_.size(); ++i) {
    if (done[i]) continue;
    const AtomPlan& plan = plans_[i];
    // Cost estimate: candidate rows through the most selective bound
    // position, or the full relation when nothing is bound.
    // CountRowsWithValue is exact in both storage modes (in-core it IS
    // the posting-list size), so join-order choices — and therefore the
    // match enumeration order and null numbering — are mode-independent.
    size_t cost = instance_->NumTuples(plan.relation);
    for (size_t pos = 0; pos < plan.slots.size(); ++pos) {
      const ArgSlot& slot = plan.slots[pos];
      Value bound = slot.is_variable ? binding[slot.local_var] : slot.constant;
      if (!bound.valid()) continue;
      size_t rows = instance_->CountRowsWithValue(
          plan.relation, static_cast<uint32_t>(pos), bound);
      if (rows < cost) cost = rows;
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = static_cast<int>(i);
    }
  }
  return best;
}

const std::vector<uint32_t>* Matcher::Candidates(
    const AtomPlan& plan, const std::vector<Value>& binding,
    std::vector<uint32_t>* scratch, size_t* scan_rows) const {
  if (instance_->spill_enabled()) {
    // Spilled store: no global posting lists to point into. Pick the most
    // selective bound position by exact count (the same strict-< rule as
    // below) and materialize its ascending candidate rows into `scratch`.
    // No runner-up intersection: TryBindTuple fully verifies every
    // candidate, so enumerating an ascending superset emits the identical
    // match sequence — intersection only ever saved probes, never changed
    // results.
    int best_pos = -1;
    size_t best_count = std::numeric_limits<size_t>::max();
    Value best_value;
    for (size_t pos = 0; pos < plan.slots.size(); ++pos) {
      const ArgSlot& slot = plan.slots[pos];
      Value bound = slot.is_variable ? binding[slot.local_var] : slot.constant;
      if (!bound.valid()) continue;
      size_t count = instance_->CountRowsWithValue(
          plan.relation, static_cast<uint32_t>(pos), bound);
      if (count < best_count) {
        best_count = count;
        best_pos = static_cast<int>(pos);
        best_value = bound;
      }
    }
    if (best_pos < 0) {
      *scan_rows = instance_->NumTuples(plan.relation);
      return nullptr;
    }
    scratch->clear();
    instance_->CandidateRows(plan.relation, static_cast<uint32_t>(best_pos),
                             best_value, scratch);
    return scratch;
  }
  const std::vector<uint32_t>* best = nullptr;
  const std::vector<uint32_t>* second = nullptr;
  for (size_t pos = 0; pos < plan.slots.size(); ++pos) {
    const ArgSlot& slot = plan.slots[pos];
    Value bound = slot.is_variable ? binding[slot.local_var] : slot.constant;
    if (!bound.valid()) continue;
    const std::vector<uint32_t>& candidate = instance_->RowsWithValue(
        plan.relation, static_cast<uint32_t>(pos), bound);
    if (best == nullptr || candidate.size() < best->size()) {
      second = best;
      best = &candidate;
    } else if (second == nullptr || candidate.size() < second->size()) {
      second = &candidate;
    }
  }
  if (best == nullptr) {
    *scan_rows = instance_->NumTuples(plan.relation);
    return nullptr;
  }
  if (second != nullptr && second != best &&
      best->size() > kIntersectThreshold) {
    IntersectAscending(*best, *second, scratch);
    return scratch;
  }
  return best;
}

bool Matcher::TryBindTuple(const AtomPlan& plan, std::span<const Value> tuple,
                           std::vector<Value>* binding,
                           std::vector<uint32_t>* trail) const {
  for (size_t pos = 0; pos < plan.slots.size(); ++pos) {
    const ArgSlot& slot = plan.slots[pos];
    if (!slot.is_variable) {
      if (slot.constant != tuple[pos]) return false;
      continue;
    }
    Value& cell = (*binding)[slot.local_var];
    if (cell.valid()) {
      if (cell != tuple[pos]) return false;
    } else {
      cell = tuple[pos];
      trail->push_back(slot.local_var);
    }
  }
  return true;
}

bool Matcher::TryRow(SearchState* state, const AtomPlan& plan, uint32_t row,
                     size_t remaining, bool* any,
                     std::vector<uint32_t>* trail) const {
  const SearchControls& controls = *state->controls;
  if (controls.governor != nullptr && !controls.governor->Poll()) {
    state->stopped = true;
    return false;
  }
  if (controls.probe_counter != nullptr) ++*controls.probe_counter;
  if (controls.periodic_check && --state->probes_until_check == 0) {
    state->probes_until_check = SearchControls::kPeriodicCheckStride;
    if (!controls.periodic_check()) {
      state->stopped = true;
      return false;
    }
  }
  trail->clear();
  std::span<const Value> tuple = instance_->Tuple(plan.relation, row);
  if (TryBindTuple(plan, tuple, &state->binding, trail)) {
    if (Search(state, remaining)) *any = true;
  }
  for (uint32_t var : *trail) state->binding[var] = Value();
  return !state->stopped;
}

bool Matcher::Search(SearchState* state, size_t remaining) const {
  if (remaining == 0) {
    if (!(*state->emit)(state->binding)) state->stopped = true;
    return true;
  }
  int idx = PickNextAtom(state->binding, state->done);
  assert(idx >= 0);
  const AtomPlan& plan = plans_[idx];
  state->done[idx] = true;

  std::vector<uint32_t> scratch;
  size_t scan_rows = 0;
  const std::vector<uint32_t>* rows =
      Candidates(plan, state->binding, &scratch, &scan_rows);

  bool any = false;
  std::vector<uint32_t> trail;
  if (rows != nullptr) {
    for (uint32_t row : *rows) {
      if (!TryRow(state, plan, row, remaining - 1, &any, &trail)) break;
    }
  } else {
    for (uint32_t row = 0; row < scan_rows; ++row) {
      if (!TryRow(state, plan, row, remaining - 1, &any, &trail)) break;
    }
  }

  state->done[idx] = false;
  return any;
}

void Matcher::SeedBinding(const Assignment& seed,
                          std::vector<Value>* binding) const {
  for (const auto& [var, value] : seed) {
    auto it = var_index_.find(var);
    if (it != var_index_.end()) (*binding)[it->second] = value;
  }
}

size_t Matcher::RunSearch(
    const Assignment& seed,
    const std::function<bool(const Assignment&)>& callback,
    const SearchControls& controls, const RootSplit* split,
    uint32_t root_row) const {
  SearchState state;
  state.binding.assign(variables_.size(), Value());
  SeedBinding(seed, &state.binding);
  state.done.assign(plans_.size(), false);
  state.controls = &controls;
  size_t count = 0;
  std::function<bool(const std::vector<Value>&)> emit =
      [&](const std::vector<Value>& full) {
        Assignment out = seed;
        for (size_t i = 0; i < variables_.size(); ++i) {
          out[variables_[i]] = full[i];
        }
        ++count;
        return callback(out);
      };
  state.emit = &emit;
  if (split == nullptr) {
    Search(&state, plans_.size());
  } else {
    assert(split->atom >= 0);
    const AtomPlan& plan = plans_[split->atom];
    state.done[split->atom] = true;
    bool any = false;
    std::vector<uint32_t> trail;
    TryRow(&state, plan, root_row, plans_.size() - 1, &any, &trail);
  }
  return count;
}

bool Matcher::FindOne(Assignment* seed) const {
  bool found = false;
  ForEach(*seed, [&](const Assignment& full) {
    *seed = full;
    found = true;
    return false;  // stop at the first homomorphism
  });
  return found;
}

size_t Matcher::ForEach(
    const Assignment& seed,
    const std::function<bool(const Assignment&)>& callback) const {
  SearchControls controls;
  controls.governor = governor_;
  return RunSearch(seed, callback, controls, nullptr, 0);
}

size_t Matcher::ForEach(
    const Assignment& seed,
    const std::function<bool(const Assignment&)>& callback,
    const SearchControls& controls) const {
  return RunSearch(seed, callback, controls, nullptr, 0);
}

Matcher::RootSplit Matcher::PlanRoot(const Assignment& seed) const {
  RootSplit split;
  if (plans_.empty()) return split;  // shard-less query
  std::vector<Value> binding(variables_.size(), Value());
  SeedBinding(seed, &binding);
  std::vector<bool> done(plans_.size(), false);
  split.atom = PickNextAtom(binding, done);
  std::vector<uint32_t> scratch;
  size_t scan_rows = 0;
  const std::vector<uint32_t>* rows =
      Candidates(plans_[split.atom], binding, &scratch, &scan_rows);
  if (rows == &scratch) {
    split.use_owned = true;
    split.owned_rows = std::move(scratch);
  } else if (rows != nullptr) {
    split.index_rows = rows;
  } else {
    split.scan_rows = scan_rows;
  }
  return split;
}

size_t Matcher::ForEachFromRoot(
    const Assignment& seed, const RootSplit& split, uint32_t row,
    const std::function<bool(const Assignment&)>& callback,
    const SearchControls& controls) const {
  return RunSearch(seed, callback, controls, &split, row);
}

}  // namespace tgdkit
