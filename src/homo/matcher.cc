#include "homo/matcher.h"

#include <cassert>
#include <limits>

namespace tgdkit {

Matcher::Matcher(const TermArena* arena, const Instance* instance,
                 std::span<const Atom> atoms)
    : arena_(arena), instance_(instance) {
  for (const Atom& atom : atoms) {
    AtomPlan plan;
    plan.relation = atom.relation;
    for (TermId t : atom.args) {
      ArgSlot slot;
      if (arena_->IsVariable(t)) {
        VariableId v = arena_->symbol(t);
        auto [it, inserted] =
            var_index_.emplace(v, static_cast<uint32_t>(variables_.size()));
        if (inserted) variables_.push_back(v);
        slot.is_variable = true;
        slot.local_var = it->second;
        slot.constant = Value();
      } else {
        assert(arena_->IsConstant(t) &&
               "matcher atoms must be function-free");
        slot.is_variable = false;
        slot.local_var = 0;
        slot.constant = Value::Constant(arena_->symbol(t));
      }
      plan.slots.push_back(slot);
    }
    plans_.push_back(std::move(plan));
  }
}

int Matcher::PickNextAtom(const std::vector<Value>& binding,
                          const std::vector<bool>& done) const {
  int best = -1;
  size_t best_cost = std::numeric_limits<size_t>::max();
  for (size_t i = 0; i < plans_.size(); ++i) {
    if (done[i]) continue;
    const AtomPlan& plan = plans_[i];
    // Cost estimate: candidate rows through the most selective bound
    // position, or the full relation when nothing is bound.
    size_t cost = instance_->NumTuples(plan.relation);
    for (size_t pos = 0; pos < plan.slots.size(); ++pos) {
      const ArgSlot& slot = plan.slots[pos];
      Value bound = slot.is_variable ? binding[slot.local_var] : slot.constant;
      if (!bound.valid()) continue;
      size_t rows =
          instance_
              ->RowsWithValue(plan.relation, static_cast<uint32_t>(pos), bound)
              .size();
      if (rows < cost) cost = rows;
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = static_cast<int>(i);
    }
  }
  return best;
}

bool Matcher::TryBindTuple(const AtomPlan& plan, std::span<const Value> tuple,
                           std::vector<Value>* binding,
                           std::vector<uint32_t>* trail) const {
  for (size_t pos = 0; pos < plan.slots.size(); ++pos) {
    const ArgSlot& slot = plan.slots[pos];
    if (!slot.is_variable) {
      if (slot.constant != tuple[pos]) return false;
      continue;
    }
    Value& cell = (*binding)[slot.local_var];
    if (cell.valid()) {
      if (cell != tuple[pos]) return false;
    } else {
      cell = tuple[pos];
      trail->push_back(slot.local_var);
    }
  }
  return true;
}

bool Matcher::Search(
    std::vector<Value>* binding, std::vector<bool>* done, size_t remaining,
    const std::function<bool(const std::vector<Value>&)>& emit,
    bool* stopped) const {
  if (remaining == 0) {
    if (!emit(*binding)) *stopped = true;
    return true;
  }
  int idx = PickNextAtom(*binding, *done);
  assert(idx >= 0);
  const AtomPlan& plan = plans_[idx];
  (*done)[idx] = true;

  // Candidate rows: the most selective bound position's index, else a scan.
  const std::vector<uint32_t>* rows = nullptr;
  size_t best_rows = std::numeric_limits<size_t>::max();
  for (size_t pos = 0; pos < plan.slots.size(); ++pos) {
    const ArgSlot& slot = plan.slots[pos];
    Value bound =
        slot.is_variable ? (*binding)[slot.local_var] : slot.constant;
    if (!bound.valid()) continue;
    const std::vector<uint32_t>& candidate = instance_->RowsWithValue(
        plan.relation, static_cast<uint32_t>(pos), bound);
    if (candidate.size() < best_rows) {
      best_rows = candidate.size();
      rows = &candidate;
    }
  }

  bool any = false;
  std::vector<uint32_t> trail;
  auto try_row = [&](uint32_t row) {
    if (governor_ != nullptr && !governor_->Poll()) {
      *stopped = true;
      return false;
    }
    trail.clear();
    std::span<const Value> tuple = instance_->Tuple(plan.relation, row);
    if (TryBindTuple(plan, tuple, binding, &trail)) {
      if (Search(binding, done, remaining - 1, emit, stopped)) any = true;
    }
    for (uint32_t var : trail) (*binding)[var] = Value();
    return !*stopped;
  };

  if (rows != nullptr) {
    for (uint32_t row : *rows) {
      if (!try_row(row)) break;
    }
  } else {
    size_t n = instance_->NumTuples(plan.relation);
    for (uint32_t row = 0; row < n; ++row) {
      if (!try_row(row)) break;
    }
  }

  (*done)[idx] = false;
  return any;
}

bool Matcher::FindOne(Assignment* seed) const {
  bool found = false;
  ForEach(*seed, [&](const Assignment& full) {
    *seed = full;
    found = true;
    return false;  // stop at the first homomorphism
  });
  return found;
}

size_t Matcher::ForEach(
    const Assignment& seed,
    const std::function<bool(const Assignment&)>& callback) const {
  std::vector<Value> binding(variables_.size(), Value());
  for (const auto& [var, value] : seed) {
    auto it = var_index_.find(var);
    if (it != var_index_.end()) binding[it->second] = value;
  }
  std::vector<bool> done(plans_.size(), false);
  size_t count = 0;
  bool stopped = false;
  auto emit = [&](const std::vector<Value>& full) {
    Assignment out = seed;
    for (size_t i = 0; i < variables_.size(); ++i) {
      out[variables_[i]] = full[i];
    }
    ++count;
    return callback(out);
  };
  Search(&binding, &done, plans_.size(), emit, &stopped);
  return count;
}

}  // namespace tgdkit
