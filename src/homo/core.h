// Instance-level homomorphisms, homomorphic equivalence, and cores
// (minimal homomorphically-equivalent subinstances; unique up to
// isomorphism, Hell & Nešetřil 1992).
#pragma once

#include <optional>
#include <unordered_map>

#include "base/budget.h"
#include "data/instance.h"
#include "homo/matcher.h"
#include "term/term.h"

namespace tgdkit {

/// A homomorphism between instances, represented as a map from the source
/// instance's null indexes to target values (constants are fixed pointwise
/// by definition).
using NullMap = std::unordered_map<uint32_t, Value>;

/// Finds a homomorphism from `from` to `to` (both over the same
/// Vocabulary). Returns std::nullopt when none exists. `vocab` and `arena`
/// are scratch spaces used to build the canonical query of `from`.
/// With a governor, the NP-hard search polls it per row probed and
/// returns nullopt once exhausted (check governor->exhausted() to tell
/// "none" from "ran out of budget").
std::optional<NullMap> FindHomomorphism(TermArena* arena, Vocabulary* vocab,
                                        const Instance& from,
                                        const Instance& to,
                                        ResourceGovernor* governor = nullptr);

/// True iff `from` maps homomorphically into `to`.
bool HomomorphismExists(TermArena* arena, Vocabulary* vocab,
                        const Instance& from, const Instance& to,
                        ResourceGovernor* governor = nullptr);

/// True iff the instances are homomorphically equivalent (J1 <-> J2).
bool HomomorphicallyEquivalent(TermArena* arena, Vocabulary* vocab,
                               const Instance& a, const Instance& b);

/// Applies a null map to an instance, producing its image.
Instance ApplyNullMap(const Instance& source, const NullMap& map);

/// Computes the core of `j`: repeatedly folds `j` into proper subinstances
/// until no fact can be spared. Exponential worst case (the problem is
/// NP-hard) but fast on the protected structures used in this library.
/// With a governor, the search stops once the budget is exhausted and the
/// current (partially folded, still homomorphically equivalent) instance
/// is returned — a sound over-approximation of the core.
Instance ComputeCore(TermArena* arena, Vocabulary* vocab, const Instance& j,
                     ResourceGovernor* governor = nullptr);

}  // namespace tgdkit
