// Homomorphism search: finds assignments of query variables to instance
// values such that every query atom maps to a fact. This is the shared
// engine behind conjunctive-query evaluation, chase trigger enumeration,
// tgd model checking and core computation.
//
// Query atoms may contain variables and constants only (function terms are
// Skolemized away before matching; equalities are checked by callers after
// grounding).
//
// Candidate rows at every search depth come from the instance's
// per-predicate, per-position hash indexes: the most selective bound
// position's posting list, intersected with the second-most-selective one
// when that pays for itself. A full relation scan only remains for an atom
// with no bound position at all (the unavoidable first atom of a
// completely unconstrained query).
//
// Against a spill-enabled instance (Instance::EnableSpill) the same
// search runs over segment scans instead of posting lists: join orders
// come from the exact CountRowsWithValue counts (identical to in-core
// posting sizes) and candidates from CandidateRows, so the match
// sequence — and everything downstream, null numbering included — is
// byte-identical across storage modes.
//
// Thread model: a Matcher is immutable after construction and all search
// entry points are const, so one Matcher may run any number of concurrent
// searches against the same (frozen) instance. Per-search state — step
// accounting, cooperative aborts — travels in a SearchControls value owned
// by the calling thread, never in the Matcher.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/budget.h"
#include "data/instance.h"
#include "term/term.h"

namespace tgdkit {

/// A relational atom whose arguments are terms (variables/constants for
/// bodies and queries; arbitrary terms in rule heads).
struct Atom {
  RelationId relation;
  std::vector<TermId> args;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.relation == b.relation && a.args == b.args;
  }
};

/// Assignment of variables to instance values.
using Assignment = std::unordered_map<VariableId, Value>;

/// Per-search knobs, owned by the caller of one search (and therefore by
/// one thread). All fields are optional.
struct SearchControls {
  /// Serial engines: every candidate row probed is one governor step and
  /// exhaustion unwinds the search (see Matcher::set_governor).
  ResourceGovernor* governor = nullptr;
  /// Parallel workers: probes are counted into this plain local counter
  /// instead of a shared governor; the engine charges the total at a
  /// deterministic merge point.
  uint64_t* probe_counter = nullptr;
  /// Invoked every kPeriodicCheckStride probes; returning false aborts
  /// the search (cooperative deadline/cancellation checks in workers).
  std::function<bool()> periodic_check;

  /// How many probes run between periodic_check calls.
  static constexpr uint64_t kPeriodicCheckStride = 1024;
};

/// Backtracking matcher for a fixed list of atoms against one instance.
///
/// The matcher picks, at every depth, the pending atom with the most
/// selective candidate set, and enumerates candidate rows through the
/// instance's per-position indexes. Construction cost is linear in the
/// query; the matcher can be reused for many searches against the same
/// instance, including concurrently.
class Matcher {
 public:
  /// `arena` must own all argument terms; `instance` and `arena` must
  /// outlive the matcher. Atoms must contain only variables and constants.
  Matcher(const TermArena* arena, const Instance* instance,
          std::span<const Atom> atoms);

  /// Finds one homomorphism extending `seed` (pre-bound variables are
  /// respected). On success returns true and completes `seed` with bindings
  /// for all query variables.
  bool FindOne(Assignment* seed) const;

  /// Enumerates all homomorphisms extending `seed`. The callback returns
  /// false to stop enumeration early. Returns the number of callbacks made.
  size_t ForEach(const Assignment& seed,
                 const std::function<bool(const Assignment&)>& callback) const;

  /// As above with explicit per-search controls (thread-safe entry point:
  /// the Matcher itself stays untouched).
  size_t ForEach(const Assignment& seed,
                 const std::function<bool(const Assignment&)>& callback,
                 const SearchControls& controls) const;

  /// True iff at least one homomorphism extending `seed` exists.
  bool Exists(const Assignment& seed) const {
    Assignment copy = seed;
    return FindOne(&copy);
  }

  /// The root of the search tree for `seed`, exposed so callers can shard
  /// one enumeration into independent row ranges: ForEach(seed, cb) emits
  /// exactly the concatenation, over i in [0, NumCandidates()), of
  /// ForEachFromRoot(seed, split, split.Row(i), cb). `index_rows` points
  /// into the instance's posting lists and stays valid while the instance
  /// is not mutated (the chase freezes the instance for the whole round).
  struct RootSplit {
    int atom = -1;  // -1: the query has no atoms (shard-less; use ForEach)
    bool use_owned = false;
    const std::vector<uint32_t>* index_rows = nullptr;
    std::vector<uint32_t> owned_rows;  // intersected candidate list
    size_t scan_rows = 0;              // full-scan fallback: rows [0, n)

    size_t NumCandidates() const {
      if (use_owned) return owned_rows.size();
      return index_rows != nullptr ? index_rows->size() : scan_rows;
    }
    uint32_t Row(size_t i) const {
      if (use_owned) return owned_rows[i];
      return index_rows != nullptr ? (*index_rows)[i]
                                   : static_cast<uint32_t>(i);
    }
  };

  /// Plans the root split ForEach(seed, ...) would explore: same atom
  /// choice, same candidate rows, same order.
  RootSplit PlanRoot(const Assignment& seed) const;

  /// Enumerates the homomorphisms whose root atom maps to `row`, in the
  /// order the full search would emit them. Counts the root probe and all
  /// inner probes through `controls`, exactly like ForEach.
  size_t ForEachFromRoot(const Assignment& seed, const RootSplit& split,
                         uint32_t row,
                         const std::function<bool(const Assignment&)>& callback,
                         const SearchControls& controls) const;

  /// The distinct variables of the query, in first-occurrence order.
  const std::vector<VariableId>& variables() const { return variables_; }

  /// Attaches a resource governor used by the control-less entry points:
  /// every candidate row probed counts as one step, and the search unwinds
  /// cleanly (as if the callback had stopped it) once the governor is
  /// exhausted. Callers distinguish a budget stop from normal completion
  /// via governor->exhausted(). Searches carrying explicit SearchControls
  /// ignore this member.
  void set_governor(ResourceGovernor* governor) { governor_ = governor; }

 private:
  struct ArgSlot {
    bool is_variable;
    uint32_t local_var;  // index into variables_ when is_variable
    Value constant;      // when !is_variable
  };
  struct AtomPlan {
    RelationId relation;
    std::vector<ArgSlot> slots;
  };
  /// Mutable state of one search, owned by the calling thread.
  struct SearchState {
    std::vector<Value> binding;
    std::vector<bool> done;
    const std::function<bool(const std::vector<Value>&)>* emit = nullptr;
    const SearchControls* controls = nullptr;
    uint64_t probes_until_check = SearchControls::kPeriodicCheckStride;
    bool stopped = false;
  };
  /// Candidate rows for `plan` under the current binding: the most
  /// selective bound position's posting list, intersected into `scratch`
  /// with the runner-up when worthwhile; nullptr means full scan.
  const std::vector<uint32_t>* Candidates(const AtomPlan& plan,
                                          const std::vector<Value>& binding,
                                          std::vector<uint32_t>* scratch,
                                          size_t* scan_rows) const;

  bool Search(SearchState* state, size_t remaining) const;
  /// Probe accounting + bind + recurse for one candidate row. Returns
  /// false once the search must unwind (stop/abort/exhaustion).
  bool TryRow(SearchState* state, const AtomPlan& plan, uint32_t row,
              size_t remaining, bool* any, std::vector<uint32_t>* trail) const;

  int PickNextAtom(const std::vector<Value>& binding,
                   const std::vector<bool>& done) const;

  bool TryBindTuple(const AtomPlan& plan, std::span<const Value> tuple,
                    std::vector<Value>* binding,
                    std::vector<uint32_t>* trail) const;

  void SeedBinding(const Assignment& seed, std::vector<Value>* binding) const;

  size_t RunSearch(const Assignment& seed,
                   const std::function<bool(const Assignment&)>& callback,
                   const SearchControls& controls, const RootSplit* split,
                   uint32_t root_row) const;

  const TermArena* arena_;
  const Instance* instance_;
  ResourceGovernor* governor_ = nullptr;
  std::vector<AtomPlan> plans_;
  std::vector<VariableId> variables_;
  std::unordered_map<VariableId, uint32_t> var_index_;
};

}  // namespace tgdkit
