// Homomorphism search: finds assignments of query variables to instance
// values such that every query atom maps to a fact. This is the shared
// engine behind conjunctive-query evaluation, chase trigger enumeration,
// tgd model checking and core computation.
//
// Query atoms may contain variables and constants only (function terms are
// Skolemized away before matching; equalities are checked by callers after
// grounding).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/budget.h"
#include "data/instance.h"
#include "term/term.h"

namespace tgdkit {

/// A relational atom whose arguments are terms (variables/constants for
/// bodies and queries; arbitrary terms in rule heads).
struct Atom {
  RelationId relation;
  std::vector<TermId> args;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.relation == b.relation && a.args == b.args;
  }
};

/// Assignment of variables to instance values.
using Assignment = std::unordered_map<VariableId, Value>;

/// Backtracking matcher for a fixed list of atoms against one instance.
///
/// The matcher picks, at every depth, the pending atom with the most bound
/// argument positions, and enumerates candidate rows through the instance's
/// per-position indexes. Construction cost is linear in the query; the
/// matcher can be reused for many searches against the same instance.
class Matcher {
 public:
  /// `arena` must own all argument terms; `instance` and `arena` must
  /// outlive the matcher. Atoms must contain only variables and constants.
  Matcher(const TermArena* arena, const Instance* instance,
          std::span<const Atom> atoms);

  /// Finds one homomorphism extending `seed` (pre-bound variables are
  /// respected). On success returns true and completes `seed` with bindings
  /// for all query variables.
  bool FindOne(Assignment* seed) const;

  /// Enumerates all homomorphisms extending `seed`. The callback returns
  /// false to stop enumeration early. Returns the number of callbacks made.
  size_t ForEach(const Assignment& seed,
                 const std::function<bool(const Assignment&)>& callback) const;

  /// True iff at least one homomorphism extending `seed` exists.
  bool Exists(const Assignment& seed) const {
    Assignment copy = seed;
    return FindOne(&copy);
  }

  /// The distinct variables of the query, in first-occurrence order.
  const std::vector<VariableId>& variables() const { return variables_; }

  /// Attaches a resource governor: every candidate row probed counts as
  /// one step, and the search unwinds cleanly (as if the callback had
  /// stopped it) once the governor is exhausted. Callers distinguish a
  /// budget stop from normal completion via governor->exhausted().
  void set_governor(ResourceGovernor* governor) { governor_ = governor; }

 private:
  struct ArgSlot {
    bool is_variable;
    uint32_t local_var;  // index into variables_ when is_variable
    Value constant;      // when !is_variable
  };
  struct AtomPlan {
    RelationId relation;
    std::vector<ArgSlot> slots;
  };

  bool Search(std::vector<Value>* binding, std::vector<bool>* done,
              size_t remaining,
              const std::function<bool(const std::vector<Value>&)>& emit,
              bool* stopped) const;

  int PickNextAtom(const std::vector<Value>& binding,
                   const std::vector<bool>& done) const;

  bool TryBindTuple(const AtomPlan& plan, std::span<const Value> tuple,
                    std::vector<Value>* binding,
                    std::vector<uint32_t>* trail) const;

  const TermArena* arena_;
  const Instance* instance_;
  ResourceGovernor* governor_ = nullptr;
  std::vector<AtomPlan> plans_;
  std::vector<VariableId> variables_;
  std::unordered_map<VariableId, uint32_t> var_index_;
};

}  // namespace tgdkit
