#include "supervise/ledger.h"

#include "supervise/jsonl.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "base/fileio.h"
#include "base/strings.h"

namespace tgdkit {

namespace {

Status Malformed(const std::string& what) {
  return Status::InvalidArgument(Cat("ledger record: ", what));
}

}  // namespace

const char* ToString(AttemptOutcome outcome) {
  switch (outcome) {
    case AttemptOutcome::kOk: return "ok";
    case AttemptOutcome::kVerdict: return "verdict";
    case AttemptOutcome::kUsageError: return "usage-error";
    case AttemptOutcome::kInputError: return "input-error";
    case AttemptOutcome::kResource: return "resource";
    case AttemptOutcome::kInternal: return "internal";
    case AttemptOutcome::kCrash: return "crash";
    case AttemptOutcome::kTimeout: return "timeout";
    case AttemptOutcome::kCancelled: return "cancelled";
    case AttemptOutcome::kSpawnError: return "spawn-error";
  }
  return "unknown";
}

bool ParseAttemptOutcome(std::string_view text, AttemptOutcome* out) {
  static constexpr AttemptOutcome kAll[] = {
      AttemptOutcome::kOk,        AttemptOutcome::kVerdict,
      AttemptOutcome::kUsageError, AttemptOutcome::kInputError,
      AttemptOutcome::kResource,  AttemptOutcome::kInternal,
      AttemptOutcome::kCrash,     AttemptOutcome::kTimeout,
      AttemptOutcome::kCancelled, AttemptOutcome::kSpawnError,
  };
  for (AttemptOutcome candidate : kAll) {
    if (text == ToString(candidate)) {
      *out = candidate;
      return true;
    }
  }
  return false;
}

LedgerRecord LedgerRecord::Run(RunRecord r) {
  LedgerRecord record;
  record.kind = Kind::kRun;
  record.run = std::move(r);
  return record;
}

LedgerRecord LedgerRecord::Attempt(AttemptRecord a) {
  LedgerRecord record;
  record.kind = Kind::kAttempt;
  record.attempt = std::move(a);
  return record;
}

LedgerRecord LedgerRecord::Done(DoneRecord d) {
  LedgerRecord record;
  record.kind = Kind::kDone;
  record.done = std::move(d);
  return record;
}

std::string RenderLedgerRecord(const LedgerRecord& record) {
  std::string out = "{";
  switch (record.kind) {
    case LedgerRecord::Kind::kRun: {
      AppendJsonString(&out, "type", "run");
      AppendJsonString(&out, "manifest", record.run.manifest);
      AppendJsonRaw(&out, "tasks", std::to_string(record.run.tasks));
      break;
    }
    case LedgerRecord::Kind::kAttempt: {
      const AttemptRecord& a = record.attempt;
      AppendJsonString(&out, "type", "attempt");
      AppendJsonString(&out, "task", a.task);
      AppendJsonRaw(&out, "attempt", std::to_string(a.attempt));
      AppendJsonString(&out, "outcome", ToString(a.outcome));
      AppendJsonRaw(&out, "exit", std::to_string(a.exit_code));
      AppendJsonRaw(&out, "signal", std::to_string(a.signal));
      AppendJsonString(&out, "stop", a.stop);
      AppendJsonString(&out, "status", a.status_line);
      AppendJsonRaw(&out, "duration_ms",
                std::to_string(static_cast<uint64_t>(a.duration_ms)));
      AppendJsonRaw(&out, "peak_rss_kb", std::to_string(a.peak_rss_kb));
      AppendJsonRaw(&out, "spill_bytes", std::to_string(a.spill_bytes));
      AppendJsonString(&out, "cmd", a.cmd);
      AppendJsonString(&out, "stderr_tail", a.stderr_tail);
      AppendJsonRaw(&out, "degraded", a.degraded ? "true" : "false");
      AppendJsonRaw(&out, "escalated", a.escalated ? "true" : "false");
      AppendJsonRaw(&out, "resumed", a.resumed ? "true" : "false");
      AppendJsonString(&out, "next", a.next);
      break;
    }
    case LedgerRecord::Kind::kDone: {
      const DoneRecord& d = record.done;
      AppendJsonString(&out, "type", "done");
      AppendJsonString(&out, "task", d.task);
      AppendJsonString(&out, "state", d.completed ? "completed" : "quarantined");
      AppendJsonRaw(&out, "exit", std::to_string(d.exit_code));
      AppendJsonRaw(&out, "attempts", std::to_string(d.attempts));
      if (!d.triage.empty()) AppendJsonString(&out, "triage", d.triage);
      break;
    }
  }
  out += '}';
  return out;
}

Result<LedgerRecord> ParseLedgerRecord(std::string_view line) {
  FlatJson fields;
  TGDKIT_RETURN_IF_ERROR(ParseFlatJson(line, &fields));
  std::string type = GetJsonString(fields, "type");
  if (type == "run") {
    RunRecord run;
    run.manifest = GetJsonString(fields, "manifest");
    run.tasks = GetJsonU64(fields, "tasks");
    return LedgerRecord::Run(std::move(run));
  }
  if (type == "attempt") {
    AttemptRecord a;
    a.task = GetJsonString(fields, "task");
    a.attempt = GetJsonU64(fields, "attempt");
    if (a.task.empty() || a.attempt == 0) {
      return Malformed("attempt record missing task/attempt");
    }
    if (!ParseAttemptOutcome(GetJsonString(fields, "outcome"), &a.outcome)) {
      return Malformed("unknown attempt outcome");
    }
    a.exit_code = static_cast<int>(GetJsonI64(fields, "exit", -1));
    a.signal = static_cast<int>(GetJsonI64(fields, "signal", 0));
    a.stop = GetJsonString(fields, "stop");
    a.status_line = GetJsonString(fields, "status");
    a.duration_ms = GetJsonDouble(fields, "duration_ms");
    a.peak_rss_kb = GetJsonU64(fields, "peak_rss_kb");
    a.spill_bytes = GetJsonU64(fields, "spill_bytes");
    a.cmd = GetJsonString(fields, "cmd");
    a.stderr_tail = GetJsonString(fields, "stderr_tail");
    a.degraded = GetJsonBool(fields, "degraded");
    a.escalated = GetJsonBool(fields, "escalated");
    a.resumed = GetJsonBool(fields, "resumed");
    a.next = GetJsonString(fields, "next");
    return LedgerRecord::Attempt(std::move(a));
  }
  if (type == "done") {
    DoneRecord d;
    d.task = GetJsonString(fields, "task");
    std::string state = GetJsonString(fields, "state");
    if (d.task.empty() ||
        (state != "completed" && state != "quarantined")) {
      return Malformed("done record missing task/state");
    }
    d.completed = state == "completed";
    d.exit_code = static_cast<int>(GetJsonI64(fields, "exit", -1));
    d.attempts = GetJsonU64(fields, "attempts");
    d.triage = GetJsonString(fields, "triage");
    return LedgerRecord::Done(std::move(d));
  }
  return Malformed(Cat("unknown record type '", type, "'"));
}

Status AppendLedgerRecord(const std::string& path,
                          const LedgerRecord& record) {
  return AppendLineDurable(path, RenderLedgerRecord(record));
}

Result<std::vector<LedgerRecord>> LoadLedger(const std::string& path) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  std::vector<LedgerRecord> records;
  std::string_view rest = *bytes;
  size_t line_number = 0;
  while (!rest.empty()) {
    size_t eol = rest.find('\n');
    if (eol == std::string_view::npos) {
      // Torn trailing line: a crash hit mid-append. The record was never
      // committed; ignore it.
      break;
    }
    std::string_view line = rest.substr(0, eol);
    rest.remove_prefix(eol + 1);
    ++line_number;
    if (line.empty()) continue;
    Result<LedgerRecord> record = ParseLedgerRecord(line);
    if (!record.ok()) {
      return Status::DataLoss(Cat(path, " line ", line_number, ": ",
                                  record.status().message()));
    }
    records.push_back(std::move(*record));
  }
  return records;
}

Status TruncateTornLedgerTail(const std::string& path) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) {
    if (bytes.status().code() == Status::Code::kNotFound) {
      return Status::Ok();
    }
    return bytes.status();
  }
  if (bytes->empty() || bytes->back() == '\n') return Status::Ok();
  size_t keep = bytes->rfind('\n');
  keep = keep == std::string::npos ? 0 : keep + 1;
  int fd = open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal(
        Cat(path, ": cannot open to heal torn tail: ", strerror(errno)));
  }
  if (ftruncate(fd, static_cast<off_t>(keep)) != 0) {
    int saved = errno;
    close(fd);
    return Status::Internal(
        Cat(path, ": cannot truncate torn tail: ", strerror(saved)));
  }
  fsync(fd);
  close(fd);
  return Status::Ok();
}

std::map<std::string, TaskReplay> ReplayLedger(
    const std::vector<LedgerRecord>& records) {
  std::map<std::string, TaskReplay> replay;
  for (const LedgerRecord& record : records) {
    if (record.kind == LedgerRecord::Kind::kAttempt) {
      TaskReplay& task = replay[record.attempt.task];
      task.attempts = std::max(task.attempts, record.attempt.attempt);
      task.degraded |= record.attempt.degraded;
      task.escalated |= record.attempt.escalated;
    } else if (record.kind == LedgerRecord::Kind::kDone) {
      TaskReplay& task = replay[record.done.task];
      if (task.terminal) continue;  // first done wins (defensive)
      task.terminal = true;
      task.completed = record.done.completed;
      task.final_exit = record.done.exit_code;
      task.attempts = std::max(task.attempts, record.done.attempts);
    }
  }
  return replay;
}

}  // namespace tgdkit
