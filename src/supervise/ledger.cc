#include "supervise/ledger.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "base/fileio.h"
#include "base/strings.h"

namespace tgdkit {

namespace {

/// A parsed flat JSON object: key -> raw value (strings unescaped,
/// numbers/booleans as their literal text).
using FlatJson = std::vector<std::pair<std::string, std::string>>;

const std::string* Find(const FlatJson& fields, std::string_view key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string GetString(const FlatJson& fields, std::string_view key) {
  const std::string* value = Find(fields, key);
  return value == nullptr ? std::string() : *value;
}

uint64_t GetU64(const FlatJson& fields, std::string_view key) {
  const std::string* value = Find(fields, key);
  if (value == nullptr) return 0;
  return std::strtoull(value->c_str(), nullptr, 10);
}

int64_t GetI64(const FlatJson& fields, std::string_view key,
               int64_t missing) {
  const std::string* value = Find(fields, key);
  if (value == nullptr) return missing;
  return std::strtoll(value->c_str(), nullptr, 10);
}

double GetDouble(const FlatJson& fields, std::string_view key) {
  const std::string* value = Find(fields, key);
  if (value == nullptr) return 0;
  return std::strtod(value->c_str(), nullptr);
}

bool GetBool(const FlatJson& fields, std::string_view key) {
  const std::string* value = Find(fields, key);
  return value != nullptr && *value == "true";
}

Status Malformed(const std::string& what) {
  return Status::InvalidArgument(Cat("ledger record: ", what));
}

void SkipSpace(std::string_view text, size_t* i) {
  while (*i < text.size() &&
         (text[*i] == ' ' || text[*i] == '\t' || text[*i] == '\r')) {
    ++*i;
  }
}

/// Parses a JSON string starting at the opening quote.
Status ParseJsonString(std::string_view text, size_t* i, std::string* out) {
  if (*i >= text.size() || text[*i] != '"') return Malformed("expected '\"'");
  ++*i;
  while (*i < text.size()) {
    char c = text[(*i)++];
    if (c == '"') return Status::Ok();
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (*i >= text.size()) break;
    char esc = text[(*i)++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'n': out->push_back('\n'); break;
      case 't': out->push_back('\t'); break;
      case 'r': out->push_back('\r'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'u': {
        if (*i + 4 > text.size()) return Malformed("truncated \\u escape");
        unsigned value = 0;
        for (int k = 0; k < 4; ++k) {
          char h = text[(*i)++];
          value <<= 4;
          if (h >= '0' && h <= '9') {
            value |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            value |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            value |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return Malformed("bad \\u escape");
          }
        }
        // The writer only emits \u00XX for control bytes; decode the
        // low byte and tolerate (rare) larger values as UTF-8.
        if (value < 0x80) {
          out->push_back(static_cast<char>(value));
        } else if (value < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (value >> 6)));
          out->push_back(static_cast<char>(0x80 | (value & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (value >> 12)));
          out->push_back(static_cast<char>(0x80 | ((value >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (value & 0x3F)));
        }
        break;
      }
      default:
        return Malformed("unknown escape");
    }
  }
  return Malformed("unterminated string");
}

/// Parses one flat JSON object (string/number/bool/null values only —
/// exactly what RenderLedgerRecord writes).
Status ParseFlatJson(std::string_view text, FlatJson* out) {
  size_t i = 0;
  SkipSpace(text, &i);
  if (i >= text.size() || text[i] != '{') return Malformed("expected '{'");
  ++i;
  SkipSpace(text, &i);
  if (i < text.size() && text[i] == '}') return Status::Ok();
  while (true) {
    SkipSpace(text, &i);
    std::string key;
    TGDKIT_RETURN_IF_ERROR(ParseJsonString(text, &i, &key));
    SkipSpace(text, &i);
    if (i >= text.size() || text[i] != ':') return Malformed("expected ':'");
    ++i;
    SkipSpace(text, &i);
    std::string value;
    if (i >= text.size()) return Malformed("truncated value");
    if (text[i] == '"') {
      TGDKIT_RETURN_IF_ERROR(ParseJsonString(text, &i, &value));
    } else if (text[i] == '{' || text[i] == '[') {
      return Malformed("nested values are not part of the ledger schema");
    } else {
      while (i < text.size() && text[i] != ',' && text[i] != '}' &&
             text[i] != ' ' && text[i] != '\t') {
        value += text[i++];
      }
      if (value.empty()) return Malformed("empty value");
    }
    out->emplace_back(std::move(key), std::move(value));
    SkipSpace(text, &i);
    if (i >= text.size()) return Malformed("unterminated object");
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] == '}') {
      ++i;
      SkipSpace(text, &i);
      if (i != text.size()) return Malformed("trailing bytes");
      return Status::Ok();
    }
    return Malformed("expected ',' or '}'");
  }
}

void AppendField(std::string* out, std::string_view key,
                 std::string_view value, bool quote) {
  if (out->back() != '{') *out += ',';
  *out += '"';
  *out += key;
  *out += "\":";
  if (quote) {
    *out += '"';
    *out += JsonEscape(value);
    *out += '"';
  } else {
    *out += value;
  }
}

void AppendString(std::string* out, std::string_view key,
                  std::string_view value) {
  AppendField(out, key, value, /*quote=*/true);
}

void AppendRaw(std::string* out, std::string_view key,
               std::string_view value) {
  AppendField(out, key, value, /*quote=*/false);
}

}  // namespace

const char* ToString(AttemptOutcome outcome) {
  switch (outcome) {
    case AttemptOutcome::kOk: return "ok";
    case AttemptOutcome::kVerdict: return "verdict";
    case AttemptOutcome::kUsageError: return "usage-error";
    case AttemptOutcome::kInputError: return "input-error";
    case AttemptOutcome::kResource: return "resource";
    case AttemptOutcome::kInternal: return "internal";
    case AttemptOutcome::kCrash: return "crash";
    case AttemptOutcome::kTimeout: return "timeout";
    case AttemptOutcome::kCancelled: return "cancelled";
    case AttemptOutcome::kSpawnError: return "spawn-error";
  }
  return "unknown";
}

bool ParseAttemptOutcome(std::string_view text, AttemptOutcome* out) {
  static constexpr AttemptOutcome kAll[] = {
      AttemptOutcome::kOk,        AttemptOutcome::kVerdict,
      AttemptOutcome::kUsageError, AttemptOutcome::kInputError,
      AttemptOutcome::kResource,  AttemptOutcome::kInternal,
      AttemptOutcome::kCrash,     AttemptOutcome::kTimeout,
      AttemptOutcome::kCancelled, AttemptOutcome::kSpawnError,
  };
  for (AttemptOutcome candidate : kAll) {
    if (text == ToString(candidate)) {
      *out = candidate;
      return true;
    }
  }
  return false;
}

LedgerRecord LedgerRecord::Run(RunRecord r) {
  LedgerRecord record;
  record.kind = Kind::kRun;
  record.run = std::move(r);
  return record;
}

LedgerRecord LedgerRecord::Attempt(AttemptRecord a) {
  LedgerRecord record;
  record.kind = Kind::kAttempt;
  record.attempt = std::move(a);
  return record;
}

LedgerRecord LedgerRecord::Done(DoneRecord d) {
  LedgerRecord record;
  record.kind = Kind::kDone;
  record.done = std::move(d);
  return record;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string RenderLedgerRecord(const LedgerRecord& record) {
  std::string out = "{";
  switch (record.kind) {
    case LedgerRecord::Kind::kRun: {
      AppendString(&out, "type", "run");
      AppendString(&out, "manifest", record.run.manifest);
      AppendRaw(&out, "tasks", std::to_string(record.run.tasks));
      break;
    }
    case LedgerRecord::Kind::kAttempt: {
      const AttemptRecord& a = record.attempt;
      AppendString(&out, "type", "attempt");
      AppendString(&out, "task", a.task);
      AppendRaw(&out, "attempt", std::to_string(a.attempt));
      AppendString(&out, "outcome", ToString(a.outcome));
      AppendRaw(&out, "exit", std::to_string(a.exit_code));
      AppendRaw(&out, "signal", std::to_string(a.signal));
      AppendString(&out, "stop", a.stop);
      AppendString(&out, "status", a.status_line);
      AppendRaw(&out, "duration_ms",
                std::to_string(static_cast<uint64_t>(a.duration_ms)));
      AppendRaw(&out, "peak_rss_kb", std::to_string(a.peak_rss_kb));
      AppendRaw(&out, "spill_bytes", std::to_string(a.spill_bytes));
      AppendString(&out, "cmd", a.cmd);
      AppendString(&out, "stderr_tail", a.stderr_tail);
      AppendRaw(&out, "degraded", a.degraded ? "true" : "false");
      AppendRaw(&out, "escalated", a.escalated ? "true" : "false");
      AppendRaw(&out, "resumed", a.resumed ? "true" : "false");
      AppendString(&out, "next", a.next);
      break;
    }
    case LedgerRecord::Kind::kDone: {
      const DoneRecord& d = record.done;
      AppendString(&out, "type", "done");
      AppendString(&out, "task", d.task);
      AppendString(&out, "state", d.completed ? "completed" : "quarantined");
      AppendRaw(&out, "exit", std::to_string(d.exit_code));
      AppendRaw(&out, "attempts", std::to_string(d.attempts));
      if (!d.triage.empty()) AppendString(&out, "triage", d.triage);
      break;
    }
  }
  out += '}';
  return out;
}

Result<LedgerRecord> ParseLedgerRecord(std::string_view line) {
  FlatJson fields;
  TGDKIT_RETURN_IF_ERROR(ParseFlatJson(line, &fields));
  std::string type = GetString(fields, "type");
  if (type == "run") {
    RunRecord run;
    run.manifest = GetString(fields, "manifest");
    run.tasks = GetU64(fields, "tasks");
    return LedgerRecord::Run(std::move(run));
  }
  if (type == "attempt") {
    AttemptRecord a;
    a.task = GetString(fields, "task");
    a.attempt = GetU64(fields, "attempt");
    if (a.task.empty() || a.attempt == 0) {
      return Malformed("attempt record missing task/attempt");
    }
    if (!ParseAttemptOutcome(GetString(fields, "outcome"), &a.outcome)) {
      return Malformed("unknown attempt outcome");
    }
    a.exit_code = static_cast<int>(GetI64(fields, "exit", -1));
    a.signal = static_cast<int>(GetI64(fields, "signal", 0));
    a.stop = GetString(fields, "stop");
    a.status_line = GetString(fields, "status");
    a.duration_ms = GetDouble(fields, "duration_ms");
    a.peak_rss_kb = GetU64(fields, "peak_rss_kb");
    a.spill_bytes = GetU64(fields, "spill_bytes");
    a.cmd = GetString(fields, "cmd");
    a.stderr_tail = GetString(fields, "stderr_tail");
    a.degraded = GetBool(fields, "degraded");
    a.escalated = GetBool(fields, "escalated");
    a.resumed = GetBool(fields, "resumed");
    a.next = GetString(fields, "next");
    return LedgerRecord::Attempt(std::move(a));
  }
  if (type == "done") {
    DoneRecord d;
    d.task = GetString(fields, "task");
    std::string state = GetString(fields, "state");
    if (d.task.empty() ||
        (state != "completed" && state != "quarantined")) {
      return Malformed("done record missing task/state");
    }
    d.completed = state == "completed";
    d.exit_code = static_cast<int>(GetI64(fields, "exit", -1));
    d.attempts = GetU64(fields, "attempts");
    d.triage = GetString(fields, "triage");
    return LedgerRecord::Done(std::move(d));
  }
  return Malformed(Cat("unknown record type '", type, "'"));
}

Status AppendLedgerRecord(const std::string& path,
                          const LedgerRecord& record) {
  return AppendLineDurable(path, RenderLedgerRecord(record));
}

Result<std::vector<LedgerRecord>> LoadLedger(const std::string& path) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  std::vector<LedgerRecord> records;
  std::string_view rest = *bytes;
  size_t line_number = 0;
  while (!rest.empty()) {
    size_t eol = rest.find('\n');
    if (eol == std::string_view::npos) {
      // Torn trailing line: a crash hit mid-append. The record was never
      // committed; ignore it.
      break;
    }
    std::string_view line = rest.substr(0, eol);
    rest.remove_prefix(eol + 1);
    ++line_number;
    if (line.empty()) continue;
    Result<LedgerRecord> record = ParseLedgerRecord(line);
    if (!record.ok()) {
      return Status::DataLoss(Cat(path, " line ", line_number, ": ",
                                  record.status().message()));
    }
    records.push_back(std::move(*record));
  }
  return records;
}

Status TruncateTornLedgerTail(const std::string& path) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) {
    if (bytes.status().code() == Status::Code::kNotFound) {
      return Status::Ok();
    }
    return bytes.status();
  }
  if (bytes->empty() || bytes->back() == '\n') return Status::Ok();
  size_t keep = bytes->rfind('\n');
  keep = keep == std::string::npos ? 0 : keep + 1;
  int fd = open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal(
        Cat(path, ": cannot open to heal torn tail: ", strerror(errno)));
  }
  if (ftruncate(fd, static_cast<off_t>(keep)) != 0) {
    int saved = errno;
    close(fd);
    return Status::Internal(
        Cat(path, ": cannot truncate torn tail: ", strerror(saved)));
  }
  fsync(fd);
  close(fd);
  return Status::Ok();
}

std::map<std::string, TaskReplay> ReplayLedger(
    const std::vector<LedgerRecord>& records) {
  std::map<std::string, TaskReplay> replay;
  for (const LedgerRecord& record : records) {
    if (record.kind == LedgerRecord::Kind::kAttempt) {
      TaskReplay& task = replay[record.attempt.task];
      task.attempts = std::max(task.attempts, record.attempt.attempt);
      task.degraded |= record.attempt.degraded;
      task.escalated |= record.attempt.escalated;
    } else if (record.kind == LedgerRecord::Kind::kDone) {
      TaskReplay& task = replay[record.done.task];
      if (task.terminal) continue;  // first done wins (defensive)
      task.terminal = true;
      task.completed = record.done.completed;
      task.final_exit = record.done.exit_code;
      task.attempts = std::max(task.attempts, record.done.attempts);
    }
  }
  return replay;
}

}  // namespace tgdkit
