#include "supervise/worker.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "base/strings.h"
#include "cli/cli.h"

namespace tgdkit {

namespace {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Child-side setup + command execution. Never returns.
[[noreturn]] void RunChild(const WorkerOptions& options, int stdout_write,
                           int stderr_write) {
  // The forked child inherits the supervisor's cancellation token state;
  // a cancelled supervisor must not pre-cancel its workers. Reset, then
  // re-wire SIGINT/SIGTERM to *this* process's cooperative cancellation
  // so the supervisor's kill escalation starts with a graceful stop.
  GlobalCancellationToken().Reset();
  InstallCancellationSignalHandlers();
  for (const auto& [name, value] : options.env) {
    setenv(name.c_str(), value.c_str(), 1);
  }
  if (dup2(stdout_write, STDOUT_FILENO) < 0 ||
      dup2(stderr_write, STDERR_FILENO) < 0) {
    _exit(kExitInternal);
  }
  close(stdout_write);
  close(stderr_write);
  if (!options.exec_binary.empty()) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(options.exec_binary.c_str()));
    for (const std::string& arg : options.args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    execv(options.exec_binary.c_str(), argv.data());
    // Exec failure: report on the (captured) stderr and die with the
    // internal-error code.
    std::fprintf(stderr, "tgdkit: cannot exec '%s': %s\n",
                 options.exec_binary.c_str(), std::strerror(errno));
    _exit(kExitInternal);
  }
  int code = RunCli(options.args, std::cout, std::cerr);
  std::cout.flush();
  std::cerr.flush();
  std::fflush(nullptr);
  _exit(code);
}

/// Appends up to everything readable from `fd` into `out`, honouring a
/// byte cap. Returns false on EOF.
bool DrainFd(int fd, std::string* out, size_t limit, bool* truncated) {
  char buffer[16384];
  while (true) {
    ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n == 0) return false;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno == EAGAIN || errno == EWOULDBLOCK;
    }
    size_t take = static_cast<size_t>(n);
    if (out->size() + take > limit) {
      take = limit > out->size() ? limit - out->size() : 0;
      if (truncated != nullptr) *truncated = true;
    }
    out->append(buffer, take);
  }
}

}  // namespace

WorkerProcess::WorkerProcess(WorkerOptions options)
    : options_(std::move(options)) {}

WorkerProcess::~WorkerProcess() {
  if (pid_ > 0) {
    kill(pid_, SIGKILL);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
  }
  if (stdout_fd_ >= 0) close(stdout_fd_);
  if (stderr_fd_ >= 0) close(stderr_fd_);
}

Status WorkerProcess::Start() {
  int out_pipe[2] = {-1, -1};
  int err_pipe[2] = {-1, -1};
  if (pipe(out_pipe) != 0) {
    return Status::Internal(Cat("pipe: ", std::strerror(errno)));
  }
  if (pipe(err_pipe) != 0) {
    close(out_pipe[0]);
    close(out_pipe[1]);
    return Status::Internal(Cat("pipe: ", std::strerror(errno)));
  }
  // The child inherits the parent's stdio buffers; flush so buffered
  // bytes are not emitted twice.
  std::cout.flush();
  std::cerr.flush();
  std::fflush(nullptr);
  pid_t pid = fork();
  if (pid < 0) {
    for (int fd : {out_pipe[0], out_pipe[1], err_pipe[0], err_pipe[1]}) {
      close(fd);
    }
    return Status::Internal(Cat("fork: ", std::strerror(errno)));
  }
  if (pid == 0) {
    close(out_pipe[0]);
    close(err_pipe[0]);
    RunChild(options_, out_pipe[1], err_pipe[1]);
  }
  close(out_pipe[1]);
  close(err_pipe[1]);
  pid_ = pid;
  stdout_fd_ = out_pipe[0];
  stderr_fd_ = err_pipe[0];
  SetNonBlocking(stdout_fd_);
  SetNonBlocking(stderr_fd_);
  ExecutionBudget deadline;
  deadline.deadline_ms = options_.deadline_ms;
  governor_ = ResourceGovernor(deadline);
  return Status::Ok();
}

void WorkerProcess::Pump() {
  if (stdout_fd_ >= 0 &&
      !DrainFd(stdout_fd_, &outcome_.stdout_data, options_.stdout_limit,
               &outcome_.stdout_truncated)) {
    close(stdout_fd_);
    stdout_fd_ = -1;
  }
  if (stderr_fd_ >= 0) {
    // Unbounded drain, then keep the tail: the newest diagnostics are the
    // ones triage wants.
    size_t soft_cap = options_.stderr_tail_limit * 4 + 65536;
    if (!DrainFd(stderr_fd_, &outcome_.stderr_tail, soft_cap, nullptr)) {
      close(stderr_fd_);
      stderr_fd_ = -1;
    }
    if (outcome_.stderr_tail.size() > options_.stderr_tail_limit * 2) {
      outcome_.stderr_tail.erase(
          0, outcome_.stderr_tail.size() - options_.stderr_tail_limit);
    }
  }
}

void WorkerProcess::KillNow(int signum) {
  if (pid_ > 0) kill(pid_, signum);
}

void WorkerProcess::Tick() {
  if (pid_ <= 0) return;
  if (term_sent_) {
    if (governor_.elapsed_ms() >= kill_at_ms_) {
      KillNow(SIGKILL);
      // Push the next escalation far out; the SIGKILL cannot be ignored.
      kill_at_ms_ = governor_.elapsed_ms() + 60000;
    }
    return;
  }
  if (options_.deadline_ms != 0 && !governor_.CheckNow()) {
    outcome_.timed_out = true;
    term_sent_ = true;
    kill_at_ms_ =
        governor_.elapsed_ms() + static_cast<double>(options_.grace_ms);
    KillNow(SIGTERM);
  }
}

void WorkerProcess::RequestStop() {
  if (pid_ <= 0 || term_sent_) return;
  outcome_.stop_requested = true;
  term_sent_ = true;
  kill_at_ms_ =
      governor_.elapsed_ms() + static_cast<double>(options_.grace_ms);
  KillNow(SIGTERM);
}

bool WorkerProcess::TryReap() {
  if (pid_ <= 0) return true;
  int status = 0;
  struct rusage usage = {};
  // wait4 = waitpid + the child's resource usage; ru_maxrss is the peak
  // RSS in KiB on Linux.
  pid_t reaped = wait4(pid_, &status, WNOHANG, &usage);
  if (reaped == 0) return false;
  if (usage.ru_maxrss > 0) {
    outcome_.peak_rss_kb = static_cast<uint64_t>(usage.ru_maxrss);
  }
  outcome_.duration_ms = governor_.elapsed_ms();
  pid_ = -1;
  // Final drain: the pipes may still hold everything the worker wrote.
  Pump();
  if (stdout_fd_ >= 0) {
    close(stdout_fd_);
    stdout_fd_ = -1;
  }
  if (stderr_fd_ >= 0) {
    close(stderr_fd_);
    stderr_fd_ = -1;
  }
  if (reaped < 0) {
    // waitpid failure (should not happen): treat as an internal error.
    outcome_.exited = true;
    outcome_.exit_code = kExitInternal;
    return true;
  }
  if (WIFEXITED(status)) {
    outcome_.exited = true;
    outcome_.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    outcome_.signaled = true;
    outcome_.signal = WTERMSIG(status);
  }
  if (outcome_.stderr_tail.size() > options_.stderr_tail_limit) {
    outcome_.stderr_tail.erase(
        0, outcome_.stderr_tail.size() - options_.stderr_tail_limit);
  }
  return true;
}

std::string ExtractStatusLine(std::string_view stdout_data) {
  constexpr std::string_view kPrefix = "# status:";
  std::string last;
  size_t pos = 0;
  while (pos < stdout_data.size()) {
    size_t eol = stdout_data.find('\n', pos);
    if (eol == std::string_view::npos) eol = stdout_data.size();
    std::string_view line = stdout_data.substr(pos, eol - pos);
    if (line.substr(0, kPrefix.size()) == kPrefix) {
      last = std::string(line);
    }
    pos = eol + 1;
  }
  return last;
}

std::string ExtractStopToken(std::string_view status_line) {
  constexpr std::string_view kMarker = " stopped by ";
  size_t pos = status_line.find(kMarker);
  if (pos == std::string_view::npos) return std::string();
  size_t start = pos + kMarker.size();
  size_t end = start;
  while (end < status_line.size() && status_line[end] != ' ') ++end;
  return std::string(status_line.substr(start, end - start));
}

uint64_t ExtractStatusU64(std::string_view status_line,
                          std::string_view key) {
  // Match the key only at a field boundary (start of line or after a
  // space) so "spill_bytes=" never matches inside another key.
  size_t pos = 0;
  while (true) {
    pos = status_line.find(key, pos);
    if (pos == std::string_view::npos) return 0;
    if (pos == 0 || status_line[pos - 1] == ' ') break;
    ++pos;
  }
  size_t start = pos + key.size();
  uint64_t value = 0;
  bool any = false;
  for (size_t i = start; i < status_line.size(); ++i) {
    char c = status_line[i];
    if (c < '0' || c > '9') break;
    value = value * 10 + static_cast<uint64_t>(c - '0');
    any = true;
  }
  return any ? value : 0;
}

}  // namespace tgdkit
