#include "supervise/manifest.h"

#include <limits>

#include "base/fileio.h"
#include "base/strings.h"

namespace tgdkit {

namespace {

Status LineError(size_t line, const std::string& what) {
  return Status::InvalidArgument(Cat("manifest line ", line, ": ", what));
}

/// Splits one logical manifest line into tokens: whitespace-separated,
/// with double-quoted tokens that may contain spaces (\" and \\ escapes).
/// A '#' or "//" at the start of a token ends the line (comment).
Status Tokenize(std::string_view text, size_t line,
                std::vector<std::string>* out) {
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    if (i >= text.size()) break;
    if (text[i] == '#' ||
        (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/')) {
      break;
    }
    std::string token;
    if (text[i] == '"') {
      ++i;
      bool closed = false;
      while (i < text.size()) {
        char c = text[i++];
        if (c == '\\' && i < text.size() &&
            (text[i] == '"' || text[i] == '\\')) {
          token += text[i++];
        } else if (c == '"') {
          closed = true;
          break;
        } else {
          token += c;
        }
      }
      if (!closed) return LineError(line, "unterminated quoted token");
    } else {
      while (i < text.size() && text[i] != ' ' && text[i] != '\t') {
        token += text[i++];
      }
    }
    out->push_back(std::move(token));
  }
  return Status::Ok();
}

bool ParseU64(std::string_view value, uint64_t* out) {
  if (value.empty()) return false;
  uint64_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    if (parsed > (std::numeric_limits<uint64_t>::max() - (c - '0')) / 10) {
      return false;
    }
    parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = parsed;
  return true;
}

/// Applies one `key=value` of a `batch` directive.
Status ApplyDefault(BatchDefaults* defaults, std::string_view key,
                    std::string_view value, size_t line) {
  if (key == "accept-resource") {
    if (value == "true" || value == "1") {
      defaults->accept_resource = true;
    } else if (value == "false" || value == "0") {
      defaults->accept_resource = false;
    } else {
      return LineError(line, "accept-resource must be true or false");
    }
    return Status::Ok();
  }
  uint64_t parsed = 0;
  if (!ParseU64(value, &parsed)) {
    return LineError(line, Cat("invalid value '", value, "' for ", key));
  }
  if (key == "max-parallel") {
    if (parsed == 0 || parsed > 256) {
      return LineError(line, "max-parallel must be between 1 and 256");
    }
    defaults->max_parallel = parsed;
  } else if (key == "retries") {
    defaults->retries = parsed;
  } else if (key == "backoff-ms") {
    defaults->backoff_ms = parsed;
  } else if (key == "backoff-cap-ms") {
    defaults->backoff_cap_ms = parsed;
  } else if (key == "grace-ms") {
    defaults->grace_ms = parsed;
  } else if (key == "task-deadline-ms") {
    defaults->task_deadline_ms = parsed;
  } else if (key == "escalate-factor") {
    defaults->escalate_factor = parsed;
  } else if (key == "checkpoint-every-steps") {
    defaults->checkpoint_every_steps = parsed;
  } else if (key == "checkpoint-every-ms") {
    defaults->checkpoint_every_ms = parsed;
  } else {
    return LineError(line, Cat("unknown batch setting '", key, "'"));
  }
  return Status::Ok();
}

Status ParseTaskDirective(const std::vector<std::string>& tokens, size_t line,
                          ManifestTask* task) {
  if (tokens.size() < 2) return LineError(line, "task needs an id");
  task->id = tokens[1];
  task->line = line;
  if (!IsValidTaskId(task->id)) {
    return LineError(
        line, Cat("invalid task id '", task->id,
                  "' (want 1-64 chars of [A-Za-z0-9._-], not starting "
                  "with '.' or '-')"));
  }
  size_t i = 2;
  // Attributes and env assignments until the ':' separator.
  for (; i < tokens.size() && tokens[i] != ":"; ++i) {
    const std::string& token = tokens[i];
    if (token == "env") {
      if (i + 1 >= tokens.size()) {
        return LineError(line, "env needs a NAME=VALUE argument");
      }
      const std::string& assignment = tokens[++i];
      size_t eq = assignment.find('=');
      if (eq == std::string::npos || eq == 0) {
        return LineError(line,
                         Cat("malformed env assignment '", assignment, "'"));
      }
      task->env.emplace_back(assignment.substr(0, eq),
                             assignment.substr(eq + 1));
      continue;
    }
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return LineError(line, Cat("unexpected token '", token,
                                 "' before ':' (did you mean 'env ", token,
                                 "=...'?)"));
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "isolation") {
      if (value == "none") {
        task->in_process = true;
      } else if (value == "fork") {
        task->in_process = false;
      } else {
        return LineError(line, "isolation must be 'fork' or 'none'");
      }
      continue;
    }
    uint64_t parsed = 0;
    if (!ParseU64(value, &parsed)) {
      return LineError(line, Cat("invalid value in '", token, "'"));
    }
    if (key == "deadline-ms") {
      task->deadline_ms = parsed;
    } else if (key == "retries") {
      task->retries = parsed;
    } else {
      return LineError(line, Cat("unknown task attribute '", key, "'"));
    }
  }
  if (i >= tokens.size()) {
    return LineError(line, "task is missing the ': COMMAND ARGS...' part");
  }
  task->args.assign(tokens.begin() + static_cast<long>(i) + 1, tokens.end());
  if (task->args.empty()) {
    return LineError(line, "task has an empty command");
  }
  if (task->args[0] == "batch") {
    return LineError(line, "a batch task cannot itself be 'batch'");
  }
  if (task->in_process) {
    // The fast path trades fault isolation for latency, so it is only
    // open to subcommands that are cheap, read-only and thread-free; a
    // crash in anything else must stay contained in a forked worker.
    const std::string& command = task->args[0];
    if (command != "classify" && command != "lint" &&
        command != "normalize" && command != "dot") {
      return LineError(
          line, Cat("isolation=none is only available for classify, lint, "
                    "normalize and dot (got '", command, "')"));
    }
    if (!task->env.empty()) {
      return LineError(line,
                       "isolation=none tasks cannot set env (no worker "
                       "process to scope it to)");
    }
  }
  return Status::Ok();
}

}  // namespace

bool IsValidTaskId(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  if (id[0] == '.' || id[0] == '-') return false;
  for (char c : id) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Result<Manifest> ParseManifest(std::string_view text) {
  Manifest manifest;
  size_t line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    // One logical line: physical lines joined while they end in '\'.
    std::string logical;
    size_t first_line = 0;
    bool more = true;
    while (more && pos <= text.size()) {
      size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      std::string_view physical = text.substr(pos, eol - pos);
      pos = eol + 1;
      ++line_number;
      if (first_line == 0) first_line = line_number;
      if (!physical.empty() && physical.back() == '\r') {
        physical.remove_suffix(1);
      }
      if (!physical.empty() && physical.back() == '\\') {
        physical.remove_suffix(1);
        logical.append(physical);
        logical += ' ';
      } else {
        logical.append(physical);
        more = false;
      }
    }
    std::vector<std::string> tokens;
    TGDKIT_RETURN_IF_ERROR(Tokenize(logical, first_line, &tokens));
    if (tokens.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    if (tokens[0] == "batch") {
      for (size_t i = 1; i < tokens.size(); ++i) {
        size_t eq = tokens[i].find('=');
        if (eq == std::string::npos || eq == 0) {
          return LineError(first_line,
                           Cat("malformed batch setting '", tokens[i], "'"));
        }
        TGDKIT_RETURN_IF_ERROR(ApplyDefault(&manifest.defaults,
                                            tokens[i].substr(0, eq),
                                            tokens[i].substr(eq + 1),
                                            first_line));
      }
    } else if (tokens[0] == "task") {
      ManifestTask task;
      TGDKIT_RETURN_IF_ERROR(ParseTaskDirective(tokens, first_line, &task));
      for (const ManifestTask& existing : manifest.tasks) {
        if (existing.id == task.id) {
          return LineError(first_line,
                           Cat("duplicate task id '", task.id, "'"));
        }
      }
      manifest.tasks.push_back(std::move(task));
    } else {
      return LineError(first_line, Cat("unknown directive '", tokens[0],
                                       "' (want 'batch' or 'task')"));
    }
    if (pos > text.size()) break;
  }
  if (manifest.tasks.empty()) {
    return Status::InvalidArgument("manifest defines no tasks");
  }
  return manifest;
}

Result<Manifest> LoadManifest(const std::string& path) {
  Result<std::string> text = ReadFileBytes(path);
  if (!text.ok()) return text.status();
  Result<Manifest> manifest = ParseManifest(*text);
  if (!manifest.ok()) {
    return Status::InvalidArgument(
        Cat(path, ": ", manifest.status().message()));
  }
  return manifest;
}

bool OptionTakesValue(std::string_view arg) {
  // Mirrors ParseOptions in src/cli/cli.cc; --format/--fail-on also accept
  // the one-token --opt=value form, which consumes no extra token.
  return arg == "--max-rounds" || arg == "--max-facts" ||
         arg == "--max-depth" || arg == "--max-steps" ||
         arg == "--deadline-ms" || arg == "--max-memory-mb" ||
         arg == "--seed" || arg == "--threads" || arg == "--checkpoint" ||
         arg == "--checkpoint-every-steps" ||
         arg == "--checkpoint-every-ms" || arg == "--resume" ||
         arg == "--format" || arg == "--fail-on";
}

std::vector<std::string> WithForcedOption(std::vector<std::string> args,
                                          std::string_view option,
                                          std::string_view value) {
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == option) {
      if (i + 1 < args.size()) {
        args[i + 1] = std::string(value);
        return args;
      }
      args.push_back(std::string(value));
      return args;
    }
  }
  args.push_back(std::string(option));
  args.push_back(std::string(value));
  return args;
}

std::vector<std::string> WithScaledBudgets(std::vector<std::string> args,
                                           uint64_t factor) {
  for (size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] != "--max-steps" && args[i] != "--deadline-ms" &&
        args[i] != "--max-memory-mb") {
      continue;
    }
    uint64_t value = 0;
    if (!ParseU64(args[i + 1], &value)) continue;
    uint64_t scaled = value;
    if (factor != 0 && value > std::numeric_limits<uint64_t>::max() / factor) {
      scaled = std::numeric_limits<uint64_t>::max();
    } else {
      scaled = value * factor;
    }
    args[i + 1] = std::to_string(scaled);
    ++i;
  }
  return args;
}

std::vector<std::string> RewriteChaseForResume(
    const std::vector<std::string>& args, const std::string& snapshot_path) {
  std::vector<std::string> out;
  out.push_back("chase");
  out.push_back("--resume");
  out.push_back(snapshot_path);
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) == 0) {
      if (arg == "--resume" || arg == "--checkpoint") {
        if (OptionTakesValue(arg)) ++i;  // drop: re-forced below
        continue;
      }
      out.push_back(arg);
      if (OptionTakesValue(arg) && i + 1 < args.size()) {
        out.push_back(args[++i]);
      }
    }
    // Non-option tokens are the DEPS/INSTANCE positionals: dropped — the
    // snapshot is self-contained.
  }
  out.push_back("--checkpoint");
  out.push_back(snapshot_path);
  return out;
}

std::string ShellQuote(const std::vector<std::string>& args) {
  return JoinMapped(args, " ", [](const std::string& arg) -> std::string {
    bool plain = !arg.empty();
    for (char c : arg) {
      bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                c == '-' || c == '/' || c == '=' || c == ':' || c == ',';
      if (!ok) {
        plain = false;
        break;
      }
    }
    if (plain) return arg;
    std::string quoted = "'";
    for (char c : arg) {
      if (c == '\'') {
        quoted += "'\\''";
      } else {
        quoted += c;
      }
    }
    quoted += "'";
    return quoted;
  });
}

}  // namespace tgdkit
