// The batch supervisor: fans manifest tasks out to a bounded pool of
// fault-isolated worker subprocesses, records every attempt in the
// durable run ledger, and drives the retry / degradation / quarantine
// policy (docs/BATCH.md):
//
//  * exit 0 / exit 3 (verdict)  -> task completed (3 is still recorded
//    as a negative verdict and fails the batch exit code)
//  * exit 1 / exit 2            -> deterministic config/input error:
//    quarantined immediately, retries would change nothing
//  * exit 4 (resource)          -> retried ONCE with budgets scaled by
//    escalate-factor; exhausted again -> quarantined (or accepted as a
//    completed partial result under accept-resource=true)
//  * crash (signal), supervisor timeout, exit 5 -> retried with capped
//    exponential backoff; a crashed parallel chase retries with
//    --threads 1; retries exhausted -> quarantined with a crash-triage
//    report
//
// Chase tasks are checkpointed to a per-task snapshot path derived from
// the task id; every retry (and every rerun of the whole batch) resumes
// from the newest surviving checkpoint instead of restarting.
//
// Rerunning the supervisor over an existing ledger is idempotent:
// terminal tasks are skipped, interrupted tasks continue with their
// attempt history (supervisor-shutdown attempts do not burn retry
// budget), and the run converges to a terminal state for every task.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "base/budget.h"
#include "base/status.h"
#include "supervise/manifest.h"

namespace tgdkit {

/// Effective run options: built-in defaults, overridden by the manifest's
/// `batch` directives, overridden by `tgdkit batch` command-line flags.
struct SupervisorOptions {
  std::string manifest_path;
  /// Artifact directory: per-task stdout/stderr/triage files plus the
  /// `ck/` checkpoint directory. Default: `<manifest>.runs`.
  std::string run_dir;
  /// Ledger path. Default: `<run_dir>/ledger.jsonl`.
  std::string ledger_path;
  /// Non-empty: fork+exec this tgdkit binary for workers instead of the
  /// in-process fork.
  std::string worker_binary;
  uint64_t max_parallel = 2;
  /// Retries after the first attempt (max charged attempts = retries+1).
  uint64_t retries = 2;
  uint64_t backoff_ms = 200;
  uint64_t backoff_cap_ms = 5000;
  uint64_t grace_ms = 2000;
  /// Per-task wall-clock deadline enforced by the supervisor; 0 = none.
  uint64_t task_deadline_ms = 0;
  /// Budget multiplier for the one-shot ResourceExhausted retry;
  /// 0 or 1 disables escalation (a resource stop quarantines directly).
  uint64_t escalate_factor = 2;
  /// Checkpoint cadence injected into chase tasks (0 = leave unset).
  uint64_t checkpoint_every_steps = 0;
  uint64_t checkpoint_every_ms = 200;
  /// Record resource-stopped attempts as completed partial results
  /// instead of escalating/quarantining.
  bool accept_resource = false;
  /// Supervisor-level cooperative cancellation (SIGINT/SIGTERM): stops
  /// launching, SIGTERMs running workers, leaves the run resumable.
  CancellationToken cancel;
};

/// Merges manifest defaults into `options` for every field the CLI did
/// not explicitly set (`explicit_*` flags name the CLI-set fields).
struct SupervisorCliOverrides {
  bool max_parallel = false;
  bool retries = false;
  bool backoff_ms = false;
  bool backoff_cap_ms = false;
  bool grace_ms = false;
  bool task_deadline_ms = false;
  bool escalate_factor = false;
  bool checkpoint_every_steps = false;
  bool checkpoint_every_ms = false;
  bool accept_resource = false;
};
void ApplyManifestDefaults(const BatchDefaults& defaults,
                           const SupervisorCliOverrides& cli_set,
                           SupervisorOptions* options);

struct SupervisorReport {
  uint64_t total = 0;
  /// Tasks already terminal in the loaded ledger (no work this run).
  uint64_t skipped = 0;
  uint64_t completed = 0;
  uint64_t quarantined = 0;
  /// Completed tasks whose final exit was 3 (negative verdict).
  uint64_t verdicts = 0;
  /// Attempts that ran in this invocation.
  uint64_t attempts = 0;
  /// The run was interrupted (cancellation); some tasks are not terminal.
  bool interrupted = false;

  /// Batch exit code: 4 interrupted, 3 any quarantine/negative verdict,
  /// 0 otherwise (ledger failures surface as a Status -> exit 5).
  int ExitCode() const;
};

/// Runs the batch. Progress and the final summary go to `out` as
/// '#'-prefixed machine-readable lines; diagnostics go to `err`. Returns
/// a Status error (Internal/InvalidArgument/DataLoss) only for
/// supervisor-level failures — unreadable manifest/ledger, ledger append
/// failure — never for task failures, which are the report's job.
Result<SupervisorReport> RunBatch(const Manifest& manifest,
                                  const SupervisorOptions& options,
                                  std::ostream& out, std::ostream& err);

}  // namespace tgdkit
