#include "supervise/jsonl.h"

#include <cstdio>
#include <cstdlib>

#include "base/strings.h"

namespace tgdkit {

namespace {

Status Malformed(const std::string& what) {
  return Status::InvalidArgument(Cat("ledger record: ", what));
}

void SkipSpace(std::string_view text, size_t* i) {
  while (*i < text.size() &&
         (text[*i] == ' ' || text[*i] == '\t' || text[*i] == '\r')) {
    ++*i;
  }
}

/// Parses a JSON string starting at the opening quote.
Status ParseJsonString(std::string_view text, size_t* i, std::string* out) {
  if (*i >= text.size() || text[*i] != '"') return Malformed("expected '\"'");
  ++*i;
  while (*i < text.size()) {
    char c = text[(*i)++];
    if (c == '"') return Status::Ok();
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (*i >= text.size()) break;
    char esc = text[(*i)++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'n': out->push_back('\n'); break;
      case 't': out->push_back('\t'); break;
      case 'r': out->push_back('\r'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'u': {
        if (*i + 4 > text.size()) return Malformed("truncated \\u escape");
        unsigned value = 0;
        for (int k = 0; k < 4; ++k) {
          char h = text[(*i)++];
          value <<= 4;
          if (h >= '0' && h <= '9') {
            value |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            value |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            value |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return Malformed("bad \\u escape");
          }
        }
        // The writer only emits \u00XX for control bytes; decode the
        // low byte and tolerate (rare) larger values as UTF-8.
        if (value < 0x80) {
          out->push_back(static_cast<char>(value));
        } else if (value < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (value >> 6)));
          out->push_back(static_cast<char>(0x80 | (value & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (value >> 12)));
          out->push_back(static_cast<char>(0x80 | ((value >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (value & 0x3F)));
        }
        break;
      }
      default:
        return Malformed("unknown escape");
    }
  }
  return Malformed("unterminated string");
}

void AppendField(std::string* out, std::string_view key,
                 std::string_view value, bool quote) {
  if (out->back() != '{') *out += ',';
  *out += '"';
  *out += key;
  *out += "\":";
  if (quote) {
    *out += '"';
    *out += JsonEscape(value);
    *out += '"';
  } else {
    *out += value;
  }
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

Status ParseFlatJson(std::string_view text, FlatJson* out) {
  size_t i = 0;
  SkipSpace(text, &i);
  if (i >= text.size() || text[i] != '{') return Malformed("expected '{'");
  ++i;
  SkipSpace(text, &i);
  if (i < text.size() && text[i] == '}') {
    ++i;
    SkipSpace(text, &i);
    if (i != text.size()) return Malformed("trailing bytes");
    return Status::Ok();
  }
  while (true) {
    SkipSpace(text, &i);
    std::string key;
    TGDKIT_RETURN_IF_ERROR(ParseJsonString(text, &i, &key));
    SkipSpace(text, &i);
    if (i >= text.size() || text[i] != ':') return Malformed("expected ':'");
    ++i;
    SkipSpace(text, &i);
    JsonFieldValue value;
    if (i >= text.size()) return Malformed("truncated value");
    if (text[i] == '"') {
      TGDKIT_RETURN_IF_ERROR(ParseJsonString(text, &i, &value.scalar));
    } else if (text[i] == '[') {
      value.is_array = true;
      ++i;
      SkipSpace(text, &i);
      if (i < text.size() && text[i] == ']') {
        ++i;
      } else {
        while (true) {
          SkipSpace(text, &i);
          std::string element;
          TGDKIT_RETURN_IF_ERROR(ParseJsonString(text, &i, &element));
          value.elements.push_back(std::move(element));
          SkipSpace(text, &i);
          if (i >= text.size()) return Malformed("unterminated array");
          if (text[i] == ',') {
            ++i;
            continue;
          }
          if (text[i] == ']') {
            ++i;
            break;
          }
          return Malformed("expected ',' or ']'");
        }
      }
    } else if (text[i] == '{') {
      return Malformed("nested values are not part of the ledger schema");
    } else {
      while (i < text.size() && text[i] != ',' && text[i] != '}' &&
             text[i] != ' ' && text[i] != '\t') {
        value.scalar += text[i++];
      }
      if (value.scalar.empty()) return Malformed("empty value");
    }
    out->emplace_back(std::move(key), std::move(value));
    SkipSpace(text, &i);
    if (i >= text.size()) return Malformed("unterminated object");
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] == '}') {
      ++i;
      SkipSpace(text, &i);
      if (i != text.size()) return Malformed("trailing bytes");
      return Status::Ok();
    }
    return Malformed("expected ',' or '}'");
  }
}

const JsonFieldValue* FindJsonField(const FlatJson& fields,
                                    std::string_view key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string GetJsonString(const FlatJson& fields, std::string_view key) {
  const JsonFieldValue* value = FindJsonField(fields, key);
  return value == nullptr ? std::string() : value->scalar;
}

uint64_t GetJsonU64(const FlatJson& fields, std::string_view key) {
  const JsonFieldValue* value = FindJsonField(fields, key);
  if (value == nullptr) return 0;
  return std::strtoull(value->scalar.c_str(), nullptr, 10);
}

int64_t GetJsonI64(const FlatJson& fields, std::string_view key,
                   int64_t missing) {
  const JsonFieldValue* value = FindJsonField(fields, key);
  if (value == nullptr) return missing;
  return std::strtoll(value->scalar.c_str(), nullptr, 10);
}

double GetJsonDouble(const FlatJson& fields, std::string_view key) {
  const JsonFieldValue* value = FindJsonField(fields, key);
  if (value == nullptr) return 0;
  return std::strtod(value->scalar.c_str(), nullptr);
}

bool GetJsonBool(const FlatJson& fields, std::string_view key) {
  const JsonFieldValue* value = FindJsonField(fields, key);
  return value != nullptr && value->scalar == "true";
}

std::vector<std::string> GetJsonStringArray(const FlatJson& fields,
                                            std::string_view key) {
  const JsonFieldValue* value = FindJsonField(fields, key);
  if (value == nullptr || !value->is_array) return {};
  return value->elements;
}

void AppendJsonString(std::string* out, std::string_view key,
                      std::string_view value) {
  AppendField(out, key, value, /*quote=*/true);
}

void AppendJsonRaw(std::string* out, std::string_view key,
                   std::string_view value) {
  AppendField(out, key, value, /*quote=*/false);
}

void AppendJsonStringArray(std::string* out, std::string_view key,
                           const std::vector<std::string>& values) {
  std::string array = "[";
  array += JoinMapped(values, ",", [](const std::string& v) {
    return Cat("\"", JsonEscape(v), "\"");
  });
  array += "]";
  AppendField(out, key, array, /*quote=*/false);
}

}  // namespace tgdkit
