#include "supervise/supervisor.h"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "api/api.h"
#include "base/fileio.h"
#include "base/strings.h"
#include "cli/cli.h"
#include "snapshot/snapshot.h"
#include "supervise/ledger.h"
#include "supervise/worker.h"

namespace tgdkit {

namespace {

const char* SignalName(int signum) {
  switch (signum) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    default: return "signal";
  }
}

/// Scheduling state of one manifest task.
struct TaskState {
  const ManifestTask* task = nullptr;
  /// Attempt numbering (includes cancelled attempts, for unique ids).
  uint64_t attempts = 0;
  /// Attempts charged against the retry budget (excludes supervisor-
  /// shutdown cancellations).
  uint64_t charged = 0;
  bool terminal = false;
  bool completed = false;
  int final_exit = -1;
  bool skipped = false;
  /// One-shot degradations, sticky across attempts and reruns.
  bool degraded = false;
  bool escalated = false;
  /// Backoff gate: earliest supervisor time this task may start.
  double ready_at_ms = 0;
  bool is_chase = false;
  std::string checkpoint_path;
  /// Live attempt.
  std::unique_ptr<WorkerProcess> worker;
  AttemptRecord running_attempt;
  /// Last finished attempt (triage source for quarantine decisions).
  AttemptRecord last_attempt;
  bool have_last_attempt = false;
};

class Supervisor {
 public:
  Supervisor(const Manifest& manifest, const SupervisorOptions& options,
             std::ostream& out, std::ostream& err)
      : manifest_(manifest),
        options_(options),
        out_(out),
        err_(err),
        start_(std::chrono::steady_clock::now()) {}

  Result<SupervisorReport> Run();

 private:
  double NowMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  uint64_t MaxAttempts(const TaskState& state) const {
    uint64_t retries =
        state.task->retries.value_or(options_.retries);
    return retries + 1;
  }

  uint64_t DeadlineMs(const TaskState& state) const {
    uint64_t deadline =
        state.task->deadline_ms.value_or(options_.task_deadline_ms);
    if (state.escalated && options_.escalate_factor > 1 && deadline != 0) {
      deadline *= options_.escalate_factor;
    }
    return deadline;
  }

  double BackoffMs(uint64_t charged) const {
    double backoff = static_cast<double>(options_.backoff_ms);
    for (uint64_t i = 1; i < charged && backoff < 1e12; ++i) backoff *= 2;
    return std::min(backoff, static_cast<double>(options_.backoff_cap_ms));
  }

  Status Append(LedgerRecord record) {
    // The supervisor's own footprint is accounted like an engine's:
    // every ledger line is charged to the governor, and a memory source
    // (installed in Run) covers the live capture buffers. The governor
    // carries no cap — the numbers are telemetry for the end-of-run
    // diagnostic line, and they surface a supervisor whose retained
    // buffers (not its workers) are what is actually growing.
    governor_.ChargeBytes(RenderLedgerRecord(record).size());
    Status status = AppendLedgerRecord(options_.ledger_path, record);
    if (!status.ok()) {
      err_ << "tgdkit: batch: ledger append failed: " << status.ToString()
           << "\n";
    }
    return status;
  }

  Status ReplayExistingLedger(bool* found);
  Status StartAttempt(TaskState* state);
  Status RunInProcess(TaskState* state, std::vector<std::string> args);
  Status HandleFinished(TaskState* state, const WorkerOutcome& outcome);
  Status Finalize(TaskState* state, bool completed, int exit_code,
                  const std::string& triage);
  std::string TriageReport(const TaskState& state) const;
  void WriteArtifacts(const TaskState& state, const WorkerOutcome& outcome,
                      const std::string& triage) const;

  const Manifest& manifest_;
  const SupervisorOptions& options_;
  std::ostream& out_;
  std::ostream& err_;
  std::chrono::steady_clock::time_point start_;
  std::vector<TaskState> tasks_;
  SupervisorReport report_;
  /// Accounting-only governor (no budget): ledger bytes are charged
  /// through Append, capture/attempt buffers through a memory source.
  ResourceGovernor governor_;
  bool shutdown_ = false;
};

Status Supervisor::ReplayExistingLedger(bool* found) {
  *found = false;
  Result<std::vector<LedgerRecord>> loaded =
      LoadLedger(options_.ledger_path);
  if (!loaded.ok()) {
    if (loaded.status().code() == Status::Code::kNotFound) {
      return Status::Ok();
    }
    return loaded.status();
  }
  *found = true;
  // Budget-charged attempts: count non-cancelled attempt records so a
  // supervisor kill mid-run never burns a task's retry budget.
  std::map<std::string, uint64_t> charged;
  for (const LedgerRecord& record : *loaded) {
    if (record.kind == LedgerRecord::Kind::kAttempt &&
        record.attempt.outcome != AttemptOutcome::kCancelled) {
      ++charged[record.attempt.task];
    }
  }
  std::map<std::string, TaskReplay> replay = ReplayLedger(*loaded);
  for (TaskState& state : tasks_) {
    auto it = replay.find(state.task->id);
    if (it == replay.end()) continue;
    const TaskReplay& past = it->second;
    state.attempts = past.attempts;
    state.charged = charged[state.task->id];
    state.degraded = past.degraded;
    state.escalated = past.escalated;
    if (past.terminal) {
      state.terminal = true;
      state.completed = past.completed;
      state.final_exit = past.final_exit;
      state.skipped = true;
    }
  }
  return Status::Ok();
}

Status Supervisor::StartAttempt(TaskState* state) {
  std::vector<std::string> args = state->task->args;
  AttemptRecord attempt;
  attempt.task = state->task->id;
  attempt.attempt = state->attempts + 1;
  attempt.degraded = state->degraded;
  attempt.escalated = state->escalated;
  bool user_managed_checkpoints = false;
  for (const std::string& arg : args) {
    if (arg == "--checkpoint" || arg == "--resume") {
      user_managed_checkpoints = true;
    }
  }
  if (state->is_chase && !user_managed_checkpoints) {
    std::ifstream snapshot_probe(state->checkpoint_path);
    if (snapshot_probe.good()) {
      args = RewriteChaseForResume(args, state->checkpoint_path);
      attempt.resumed = true;
    } else {
      args.push_back("--checkpoint");
      args.push_back(state->checkpoint_path);
    }
    if (options_.checkpoint_every_steps != 0) {
      args = WithForcedOption(std::move(args), "--checkpoint-every-steps",
                              std::to_string(options_.checkpoint_every_steps));
    }
    if (options_.checkpoint_every_ms != 0) {
      args = WithForcedOption(std::move(args), "--checkpoint-every-ms",
                              std::to_string(options_.checkpoint_every_ms));
    }
  }
  if (state->degraded) {
    args = WithForcedOption(std::move(args), "--threads", "1");
  }
  if (state->escalated && options_.escalate_factor > 1) {
    args = WithScaledBudgets(std::move(args), options_.escalate_factor);
  }
  std::vector<std::string> repro;
  repro.push_back("tgdkit");
  repro.insert(repro.end(), args.begin(), args.end());
  attempt.cmd = ShellQuote(repro);

  if (state->task->in_process) {
    state->running_attempt = std::move(attempt);
    return RunInProcess(state, std::move(args));
  }

  WorkerOptions worker_options;
  worker_options.args = std::move(args);
  worker_options.env = state->task->env;
  worker_options.exec_binary = options_.worker_binary;
  worker_options.deadline_ms = DeadlineMs(*state);
  worker_options.grace_ms = options_.grace_ms;
  auto worker = std::make_unique<WorkerProcess>(std::move(worker_options));
  Status started = worker->Start();
  ++state->attempts;
  ++report_.attempts;
  state->running_attempt = std::move(attempt);
  if (!started.ok()) {
    // The fork/pipe machinery failed; record a finished spawn-error
    // attempt and let the normal retry policy decide.
    ++state->charged;
    state->running_attempt.outcome = AttemptOutcome::kSpawnError;
    state->running_attempt.stderr_tail = started.ToString();
    state->last_attempt = state->running_attempt;
    state->have_last_attempt = true;
    if (state->charged >= MaxAttempts(*state)) {
      state->last_attempt.next = "quarantine";
      TGDKIT_RETURN_IF_ERROR(
          Append(LedgerRecord::Attempt(state->last_attempt)));
      return Finalize(state, /*completed=*/false, -1, TriageReport(*state));
    }
    state->ready_at_ms = NowMs() + BackoffMs(state->charged);
    state->last_attempt.next = "retry";
    return Append(LedgerRecord::Attempt(state->last_attempt));
  }
  state->worker = std::move(worker);
  return Status::Ok();
}

std::string Supervisor::TriageReport(const TaskState& state) const {
  std::string report =
      Cat("task ", state.task->id, " quarantined after ", state.charged,
          " attempt(s)\n");
  if (!state.have_last_attempt) {
    report += "no attempt record available (exhausted in a previous run; "
              "see earlier ledger attempt records)\n";
    return report;
  }
  const AttemptRecord& last = state.last_attempt;
  report += "last attempt: ";
  switch (last.outcome) {
    case AttemptOutcome::kCrash:
      report += Cat("killed by signal ", last.signal, " (",
                    SignalName(last.signal), ")");
      break;
    case AttemptOutcome::kTimeout:
      report += Cat("killed by the supervisor at the ",
                    DeadlineMs(state), " ms task deadline");
      break;
    case AttemptOutcome::kSpawnError:
      report += "worker could not be spawned";
      break;
    default:
      report += Cat("exit ", last.exit_code, " (", ToString(last.outcome),
                    ")");
  }
  report += Cat(" after ", static_cast<uint64_t>(last.duration_ms),
                " ms\n");
  if (last.peak_rss_kb > 0) {
    report += Cat("peak rss: ", last.peak_rss_kb, " KiB");
    if (last.spill_bytes > 0) {
      report += Cat(" (spilled ", last.spill_bytes, " bytes)");
    }
    report += "\n";
  }
  if (last.outcome == AttemptOutcome::kCrash && last.signal == SIGKILL &&
      last.peak_rss_kb > 0) {
    // An external SIGKILL with a large resident set is the kernel OOM
    // killer's signature: the supervisor never sends a bare SIGKILL
    // outside the timeout/shutdown escalations, which record their own
    // outcomes. Suggest the degradation path instead of a blind retry.
    report += Cat("hint: SIGKILL at ", last.peak_rss_kb,
                  " KiB resident looks like an OOM kill; rerun with "
                  "--spill-dir (out-of-core chase, see docs/STORAGE.md) "
                  "or a lower --max-memory-mb\n");
  }
  report += Cat("last status: ",
                last.status_line.empty() ? "(none)" : last.status_line,
                "\n");
  if (!last.stderr_tail.empty()) {
    report += "stderr tail:\n";
    std::string_view tail = last.stderr_tail;
    while (!tail.empty()) {
      size_t eol = tail.find('\n');
      if (eol == std::string_view::npos) eol = tail.size();
      report += Cat("  ", tail.substr(0, eol), "\n");
      tail.remove_prefix(std::min(eol + 1, tail.size()));
    }
  }
  report += Cat("reproduce: ", last.cmd, "\n");
  return report;
}

void Supervisor::WriteArtifacts(const TaskState& state,
                                const WorkerOutcome& outcome,
                                const std::string& triage) const {
  const std::string base = Cat(options_.run_dir, "/", state.task->id);
  // Best effort: artifact failures must not fail the batch (the ledger
  // is the durable record).
  AtomicWriteFile(base + ".out", outcome.stdout_data);
  AtomicWriteFile(base + ".err", outcome.stderr_tail);
  if (!triage.empty()) AtomicWriteFile(base + ".triage.txt", triage);
}

Status Supervisor::Finalize(TaskState* state, bool completed, int exit_code,
                            const std::string& triage) {
  state->terminal = true;
  state->completed = completed;
  state->final_exit = exit_code;
  DoneRecord done;
  done.task = state->task->id;
  done.completed = completed;
  done.exit_code = exit_code;
  done.attempts = state->charged;
  done.triage = triage;
  TGDKIT_RETURN_IF_ERROR(Append(LedgerRecord::Done(std::move(done))));
  if (completed) {
    ++report_.completed;
    if (exit_code == kExitVerdict) ++report_.verdicts;
    out_ << "# task " << state->task->id << ": completed exit="
         << exit_code << " attempts=" << state->charged << "\n";
  } else {
    ++report_.quarantined;
    out_ << "# task " << state->task->id << ": quarantined after "
         << state->charged << " attempt(s)\n";
    std::string_view rest = triage;
    while (!rest.empty()) {
      size_t eol = rest.find('\n');
      if (eol == std::string_view::npos) eol = rest.size();
      out_ << "# triage: " << rest.substr(0, eol) << "\n";
      rest.remove_prefix(std::min(eol + 1, rest.size()));
    }
  }
  return Status::Ok();
}

/// The isolation=none fast path: the task runs right here, through the
/// request-scoped library API, and its result is folded into the exact
/// same attempt/retry/ledger machinery as a forked worker's. Supervisor
/// shutdown cancels it cooperatively via the shared token; there is no
/// per-task deadline (the manifest parser restricts the path to cheap
/// commands).
Status Supervisor::RunInProcess(TaskState* state,
                                std::vector<std::string> args) {
  ++state->attempts;
  ++report_.attempts;
  WorkerOutcome outcome;
  std::ostringstream task_out, task_err;
  ApiOptions api;
  api.cancel = options_.cancel;
  api.forbid_fork_workers = true;
  auto begun = std::chrono::steady_clock::now();
  outcome.exit_code = RunCommand(args, task_out, task_err, api);
  outcome.duration_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - begun)
                            .count();
  outcome.exited = true;
  outcome.stdout_data = task_out.str();
  outcome.stderr_tail = task_err.str();
  const size_t kTailLimit = 4096;
  if (outcome.stderr_tail.size() > kTailLimit) {
    outcome.stderr_tail.erase(0, outcome.stderr_tail.size() - kTailLimit);
  }
  // A cancellation that raced the run is the supervisor's doing, not the
  // task's: record it like a stopped worker so no retry budget burns.
  outcome.stop_requested = options_.cancel.cancelled();
  return HandleFinished(state, outcome);
}

Status Supervisor::HandleFinished(TaskState* state,
                                  const WorkerOutcome& outcome) {
  AttemptRecord attempt = std::move(state->running_attempt);
  attempt.duration_ms = outcome.duration_ms;
  attempt.status_line = ExtractStatusLine(outcome.stdout_data);
  attempt.stop = ExtractStopToken(attempt.status_line);
  attempt.stderr_tail = outcome.stderr_tail;
  attempt.peak_rss_kb = outcome.peak_rss_kb;
  attempt.spill_bytes = ExtractStatusU64(attempt.status_line, "spill_bytes=");
  if (outcome.exited) attempt.exit_code = outcome.exit_code;
  if (outcome.signaled) attempt.signal = outcome.signal;

  if (outcome.stop_requested) {
    attempt.outcome = AttemptOutcome::kCancelled;
  } else if (outcome.timed_out) {
    attempt.outcome = AttemptOutcome::kTimeout;
  } else if (outcome.signaled) {
    attempt.outcome = AttemptOutcome::kCrash;
  } else {
    switch (outcome.exit_code) {
      case kExitOk: attempt.outcome = AttemptOutcome::kOk; break;
      case kExitUsage: attempt.outcome = AttemptOutcome::kUsageError; break;
      case kExitInput: attempt.outcome = AttemptOutcome::kInputError; break;
      case kExitVerdict: attempt.outcome = AttemptOutcome::kVerdict; break;
      case kExitResource: attempt.outcome = AttemptOutcome::kResource; break;
      default: attempt.outcome = AttemptOutcome::kInternal; break;
    }
  }
  if (attempt.outcome != AttemptOutcome::kCancelled) ++state->charged;
  state->last_attempt = attempt;
  state->have_last_attempt = true;

  // Decide the next step.
  enum class Next { kDone, kQuarantine, kRetry, kInterrupted };
  Next next = Next::kRetry;
  bool degrade_now = false;
  bool escalate_now = false;
  switch (attempt.outcome) {
    case AttemptOutcome::kOk:
    case AttemptOutcome::kVerdict:
      next = Next::kDone;
      break;
    case AttemptOutcome::kUsageError:
    case AttemptOutcome::kInputError:
      // Deterministic: the input or the manifest is wrong.
      next = Next::kQuarantine;
      break;
    case AttemptOutcome::kResource:
      if (options_.accept_resource) {
        next = Next::kDone;
      } else if (!state->escalated && options_.escalate_factor > 1 &&
                 state->charged < MaxAttempts(*state)) {
        next = Next::kRetry;
        escalate_now = true;
      } else {
        next = Next::kQuarantine;
      }
      break;
    case AttemptOutcome::kCancelled:
      next = Next::kInterrupted;
      break;
    case AttemptOutcome::kCrash:
    case AttemptOutcome::kTimeout:
    case AttemptOutcome::kInternal:
    case AttemptOutcome::kSpawnError:
      if (state->charged >= MaxAttempts(*state)) {
        next = Next::kQuarantine;
      } else {
        next = Next::kRetry;
        if (!state->degraded &&
            (attempt.outcome == AttemptOutcome::kCrash ||
             attempt.outcome == AttemptOutcome::kTimeout)) {
          // Graceful degradation: a crashed/hung parallel chase retries
          // single-threaded.
          for (size_t i = 1; i + 1 < state->task->args.size(); ++i) {
            if (state->task->args[i] == "--threads" &&
                state->task->args[i + 1] != "1") {
              degrade_now = true;
            }
          }
        }
      }
      break;
  }

  switch (next) {
    case Next::kDone: attempt.next = "done"; break;
    case Next::kQuarantine: attempt.next = "quarantine"; break;
    case Next::kRetry: attempt.next = "retry"; break;
    case Next::kInterrupted: attempt.next = "interrupted"; break;
  }
  TGDKIT_RETURN_IF_ERROR(Append(LedgerRecord::Attempt(attempt)));

  std::string verdict =
      outcome.signaled
          ? Cat("signal=", outcome.signal, " (", SignalName(outcome.signal),
                ")")
          : Cat("exit=", outcome.exit_code);
  switch (next) {
    case Next::kDone: {
      WriteArtifacts(*state, outcome, /*triage=*/"");
      return Finalize(state, /*completed=*/true, outcome.exit_code,
                      /*triage=*/"");
    }
    case Next::kQuarantine: {
      std::string triage = TriageReport(*state);
      WriteArtifacts(*state, outcome, triage);
      return Finalize(state, /*completed=*/false, attempt.exit_code,
                      triage);
    }
    case Next::kRetry: {
      state->degraded |= degrade_now;
      state->escalated |= escalate_now;
      double backoff = BackoffMs(state->charged);
      state->ready_at_ms = NowMs() + backoff;
      out_ << "# task " << state->task->id << ": attempt "
           << attempt.attempt << " " << ToString(attempt.outcome) << " "
           << verdict << " -> retry in "
           << static_cast<uint64_t>(backoff) << " ms"
           << (degrade_now ? " (degraded: --threads 1)" : "")
           << (escalate_now ? " (escalated budgets)" : "") << "\n";
      return Status::Ok();
    }
    case Next::kInterrupted: {
      out_ << "# task " << state->task->id
           << ": attempt interrupted by shutdown\n";
      return Status::Ok();
    }
  }
  return Status::Ok();
}

Result<SupervisorReport> Supervisor::Run() {
  TGDKIT_RETURN_IF_ERROR(MakeDirectories(options_.run_dir));
  TGDKIT_RETURN_IF_ERROR(MakeDirectories(options_.run_dir + "/ck"));
  tasks_.reserve(manifest_.tasks.size());
  for (const ManifestTask& task : manifest_.tasks) {
    TaskState state;
    state.task = &task;
    state.is_chase = task.args[0] == "chase";
    state.checkpoint_path =
        TaskCheckpointPath(options_.run_dir + "/ck", task.id);
    tasks_.push_back(std::move(state));
  }
  report_.total = tasks_.size();
  bool resuming = false;
  TGDKIT_RETURN_IF_ERROR(ReplayExistingLedger(&resuming));
  // A supervisor killed mid-append leaves a torn trailing line; drop it
  // now so our own appends start on a fresh line instead of merging with
  // the fragment into unparseable interior garbage.
  TGDKIT_RETURN_IF_ERROR(TruncateTornLedgerTail(options_.ledger_path));
  // Everything the supervisor retains per task — live worker capture
  // pipes and the last attempt's triage material — is visible to the
  // accounting governor, alongside the ledger bytes charged in Append.
  governor_.AddMemorySource([this] {
    uint64_t bytes = 0;
    for (const TaskState& state : tasks_) {
      if (state.worker != nullptr) {
        const WorkerOutcome& o = state.worker->outcome();
        bytes += o.stdout_data.size() + o.stderr_tail.size();
      }
      bytes += state.last_attempt.status_line.size() +
               state.last_attempt.stderr_tail.size() +
               state.last_attempt.cmd.size();
    }
    return bytes;
  });
  RunRecord run;
  run.manifest = options_.manifest_path;
  run.tasks = tasks_.size();
  TGDKIT_RETURN_IF_ERROR(Append(LedgerRecord::Run(std::move(run))));
  for (TaskState& state : tasks_) {
    if (state.skipped) {
      ++report_.skipped;
      if (state.completed) {
        ++report_.completed;
        if (state.final_exit == kExitVerdict) ++report_.verdicts;
      } else {
        ++report_.quarantined;
      }
      out_ << "# task " << state.task->id << ": already "
           << (state.completed ? "completed" : "quarantined")
           << " (skipped)\n";
      continue;
    }
    if (state.charged >= MaxAttempts(state)) {
      // Retry budget exhausted by a previous run that died before the
      // quarantine decision was recorded.
      TGDKIT_RETURN_IF_ERROR(Finalize(
          &state, /*completed=*/false,
          state.have_last_attempt ? state.last_attempt.exit_code : -1,
          TriageReport(state)));
    }
  }

  while (true) {
    // Shutdown: on the supervisor's own cancellation, stop launching and
    // ask every running worker to stop (SIGTERM -> grace -> SIGKILL,
    // driven by their Tick()).
    if (!shutdown_ && options_.cancel.cancelled()) {
      shutdown_ = true;
      report_.interrupted = true;
      err_ << "tgdkit: batch: interrupted; stopping workers\n";
      for (TaskState& state : tasks_) {
        if (state.worker != nullptr) state.worker->RequestStop();
      }
    }
    // Launch phase.
    size_t running = 0;
    for (TaskState& state : tasks_) {
      if (state.worker != nullptr) ++running;
    }
    if (!shutdown_) {
      double now = NowMs();
      for (TaskState& state : tasks_) {
        if (running >= options_.max_parallel) break;
        if (state.terminal || state.worker != nullptr) continue;
        if (state.ready_at_ms > now) continue;
        TGDKIT_RETURN_IF_ERROR(StartAttempt(&state));
        if (state.worker != nullptr) ++running;
        if (state.terminal) continue;  // spawn-error quarantine
      }
    }
    // Are we done?
    bool all_settled = true;
    double next_ready = -1;
    for (TaskState& state : tasks_) {
      if (state.worker != nullptr) {
        all_settled = false;
      } else if (!state.terminal) {
        if (shutdown_) continue;  // left for the rerun
        all_settled = false;
        if (next_ready < 0 || state.ready_at_ms < next_ready) {
          next_ready = state.ready_at_ms;
        }
      }
    }
    if (all_settled) break;

    // Wait phase: poll worker pipes (bounded), with the timeout capped so
    // deadline ticks and backoff wakeups stay responsive.
    std::vector<struct pollfd> fds;
    for (TaskState& state : tasks_) {
      if (state.worker == nullptr) continue;
      for (int fd :
           {state.worker->stdout_fd(), state.worker->stderr_fd()}) {
        if (fd >= 0) fds.push_back({fd, POLLIN, 0});
      }
    }
    int timeout_ms = 50;
    if (fds.empty() && next_ready >= 0) {
      double delta = next_ready - NowMs();
      timeout_ms = std::max(1, std::min(200, static_cast<int>(delta) + 1));
    }
    poll(fds.empty() ? nullptr : fds.data(),
         static_cast<nfds_t>(fds.size()), timeout_ms);
    for (TaskState& state : tasks_) {
      if (state.worker == nullptr) continue;
      state.worker->Pump();
      state.worker->Tick();
      if (state.worker->TryReap()) {
        std::unique_ptr<WorkerProcess> worker = std::move(state.worker);
        TGDKIT_RETURN_IF_ERROR(HandleFinished(&state, worker->outcome()));
      }
    }
  }

  // Supervisor self-accounting, as a stderr diagnostic (the stdout
  // summary stays byte-stable for pipelines): total ledger bytes charged
  // plus the retained buffer footprint at the end of the run.
  governor_.CheckNow();
  err_ << "# supervisor: ledger_bytes=" << governor_.charged_bytes()
       << " buffer_bytes="
       << (governor_.memory_bytes() - governor_.charged_bytes()) << "\n";
  out_ << "# batch: tasks=" << report_.total << " completed="
       << report_.completed << " quarantined=" << report_.quarantined
       << " skipped=" << report_.skipped << " attempts="
       << report_.attempts
       << (report_.interrupted ? " interrupted=1" : "") << "\n";
  if (report_.interrupted) {
    out_ << "# status: "
         << StopReasonToStatus(StopReason::kCancelled, "batch").ToString()
         << "\n";
  } else {
    out_ << "# status: OK\n";
  }
  return report_;
}

}  // namespace

void ApplyManifestDefaults(const BatchDefaults& defaults,
                           const SupervisorCliOverrides& cli_set,
                           SupervisorOptions* options) {
  if (!cli_set.max_parallel && defaults.max_parallel) {
    options->max_parallel = *defaults.max_parallel;
  }
  if (!cli_set.retries && defaults.retries) {
    options->retries = *defaults.retries;
  }
  if (!cli_set.backoff_ms && defaults.backoff_ms) {
    options->backoff_ms = *defaults.backoff_ms;
  }
  if (!cli_set.backoff_cap_ms && defaults.backoff_cap_ms) {
    options->backoff_cap_ms = *defaults.backoff_cap_ms;
  }
  if (!cli_set.grace_ms && defaults.grace_ms) {
    options->grace_ms = *defaults.grace_ms;
  }
  if (!cli_set.task_deadline_ms && defaults.task_deadline_ms) {
    options->task_deadline_ms = *defaults.task_deadline_ms;
  }
  if (!cli_set.escalate_factor && defaults.escalate_factor) {
    options->escalate_factor = *defaults.escalate_factor;
  }
  if (!cli_set.checkpoint_every_steps && defaults.checkpoint_every_steps) {
    options->checkpoint_every_steps = *defaults.checkpoint_every_steps;
  }
  if (!cli_set.checkpoint_every_ms && defaults.checkpoint_every_ms) {
    options->checkpoint_every_ms = *defaults.checkpoint_every_ms;
  }
  if (!cli_set.accept_resource && defaults.accept_resource) {
    options->accept_resource = *defaults.accept_resource;
  }
}

int SupervisorReport::ExitCode() const {
  if (interrupted) return kExitResource;
  if (quarantined > 0 || verdicts > 0) return kExitVerdict;
  return kExitOk;
}

Result<SupervisorReport> RunBatch(const Manifest& manifest,
                                  const SupervisorOptions& options,
                                  std::ostream& out, std::ostream& err) {
  Supervisor supervisor(manifest, options, out, err);
  return supervisor.Run();
}

}  // namespace tgdkit
