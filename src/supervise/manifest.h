// Batch manifest: the task list `tgdkit batch` supervises.
//
// A manifest is a line-oriented text file (see docs/BATCH.md):
//
//   # comment (also //); blank lines ignored; a trailing backslash
//   # joins the next line
//   batch max-parallel=4 retries=3 backoff-ms=200 task-deadline-ms=60000
//   task lint-univ : lint corpus/university.tgd --fail-on=warning
//   task chase-tau deadline-ms=5000 env TGDKIT_CRASH_AT=3 :
//     chase corpus/paper_tau.tgd seed.inst --seed 7   (one logical line)
//
// Each task is an ordinary tgdkit subcommand invocation (anything RunCli
// accepts except `batch` itself), plus optional per-task attributes
// (deadline-ms=, retries=) and environment variables for the worker
// process. `batch` directives set run-wide defaults; command-line flags
// of `tgdkit batch` override them.
//
// This header also hosts the argv-rewriting helpers the supervisor's
// retry/degradation policy applies between attempts: forcing --threads 1
// after a crash, scaling budget options after a ResourceExhausted stop,
// and rewriting a chase invocation to resume from its checkpoint.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"

namespace tgdkit {

/// Run-wide knobs a manifest `batch` directive may set. Unset fields fall
/// back to the supervisor's built-in defaults unless a CLI flag overrides
/// them (CLI > manifest > built-in).
struct BatchDefaults {
  std::optional<uint64_t> max_parallel;
  std::optional<uint64_t> retries;
  std::optional<uint64_t> backoff_ms;
  std::optional<uint64_t> backoff_cap_ms;
  std::optional<uint64_t> grace_ms;
  std::optional<uint64_t> task_deadline_ms;
  std::optional<uint64_t> escalate_factor;
  std::optional<uint64_t> checkpoint_every_steps;
  std::optional<uint64_t> checkpoint_every_ms;
  std::optional<bool> accept_resource;
};

/// One supervised task: a tgdkit subcommand invocation.
struct ManifestTask {
  std::string id;
  /// Full CLI argv, subcommand first (what RunCli receives).
  std::vector<std::string> args;
  /// Extra environment for the worker process (fault injection, etc.).
  std::vector<std::pair<std::string, std::string>> env;
  std::optional<uint64_t> deadline_ms;
  std::optional<uint64_t> retries;
  /// `isolation=none`: run in-process through the library API instead of
  /// a forked worker — a fast path for cheap, read-only subcommands
  /// (classify, lint, normalize, dot) that skips the fork/pipe/reap
  /// round-trip. Only those commands qualify, env attributes are
  /// rejected, and the task runs without per-task deadline enforcement
  /// (supervisor shutdown still cancels it cooperatively). Everything
  /// else keeps `isolation=fork`, the fault-isolated default.
  bool in_process = false;
  /// 1-based manifest line of the `task` directive (diagnostics).
  size_t line = 0;
};

struct Manifest {
  BatchDefaults defaults;
  std::vector<ManifestTask> tasks;
};

/// Parses manifest text. InvalidArgument with a line number on malformed
/// directives, duplicate or invalid task ids, or a `batch` task command.
Result<Manifest> ParseManifest(std::string_view text);

/// Reads and parses a manifest file.
Result<Manifest> LoadManifest(const std::string& path);

/// True if task ids may use this string (1-64 chars of [A-Za-z0-9._-],
/// not starting with '.' or '-'); ids become checkpoint/artifact file
/// names, so the charset is deliberately narrow.
bool IsValidTaskId(std::string_view id);

/// True for tgdkit options that consume a separate value token
/// (--max-steps, --checkpoint, ...). Needed to tell positionals from
/// option values when rewriting a task argv.
bool OptionTakesValue(std::string_view arg);

/// Replaces the value of `option` in `args`, appending "option value" if
/// absent. Handles only separate-token values (the form the supervisor
/// itself writes).
std::vector<std::string> WithForcedOption(std::vector<std::string> args,
                                          std::string_view option,
                                          std::string_view value);

/// Multiplies the values of the budget options (--max-steps,
/// --deadline-ms, --max-memory-mb) by `factor`, saturating at uint64 max.
/// Options that are absent stay absent (absent = unlimited already).
std::vector<std::string> WithScaledBudgets(std::vector<std::string> args,
                                           uint64_t factor);

/// Rewrites a `chase DEPS INSTANCE ...` argv into the resume form
/// `chase --resume SNAP ...`: positionals are dropped, every option is
/// kept, and --checkpoint is forced to SNAP so the resumed leg keeps
/// checkpointing to the same file.
std::vector<std::string> RewriteChaseForResume(
    const std::vector<std::string>& args, const std::string& snapshot_path);

/// Renders an argv as a copy-pasteable shell command (for triage
/// reproduction lines), quoting tokens that need it.
std::string ShellQuote(const std::vector<std::string>& args);

}  // namespace tgdkit
