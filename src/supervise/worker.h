// Fault-isolated worker subprocesses for the batch supervisor.
//
// A WorkerProcess runs one tgdkit subcommand in its own forked process —
// true isolation: a worker's SIGSEGV, OOM kill, sanitizer abort, stack
// overflow or runaway loop is captured as a wait status, never fatal to
// the supervisor. stdout and stderr are captured through pipes (stdout
// whole, bounded; stderr as a tail), and the last `# status:` line of
// stdout is the machine-readable worker -> supervisor verdict the chase
// CLI already emits.
//
// Two spawn modes:
//  * in-process fork (default): the child resets the inherited
//    cancellation token, reinstalls the SIGINT/SIGTERM -> cancel
//    handlers, redirects its stdio into the pipes and calls RunCli
//    directly, then _exit()s with its exit code. No binary path needed;
//    this is what both `tgdkit batch` and the test suite use.
//  * fork + exec of an explicit tgdkit binary (--worker PATH), for
//    running workers under a different build.
//
// Deadline enforcement reuses the governor's deadline machinery: the
// supervisor Tick()s a ResourceGovernor armed with the task deadline;
// when it reports exhaustion the worker is asked to stop with SIGTERM
// (cooperative cancellation: a chase still writes its final checkpoint),
// and SIGKILLed after a grace period if it ignores the request.
//
// The supervisor must be single-threaded: workers are forked from it, so
// the fork is never a multi-threaded fork (safe under TSan, and the
// in-process child may itself start chase staging threads).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/budget.h"
#include "base/status.h"

namespace tgdkit {

struct WorkerOptions {
  /// CLI argv, subcommand first (what RunCli receives).
  std::vector<std::string> args;
  /// Extra environment variables set in the child before the worker runs.
  std::vector<std::pair<std::string, std::string>> env;
  /// Non-empty: fork+exec this binary instead of in-process RunCli.
  std::string exec_binary;
  /// Wall-clock deadline for the whole attempt; 0 = none.
  uint64_t deadline_ms = 0;
  /// SIGTERM -> SIGKILL grace period.
  uint64_t grace_ms = 2000;
  /// Captured-stdout cap; beyond it output is dropped and the outcome is
  /// flagged truncated.
  size_t stdout_limit = 16 * 1024 * 1024;
  /// Bytes of stderr kept (the *tail*: newest bytes win).
  size_t stderr_tail_limit = 4096;
};

struct WorkerOutcome {
  bool exited = false;
  int exit_code = -1;
  bool signaled = false;
  int signal = 0;
  /// The supervisor killed it at the task deadline.
  bool timed_out = false;
  /// The supervisor killed it during shutdown (not the task's fault).
  bool stop_requested = false;
  bool stdout_truncated = false;
  double duration_ms = 0;
  /// Peak resident set of the worker (ru_maxrss of the reaped child, in
  /// KiB; 0 if the platform reported nothing). Triage uses it to tell an
  /// OOM kill (SIGKILL + RSS near the memory budget) from a
  /// deterministic crash.
  uint64_t peak_rss_kb = 0;
  std::string stdout_data;
  std::string stderr_tail;
};

class WorkerProcess {
 public:
  explicit WorkerProcess(WorkerOptions options);
  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;
  /// SIGKILLs and reaps a still-running worker.
  ~WorkerProcess();

  /// Forks the worker. Internal error if the pipe/fork machinery fails.
  Status Start();

  bool running() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }
  /// Parent read ends of the capture pipes; -1 once closed.
  int stdout_fd() const { return stdout_fd_; }
  int stderr_fd() const { return stderr_fd_; }

  /// Drains whatever is readable from the pipes (non-blocking).
  void Pump();

  /// Deadline/grace enforcement: SIGTERMs the worker once the deadline
  /// governor reports exhaustion, SIGKILLs it `grace_ms` later.
  void Tick();

  /// Supervisor shutdown: ask the worker to stop now (SIGTERM, then the
  /// usual grace -> SIGKILL escalation driven by Tick()).
  void RequestStop();

  /// Reaps the worker if it has exited (non-blocking). Returns true once
  /// the outcome is final; Pump() is called a last time to drain the
  /// pipes before they close.
  bool TryReap();

  /// Valid after TryReap() returned true.
  const WorkerOutcome& outcome() const { return outcome_; }

  double elapsed_ms() const { return governor_.elapsed_ms(); }

 private:
  void KillNow(int signum);

  WorkerOptions options_;
  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  int stderr_fd_ = -1;
  ResourceGovernor governor_;
  bool term_sent_ = false;
  double kill_at_ms_ = 0;
  WorkerOutcome outcome_;
};

/// Returns the last line of `stdout_data` starting with "# status:", or
/// an empty string. This is the worker protocol line RunCli emits.
std::string ExtractStatusLine(std::string_view stdout_data);

/// Extracts the StopReason token from a status line, e.g. "deadline"
/// from "# status: ResourceExhausted: chase stopped by deadline ...".
/// Empty for OK / unrecognized lines.
std::string ExtractStopToken(std::string_view status_line);

/// Extracts a `key=<digits>` field from a status line, e.g. 4096 from
/// "# status: OK ... spill_bytes=4096". `key` must include the '='.
/// Returns 0 when the key is absent or its value is not a number.
uint64_t ExtractStatusU64(std::string_view status_line,
                          std::string_view key);

}  // namespace tgdkit
