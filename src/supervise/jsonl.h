// Shared flat-JSONL machinery for durable append-only ledgers.
//
// Both the batch supervisor's run ledger (src/supervise/ledger.h) and the
// serve daemon's request ledger (src/serve/serve_ledger.h) follow the
// same discipline: one flat JSON object per line, appended through
// AppendLineDurable (O_APPEND + fsync), so a SIGKILL at any instant
// leaves at most one torn trailing line — which loaders skip — and never
// corrupts earlier records. This header hosts the pieces both sides
// share: escaping, the flat-object parser, field accessors, and the
// renderer helpers, so every ledger in the tree speaks byte-compatible
// JSON.
//
// "Flat" means values are strings, numbers, booleans or arrays of
// strings — never nested objects. That keeps the parser small enough to
// audit and the records greppable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace tgdkit {

/// JSON string escaping for ledger/protocol values: ", \, control
/// characters.
std::string JsonEscape(std::string_view text);

/// One parsed field: raw scalar text (strings unescaped, numbers and
/// booleans as their literal text) plus, for array values, the decoded
/// string elements.
struct JsonFieldValue {
  std::string scalar;
  bool is_array = false;
  std::vector<std::string> elements;
};

/// A parsed flat JSON object: key -> value, in declaration order.
using FlatJson = std::vector<std::pair<std::string, JsonFieldValue>>;

/// Parses one flat JSON object (string/number/bool/null scalars plus
/// arrays of strings — exactly what the renderers below write).
/// InvalidArgument on anything else, including nested objects.
Status ParseFlatJson(std::string_view text, FlatJson* out);

/// Field accessors; missing keys yield the zero value (or `missing`).
const JsonFieldValue* FindJsonField(const FlatJson& fields,
                                    std::string_view key);
std::string GetJsonString(const FlatJson& fields, std::string_view key);
uint64_t GetJsonU64(const FlatJson& fields, std::string_view key);
int64_t GetJsonI64(const FlatJson& fields, std::string_view key,
                   int64_t missing);
double GetJsonDouble(const FlatJson& fields, std::string_view key);
bool GetJsonBool(const FlatJson& fields, std::string_view key);
std::vector<std::string> GetJsonStringArray(const FlatJson& fields,
                                            std::string_view key);

/// Renderer helpers: append one `"key":value` field to an object under
/// construction (a string starting with '{'). AppendJsonString escapes
/// and quotes; AppendJsonRaw emits the value verbatim (numbers,
/// booleans); AppendJsonStringArray writes an array of escaped strings.
void AppendJsonString(std::string* out, std::string_view key,
                      std::string_view value);
void AppendJsonRaw(std::string* out, std::string_view key,
                   std::string_view value);
void AppendJsonStringArray(std::string* out, std::string_view key,
                           const std::vector<std::string>& values);

}  // namespace tgdkit
