// The durable run ledger behind `tgdkit batch`.
//
// The ledger is an append-only JSONL file: one flat JSON object per
// line, appended through AppendLineDurable (O_APPEND + fsync), so a
// SIGKILL of the supervisor at any instant leaves at most one torn
// trailing line — which LoadLedger skips — and never corrupts earlier
// records. Three record types (schema in docs/BATCH.md):
//
//   {"type":"run", ...}      one per supervisor invocation (header)
//   {"type":"attempt", ...}  one per *finished* worker attempt
//   {"type":"done", ...}     one per task reaching a terminal state
//
// An attempt is recorded only after its outcome is known; a supervisor
// killed mid-attempt leaves no attempt record and the rerun simply runs
// that attempt again. A task is `done` exactly once per converged
// ledger: reruns load the ledger first and skip terminal tasks, which is
// what makes `tgdkit batch` idempotent and resumable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace tgdkit {

/// How a finished worker attempt ended, derived from the wait status and
/// the exit-code contract (src/cli/cli.h).
enum class AttemptOutcome : uint8_t {
  kOk = 0,       // exit 0
  kVerdict,      // exit 3: ran fine, negative answer (check/lint)
  kUsageError,   // exit 1: malformed argv — deterministic, no retry
  kInputError,   // exit 2: unreadable/unparseable input — no retry
  kResource,     // exit 4: stopped by its resource budget
  kInternal,     // exit 5 or unknown exit code
  kCrash,        // killed by a signal (SIGSEGV, OOM, sanitizer abort...)
  kTimeout,      // supervisor killed it at the task deadline
  kCancelled,    // supervisor shutdown interrupted the attempt
  kSpawnError,   // fork/pipe machinery failed before the worker ran
};

const char* ToString(AttemptOutcome outcome);
bool ParseAttemptOutcome(std::string_view text, AttemptOutcome* out);

struct RunRecord {
  std::string manifest;
  uint64_t tasks = 0;
};

struct AttemptRecord {
  std::string task;
  uint64_t attempt = 0;  // 1-based
  AttemptOutcome outcome = AttemptOutcome::kOk;
  int exit_code = -1;  // -1 when the worker did not exit normally
  int signal = 0;      // terminating signal, 0 if none
  /// StopReason token parsed from the worker's `# status:` line ("",
  /// "deadline", "step-limit", ...).
  std::string stop;
  /// The worker's last `# status:` line, verbatim (may be empty).
  std::string status_line;
  double duration_ms = 0;
  /// Peak RSS of the worker process (ru_maxrss, KiB; 0 if unknown).
  /// Triage keys off this to tell an OOM kill from a deterministic
  /// crash.
  uint64_t peak_rss_kb = 0;
  /// Sealed-segment bytes from the status line's spill telemetry
  /// (`spill_bytes=`); 0 when the task did not spill. Old ledgers
  /// without these keys load with both fields 0.
  uint64_t spill_bytes = 0;
  /// Reproduction command line (shell-quoted `tgdkit ...`).
  std::string cmd;
  std::string stderr_tail;
  /// Degradations applied to THIS attempt's argv.
  bool degraded = false;   // --threads forced to 1 after a crash
  bool escalated = false;  // budgets scaled after a resource stop
  bool resumed = false;    // chase resumed from the task checkpoint
  /// Supervisor's decision: "done", "retry", "quarantine".
  std::string next;
};

struct DoneRecord {
  std::string task;
  bool completed = false;  // false = quarantined
  int exit_code = -1;      // final worker exit code (completed tasks)
  uint64_t attempts = 0;
  /// Crash-triage report for quarantined tasks (multi-line text).
  std::string triage;
};

struct LedgerRecord {
  enum class Kind : uint8_t { kRun, kAttempt, kDone };
  Kind kind = Kind::kRun;
  RunRecord run;
  AttemptRecord attempt;
  DoneRecord done;

  static LedgerRecord Run(RunRecord r);
  static LedgerRecord Attempt(AttemptRecord a);
  static LedgerRecord Done(DoneRecord d);
};

/// Renders one record as a single JSON line (no trailing newline).
std::string RenderLedgerRecord(const LedgerRecord& record);

/// Parses one ledger line. InvalidArgument on malformed JSON or an
/// unknown record type.
Result<LedgerRecord> ParseLedgerRecord(std::string_view line);

/// Durably appends one record to the ledger at `path`.
Status AppendLedgerRecord(const std::string& path,
                          const LedgerRecord& record);

/// Loads a ledger file. A final line without its newline (torn by a
/// crash mid-append) is skipped; any malformed *interior* line is a
/// DataLoss error. NotFound if the file does not exist.
Result<std::vector<LedgerRecord>> LoadLedger(const std::string& path);

/// Truncates a torn trailing line (no final newline) off the ledger, so
/// the next append starts on a fresh line. Without this, an append after
/// a mid-write crash would concatenate onto the fragment and turn it
/// into interior garbage — a DataLoss on every later load. The fragment
/// is by definition an uncommitted record, so dropping it loses nothing.
/// Ok if the file does not exist or already ends cleanly.
Status TruncateTornLedgerTail(const std::string& path);

/// Per-task state replayed from ledger records, used by the supervisor
/// to resume a run.
struct TaskReplay {
  uint64_t attempts = 0;
  bool terminal = false;
  bool completed = false;
  int final_exit = -1;
  /// Whether a past attempt already used the one-shot degradations.
  bool degraded = false;
  bool escalated = false;
};

/// Folds records into per-task replay state. Later records win; a task
/// with multiple `done` records keeps the first (the supervisor never
/// writes a second, but the replay is defensive).
std::map<std::string, TaskReplay> ReplayLedger(
    const std::vector<LedgerRecord>& records);

}  // namespace tgdkit
