// Delta-debugging shrinker for fuzz violations (docs/FUZZING.md).
//
// Given a scenario that fails an invariant, ShrinkScenario minimizes the
// (ruleset, instance, fault schedule) triple while preserving the failure:
// ddmin over program statements, then over instance facts, then fault
// simplification, then dropping the query. Every candidate is re-executed
// with RunScenario(candidate, options, invariant); a candidate is kept
// only when the SAME invariant still fails.
#pragma once

#include <cstdint>

#include "fuzz/fuzz.h"

namespace tgdkit {

struct ShrinkOutcome {
  FuzzScenario scenario;  // the minimized failing scenario
  uint32_t attempts = 0;  // RunScenario executions spent
};

/// Minimizes `failing`, which must violate `invariant` under `options`.
/// Bounded by options.shrink_attempts re-executions; always returns a
/// scenario that still fails (the input itself in the worst case).
ShrinkOutcome ShrinkScenario(const FuzzScenario& failing,
                             const std::string& invariant,
                             const FuzzOptions& options);

}  // namespace tgdkit
