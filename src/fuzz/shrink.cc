#include "fuzz/shrink.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace tgdkit {

namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

class Shrinker {
 public:
  Shrinker(const FuzzScenario& failing, const std::string& invariant,
           const FuzzOptions& options)
      : invariant_(invariant), options_(options), best_(failing) {}

  ShrinkOutcome Run() {
    DdminField(&FuzzScenario::program);
    DdminField(&FuzzScenario::instance);
    SimplifyFault();
    DropQuery();
    return {best_, attempts_};
  }

 private:
  bool StillFails(const FuzzScenario& candidate) {
    if (attempts_ >= options_.shrink_attempts) return false;
    ++attempts_;
    ScenarioVerdict verdict = RunScenario(candidate, options_, invariant_);
    return verdict.violation && verdict.violation->invariant == invariant_;
  }

  /// Classic ddmin over the non-empty lines of one text field: try
  /// removing chunks of size n/2, n/4, ... 1, restarting whenever a
  /// removal sticks.
  void DdminField(std::string FuzzScenario::* field) {
    std::vector<std::string> lines = SplitLines(best_.*field);
    if (lines.empty()) return;
    size_t chunk = std::max<size_t>(1, lines.size() / 2);
    while (chunk >= 1 && attempts_ < options_.shrink_attempts) {
      bool removed_any = false;
      for (size_t start = 0; start < lines.size();) {
        size_t len = std::min(chunk, lines.size() - start);
        std::vector<std::string> candidate_lines;
        candidate_lines.reserve(lines.size() - len);
        candidate_lines.insert(candidate_lines.end(), lines.begin(),
                               lines.begin() + start);
        candidate_lines.insert(candidate_lines.end(),
                               lines.begin() + start + len, lines.end());
        FuzzScenario candidate = best_;
        candidate.*field = JoinLines(candidate_lines);
        if (StillFails(candidate)) {
          best_ = std::move(candidate);
          lines = std::move(candidate_lines);
          removed_any = true;
          // keep `start`: the next chunk slid into this slot
        } else {
          start += len;
        }
      }
      if (!removed_any || chunk == 1) {
        if (chunk == 1) break;
        chunk = std::max<size_t>(1, chunk / 2);
      }
    }
  }

  void SimplifyFault() {
    if (best_.fault.kind != FaultSchedule::Kind::kNone) {
      FuzzScenario candidate = best_;
      candidate.fault = FaultSchedule{};
      if (StillFails(candidate)) {
        best_ = std::move(candidate);
        return;
      }
    }
    if (best_.fault.value > 1) {
      FuzzScenario candidate = best_;
      candidate.fault.value = 1;
      if (StillFails(candidate)) best_ = std::move(candidate);
    }
    if (best_.fault.kind == FaultSchedule::Kind::kCrashAt &&
        best_.fault.phase != "begin") {
      FuzzScenario candidate = best_;
      candidate.fault.phase = "begin";
      if (StillFails(candidate)) best_ = std::move(candidate);
    }
  }

  void DropQuery() {
    if (best_.query.empty()) return;
    FuzzScenario candidate = best_;
    candidate.query.clear();
    if (StillFails(candidate)) best_ = std::move(candidate);
  }

  const std::string& invariant_;
  const FuzzOptions& options_;
  FuzzScenario best_;
  uint32_t attempts_ = 0;
};

}  // namespace

ShrinkOutcome ShrinkScenario(const FuzzScenario& failing,
                             const std::string& invariant,
                             const FuzzOptions& options) {
  Shrinker shrinker(failing, invariant, options);
  return shrinker.Run();
}

}  // namespace tgdkit
