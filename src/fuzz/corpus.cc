#include "fuzz/corpus.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/strings.h"

namespace tgdkit {

namespace fs = std::filesystem;

std::string RenderReproducer(const FuzzScenario& scenario,
                             const Violation& violation) {
  std::string out;
  out += "# tgdkit fuzz reproducer\n";
  out += "# reproduce: tgdkit fuzz --replay <this file>\n";
  out += Cat("# seed: ", scenario.seed, "\n");
  out += Cat("# shape: ", AdversarialShapeName(scenario.shape), "\n");
  out += Cat("# invariant: ", violation.invariant, "\n");
  // Keep the detail single-line so the header stays line-oriented.
  std::string detail = violation.detail;
  std::replace(detail.begin(), detail.end(), '\n', ' ');
  out += Cat("# detail: ", detail, "\n");
  out += Cat("# fault: ", ToString(scenario.fault), "\n");
  if (!scenario.inject_bug.empty()) {
    out += Cat("# inject-bug: ", scenario.inject_bug, "\n");
  }
  out += "[program]\n";
  out += scenario.program;
  if (!scenario.program.empty() && scenario.program.back() != '\n') out += '\n';
  out += "[instance]\n";
  out += scenario.instance;
  if (!scenario.instance.empty() && scenario.instance.back() != '\n') {
    out += '\n';
  }
  if (!scenario.query.empty()) {
    out += "[query]\n";
    out += scenario.query;
    if (scenario.query.back() != '\n') out += '\n';
  }
  return out;
}

Result<FuzzScenario> ParseReproducer(const std::string& text,
                                     std::string* invariant) {
  FuzzScenario scenario;
  invariant->clear();
  std::string* section = nullptr;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  auto header_value = [&line](const char* key) {
    return line.substr(line.find(key) + std::string(key).size());
  };
  while (std::getline(in, line)) {
    if (line == "[program]") {
      section = &scenario.program;
      continue;
    }
    if (line == "[instance]") {
      section = &scenario.instance;
      continue;
    }
    if (line == "[query]") {
      section = &scenario.query;
      continue;
    }
    if (section) {
      *section += line;
      *section += '\n';
      continue;
    }
    if (line.rfind("# tgdkit fuzz reproducer", 0) == 0) {
      saw_header = true;
    } else if (line.rfind("# seed: ", 0) == 0) {
      scenario.seed = std::strtoull(header_value("# seed: ").c_str(),
                                    nullptr, 10);
    } else if (line.rfind("# shape: ", 0) == 0) {
      if (!ParseAdversarialShapeName(header_value("# shape: "),
                                     &scenario.shape)) {
        return Status::InvalidArgument(
            Cat("reproducer: unknown shape in '", line, "'"));
      }
    } else if (line.rfind("# invariant: ", 0) == 0) {
      *invariant = header_value("# invariant: ");
    } else if (line.rfind("# fault: ", 0) == 0) {
      if (!ParseFaultSchedule(header_value("# fault: "), &scenario.fault)) {
        return Status::InvalidArgument(
            Cat("reproducer: bad fault schedule in '", line, "'"));
      }
    } else if (line.rfind("# inject-bug: ", 0) == 0) {
      scenario.inject_bug = header_value("# inject-bug: ");
    }
    // other comment lines (reproduce:, detail:) are provenance only
  }
  if (!saw_header) {
    return Status::InvalidArgument(
        "reproducer: missing '# tgdkit fuzz reproducer' header");
  }
  if (invariant->empty()) {
    return Status::InvalidArgument("reproducer: missing '# invariant:' line");
  }
  // An empty [program] is legal: defects like a tampered complexity bound
  // minimize all the way down to the empty rule set.
  return scenario;
}

Status WriteReproducer(const std::string& dir, const FuzzScenario& scenario,
                       const Violation& violation, std::string* path) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal(Cat("cannot create corpus dir ", dir, ": ",
                                ec.message()));
  }
  fs::path file =
      fs::path(dir) /
      Cat("seed", scenario.seed, "-", violation.invariant, ".repro");
  std::ofstream out(file);
  if (!out) {
    return Status::Internal(Cat("cannot write reproducer ", file.string()));
  }
  out << RenderReproducer(scenario, violation);
  out.close();
  if (!out) {
    return Status::Internal(Cat("short write on reproducer ", file.string()));
  }
  *path = file.string();
  return Status::Ok();
}

std::vector<std::string> ListReproducers(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".repro") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tgdkit
